// End-to-end integration tests: miniature versions of the paper's
// experiments with assertions on the qualitative outcomes every figure
// depends on. These run the full stack — generator, engine, scheduler,
// PIs, workload management — on small data so they stay fast.

#include <gtest/gtest.h>

#include <memory>

#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "sim/runner.h"
#include "storage/tpcr_gen.h"
#include "wlm/wlm_advisor.h"
#include "workload/arrival_schedule.h"
#include "workload/zipf_workload.h"

namespace mqpi {
namespace {

using engine::QuerySpec;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = new Fixture();
    fixture_->generator = std::make_unique<storage::TpcrGenerator>(
        storage::TpcrConfig{.num_part_keys = 1500,
                            .matches_per_key = 12,
                            .seed = 55});
    fixture_->workload = std::make_unique<workload::ZipfWorkload>(
        &fixture_->catalog, fixture_->generator.get(),
        workload::ZipfWorkloadOptions{.max_rank = 8, .a = 1.5,
                                      .n_scale = 4});
    ASSERT_TRUE(fixture_->workload->MaterializeTables().ok());
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }

  struct Fixture {
    storage::Catalog catalog;
    std::unique_ptr<storage::TpcrGenerator> generator;
    std::unique_ptr<workload::ZipfWorkload> workload;
  };
  static Fixture* fixture_;

  sched::RdbmsOptions Options(double rate) {
    sched::RdbmsOptions options;
    options.processing_rate = rate;
    options.quantum = 0.2;
    options.cost_model.noise_sigma = 0.1;
    return options;
  }
};

IntegrationTest::Fixture* IntegrationTest::fixture_ = nullptr;

TEST_F(IntegrationTest, McqMultiBeatsSingleOnSharedWorkload) {
  // MCQ miniature: the multi-query PI's average trace error for the
  // largest query must beat the single-query PI's by a wide margin.
  sched::Rdbms db(&fixture_->catalog, Options(300.0));
  pi::PiManager pis(&db, {.sample_interval = 2.0});
  sim::SimulationRunner runner(&db, &pis);
  Rng rng(1);
  std::vector<QueryId> ids;
  QueryId big = kInvalidQueryId;
  for (int i = 0; i < 6; ++i) {
    const int rank = (i == 0) ? 8 : fixture_->workload->SampleRank(&rng);
    auto id = runner.SubmitNow(fixture_->workload->SpecForRank(rank));
    ASSERT_TRUE(id.ok());
    if (i == 0) big = *id;
    ids.push_back(*id);
    pis.Track(*id);
  }
  runner.RunUntilFinished(ids);
  const SimTime finish = db.info(big)->finish_time;
  double single_err = 0.0, multi_err = 0.0;
  int count = 0;
  for (const auto& sample : pis.Trace(big)) {
    const double actual = finish - sample.time;
    if (actual <= 1.0 || sample.single >= kInfiniteTime) continue;
    single_err += RelativeError(sample.single, actual);
    multi_err += RelativeError(sample.multi, actual);
    ++count;
  }
  ASSERT_GT(count, 5);
  EXPECT_LT(multi_err, 0.6 * single_err)
      << "multi=" << multi_err / count << " single=" << single_err / count;
}

TEST_F(IntegrationTest, NaqQueueAwareSeesFurther) {
  // NAQ miniature: with an admission limit, the queue-aware estimate
  // for the long query beats both the queue-blind and the single PI.
  auto options = Options(200.0);
  options.max_concurrent = 2;
  sched::Rdbms db(&fixture_->catalog, options);
  pi::PiManager pis(&db, {.sample_interval = 2.0,
                          .record_queue_blind_variant = true});
  sim::SimulationRunner runner(&db, &pis);
  auto q1 = runner.SubmitNow(fixture_->workload->SpecForRank(8));
  auto q2 = runner.SubmitNow(fixture_->workload->SpecForRank(2));
  auto q3 = runner.SubmitNow(fixture_->workload->SpecForRank(4));
  ASSERT_TRUE(q3.ok());
  pis.Track(*q1);
  EXPECT_EQ(db.info(*q3)->state, sched::QueryState::kQueued);
  runner.RunUntilFinished({*q1, *q2, *q3});
  const SimTime finish = db.info(*q1)->finish_time;

  // Focus on samples before q3 starts (while it waits in the queue).
  const SimTime q3_start = db.info(*q3)->start_time;
  double aware = 0.0, blind = 0.0;
  int count = 0;
  for (const auto& sample : pis.Trace(*q1)) {
    if (sample.time >= q3_start) break;
    const double actual = finish - sample.time;
    aware += RelativeError(sample.multi, actual);
    blind += RelativeError(sample.multi_no_queue, actual);
    ++count;
  }
  ASSERT_GT(count, 2);
  EXPECT_LT(aware, blind)
      << "aware=" << aware / count << " blind=" << blind / count;
}

TEST_F(IntegrationTest, ScqArrivalsSlowEverythingAndPiSeesIt) {
  // Arrivals must lengthen actual executions, and the future-aware PI
  // must predict longer times than a future-blind one.
  auto run_with_lambda = [&](double lambda) {
    auto options = Options(150.0);
    options.max_concurrent = 5;
    sched::Rdbms db(&fixture_->catalog, options);
    sim::SimulationRunner runner(&db);
    Rng rng(9);
    auto target = runner.SubmitNow(fixture_->workload->SpecForRank(8));
    for (const auto& arrival : workload::GeneratePoissonArrivals(
             *fixture_->workload, lambda, 500.0, &rng)) {
      runner.ScheduleArrival(arrival.time,
                             fixture_->workload->SpecForRank(arrival.rank));
    }
    runner.RunUntilFinished({*target});
    return db.info(*target)->finish_time;
  };
  const double alone = run_with_lambda(0.0);
  const double busy = run_with_lambda(0.3);
  EXPECT_GT(busy, 1.5 * alone);

  // Future model raises the estimate.
  sched::Rdbms db(&fixture_->catalog, Options(150.0));
  auto target = db.Submit(fixture_->workload->SpecForRank(8));
  ASSERT_TRUE(target.ok());
  pi::FutureWorkloadModel future(
      {.lambda = 0.3, .avg_cost = 500.0, .avg_weight = 2.0});
  pi::MultiQueryPi with_future(&db, {}, &future);
  pi::MultiQueryPi without_future(&db, {});
  EXPECT_GT(*with_future.EstimateRemainingTime(*target),
            *without_future.EstimateRemainingTime(*target) * 1.2);
}

TEST_F(IntegrationTest, MaintenanceMultiPiBeatsSinglePi) {
  // Maintenance miniature, Case 2. Same warmup (deterministic), two
  // methods; multi-PI must lose no more work than single-PI.
  auto make_db = [&] {
    auto options = Options(150.0);
    auto db = std::make_unique<sched::Rdbms>(&fixture_->catalog, options);
    return db;
  };
  auto warm = [&](sched::Rdbms* db, pi::PiManager* pis,
                  std::vector<QueryId>* ids) {
    Rng rng(13);
    for (int i = 0; i < 5; ++i) {
      const int rank = 2 + (i % 4) * 2;
      auto id = db->Submit(fixture_->workload->SpecForRank(rank));
      ASSERT_TRUE(id.ok());
      pis->Track(*id);
      ids->push_back(*id);
    }
    for (int step = 0; step < 40; ++step) {
      db->Step(0.2);
      pis->AfterStep();
    }
  };

  double unfinished[2] = {0.0, 0.0};
  const wlm::MaintenanceMethod methods[2] = {
      wlm::MaintenanceMethod::kSinglePi, wlm::MaintenanceMethod::kMultiPi};
  for (int m = 0; m < 2; ++m) {
    auto db = make_db();
    pi::PiManager pis(db.get(), {.sample_interval = 1e12});
    std::vector<QueryId> ids;
    warm(db.get(), &pis, &ids);
    wlm::WlmAdvisor advisor(db.get());
    const double deadline = 30.0;
    auto plan = advisor.PrepareMaintenance(
        deadline, wlm::LossMetric::kTotalCost, methods[m], &pis);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const SimTime decision = db->now();
    db->RunUntilIdle(decision + deadline);
    auto late = advisor.AbortAllUnfinished();
    for (QueryId id : plan->abort_now) {
      const auto info = *db->info(id);
      unfinished[m] += info.completed_work + info.estimated_remaining_cost;
    }
    for (const auto& info : late) {
      unfinished[m] += info.completed_work + info.estimated_remaining_cost;
    }
  }
  EXPECT_LE(unfinished[1], unfinished[0] + 1e-9)
      << "multi=" << unfinished[1] << " single=" << unfinished[0];
}

TEST_F(IntegrationTest, SpeedupEndToEndOnRealQueries) {
  // Section 3.1 on real TPC-R queries: blocking the advisor's victim
  // must make the target finish earlier than the unmanaged baseline.
  double baseline = 0.0;
  {
    sched::Rdbms db(&fixture_->catalog, Options(200.0));
    std::vector<QueryId> ids;
    for (int rank : {6, 4, 8, 5}) {
      ids.push_back(*db.Submit(fixture_->workload->SpecForRank(rank)));
    }
    db.RunUntilIdle();
    baseline = db.info(ids[0])->finish_time;
  }
  sched::Rdbms db(&fixture_->catalog, Options(200.0));
  std::vector<QueryId> ids;
  for (int rank : {6, 4, 8, 5}) {
    ids.push_back(*db.Submit(fixture_->workload->SpecForRank(rank)));
  }
  wlm::WlmAdvisor advisor(&db);
  auto choice = advisor.SpeedUpQuery(ids[0], 1);
  ASSERT_TRUE(choice.ok());
  db.RunUntilIdle();
  EXPECT_LT(db.info(ids[0])->finish_time, baseline - 1.0);
  // Victims stay blocked; resume and drain them.
  for (QueryId victim : choice->victims) {
    EXPECT_TRUE(db.Resume(victim).ok());
  }
  db.RunUntilIdle();
  for (QueryId id : ids) {
    EXPECT_EQ(db.info(id)->state, sched::QueryState::kFinished);
  }
}

TEST_F(IntegrationTest, AdaptiveMaintenanceRevision) {
  // Section 4: periodically revising the multi-PI decision aborts
  // late-detected hopeless queries so survivors still meet the deadline.
  auto options = Options(100.0);
  sched::Rdbms db(&fixture_->catalog, options);
  std::vector<QueryId> ids;
  for (int rank : {8, 8, 2, 2, 1}) {
    ids.push_back(*db.Submit(fixture_->workload->SpecForRank(rank)));
  }
  db.Step(2.0);
  wlm::WlmAdvisor advisor(&db);
  const double deadline = 40.0;
  const SimTime decision = db.now();
  auto plan = advisor.PrepareMaintenance(deadline,
                                         wlm::LossMetric::kTotalCost,
                                         wlm::MaintenanceMethod::kMultiPi,
                                         nullptr);
  ASSERT_TRUE(plan.ok());
  // Revise midway with the remaining time.
  db.RunUntilIdle(decision + deadline / 2);
  auto revised = advisor.ReviseMaintenance(
      deadline / 2, wlm::LossMetric::kTotalCost);
  ASSERT_TRUE(revised.ok());
  db.RunUntilIdle(decision + deadline);
  // Whatever survived both decisions must have finished.
  int missed = 0;
  for (QueryId id : ids) {
    if (db.info(id)->state == sched::QueryState::kRunning) ++missed;
  }
  EXPECT_LE(missed, 1);  // estimates are noisy; at most one borderline miss
}

}  // namespace
}  // namespace mqpi
