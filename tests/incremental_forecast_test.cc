// Differential tests for the incremental virtual-time forecast engine.
//
// The engine's exactness contract (incremental_forecast.h): every
// query answer must equal a from-scratch StageProfile::Compute over
// the equivalent (cost, weight) set up to float rounding. The suite
// pins that contract at three levels —
//  * engine unit: static sets and O(1) Advance vs recomputed profiles,
//  * engine soak: a random interleaving of insert / remove / update /
//    advance checked against a shadow model after every operation,
//  * system soak: a MultiQueryPi with the incremental fast path on vs
//    a pinned simulator-only reference PI observing the same Rdbms,
//    through lifecycle churn that forces fast-path <-> fallback
//    transitions both ways.
// Plus the load-validation and what-if composition rules that ride on
// the same machinery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/random.h"
#include "pi/analytic_simulator.h"
#include "pi/incremental_forecast.h"
#include "pi/multi_query_pi.h"
#include "pi/stage_profile.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

namespace mqpi::pi {
namespace {

using engine::QuerySpec;

// Documented engine tolerance: a few ULP of the v = X + c/w round
// trip. Scaled-relative with a floor of 1.0 so near-zero remainders
// compare absolutely.
constexpr double kEngineRelTol = 1e-9;

void ExpectClose(double expected, double actual, const char* what,
                 double tol = kEngineRelTol) {
  if (expected == kInfiniteTime || actual == kInfiniteTime) {
    EXPECT_EQ(expected, actual) << what;
    return;
  }
  EXPECT_NEAR(expected, actual, tol * std::max(1.0, std::fabs(expected)))
      << what;
}

// Asserts every engine answer against a from-scratch stage profile
// over the same load.
void ExpectMatchesProfile(const IncrementalForecast& engine,
                          const std::vector<QueryLoad>& loads, double rate,
                          const char* where) {
  SCOPED_TRACE(where);
  ASSERT_EQ(engine.size(), loads.size());
  auto profile = StageProfile::Compute(loads, rate);
  ASSERT_TRUE(profile.ok());
  for (const QueryLoad& q : loads) {
    auto r = engine.RemainingTime(q.id, rate);
    ASSERT_TRUE(r.ok()) << "id " << q.id;
    ExpectClose(*profile->RemainingTimeOf(q.id), *r, "remaining time");
    auto c = engine.CostOf(q.id);
    ASSERT_TRUE(c.ok());
    ExpectClose(q.remaining_cost, *c, "cost");
    auto w = engine.WeightOf(q.id);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(q.weight, *w);
  }
  ExpectClose(profile->quiescent_time(), engine.QuiescentTime(rate),
              "quiescent");
  double total_w = 0.0;
  for (const QueryLoad& q : loads) total_w += q.weight;
  ExpectClose(total_w, engine.total_weight(), "total weight");
  // Finish order must match the profile's (same (v, id) tie-break).
  const auto entries = engine.Entries();
  ASSERT_EQ(entries.size(), loads.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(profile->finish_order()[i].id, entries[i].id)
        << "finish position " << i;
  }
}

// ---- engine unit ----------------------------------------------------------------

TEST(IncrementalForecastTest, MatchesStageProfileOnStaticSet) {
  IncrementalForecast engine;
  std::vector<QueryLoad> loads{
      {1, 100.0, 1.0}, {2, 500.0, 2.0}, {3, 50.0, 4.0}, {4, 300.0, 1.0}};
  for (const QueryLoad& q : loads) {
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
  }
  ExpectMatchesProfile(engine, loads, 100.0, "static set");
  // Multiple rates against the same structure.
  ExpectMatchesProfile(engine, loads, 7.5, "static set, other rate");
}

TEST(IncrementalForecastTest, AdvanceEqualsRecomputedProfile) {
  IncrementalForecast engine;
  std::vector<QueryLoad> loads{
      {1, 120.0, 1.0}, {2, 480.0, 3.0}, {3, 90.0, 2.0}};
  for (const QueryLoad& q : loads) {
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
  }
  // One O(1) bump of half the smallest c/w ratio: every query loses
  // dx of progress per unit weight.
  double min_ratio = kInfiniteTime;
  for (const QueryLoad& q : loads) {
    min_ratio = std::min(min_ratio, q.remaining_cost / q.weight);
  }
  const double dx = 0.5 * min_ratio;
  engine.Advance(dx);
  for (QueryLoad& q : loads) q.remaining_cost -= q.weight * dx;
  ExpectMatchesProfile(engine, loads, 100.0, "after advance");
}

TEST(IncrementalForecastTest, LifecycleEditsStayExact) {
  IncrementalForecast engine;
  std::vector<QueryLoad> loads{{1, 200.0, 1.0}, {2, 600.0, 2.0}};
  for (const QueryLoad& q : loads) {
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
  }
  // Arrival mid-run.
  ASSERT_TRUE(engine.Insert(3, 150.0, 4.0).ok());
  loads.push_back({3, 150.0, 4.0});
  ExpectMatchesProfile(engine, loads, 50.0, "after insert");
  // Reweight (priority change re-anchors cost at the current offset).
  ASSERT_TRUE(engine.Update(2, 600.0, 8.0).ok());
  loads[1].weight = 8.0;
  ExpectMatchesProfile(engine, loads, 50.0, "after reweight");
  // Abort.
  ASSERT_TRUE(engine.Remove(1).ok());
  loads.erase(loads.begin());
  ExpectMatchesProfile(engine, loads, 50.0, "after remove");
  EXPECT_FALSE(engine.Remove(1).ok());
  EXPECT_FALSE(engine.Update(99, 1.0, 1.0).ok());
  EXPECT_FALSE(engine.Insert(3, 1.0, 1.0).ok());  // duplicate
  EXPECT_FALSE(engine.Insert(7, -1.0, 1.0).ok());
  EXPECT_FALSE(engine.Insert(7, 1.0, 0.0).ok());
}

TEST(IncrementalForecastTest, RemovalBenefitMatchesTwoProfilesAndIsAdditive) {
  IncrementalForecast engine;
  std::vector<QueryLoad> loads{
      {1, 300.0, 1.0}, {2, 100.0, 2.0}, {3, 700.0, 1.0}, {4, 250.0, 3.0}};
  for (const QueryLoad& q : loads) {
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
  }
  const double rate = 40.0;
  auto remaining_without = [&](QueryId target,
                               const std::vector<QueryId>& removed) {
    std::vector<QueryLoad> rest;
    for (const QueryLoad& q : loads) {
      if (std::find(removed.begin(), removed.end(), q.id) == removed.end()) {
        rest.push_back(q);
      }
    }
    auto profile = StageProfile::Compute(rest, rate);
    EXPECT_TRUE(profile.ok());
    return *profile->RemainingTimeOf(target);
  };
  auto base = engine.RemainingTime(1, rate);
  ASSERT_TRUE(base.ok());
  // Single victims: engine point query == difference of two profiles.
  for (QueryId victim : {QueryId{2}, QueryId{3}, QueryId{4}}) {
    auto benefit = engine.RemovalBenefit(1, victim, rate);
    ASSERT_TRUE(benefit.ok());
    ExpectClose(*base - remaining_without(1, {victim}), *benefit,
                "single victim");
  }
  // Additivity: the summed point queries equal the all-removed profile
  // exactly (in-model additivity, speedup.h header note).
  auto b2 = engine.RemovalBenefit(1, 2, rate);
  auto b3 = engine.RemovalBenefit(1, 3, rate);
  ASSERT_TRUE(b2.ok() && b3.ok());
  ExpectClose(*base - remaining_without(1, {2, 3}), *b2 + *b3,
              "two victims");
  EXPECT_FALSE(engine.RemovalBenefit(1, 1, rate).ok());
  EXPECT_FALSE(engine.RemovalBenefit(1, 42, rate).ok());
}

TEST(IncrementalForecastTest, RenormalizationKeepsAnswersStable) {
  // Drive the offset far past the renormalization threshold with a
  // rolling population; answers must stay within tolerance throughout.
  IncrementalForecast engine;
  Rng rng(20260806);
  std::map<QueryId, QueryLoad> shadow;
  QueryId next_id = 1;
  for (int i = 0; i < 8; ++i) {
    const QueryLoad q{next_id++, rng.Uniform(50.0, 500.0),
                      rng.Uniform(0.5, 4.0)};
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
    shadow[q.id] = q;
  }
  for (int round = 0; round < 4000; ++round) {
    // Advance by most of the smallest ratio, retire it, replace it.
    QueryId first = kInvalidQueryId;
    double min_ratio = kInfiniteTime;
    for (const auto& [id, q] : shadow) {
      const double ratio = q.remaining_cost / q.weight;
      if (ratio < min_ratio) {
        min_ratio = ratio;
        first = id;
      }
    }
    const double dx = 0.99 * min_ratio;
    engine.Advance(dx);
    for (auto& [id, q] : shadow) q.remaining_cost -= q.weight * dx;
    ASSERT_TRUE(engine.Remove(first).ok());
    shadow.erase(first);
    const QueryLoad q{next_id++, rng.Uniform(50.0, 500.0),
                      rng.Uniform(0.5, 4.0)};
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
    shadow[q.id] = q;
  }
  // The offset was renormalized at least once along the way (it only
  // grows between renorms and resets to < threshold after).
  std::vector<QueryLoad> loads;
  for (const auto& [id, q] : shadow) loads.push_back(q);
  auto profile = StageProfile::Compute(loads, 100.0);
  ASSERT_TRUE(profile.ok());
  for (const QueryLoad& q : loads) {
    auto r = engine.RemainingTime(q.id, 100.0);
    ASSERT_TRUE(r.ok());
    // Looser tolerance: 4000 rounds of subtractive cancellation in the
    // shadow model itself contribute most of the drift.
    ExpectClose(*profile->RemainingTimeOf(q.id), *r, "post-renorm", 1e-6);
  }
}

// ---- engine soak ----------------------------------------------------------------

class EngineSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineSoakTest, RandomOpsMatchShadowProfileAfterEveryOp) {
  Rng rng(31000 + static_cast<std::uint64_t>(GetParam()));
  IncrementalForecast engine;
  std::map<QueryId, QueryLoad> shadow;  // ordered: deterministic picks
  QueryId next_id = 1;
  const double rate = rng.Uniform(10.0, 500.0);

  auto pick = [&]() -> QueryId {
    auto it = shadow.begin();
    std::advance(it, rng.UniformInt(
                         0, static_cast<std::int64_t>(shadow.size()) - 1));
    return it->first;
  };
  for (int op = 0; op < 600; ++op) {
    switch (shadow.empty() ? 0 : rng.UniformInt(0, 5)) {
      case 0:
      case 1: {  // insert
        const QueryLoad q{next_id++, rng.Uniform(0.0, 400.0),
                          rng.Uniform(0.25, 8.0)};
        ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
        shadow[q.id] = q;
        break;
      }
      case 2: {  // remove
        const QueryId id = pick();
        ASSERT_TRUE(engine.Remove(id).ok());
        shadow.erase(id);
        break;
      }
      case 3: {  // update (reweight and/or cost re-estimate)
        const QueryId id = pick();
        QueryLoad& q = shadow[id];
        q.remaining_cost = rng.Uniform(0.0, 400.0);
        q.weight = rng.Uniform(0.25, 8.0);
        ASSERT_TRUE(engine.Update(id, q.remaining_cost, q.weight).ok());
        break;
      }
      default: {  // advance, staying short of the first finisher
        double min_ratio = kInfiniteTime;
        for (const auto& [id, q] : shadow) {
          min_ratio = std::min(min_ratio, q.remaining_cost / q.weight);
        }
        if (min_ratio <= 0.0) break;  // a zero-cost query is "finishing"
        const double dx = rng.Uniform(0.0, 0.95 * min_ratio);
        engine.Advance(dx);
        for (auto& [id, q] : shadow) q.remaining_cost -= q.weight * dx;
        break;
      }
    }
    std::vector<QueryLoad> loads;
    for (const auto& [id, q] : shadow) loads.push_back(q);
    ExpectMatchesProfile(engine, loads, rate, "soak step");
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, EngineSoakTest, ::testing::Range(0, 4));

// ---- load validation (analytic simulator) ---------------------------------------

TEST(AnalyticSimulatorTest, RejectsDuplicateIdsAcrossAllSources) {
  AnalyticModelOptions options;
  options.rate = 100.0;
  const std::vector<QueryLoad> running{{1, 10.0, 1.0}, {2, 20.0, 1.0}};
  // Duplicate within the running set.
  {
    auto r = AnalyticSimulator::Forecast({{1, 10.0, 1.0}, {1, 5.0, 1.0}}, {},
                                         {}, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Running vs queued.
  {
    auto r =
        AnalyticSimulator::Forecast(running, {{2, 5.0, 1.0}}, {}, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Queued vs future arrival.
  {
    auto r = AnalyticSimulator::Forecast(
        running, {{3, 5.0, 1.0}}, {FutureArrival{1.0, 5.0, 1.0, 3}}, options);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // Virtual arrivals (kInvalidQueryId) are exempt from uniqueness.
  {
    auto r = AnalyticSimulator::Forecast(
        running, {},
        {FutureArrival{1.0, 5.0, 1.0, kInvalidQueryId},
         FutureArrival{2.0, 5.0, 1.0, kInvalidQueryId}},
        options);
    EXPECT_TRUE(r.ok());
  }
}

// ---- system soak: fast path vs simulator ----------------------------------------

sched::RdbmsOptions SoakOptions(Rng* rng) {
  sched::RdbmsOptions options;
  options.processing_rate = rng->Uniform(50.0, 200.0);
  options.quantum = 0.1;
  // Small admission limit: bursts queue up (fast path ineligible),
  // drains empty the queue (fast path eligible) — both transitions
  // exercised.
  options.max_concurrent = static_cast<int>(rng->UniformInt(2, 4));
  options.cost_model.noise_sigma = 0.1;
  return options;
}

class PiDifferentialSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(PiDifferentialSoakTest, IncrementalMatchesSimulatorThroughChurn) {
  Rng rng(47000 + static_cast<std::uint64_t>(GetParam()));
  storage::Catalog catalog;
  auto options = SoakOptions(&rng);
  sched::Rdbms db(&catalog, options);
  MultiQueryPi inc(&db, {});  // incremental fast path on (default)
  MultiQueryPi ref(&db, {.enable_incremental = false});
  inc.AttachLifecycleEvents(&db);

  // Estimates from both PIs must agree after every event — fast path
  // or fallback, the answer is the same within float tolerance. The
  // simulator integrates progress event by event while the engine
  // carries one offset, so the system-level tolerance is looser than
  // the engine-level one.
  auto expect_agreement = [&](int op) {
    for (const auto& info : db.AllQueries()) {
      auto a = inc.EstimateRemainingTime(info);
      auto b = ref.EstimateRemainingTime(info);
      ASSERT_EQ(a.ok(), b.ok()) << "op " << op << " id " << info.id;
      if (!a.ok()) continue;
      if (*a == kInfiniteTime || *b == kInfiniteTime || *a == kUnknown ||
          *b == kUnknown) {
        EXPECT_EQ(*a, *b) << "op " << op << " id " << info.id;
      } else {
        EXPECT_NEAR(*a, *b, 1e-6 * std::max(1.0, std::fabs(*b)))
            << "op " << op << " id " << info.id;
      }
    }
    auto qa = inc.QuiescentEta();
    auto qb = ref.QuiescentEta();
    ASSERT_EQ(qa.ok(), qb.ok()) << "op " << op;
    if (qa.ok() && *qa != kInfiniteTime && *qb != kInfiniteTime) {
      EXPECT_NEAR(*qa, *qb, 1e-6 * std::max(1.0, std::fabs(*qb)))
          << "op " << op << " quiescent";
    }
  };

  std::vector<QueryId> ids;
  for (int op = 0; op < 300; ++op) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2: {  // submit (occasionally a burst that overflows admission)
        const int burst = rng.NextDouble() < 0.2 ? 4 : 1;
        for (int i = 0; i < burst; ++i) {
          auto id = db.Submit(QuerySpec::Synthetic(rng.Uniform(5.0, 200.0)),
                              static_cast<Priority>(rng.UniformInt(0, 3)));
          ASSERT_TRUE(id.ok());
          ids.push_back(*id);
        }
        break;
      }
      case 3: {
        if (!ids.empty()) {
          db.Block(ids[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 4: {
        if (!ids.empty()) {
          db.Resume(ids[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 5: {
        if (!ids.empty()) {
          db.Abort(ids[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 6: {
        if (!ids.empty()) {
          db.SetPriority(
              ids[static_cast<std::size_t>(rng.UniformInt(
                  0, static_cast<std::int64_t>(ids.size()) - 1))],
              static_cast<Priority>(rng.UniformInt(0, 3)));
        }
        break;
      }
      default: {  // step 1-8 quanta (longer runs drain the queue)
        const int quanta = static_cast<int>(rng.UniformInt(1, 8));
        for (int i = 0; i < quanta; ++i) {
          db.Step(options.quantum);
          inc.ObserveStep();
          ref.ObserveStep();
        }
        break;
      }
    }
    expect_agreement(op);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at op " << op;
    }
  }
  // The churn must have exercised both regimes.
  EXPECT_GT(inc.incremental_fast_path(), 0u);
  EXPECT_GT(inc.incremental_fallback(), 0u);
  EXPECT_GT(inc.incremental_resyncs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Random, PiDifferentialSoakTest,
                         ::testing::Range(0, 4));

// ---- point what-if vs full what-if ----------------------------------------------

TEST(IncrementalWhatIfTest, PointWhatIfMatchesFullForecast) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  MultiQueryPi pi(&db, {});
  pi.AttachLifecycleEvents(&db);

  std::vector<QueryId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = db.Submit(QuerySpec::Synthetic(100.0 + 70.0 * i),
                        static_cast<Priority>(i % 3));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  db.Step(options.quantum);
  pi.ObserveStep();  // sync the engine: queue empty, fast path ready
  const std::uint64_t fast_before = pi.incremental_fast_path();

  auto expect_matches = [&](const MultiQueryPi::WhatIf& scenario,
                            QueryId target, const char* what) {
    auto point = pi.EstimateWhatIf(scenario, target);
    auto full = pi.ForecastWhatIf(scenario);
    ASSERT_TRUE(point.ok()) << what;
    ASSERT_TRUE(full.ok()) << what;
    auto expected = full->FinishTimeOf(target);
    ASSERT_TRUE(expected.ok()) << what;
    EXPECT_NEAR(*expected, *point,
                1e-9 * std::max(1.0, std::fabs(*expected)))
        << what;
  };
  expect_matches({.blocked = {ids[1]}}, ids[0], "single block");
  expect_matches({.aborted = {ids[2], ids[4]}}, ids[0], "two aborts");
  expect_matches({.blocked = {ids[1]}, .aborted = {ids[5]}}, ids[3],
                 "mixed removal");
  // A duplicated victim across both lists is still one removal.
  expect_matches({.blocked = {ids[1]}, .aborted = {ids[1]}}, ids[0],
                 "duplicate victim");
  // Ids absent from the load are ignored, like ForecastWhatIf.
  expect_matches({.blocked = {ids[1], 9999}}, ids[0], "absent victim");
  // Pure removals above were answered from the engine.
  EXPECT_GT(pi.incremental_fast_path(), fast_before);
  // Reweight scenarios fall back to the simulator — and still match.
  expect_matches({.blocked = {ids[1]}, .reweighted = {{ids[2], 6.0}}},
                 ids[0], "reweight fallback");
  // Removing the target itself is NotFound either way.
  auto gone = pi.EstimateWhatIf({.aborted = {ids[0]}}, ids[0]);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mqpi::pi
