// Robustness tests:
//  * parser fuzzing — random token soups and mutated valid statements
//    must either parse or fail cleanly (no crash, no hang),
//  * scheduler soak — long random interleavings of submit / block /
//    resume / abort / priority / step keep every invariant intact.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "engine/sql_parser.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

namespace mqpi {
namespace {

using engine::ParseSql;
using engine::QuerySpec;

// ---- parser fuzz -----------------------------------------------------------------

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* vocabulary[] = {
      "select", "from",  "where",    "group",    "by",    "order", "limit",
      "join",   "on",    "count",    "sum",      "avg",   "min",   "max",
      "desc",   "asc",   "lineitem", "part_1",   "p",     "l",     "*",
      "(",      ")",     ",",        ".",        ">",     "=",     "/",
      "0.75",   "25",    "partkey",  "quantity", "retailprice",
      "extendedprice",   "suppkey"};
  Rng rng(90001);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = static_cast<int>(rng.UniformInt(1, 24));
    for (int i = 0; i < len; ++i) {
      sql += vocabulary[rng.UniformInt(
          0, static_cast<std::int64_t>(std::size(vocabulary)) - 1)];
      sql += ' ';
    }
    auto result = ParseSql(sql);  // must not crash
    if (result.ok()) ++parsed_ok;
  }
  // Random soups occasionally form valid statements; most must fail.
  EXPECT_LT(parsed_ok, 300);
}

TEST(ParserFuzzTest, MutatedValidStatementsFailCleanly) {
  const std::string valid =
      "select * from part_1 p where p.retailprice * 0.75 > "
      "(select sum(l.extendedprice) / sum(l.quantity) from lineitem l "
      "where l.partkey = p.partkey)";
  Rng rng(90002);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    auto result = ParseSql(mutated);  // must not crash
    if (result.ok()) {
      // If it still parses, it must be one of the known kinds.
      SUCCEED();
    }
  }
}

TEST(ParserFuzzTest, PathologicalInputs) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("   \t\n  ").ok());
  EXPECT_FALSE(ParseSql(std::string(10000, '(')).ok());
  EXPECT_FALSE(ParseSql("select " + std::string(5000, 'x')).ok());
  std::string deep = "select count(*) from t where x > ";
  deep += std::string(2000, '9');
  auto r = ParseSql(deep);  // giant number literal
  EXPECT_TRUE(r.ok() || r.status().IsInvalidArgument());
}

// ---- scheduler soak -----------------------------------------------------------------

class SchedulerSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSoakTest, RandomOperationsPreserveInvariants) {
  Rng rng(91000 + static_cast<std::uint64_t>(GetParam()));
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = rng.Uniform(50.0, 300.0);
  options.quantum = 0.1;
  options.max_concurrent = static_cast<int>(rng.UniformInt(1, 6));
  options.max_query_seconds =
      rng.NextDouble() < 0.3 ? rng.Uniform(1.0, 5.0) : 0.0;
  options.cost_model.noise_sigma = 0.2;
  sched::Rdbms db(&catalog, options);

  std::vector<QueryId> ids;
  double submitted_work = 0.0;
  for (int op = 0; op < 400; ++op) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2: {  // submit
        const double cost = rng.Uniform(5.0, 300.0);
        auto id = db.Submit(QuerySpec::Synthetic(cost),
                            static_cast<Priority>(rng.UniformInt(0, 3)));
        ASSERT_TRUE(id.ok());
        ids.push_back(*id);
        submitted_work += cost;
        break;
      }
      case 3: {  // block something (may legitimately fail)
        if (!ids.empty()) {
          db.Block(ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 4: {  // resume something
        if (!ids.empty()) {
          db.Resume(ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 5: {  // abort something
        if (!ids.empty()) {
          db.Abort(ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 6: {  // change a priority
        if (!ids.empty()) {
          db.SetPriority(ids[static_cast<std::size_t>(rng.UniformInt(
                             0, static_cast<std::int64_t>(ids.size()) - 1))],
                         static_cast<Priority>(rng.UniformInt(0, 3)));
        }
        break;
      }
      case 7: {  // toggle admission
        db.SetAdmissionOpen(rng.NextDouble() < 0.8);
        break;
      }
      default: {  // step
        db.Step(rng.Uniform(0.1, 1.0));
        break;
      }
    }

    // Invariants after every operation.
    ASSERT_LE(db.num_running(), options.max_concurrent);
    double total_completed = 0.0;
    int blocked = 0;
    for (const auto& info : db.AllQueries()) {
      total_completed += info.completed_work;
      if (info.state == sched::QueryState::kBlocked) ++blocked;
      if (info.state == sched::QueryState::kFinished) {
        ASSERT_GE(info.finish_time, info.start_time - 1e-9);
      }
      if (info.state == sched::QueryState::kQueued) {
        ASSERT_DOUBLE_EQ(info.completed_work, 0.0);
      }
    }
    // Work is never manufactured from nothing.
    ASSERT_LE(total_completed,
              submitted_work + options.processing_rate * db.now() + 1e-6);
  }

  // Drain: resume everything blocked, reopen admission, run to idle.
  db.SetAdmissionOpen(true);
  for (QueryId id : ids) db.Resume(id);
  db.RunUntilIdle(db.now() + 10000.0);
  for (QueryId id : ids) {
    const auto info = *db.info(id);
    ASSERT_TRUE(info.state == sched::QueryState::kFinished ||
                info.state == sched::QueryState::kAborted)
        << "query " << id << " stuck in "
        << sched::QueryStateName(info.state);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SchedulerSoakTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace mqpi
