// Robustness tests:
//  * parser fuzzing — random token soups and mutated valid statements
//    must either parse or fail cleanly (no crash, no hang),
//  * scheduler soak — long random interleavings of submit / block /
//    resume / abort / priority / step keep every invariant intact,
//  * chaos soak — a deterministic FaultInjector batters the whole
//    stack (scheduler faults, PI cache invalidation and window
//    corruption, delayed publication, failing control calls) while
//    every published estimate stays sane, the forecast cache stays
//    coherent with an uncached reference PI, and the system drains
//    cleanly once the faults are disarmed.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/random.h"
#include "engine/sql_parser.h"
#include "fault/fault_injector.h"
#include "pi/multi_query_pi.h"
#include "sched/rdbms.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

namespace mqpi {
namespace {

using engine::ParseSql;
using engine::QuerySpec;

// ---- parser fuzz -----------------------------------------------------------------

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* vocabulary[] = {
      "select", "from",  "where",    "group",    "by",    "order", "limit",
      "join",   "on",    "count",    "sum",      "avg",   "min",   "max",
      "desc",   "asc",   "lineitem", "part_1",   "p",     "l",     "*",
      "(",      ")",     ",",        ".",        ">",     "=",     "/",
      "0.75",   "25",    "partkey",  "quantity", "retailprice",
      "extendedprice",   "suppkey"};
  Rng rng(90001);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = static_cast<int>(rng.UniformInt(1, 24));
    for (int i = 0; i < len; ++i) {
      sql += vocabulary[rng.UniformInt(
          0, static_cast<std::int64_t>(std::size(vocabulary)) - 1)];
      sql += ' ';
    }
    auto result = ParseSql(sql);  // must not crash
    if (result.ok()) ++parsed_ok;
  }
  // Random soups occasionally form valid statements; most must fail.
  EXPECT_LT(parsed_ok, 300);
}

TEST(ParserFuzzTest, MutatedValidStatementsFailCleanly) {
  const std::string valid =
      "select * from part_1 p where p.retailprice * 0.75 > "
      "(select sum(l.extendedprice) / sum(l.quantity) from lineitem l "
      "where l.partkey = p.partkey)";
  Rng rng(90002);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    auto result = ParseSql(mutated);  // must not crash
    if (result.ok()) {
      // If it still parses, it must be one of the known kinds.
      SUCCEED();
    }
  }
}

TEST(ParserFuzzTest, PathologicalInputs) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("   \t\n  ").ok());
  EXPECT_FALSE(ParseSql(std::string(10000, '(')).ok());
  EXPECT_FALSE(ParseSql("select " + std::string(5000, 'x')).ok());
  std::string deep = "select count(*) from t where x > ";
  deep += std::string(2000, '9');
  auto r = ParseSql(deep);  // giant number literal
  EXPECT_TRUE(r.ok() || r.status().IsInvalidArgument());
}

// ---- scheduler soak -----------------------------------------------------------------

class SchedulerSoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSoakTest, RandomOperationsPreserveInvariants) {
  Rng rng(91000 + static_cast<std::uint64_t>(GetParam()));
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = rng.Uniform(50.0, 300.0);
  options.quantum = 0.1;
  options.max_concurrent = static_cast<int>(rng.UniformInt(1, 6));
  options.max_query_seconds =
      rng.NextDouble() < 0.3 ? rng.Uniform(1.0, 5.0) : 0.0;
  options.cost_model.noise_sigma = 0.2;
  sched::Rdbms db(&catalog, options);

  std::vector<QueryId> ids;
  double submitted_work = 0.0;
  for (int op = 0; op < 400; ++op) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2: {  // submit
        const double cost = rng.Uniform(5.0, 300.0);
        auto id = db.Submit(QuerySpec::Synthetic(cost),
                            static_cast<Priority>(rng.UniformInt(0, 3)));
        ASSERT_TRUE(id.ok());
        ids.push_back(*id);
        submitted_work += cost;
        break;
      }
      case 3: {  // block something (may legitimately fail)
        if (!ids.empty()) {
          db.Block(ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 4: {  // resume something
        if (!ids.empty()) {
          db.Resume(ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 5: {  // abort something
        if (!ids.empty()) {
          db.Abort(ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))]);
        }
        break;
      }
      case 6: {  // change a priority
        if (!ids.empty()) {
          db.SetPriority(ids[static_cast<std::size_t>(rng.UniformInt(
                             0, static_cast<std::int64_t>(ids.size()) - 1))],
                         static_cast<Priority>(rng.UniformInt(0, 3)));
        }
        break;
      }
      case 7: {  // toggle admission
        db.SetAdmissionOpen(rng.NextDouble() < 0.8);
        break;
      }
      default: {  // step
        db.Step(rng.Uniform(0.1, 1.0));
        break;
      }
    }

    // Invariants after every operation.
    ASSERT_LE(db.num_running(), options.max_concurrent);
    double total_completed = 0.0;
    int blocked = 0;
    for (const auto& info : db.AllQueries()) {
      total_completed += info.completed_work;
      if (info.state == sched::QueryState::kBlocked) ++blocked;
      if (info.state == sched::QueryState::kFinished) {
        ASSERT_GE(info.finish_time, info.start_time - 1e-9);
      }
      if (info.state == sched::QueryState::kQueued) {
        ASSERT_DOUBLE_EQ(info.completed_work, 0.0);
      }
    }
    // Work is never manufactured from nothing.
    ASSERT_LE(total_completed,
              submitted_work + options.processing_rate * db.now() + 1e-6);
  }

  // Drain: resume everything blocked, reopen admission, run to idle.
  db.SetAdmissionOpen(true);
  for (QueryId id : ids) db.Resume(id);
  db.RunUntilIdle(db.now() + 10000.0);
  for (QueryId id : ids) {
    const auto info = *db.info(id);
    ASSERT_TRUE(info.state == sched::QueryState::kFinished ||
                info.state == sched::QueryState::kAborted)
        << "query " << id << " stuck in "
        << sched::QueryStateName(info.state);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SchedulerSoakTest, ::testing::Range(0, 6));

// ---- chaos soak -----------------------------------------------------------------

// Forced cache invalidation must be a correctness no-op: a PI whose
// memoized forecast is randomly dropped (while the scheduler itself is
// being battered with rate faults and spurious aborts) must produce
// estimates byte-identical to an uncached reference PI observing the
// same engine.
TEST(ChaosSoakTest, ForcedCacheInvalidationIsACorrectnessNoOp) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.max_concurrent = 3;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);

  fault::FaultInjector sched_faults(1234);
  db.SetFaultInjector(&sched_faults);
  sched_faults.ArmProbability(fault::kSchedRateCollapse, 0.10, 0.2);
  sched_faults.ArmProbability(fault::kSchedRateSpike, 0.10, 3.0);
  sched_faults.ArmProbability(fault::kSchedQuantumStall, 0.05);
  sched_faults.ArmProbability(fault::kSchedSpuriousAbort, 0.02);

  pi::MultiQueryPiOptions cached_options;
  pi::MultiQueryPi cached(&db, cached_options);
  pi::MultiQueryPiOptions uncached_options;
  uncached_options.enable_forecast_cache = false;
  pi::MultiQueryPi uncached(&db, uncached_options);

  // Only the cached PI gets its cache chaos-invalidated (its own
  // injector, so the scheduler points' streams are untouched).
  fault::FaultInjector pi_faults(5678);
  cached.SetFaultInjector(&pi_faults);
  pi_faults.ArmProbability(fault::kPiCacheInvalidate, 0.3);

  Rng rng(92000);
  std::vector<QueryId> ids;
  for (int step = 0; step < 500; ++step) {
    if (ids.size() < 12 && rng.NextDouble() < 0.2) {
      auto id = db.Submit(QuerySpec::Synthetic(rng.Uniform(20.0, 400.0)));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    db.Step();
    cached.ObserveStep();
    uncached.ObserveStep();

    for (QueryId id : ids) {
      const auto a = cached.EstimateRemainingTime(id);
      const auto b = uncached.EstimateRemainingTime(id);
      ASSERT_EQ(a.ok(), b.ok()) << "query " << id << " at step " << step;
      if (a.ok()) {
        // Exact equality: same inputs, same simulation, cache or not.
        ASSERT_EQ(*a, *b) << "query " << id << " at step " << step;
      }
    }
  }
  EXPECT_GT(pi_faults.total_fires(), 0u);
  EXPECT_GT(sched_faults.total_fires(), 0u);
}

// The full-stack soak: every fault point armed against a manual-mode
// service while random client traffic flows. Invariants checked on
// every published snapshot; afterwards the faults are disarmed and the
// system must drain to a clean, non-degraded final state.
TEST(ChaosSoakTest, ServiceSurvivesChaosAndRecovers) {
  storage::Catalog catalog;
  fault::FaultInjector injector(24680);
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.max_concurrent = 3;
  options.rdbms.cost_model.noise_sigma = 0.1;
  options.start_ticker = false;
  options.fault = &injector;
  options.max_queued_queries = 16;
  options.max_pending_arrivals = 8;
  options.stale_snapshot_quanta = 3;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession("chaos");

  injector.ArmProbability(fault::kSchedSpuriousAbort, 0.02);
  injector.ArmProbability(fault::kSchedAdmissionFlap, 0.02);
  injector.ArmProbability(fault::kSchedRateCollapse, 0.05, 0.1);
  injector.ArmProbability(fault::kSchedRateSpike, 0.05, 4.0);
  injector.ArmProbability(fault::kSchedQuantumStall, 0.03);
  injector.ArmProbability(fault::kSchedQuantumOvershoot, 0.03, 2.0);
  injector.ArmProbability(fault::kServicePublishDelay, 0.10);
  injector.ArmProbability(fault::kServiceSessionControlFail, 0.20);
  injector.ArmProbability(fault::kPiCacheInvalidate, 0.10);
  injector.ArmProbability(fault::kPiWindowCorrupt, 0.05,
                          std::numeric_limits<double>::quiet_NaN());

  const SimTime horizon = options.pi.multi.horizon;
  const auto check_snapshot = [&](const service::SnapshotPtr& snapshot) {
    ASSERT_NE(snapshot, nullptr);
    ASSERT_TRUE(std::isfinite(snapshot->measured_rate));
    ASSERT_GE(snapshot->measured_rate, 0.0);
    ASSERT_FALSE(std::isnan(snapshot->quiescent_eta));
    ASSERT_GE(snapshot->age_quanta, 0);
    for (const auto& row : snapshot->queries) {
      ASSERT_GE(row.fraction_done, 0.0) << "query " << row.id;
      ASSERT_LE(row.fraction_done, 1.0) << "query " << row.id;
      for (SimTime eta : {row.eta_single, row.eta_multi}) {
        ASSERT_FALSE(std::isnan(eta)) << "query " << row.id;
        // Finite non-negative, or an honest sentinel — never a finite
        // absurdity past the forecast horizon.
        ASSERT_TRUE(eta == kUnknown || eta == kInfiniteTime ||
                    (eta >= 0.0 && eta <= horizon))
            << "query " << row.id << " eta " << eta;
      }
    }
  };

  Rng rng(13579);
  std::vector<QueryId> ids;
  for (int step = 0; step < 600; ++step) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1: {  // submit (shedding is an acceptable answer)
        auto id = session->Submit(QuerySpec::Synthetic(
            rng.Uniform(10.0, 500.0)));
        if (id.ok()) ids.push_back(*id);
        break;
      }
      case 2: {  // scheduled arrival
        (void)session->SubmitAt(service.snapshot()->sim_time +
                                    rng.Uniform(0.1, 5.0),
                                QuerySpec::Synthetic(50.0));
        break;
      }
      case 3:
      case 4: {  // control ops (may fail by injected fault — fine)
        if (!ids.empty()) {
          const QueryId id = ids[static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(ids.size()) - 1))];
          switch (rng.UniformInt(0, 3)) {
            case 0: (void)session->Block(id); break;
            case 1: (void)session->Resume(id); break;
            case 2: (void)session->Abort(id); break;
            default:
              (void)session->SetPriority(
                  id, static_cast<Priority>(rng.UniformInt(0, 3)));
              break;
          }
        }
        break;
      }
      default: {  // advance one quantum
        ASSERT_TRUE(service.Advance(options.rdbms.quantum).ok());
        break;
      }
    }
    check_snapshot(service.snapshot());
  }
  EXPECT_GT(injector.total_fires(), 0u);

  // Recovery: disarm everything, heal the damage chaos may have left
  // (closed gate, blocked queries), and drain.
  injector.DisarmAll();
  service.SetAdmissionOpen(true);
  for (QueryId id : ids) (void)session->Resume(id);
  auto idle_at = service.AdvanceUntilIdle(/*deadline=*/100000.0);
  ASSERT_TRUE(idle_at.ok());

  const auto final_snapshot = service.snapshot();
  check_snapshot(final_snapshot);
  EXPECT_EQ(final_snapshot->age_quanta, 0);
  EXPECT_FALSE(final_snapshot->degraded);
  for (QueryId id : ids) {
    const auto* row = final_snapshot->Find(id);
    ASSERT_NE(row, nullptr);
    EXPECT_TRUE(row->terminal())
        << "query " << id << " stuck in "
        << sched::QueryStateName(row->state);
  }
}

}  // namespace
}  // namespace mqpi
