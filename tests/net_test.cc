// Network-layer tests: wire-format round-trip property tests (every
// encoded frame decodes byte-identically; truncated / oversized /
// bad-version input is rejected with a Status, never a crash), the
// snapshot fan-out (O(1) publish, per-subscriber delta encoding,
// bounded-queue shedding), the TCP server end to end, TSan-checked
// subscribe/unsubscribe churn during publication, and a chaos soak
// over the kNet* fault points with seed-replayable fire streams.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/planner.h"
#include "fault/fault_injector.h"
#include "net/client.h"
#include "net/conn.h"
#include "net/fanout.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

namespace mqpi::net {
namespace {

using engine::QuerySpec;
using service::PiService;
using service::PiServiceOptions;
using service::ProgressSnapshot;
using service::QueryProgress;
using service::SnapshotPtr;

PiServiceOptions ManualOptions() {
  PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  return options;
}

double RandomDouble(Rng* rng) {
  switch (rng->UniformInt(0, 5)) {
    case 0:
      return kUnknown;
    case 1:
      return kInfiniteTime;
    case 2:
      return std::numeric_limits<double>::quiet_NaN();
    case 3:
      return 0.0;
    default:
      return rng->Uniform(-1e6, 1e6);
  }
}

std::string RandomLabel(Rng* rng) {
  std::string label;
  const int len = static_cast<int>(rng->UniformInt(0, 24));
  for (int i = 0; i < len; ++i) {
    label += static_cast<char>(rng->UniformInt(32, 126));
  }
  return label;
}

QueryProgress RandomRow(Rng* rng) {
  QueryProgress row;
  row.id = static_cast<QueryId>(rng->UniformInt(0, 1 << 20));
  row.session_id = static_cast<std::uint64_t>(rng->UniformInt(0, 1 << 10));
  row.label = RandomLabel(rng);
  row.state = static_cast<sched::QueryState>(rng->UniformInt(0, 4));
  row.priority = static_cast<Priority>(rng->UniformInt(0, 3));
  row.weight = RandomDouble(rng);
  row.completed_work = RandomDouble(rng);
  row.remaining_cost = RandomDouble(rng);
  row.fraction_done = rng->NextDouble();
  row.speed = RandomDouble(rng);
  row.eta_single = RandomDouble(rng);
  row.eta_multi = RandomDouble(rng);
  row.queue_position = static_cast<int>(rng->UniformInt(-1, 64));
  row.arrival_time = RandomDouble(rng);
  row.start_time = RandomDouble(rng);
  row.finish_time = RandomDouble(rng);
  row.degraded = rng->UniformInt(0, 1) == 1;
  return row;
}

FrameBody RandomBody(Rng* rng) {
  switch (rng->UniformInt(0, 15)) {
    case 0: {
      SubmitRequest body;
      body.priority = static_cast<Priority>(rng->UniformInt(0, 3));
      body.is_sql = rng->UniformInt(0, 1) == 1;
      body.sql = RandomLabel(rng);
      body.synthetic_cost = RandomDouble(rng);
      body.label = RandomLabel(rng);
      return body;
    }
    case 1:
      return SubmitReply{static_cast<QueryId>(rng->UniformInt(0, 1 << 20))};
    case 2:
      return CancelRequest{static_cast<QueryId>(rng->UniformInt(0, 99))};
    case 3:
      return CancelReply{};
    case 4:
      return ProgressRequest{static_cast<QueryId>(rng->UniformInt(0, 99))};
    case 5: {
      ProgressReply body;
      body.sequence = static_cast<std::uint64_t>(rng->UniformInt(0, 1000));
      body.sim_time = RandomDouble(rng);
      body.row = RandomRow(rng);
      return body;
    }
    case 6:
      // Spans the merged scope (-1) and shard scopes, including ones no
      // real server would accept — the codec must carry them verbatim.
      return SubscribeRequest{
          static_cast<std::int32_t>(rng->UniformInt(-1, 8))};
    case 7:
      return SubscribeReply{
          static_cast<std::uint64_t>(rng->UniformInt(0, 1000))};
    case 8:
      return UnsubscribeRequest{};
    case 9:
      return UnsubscribeReply{};
    case 10: {
      WhatIfRequest body;
      body.target = static_cast<QueryId>(rng->UniformInt(0, 99));
      const int blocked = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < blocked; ++i) {
        body.blocked.push_back(static_cast<QueryId>(rng->UniformInt(0, 99)));
      }
      const int aborted = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < aborted; ++i) {
        body.aborted.push_back(static_cast<QueryId>(rng->UniformInt(0, 99)));
      }
      const int reweighted = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < reweighted; ++i) {
        body.reweighted.emplace_back(
            static_cast<QueryId>(rng->UniformInt(0, 99)),
            rng->Uniform(0.1, 8.0));
      }
      return body;
    }
    case 11:
      return WhatIfReply{RandomDouble(rng)};
    case 12:
      return PingRequest{rng->Next()};
    case 13:
      return PongReply{rng->Next()};
    case 14: {
      ErrorReply body;
      body.code = static_cast<StatusCode>(rng->UniformInt(1, 9));
      body.message = RandomLabel(rng);
      return body;
    }
    default: {
      SnapshotFrame body;
      body.sequence = static_cast<std::uint64_t>(rng->UniformInt(0, 1000));
      body.base_sequence =
          static_cast<std::uint64_t>(rng->UniformInt(0, 1000));
      body.sim_time = RandomDouble(rng);
      body.num_running = static_cast<std::int32_t>(rng->UniformInt(0, 40));
      body.num_queued = static_cast<std::int32_t>(rng->UniformInt(0, 40));
      body.num_blocked = static_cast<std::int32_t>(rng->UniformInt(0, 40));
      body.measured_rate = RandomDouble(rng);
      body.quiescent_eta = RandomDouble(rng);
      body.age_quanta = static_cast<std::int32_t>(rng->UniformInt(0, 9));
      body.degraded = rng->UniformInt(0, 1) == 1;
      const int rows = static_cast<int>(rng->UniformInt(0, 12));
      for (int i = 0; i < rows; ++i) body.rows.push_back(RandomRow(rng));
      body.total_rows = static_cast<std::uint32_t>(
          rng->UniformInt(rows, rows + 100));
      const int shard_loads = static_cast<int>(rng->UniformInt(0, 4));
      for (int i = 0; i < shard_loads; ++i) {
        service::ShardLoad load;
        load.shard = i;
        load.sequence = static_cast<std::uint64_t>(rng->UniformInt(0, 1000));
        load.sim_time = RandomDouble(rng);
        load.num_running = static_cast<int>(rng->UniformInt(0, 40));
        load.num_queued = static_cast<int>(rng->UniformInt(0, 40));
        load.measured_rate = RandomDouble(rng);
        load.quiescent_eta = RandomDouble(rng);
        load.degraded = rng->UniformInt(0, 1) == 1;
        body.shard_loads.push_back(load);
      }
      return body;
    }
  }
}

// A snapshot with synthetic rows, sorted by id (the invariant the
// delta encoder leans on).
SnapshotPtr MakeSnapshot(std::uint64_t sequence,
                         std::vector<QueryProgress> rows) {
  auto snapshot = std::make_shared<ProgressSnapshot>();
  snapshot->sequence = sequence;
  snapshot->sim_time = static_cast<double>(sequence) * 0.1;
  snapshot->queries = std::move(rows);
  return snapshot;
}

QueryProgress Row(QueryId id, double fraction) {
  QueryProgress row;
  row.id = id;
  row.state = sched::QueryState::kRunning;
  row.fraction_done = fraction;
  row.eta_multi = 10.0 * (1.0 - fraction);
  return row;
}

// ---- wire round-trip property tests -----------------------------------------

TEST(WireFormatTest, RandomFramesRoundTripByteIdentically) {
  Rng rng(0xC0FFEEu);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t request_id = rng.Next();
    const FrameBody body = RandomBody(&rng);
    const bool full = rng.UniformInt(0, 1) == 1;
    const std::string bytes = EncodeFrame(request_id, body, full);

    Frame decoded;
    std::size_t consumed = 0;
    Status error;
    const DecodeResult r = TryDecodeFrame(bytes.data(), bytes.size(),
                                          kMaxPayloadBytes, &decoded,
                                          &consumed, &error);
    ASSERT_EQ(r, DecodeResult::kFrame) << error.ToString();
    ASSERT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded.header.request_id, request_id);
    EXPECT_EQ(decoded.body.index(), body.index());

    // Re-encoding the decoded frame must reproduce the exact bytes —
    // byte-identity subsumes field-by-field equality (including NaN
    // payload bits).
    const std::string reencoded =
        EncodeFrame(decoded.header.request_id, decoded.body, full);
    EXPECT_EQ(reencoded, bytes);
  }
}

TEST(WireFormatTest, EveryTruncationReportsNeedMoreNeverCrashes) {
  Rng rng(0xBEEFu);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string bytes = EncodeFrame(rng.Next(), RandomBody(&rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      Frame decoded;
      std::size_t consumed = 0;
      Status error;
      const DecodeResult r = TryDecodeFrame(bytes.data(), cut,
                                            kMaxPayloadBytes, &decoded,
                                            &consumed, &error);
      ASSERT_EQ(r, DecodeResult::kNeedMore)
          << "cut=" << cut << " of " << bytes.size();
    }
  }
}

TEST(WireFormatTest, BadVersionFlagsTypeAndLengthAreStatusErrors) {
  const std::string good = EncodeFrame(7, FrameBody{PingRequest{42}});
  Frame decoded;
  std::size_t consumed = 0;
  Status error;

  std::string bad = good;
  bad[4] = 9;  // version
  EXPECT_EQ(TryDecodeFrame(bad.data(), bad.size(), kMaxPayloadBytes,
                           &decoded, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);

  bad = good;
  bad[6] = 1;  // flags must be zero
  EXPECT_EQ(TryDecodeFrame(bad.data(), bad.size(), kMaxPayloadBytes,
                           &decoded, &consumed, &error),
            DecodeResult::kError);

  bad = good;
  bad[5] = static_cast<char>(200);  // unknown frame type
  EXPECT_EQ(TryDecodeFrame(bad.data(), bad.size(), kMaxPayloadBytes,
                           &decoded, &consumed, &error),
            DecodeResult::kError);

  // Oversized declared length: rejected before any payload arrives.
  bad = good;
  const std::uint32_t huge = 1u << 30;
  std::memcpy(bad.data(), &huge, sizeof(huge));
  EXPECT_EQ(TryDecodeFrame(bad.data(), bad.size(), kMaxPayloadBytes,
                           &decoded, &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(error.code(), StatusCode::kOutOfRange);
}

TEST(WireFormatTest, CorruptPayloadsNeverCrash) {
  Rng rng(0xFADEDu);
  int errors = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string bytes = EncodeFrame(rng.Next(), RandomBody(&rng));
    // Flip a few bytes anywhere in the frame.
    const int flips = static_cast<int>(rng.UniformInt(1, 5));
    for (int i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    Frame decoded;
    std::size_t consumed = 0;
    Status error;
    const DecodeResult r = TryDecodeFrame(bytes.data(), bytes.size(),
                                          kMaxPayloadBytes, &decoded,
                                          &consumed, &error);
    if (r == DecodeResult::kError) {
      ++errors;
      EXPECT_FALSE(error.ok());
    }
  }
  EXPECT_GT(errors, 0);  // corruption is actually being detected
}

TEST(WireFormatTest, MultipleFramesDecodeInSequenceFromOneBuffer) {
  std::string stream;
  stream += EncodeFrame(1, FrameBody{PingRequest{11}});
  stream += EncodeFrame(2, FrameBody{CancelRequest{5}});
  stream += EncodeFrame(3, FrameBody{SubscribeRequest{}});

  std::size_t pos = 0;
  std::vector<std::uint64_t> ids;
  for (;;) {
    Frame decoded;
    std::size_t consumed = 0;
    Status error;
    const DecodeResult r =
        TryDecodeFrame(stream.data() + pos, stream.size() - pos,
                       kMaxPayloadBytes, &decoded, &consumed, &error);
    if (r != DecodeResult::kFrame) break;
    pos += consumed;
    ids.push_back(decoded.header.request_id);
  }
  EXPECT_EQ(pos, stream.size());
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
}

// ---- delta encoder ----------------------------------------------------------

TEST(DeltaEncoderTest, FirstContactIsFullThenOnlyChangedRows) {
  DeltaEncoder encoder;
  bool full = false;

  const auto s1 = MakeSnapshot(1, {Row(1, 0.1), Row(2, 0.5), Row(3, 0.9)});
  std::string f1 = encoder.Encode(s1, &full);
  EXPECT_TRUE(full);

  // Only row 2 changes.
  auto rows = s1->queries;
  rows[1].fraction_done = 0.6;
  const auto s2 = MakeSnapshot(2, rows);
  std::string f2 = encoder.Encode(s2, &full);
  EXPECT_FALSE(full);

  Frame decoded;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(f2.data(), f2.size(), kMaxPayloadBytes, &decoded,
                           &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(decoded.header.type, FrameType::kSnapshotDelta);
  const auto& frame = std::get<SnapshotFrame>(decoded.body);
  ASSERT_EQ(frame.rows.size(), 1u);
  EXPECT_EQ(frame.rows[0].id, 2u);
  EXPECT_EQ(frame.base_sequence, 1u);
  EXPECT_EQ(frame.total_rows, 3u);
  EXPECT_EQ(encoder.stats().rows_skipped, 2u);

  // Nothing changes: a header-only delta, never an empty string.
  const auto s3 = MakeSnapshot(3, rows);
  std::string f3 = encoder.Encode(s3, &full);
  EXPECT_FALSE(full);
  ASSERT_EQ(TryDecodeFrame(f3.data(), f3.size(), kMaxPayloadBytes, &decoded,
                           &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_TRUE(std::get<SnapshotFrame>(decoded.body).rows.empty());
}

TEST(DeltaEncoderTest, NewQueriesRideDeltasVanishedIdsForceFull) {
  DeltaEncoder encoder;
  bool full = false;

  const auto s1 = MakeSnapshot(1, {Row(1, 0.1), Row(2, 0.2)});
  encoder.Encode(s1, &full);

  // A new id appended: still a delta, carrying just the new row.
  const auto s2 =
      MakeSnapshot(2, {Row(1, 0.1), Row(2, 0.2), Row(7, 0.0)});
  std::string f2 = encoder.Encode(s2, &full);
  EXPECT_FALSE(full);
  Frame decoded;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(f2.data(), f2.size(), kMaxPayloadBytes, &decoded,
                           &consumed, &error),
            DecodeResult::kFrame);
  ASSERT_EQ(std::get<SnapshotFrame>(decoded.body).rows.size(), 1u);
  EXPECT_EQ(std::get<SnapshotFrame>(decoded.body).rows[0].id, 7u);

  // Id 2 vanishes (stream restart): full-frame fallback.
  const auto s3 = MakeSnapshot(3, {Row(1, 0.1), Row(7, 0.1)});
  encoder.Encode(s3, &full);
  EXPECT_TRUE(full);
}

TEST(DeltaEncoderTest, BitwiseComparisonTreatsNanAndInfSanely) {
  auto a = Row(1, 0.5);
  auto b = a;
  EXPECT_FALSE(DeltaEncoder::RowChanged(a, b));
  b.eta_multi = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(DeltaEncoder::RowChanged(a, b));
  a.eta_multi = b.eta_multi;
  // NaN == NaN bitwise: no spurious "changed" every tick.
  EXPECT_FALSE(DeltaEncoder::RowChanged(a, b));
  b.eta_single = kInfiniteTime;
  EXPECT_TRUE(DeltaEncoder::RowChanged(a, b));
}

TEST(DeltaEncoderTest, CoalescingSkippedSnapshotsYieldsNetDelta) {
  DeltaEncoder encoder;
  bool full = false;
  const auto s1 = MakeSnapshot(1, {Row(1, 0.1), Row(2, 0.2)});
  encoder.Encode(s1, &full);

  // The subscriber misses sequences 2..9; encoding 10 directly gives
  // one delta with the net change, based on sequence 1.
  auto rows = s1->queries;
  rows[0].fraction_done = 0.9;
  const auto s10 = MakeSnapshot(10, rows);
  std::string f = encoder.Encode(s10, &full);
  EXPECT_FALSE(full);
  Frame decoded;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(f.data(), f.size(), kMaxPayloadBytes, &decoded,
                           &consumed, &error),
            DecodeResult::kFrame);
  const auto& frame = std::get<SnapshotFrame>(decoded.body);
  EXPECT_EQ(frame.base_sequence, 1u);
  EXPECT_EQ(frame.sequence, 10u);
  ASSERT_EQ(frame.rows.size(), 1u);
  EXPECT_EQ(frame.rows[0].id, 1u);
}

// ---- snapshot view (client-side merge) --------------------------------------

TEST(SnapshotViewTest, FullThenDeltasRebuildTheSnapshot) {
  DeltaEncoder encoder;
  SnapshotView view;
  auto apply = [&](const SnapshotPtr& snapshot) {
    bool full = false;
    const std::string bytes = encoder.Encode(snapshot, &full);
    Frame decoded;
    std::size_t consumed = 0;
    Status error;
    ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), kMaxPayloadBytes,
                             &decoded, &consumed, &error),
              DecodeResult::kFrame);
    ASSERT_TRUE(view.Apply(std::get<SnapshotFrame>(decoded.body), full).ok());
  };

  apply(MakeSnapshot(1, {Row(1, 0.1), Row(2, 0.2)}));
  EXPECT_EQ(view.sequence(), 1u);
  EXPECT_EQ(view.rows(), 2u);

  auto rows = std::vector<QueryProgress>{Row(1, 0.5), Row(2, 0.2),
                                         Row(3, 0.0)};
  apply(MakeSnapshot(2, rows));
  EXPECT_EQ(view.sequence(), 2u);
  EXPECT_EQ(view.rows(), 3u);
  ASSERT_NE(view.Find(1), nullptr);
  EXPECT_DOUBLE_EQ(view.Find(1)->fraction_done, 0.5);
  EXPECT_EQ(view.deltas_applied(), 1u);
}

TEST(SnapshotViewTest, GapInDeltaStreamIsRejected) {
  SnapshotView view;
  SnapshotFrame full;
  full.sequence = 5;
  full.total_rows = 0;
  ASSERT_TRUE(view.Apply(full, /*is_full=*/true).ok());

  SnapshotFrame delta;
  delta.sequence = 9;
  delta.base_sequence = 8;  // view holds 5 — a gap
  delta.total_rows = 0;
  const Status status = view.Apply(delta, /*is_full=*/false);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

// ---- fan-out hub ------------------------------------------------------------

TEST(SnapshotFanoutTest, PublishCostIsIndependentOfSubscriberCount) {
  service::MetricsRegistry registry;
  NetMetrics metrics(&registry);
  SnapshotFanout fanout;
  SubscriberPool::Options options;
  options.threads = 2;
  SubscriberPool pool(&fanout, &metrics, options);
  pool.Start();

  auto ops_per_publish = [&](int subscribers, int publishes) {
    std::vector<std::shared_ptr<Subscription>> subs;
    for (int i = 0; i < subscribers; ++i) subs.push_back(pool.Subscribe());
    const std::uint64_t ops0 = fanout.publish_ops();
    const std::uint64_t pubs0 = fanout.publishes();
    for (int i = 0; i < publishes; ++i) {
      fanout.Publish(MakeSnapshot(fanout.epoch() + 1, {Row(1, 0.1)}));
    }
    const double ops = static_cast<double>(fanout.publish_ops() - ops0);
    const double pubs = static_cast<double>(fanout.publishes() - pubs0);
    for (auto& sub : subs) pool.Unsubscribe(sub);
    return ops / pubs;
  };

  const double small = ops_per_publish(1, 50);
  const double large = ops_per_publish(512, 50);
  // O(1): per-publish op count identical at 1 and 512 subscribers.
  EXPECT_DOUBLE_EQ(small, large);
  pool.Stop();
}

TEST(SnapshotFanoutTest, SubscribersReceiveEveryPublishOrCoalesced) {
  service::MetricsRegistry registry;
  NetMetrics metrics(&registry);
  SnapshotFanout fanout;
  SubscriberPool::Options options;
  options.threads = 1;
  SubscriberPool pool(&fanout, &metrics, options);
  pool.Start();

  auto sub = pool.Subscribe();
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    fanout.Publish(MakeSnapshot(seq, {Row(1, 0.01 * seq)}));
  }
  // Wait until the pool has delivered the newest sequence.
  LocalSubscriber consumer(sub);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (consumer.view().sequence() < 20 &&
         std::chrono::steady_clock::now() < deadline) {
    consumer.Pump();
    std::this_thread::yield();
  }
  EXPECT_EQ(consumer.view().sequence(), 20u);
  EXPECT_EQ(consumer.view().rows(), 1u);
  // Coalescing means <= 20 frames were materialized for this consumer.
  EXPECT_LE(consumer.view().fulls_applied() + consumer.view().deltas_applied(),
            20u);
  pool.Unsubscribe(sub);
  pool.Stop();
}

TEST(SnapshotFanoutTest, PublishWallNsStampsAreReadable) {
  SnapshotFanout fanout;
  fanout.Publish(MakeSnapshot(41, {}));
  fanout.Publish(MakeSnapshot(42, {}));
  EXPECT_GT(fanout.PublishWallNs(42), 0);
  EXPECT_GT(fanout.PublishWallNs(41), 0);
  EXPECT_EQ(fanout.PublishWallNs(40), 0);  // never published
}

// ---- bounded-queue shedding -------------------------------------------------

TEST(SubscriptionShedTest, OverflowClearsQueueAndLeavesErrorGoodbye) {
  service::MetricsRegistry registry;
  NetMetrics metrics(&registry);
  Subscription::Options options;
  options.max_queued_frames = 4;
  Subscription subscription(options);

  // Nobody drains: the 5th delivery overflows and sheds.
  bool shed_seen = false;
  for (std::uint64_t seq = 1; seq <= 8; ++seq) {
    if (!subscription.Deliver(MakeSnapshot(seq, {Row(1, 0.1 * seq)}),
                              &metrics)) {
      shed_seen = true;
      break;
    }
  }
  ASSERT_TRUE(shed_seen);
  EXPECT_TRUE(subscription.shed());
  EXPECT_EQ(metrics.slow_consumers_shed->value(), 1u);

  // The queue holds exactly one frame: the kResourceExhausted goodbye.
  std::string bytes;
  ASSERT_TRUE(subscription.TryPop(&bytes));
  Frame decoded;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), kMaxPayloadBytes,
                           &decoded, &consumed, &error),
            DecodeResult::kFrame);
  const auto* goodbye = std::get_if<ErrorReply>(&decoded.body);
  ASSERT_NE(goodbye, nullptr);
  EXPECT_EQ(goodbye->code, StatusCode::kResourceExhausted);
  EXPECT_FALSE(subscription.TryPop(&bytes));
  // Deliveries after the shed are refused.
  EXPECT_FALSE(subscription.Deliver(MakeSnapshot(9, {}), &metrics));
}

TEST(SubscriptionShedTest, PoolShedsStalledConsumerAndOthersKeepFlowing) {
  service::MetricsRegistry registry;
  NetMetrics metrics(&registry);
  SnapshotFanout fanout;
  SubscriberPool::Options options;
  options.threads = 1;
  options.subscription.max_queued_frames = 4;
  SubscriberPool pool(&fanout, &metrics, options);
  pool.Start();

  auto victim = pool.Subscribe();
  auto healthy = pool.Subscribe();
  victim->StallPops(1 << 20);  // the consumer goes deaf
  LocalSubscriber healthy_consumer(healthy);

  for (std::uint64_t seq = 1; seq <= 64 && !victim->shed(); ++seq) {
    fanout.Publish(MakeSnapshot(seq, {Row(1, 0.01 * seq)}));
    healthy_consumer.Pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!victim->shed() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(victim->shed());
  EXPECT_GE(metrics.slow_consumers_shed->value(), 1u);

  // The healthy consumer still converges on the latest sequence.
  fanout.Publish(MakeSnapshot(100, {Row(1, 0.99)}));
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (healthy_consumer.view().sequence() < 100 &&
         std::chrono::steady_clock::now() < deadline2) {
    healthy_consumer.Pump();
    std::this_thread::yield();
  }
  EXPECT_EQ(healthy_consumer.view().sequence(), 100u);
  pool.Unsubscribe(healthy);
  pool.Stop();
}

// ---- concurrency (the TSan-label suite) -------------------------------------

TEST(FanoutConcurrencyTest, ChurnDuringPublicationIsRaceFree) {
  service::MetricsRegistry registry;
  NetMetrics metrics(&registry);
  SnapshotFanout fanout;
  SubscriberPool::Options options;
  options.threads = 3;
  SubscriberPool pool(&fanout, &metrics, options);
  pool.Start();

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      fanout.Publish(MakeSnapshot(++seq, {Row(1, 0.5), Row(2, 0.25)}));
    }
  });

  // Churners subscribe, pump a little, and unsubscribe, mid-publish.
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&, t] {
      Rng rng(1000u + static_cast<std::uint64_t>(t));
      for (int round = 0; round < 200; ++round) {
        auto sub = pool.Subscribe();
        LocalSubscriber consumer(sub);
        const int pumps = static_cast<int>(rng.UniformInt(0, 8));
        for (int i = 0; i < pumps; ++i) consumer.Pump();
        if (rng.UniformInt(0, 1) == 0) {
          pool.Unsubscribe(sub);
        } else {
          sub->Cancel();  // lazy sweep removal path
        }
      }
    });
  }
  for (auto& churner : churners) churner.join();
  stop.store(true, std::memory_order_release);
  publisher.join();
  pool.Stop();
}

TEST(FanoutConcurrencyTest, StopWithLiveSubscribersIsClean) {
  service::MetricsRegistry registry;
  NetMetrics metrics(&registry);
  SnapshotFanout fanout;
  SubscriberPool pool(&fanout, &metrics);
  pool.Start();
  std::vector<std::shared_ptr<Subscription>> subs;
  for (int i = 0; i < 32; ++i) subs.push_back(pool.Subscribe());
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    fanout.Publish(MakeSnapshot(seq, {Row(1, 0.1)}));
  }
  // Let the workers actually deliver before stopping, so the test also
  // covers "stop with queued frames still unconsumed".
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (subs[0]->delivered_sequence() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  pool.Stop();  // live subscriptions still registered: must not hang
  // Subscriptions stay poppable after the pool is gone.
  std::string bytes;
  EXPECT_TRUE(subs[0]->TryPop(&bytes));
}

TEST(ServerConcurrencyTest, TcpSubscribersDuringTickerPublishes) {
  storage::Catalog catalog;
  PiServiceOptions options = ManualOptions();
  options.start_ticker = true;  // live ticker: publishes race the churn
  options.time_scale = 0.0;
  PiService service(&catalog, options);
  PiServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  auto session = service.OpenSession("loadgen");
  for (int i = 0; i < 8; ++i) {
    (void)session->Submit(QuerySpec::Synthetic(400.0 + 10.0 * i));
  }

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        auto client = Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (!(*client)->Ping().ok() || !(*client)->Subscribe().ok()) {
          failures.fetch_add(1);
          return;
        }
        auto sequence = (*client)->WaitForSequence(1, 5.0);
        if (!sequence.ok()) failures.fetch_add(1);
        if (round % 2 == 0) (void)(*client)->Unsubscribe();
        // Destructor closes mid-stream on odd rounds: the server must
        // reap the connection without disturbing others.
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  session->Close();
  server.Stop();
  service.Stop();
}

// ---- TCP end to end ---------------------------------------------------------

class TcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<PiService>(&catalog_, ManualOptions());
    server_ = std::make_unique<PiServer>(service_.get());
    ASSERT_TRUE(server_->Start().ok());
    auto client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(client).value();
  }

  void TearDown() override {
    client_.reset();
    server_->Stop();
    service_.reset();
  }

  storage::Catalog catalog_;
  std::unique_ptr<PiService> service_;
  std::unique_ptr<PiServer> server_;
  std::unique_ptr<Client> client_;
};

TEST_F(TcpServerTest, PingSubmitProgressCancelRoundTrip) {
  ASSERT_TRUE(client_->Ping().ok());

  auto id = client_->SubmitSynthetic(500.0);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  service_->PublishNow();

  auto progress = client_->Progress(*id);
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress->row.id, *id);
  EXPECT_TRUE(progress->row.state == sched::QueryState::kRunning ||
              progress->row.state == sched::QueryState::kQueued);
  EXPECT_DOUBLE_EQ(progress->row.fraction_done, 0.0);

  // Progress on an unknown id: a Status error, connection survives.
  auto missing = client_->Progress(999999);
  EXPECT_FALSE(missing.ok());
  ASSERT_TRUE(client_->Ping().ok());

  ASSERT_TRUE(client_->Cancel(*id).ok());
  service_->PublishNow();
  auto after = client_->Progress(*id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->row.state, sched::QueryState::kAborted);
}

TEST_F(TcpServerTest, SqlSubmissionPlansServerSide) {
  auto id = client_->SubmitSql(
      "select count(*) from lineitem where l.quantity > 25");
  // The empty test catalog has no lineitem: either parse or plan may
  // reject it, but always as a Status — never a torn connection.
  if (!id.ok()) {
    EXPECT_NE(id.status().code(), StatusCode::kOk);
  }
  ASSERT_TRUE(client_->Ping().ok());

  auto bad = client_->SubmitSql("selekt garbage frum nowhere");
  EXPECT_FALSE(bad.ok());
  ASSERT_TRUE(client_->Ping().ok());
}

TEST_F(TcpServerTest, SubscribePushesFullThenDeltas) {
  auto a = client_->SubmitSynthetic(300.0);
  auto b = client_->SubmitSynthetic(700.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  service_->PublishNow();
  const std::uint64_t base = service_->snapshot()->sequence;

  ASSERT_TRUE(client_->Subscribe().ok());
  auto seq = client_->WaitForSequence(base, 5.0);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(client_->view().rows(), 2u);
  EXPECT_EQ(client_->view().fulls_applied(), 1u);

  // Advance simulated time: the subscriber's view converges onto the
  // service's own snapshot through delta frames alone.
  for (int tick = 0; tick < 5; ++tick) {
    ASSERT_TRUE(service_->Advance(0.1).ok());
  }
  const auto latest = service_->snapshot();
  auto final_seq = client_->WaitForSequence(latest->sequence, 5.0);
  ASSERT_TRUE(final_seq.ok()) << final_seq.status().ToString();
  EXPECT_GE(client_->view().deltas_applied(), 1u);

  for (const auto& row : latest->queries) {
    const auto* got = client_->view().Find(row.id);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(got->fraction_done, row.fraction_done);
    EXPECT_EQ(got->state, row.state);
  }

  ASSERT_TRUE(client_->Unsubscribe().ok());
}

TEST_F(TcpServerTest, WhatIfAnswersOverTheWire) {
  auto target = client_->SubmitSynthetic(500.0);
  auto rival = client_->SubmitSynthetic(500.0);
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(rival.ok());
  ASSERT_TRUE(service_->Advance(0.1).ok());

  WhatIfRequest baseline;
  baseline.target = *target;
  auto eta_shared = client_->WhatIf(baseline);
  ASSERT_TRUE(eta_shared.ok()) << eta_shared.status().ToString();

  WhatIfRequest solo;
  solo.target = *target;
  solo.aborted.push_back(*rival);
  auto eta_solo = client_->WhatIf(solo);
  ASSERT_TRUE(eta_solo.ok()) << eta_solo.status().ToString();
  // Killing the rival can only help the target.
  EXPECT_LE(*eta_solo, *eta_shared + 1e-9);

  WhatIfRequest absurd;
  absurd.target = 424242;
  EXPECT_FALSE(client_->WhatIf(absurd).ok());
}

TEST_F(TcpServerTest, GarbageBytesGetErrorFrameThenClose) {
  // Speak raw garbage on a fresh socket.
  auto raw = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  std::string garbage(64, '\xFF');
  // Reuse Call's plumbing is impossible (it frames correctly), so poke
  // the view: send via a throwaway Ping first to prove liveness, then
  // the garbage through the public API is not expressible — use a
  // second socket directly instead.
  ASSERT_TRUE((*raw)->Ping().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_GT(::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL), 0);
  // The server answers with one ERROR frame and closes.
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  Frame decoded;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(TryDecodeFrame(reply.data(), reply.size(), kMaxPayloadBytes,
                           &decoded, &consumed, &error),
            DecodeResult::kFrame);
  const auto* goodbye = std::get_if<ErrorReply>(&decoded.body);
  ASSERT_NE(goodbye, nullptr);
  EXPECT_FALSE(goodbye->ToStatus().ok());
  // The well-behaved connection was untouched.
  EXPECT_TRUE((*raw)->Ping().ok());
}

TEST_F(TcpServerTest, ConnectionMetricsTrackLifecycles) {
  // A round trip guarantees the loop has accepted SetUp's connection.
  ASSERT_TRUE(client_->Ping().ok());
  EXPECT_EQ(server_->metrics()->connections->value(), 1.0);
  {
    auto second = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE((*second)->Ping().ok());
    EXPECT_EQ(server_->metrics()->connections->value(), 2.0);
  }
  // Destructor closed the socket; the loop reaps it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->metrics()->connections->value() > 1.0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->metrics()->connections->value(), 1.0);
  // One PONG went out (SetUp's client never spoke).
  EXPECT_GE(server_->metrics()->frames_sent->value(), 1u);
  EXPECT_GE(server_->metrics()->bytes_sent->value(), kFrameHeaderBytes);
}

// ---- publish hook -----------------------------------------------------------

TEST(PublishHookTest, HookSeesEveryPublishAndDetachesCleanly) {
  storage::Catalog catalog;
  PiService service(&catalog, ManualOptions());
  std::vector<std::uint64_t> seen;
  service.SetPublishHook([&](const SnapshotPtr& snapshot) {
    seen.push_back(snapshot->sequence);
  });
  auto session = service.OpenSession();
  (void)session->Submit(QuerySpec::Synthetic(100.0));
  service.PublishNow();
  ASSERT_TRUE(service.Advance(0.3).ok());
  ASSERT_FALSE(seen.empty());
  // Strictly increasing by 1: the hook never misses or reorders.
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 1);
  }
  service.SetPublishHook(nullptr);
  const auto count = seen.size();
  service.PublishNow();
  EXPECT_EQ(seen.size(), count);  // detached
}

// ---- chaos (deterministic fault injection) ----------------------------------

TEST(NetChaosTest, SlowConsumerFaultStreamIsSeedReplayable) {
  // Drive Subscription + injector by hand: with the same seed the
  // kNetSlowConsumer stream must stall the same delivery indices, so
  // the shed lands on the same publish in both runs.
  auto run = [](std::uint64_t seed) {
    fault::FaultInjector injector(seed);
    injector.ArmProbability(fault::kNetSlowConsumer, 0.2);
    service::MetricsRegistry registry;
    NetMetrics metrics(&registry);
    Subscription::Options options;
    options.max_queued_frames = 3;
    Subscription subscription(options);
    int shed_at = -1;
    std::string bytes;
    for (int i = 0; i < 200; ++i) {
      if (injector.ShouldFire(fault::kNetSlowConsumer)) {
        subscription.StallPops(2);
      }
      if (!subscription.Deliver(
              MakeSnapshot(static_cast<std::uint64_t>(i + 1),
                           {Row(1, 0.001 * i)}),
              &metrics)) {
        shed_at = i;
        break;
      }
      (void)subscription.TryPop(&bytes);  // drains unless stalled
    }
    return shed_at;
  };
  const int first = run(0xABCDEFu);
  const int second = run(0xABCDEFu);
  EXPECT_EQ(first, second);
  EXPECT_GE(first, 0);  // the fault actually drove a shed
  // A different seed gives a different (still deterministic) story.
  const int other = run(0x123456u);
  EXPECT_EQ(other, run(0x123456u));
}

TEST(NetChaosTest, ServerSurvivesAllNetFaultsUnderLoad) {
  fault::FaultInjector injector(0xC4A05u);
  injector.ArmProbability(fault::kNetAcceptFail, 0.15);
  injector.ArmProbability(fault::kNetPartialWrite, 0.3, /*value=*/3);
  injector.ArmProbability(fault::kNetSlowConsumer, 0.05);
  injector.ArmProbability(fault::kNetConnDrop, 0.05);

  storage::Catalog catalog;
  PiServiceOptions options = ManualOptions();
  options.fault = &injector;
  PiService service(&catalog, options);
  PiServerOptions server_options;
  server_options.fault = &injector;
  server_options.write_queue_max_frames = 8;
  PiServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto session = service.OpenSession("chaos-load");
  for (int i = 0; i < 6; ++i) {
    (void)session->Submit(QuerySpec::Synthetic(200.0 + 25.0 * i));
  }

  // Clients hammer the server while faults fire; every outcome must be
  // a Status or a closed connection — never a crash or a hang.
  int ok_rounds = 0;
  for (int round = 0; round < 30; ++round) {
    auto client = Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) continue;  // accept faults legitimately refuse
    bool alive = (*client)->Ping().ok();
    if (alive && (*client)->Subscribe().ok()) {
      (void)(*client)->WaitForSequence(service.snapshot()->sequence, 1.0);
    }
    ASSERT_TRUE(service.Advance(0.1).ok());
    if (alive) ++ok_rounds;
  }
  EXPECT_GT(ok_rounds, 0);

  // In-process subscribers take kNetSlowConsumer / kNetConnDrop hits.
  std::vector<std::shared_ptr<Subscription>> subs;
  for (int i = 0; i < 16; ++i) subs.push_back(server.pool()->Subscribe());
  for (int tick = 0; tick < 40; ++tick) {
    ASSERT_TRUE(service.Advance(0.1).ok());
  }

  injector.DisarmAll();
  // Drain back to health: new clients work, estimates stay sane.
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  for (const auto& row : service.snapshot()->queries) {
    EXPECT_FALSE(std::isnan(row.fraction_done));
  }
  EXPECT_GT(injector.total_fires(), 0u);

  session->Close();
  server.Stop();
}

}  // namespace
}  // namespace mqpi::net
