#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"
#include "sim/runner.h"
#include "storage/tpcr_gen.h"
#include "workload/arrival_schedule.h"
#include "workload/zipf_workload.h"

namespace mqpi {
namespace {

using engine::QuerySpec;

// ---- SeriesTable ----------------------------------------------------------------

TEST(SeriesTableTest, TextRenderingAligned) {
  sim::SeriesTable table("demo", "x", {"a", "bb"});
  table.AddRow(1.0, {2.0, 3.5});
  table.AddRow(10.0, {20.25, kUnknown});
  std::ostringstream os;
  table.PrintText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_NE(out.find("20.25"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);  // kUnknown renders as -
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(SeriesTableTest, CsvRendering) {
  sim::SeriesTable table("demo", "lambda", {"err"});
  table.AddRow(0.05, {0.125});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "lambda,err\n0.05,0.125\n");
}

TEST(SeriesTableTest, InfinityRenders) {
  sim::SeriesTable table("demo", "x", {"y"});
  table.AddRow(1.0, {kInfiniteTime});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_NE(os.str().find("inf"), std::string::npos);
}

// ---- ZipfWorkload ----------------------------------------------------------------

class ZipfWorkloadTest : public ::testing::Test {
 protected:
  ZipfWorkloadTest()
      : generator_({.num_part_keys = 500, .matches_per_key = 6, .seed = 3}),
        workload_(&catalog_, &generator_,
                  {.max_rank = 5, .a = 2.0, .n_scale = 2}) {}

  storage::Catalog catalog_;
  storage::TpcrGenerator generator_;
  workload::ZipfWorkload workload_;
};

TEST_F(ZipfWorkloadTest, MaterializesAllTables) {
  ASSERT_TRUE(workload_.MaterializeTables().ok());
  EXPECT_TRUE(catalog_.GetTable("lineitem").ok());
  for (int rank = 1; rank <= 5; ++rank) {
    auto table = catalog_.GetTable(
        storage::TpcrGenerator::PartTableName(rank));
    ASSERT_TRUE(table.ok()) << "rank " << rank;
    // part_rank has 10 * n_scale * rank tuples.
    EXPECT_EQ((*table)->num_tuples(),
              static_cast<std::size_t>(10 * 2 * rank));
  }
  // Idempotent.
  EXPECT_TRUE(workload_.MaterializeTables().ok());
}

TEST_F(ZipfWorkloadTest, RanksWithinRangeAndZipfShaped) {
  ASSERT_TRUE(workload_.MaterializeTables().ok());
  Rng rng(17);
  int count_rank1 = 0;
  for (int i = 0; i < 4000; ++i) {
    const int rank = workload_.SampleRank(&rng);
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, 5);
    if (rank == 1) ++count_rank1;
  }
  // P(rank=1) for Zipf(2.0, n=5) ~ 1/1.4636 ~ 0.683.
  EXPECT_NEAR(count_rank1 / 4000.0, workload_.RankProbability(1), 0.03);
}

TEST_F(ZipfWorkloadTest, TrueCostsCachedAndMonotone) {
  ASSERT_TRUE(workload_.MaterializeTables().ok());
  storage::BufferManager buffers;
  engine::Planner planner(&catalog_, &buffers, {.noise_sigma = 0.0});
  auto c1 = workload_.TrueCostOfRank(&planner, 1);
  auto c5 = workload_.TrueCostOfRank(&planner, 5);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c5.ok());
  EXPECT_GT(*c5, *c1);  // bigger part table, bigger query
  // Cached: identical on re-query.
  EXPECT_DOUBLE_EQ(*workload_.TrueCostOfRank(&planner, 1), *c1);
  EXPECT_TRUE(workload_.TrueCostOfRank(&planner, 9).status()
                  .IsInvalidArgument());
}

TEST_F(ZipfWorkloadTest, AverageCostIsProbabilityWeighted) {
  ASSERT_TRUE(workload_.MaterializeTables().ok());
  storage::BufferManager buffers;
  engine::Planner planner(&catalog_, &buffers, {.noise_sigma = 0.0});
  auto avg = workload_.AverageTrueCost(&planner);
  ASSERT_TRUE(avg.ok());
  double expected = 0.0;
  for (int rank = 1; rank <= 5; ++rank) {
    expected += workload_.RankProbability(rank) *
                *workload_.TrueCostOfRank(&planner, rank);
  }
  EXPECT_NEAR(*avg, expected, 1e-9);
  // Average sits between the extremes.
  EXPECT_GT(*avg, *workload_.TrueCostOfRank(&planner, 1));
  EXPECT_LT(*avg, *workload_.TrueCostOfRank(&planner, 5));
}

// ---- arrival schedule ---------------------------------------------------------------

TEST_F(ZipfWorkloadTest, PoissonArrivalsRespectHorizonAndRate) {
  ASSERT_TRUE(workload_.MaterializeTables().ok());
  Rng rng(23);
  const auto schedule =
      workload::GeneratePoissonArrivals(workload_, 0.5, 2000.0, &rng);
  ASSERT_FALSE(schedule.empty());
  double prev = 0.0;
  for (const auto& arrival : schedule) {
    EXPECT_GT(arrival.time, prev);
    EXPECT_LT(arrival.time, 2000.0);
    EXPECT_GE(arrival.rank, 1);
    EXPECT_LE(arrival.rank, 5);
    prev = arrival.time;
  }
  // ~lambda * horizon arrivals.
  EXPECT_NEAR(static_cast<double>(schedule.size()), 1000.0, 150.0);
}

TEST_F(ZipfWorkloadTest, ZeroRateMeansNoArrivals) {
  Rng rng(29);
  EXPECT_TRUE(
      workload::GeneratePoissonArrivals(workload_, 0.0, 100.0, &rng)
          .empty());
}

// ---- SimulationRunner ---------------------------------------------------------------

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() {
    options_.processing_rate = 100.0;
    options_.quantum = 0.1;
    options_.cost_model.noise_sigma = 0.0;
    db_ = std::make_unique<sched::Rdbms>(&catalog_, options_);
    runner_ = std::make_unique<sim::SimulationRunner>(db_.get());
  }
  storage::Catalog catalog_;
  sched::RdbmsOptions options_;
  std::unique_ptr<sched::Rdbms> db_;
  std::unique_ptr<sim::SimulationRunner> runner_;
};

TEST_F(RunnerTest, SubmitsScheduledArrivalsOnTime) {
  runner_->ScheduleArrival(1.0, QuerySpec::Synthetic(50.0));
  runner_->ScheduleArrival(2.5, QuerySpec::Synthetic(50.0));
  runner_->StepFor(0.5);
  EXPECT_EQ(db_->AllQueries().size(), 0u);
  runner_->StepFor(1.0);  // now at 1.5
  ASSERT_EQ(db_->AllQueries().size(), 1u);
  EXPECT_NEAR(db_->AllQueries()[0].arrival_time, 1.0, 0.11);
  runner_->RunUntilIdle();
  EXPECT_EQ(db_->AllQueries().size(), 2u);
  EXPECT_EQ(runner_->submitted().size(), 2u);
}

TEST_F(RunnerTest, RunUntilFinishedWatchesTargets) {
  auto a = runner_->SubmitNow(QuerySpec::Synthetic(100.0));
  auto b = runner_->SubmitNow(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(b.ok());
  runner_->RunUntilFinished({*a});
  EXPECT_EQ(db_->info(*a)->state, sched::QueryState::kFinished);
  EXPECT_EQ(db_->info(*b)->state, sched::QueryState::kRunning);
}

TEST_F(RunnerTest, RunUntilIdleWaitsForFutureArrivals) {
  runner_->ScheduleArrival(3.0, QuerySpec::Synthetic(100.0));
  runner_->RunUntilIdle();
  EXPECT_GE(db_->now(), 4.0 - 0.2);  // arrival at 3 + 1 s execution
  EXPECT_TRUE(db_->Idle());
}

TEST_F(RunnerTest, FinishTimeOfReportsTerminals) {
  auto a = runner_->SubmitNow(QuerySpec::Synthetic(100.0));
  EXPECT_EQ(runner_->FinishTimeOf(*a), kUnknown);
  runner_->RunUntilIdle();
  EXPECT_NEAR(runner_->FinishTimeOf(*a), 1.0, 0.11);
  EXPECT_EQ(runner_->FinishTimeOf(999), kUnknown);
}

TEST_F(RunnerTest, DeadlineBoundsRun) {
  runner_->SubmitNow(QuerySpec::Synthetic(10000.0));
  const SimTime end = runner_->RunUntilIdle(5.0);
  EXPECT_NEAR(end, 5.0, 0.2);
  EXPECT_FALSE(db_->Idle());
}

// ---- determinism ---------------------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  // Two complete simulations with the same seed must agree exactly on
  // every finish time — the property all multi-run experiments rely on.
  auto run = [](std::uint64_t seed) {
    storage::Catalog catalog;
    storage::TpcrGenerator generator(
        {.num_part_keys = 400, .matches_per_key = 5, .seed = 11});
    workload::ZipfWorkload workload(&catalog, &generator,
                                    {.max_rank = 4, .a = 1.5, .n_scale = 2});
    EXPECT_TRUE(workload.MaterializeTables().ok());
    sched::RdbmsOptions options;
    options.processing_rate = 200.0;
    options.quantum = 0.1;
    options.cost_model.noise_sigma = 0.3;
    options.cost_model.noise_seed = seed;
    sched::Rdbms db(&catalog, options);
    sim::SimulationRunner runner(&db);
    Rng rng(seed);
    std::vector<QueryId> ids;
    for (int i = 0; i < 5; ++i) {
      auto id = runner.SubmitNow(workload.SampleSpec(&rng));
      ids.push_back(*id);
    }
    runner.RunUntilIdle();
    std::vector<double> finishes;
    for (QueryId id : ids) finishes.push_back(db.info(id)->finish_time);
    return finishes;
  };
  const auto a = run(77);
  const auto b = run(77);
  const auto c = run(78);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << i;
  }
  // A different seed should give a different trajectory.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != c[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace mqpi
