// Service-layer tests: metrics registry, manual-mode session
// lifecycle, ownership and admission accounting, scheduled-traffic
// replay, and the multi-threaded stress test that the TSan build
// (`-DMQPI_SANITIZE=thread`, ctest label "sanitize") runs to prove the
// snapshot publication scheme is race- and deadlock-free: N client
// threads submit and control queries while M reader threads poll
// Progress() flat out, and shutdown is clean with queries still
// running.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "engine/planner.h"
#include "service/metrics.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "service/traffic.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"
#include "workload/arrival_schedule.h"
#include "workload/zipf_workload.h"

namespace mqpi::service {
namespace {

using engine::QuerySpec;

PiServiceOptions ManualOptions() {
  PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  return options;
}

// A time/estimate value a snapshot may legally carry: the kUnknown
// sentinel, or a non-negative (possibly infinite) number — never NaN,
// never torn garbage.
bool LegalEta(SimTime eta) {
  return eta == kUnknown || (!std::isnan(eta) && eta >= 0.0);
}

// ---- metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* submits = registry.counter("submits");
  submits->Increment();
  submits->Increment(4);
  EXPECT_EQ(submits->value(), 5u);
  // Same name -> same instrument.
  EXPECT_EQ(registry.counter("submits"), submits);

  registry.gauge("running")->Set(3.0);
  EXPECT_EQ(registry.gauge("running")->value(), 3.0);

  Histogram* latency = registry.histogram("step_ms");
  latency->Observe(0.5);
  latency->Observe(2.0);
  latency->Observe(100.0);
  EXPECT_EQ(latency->count(), 3u);
  EXPECT_DOUBLE_EQ(latency->sum(), 102.5);
  EXPECT_DOUBLE_EQ(latency->max(), 100.0);
  EXPECT_GT(latency->Quantile(0.99), latency->Quantile(0.01));
}

TEST(MetricsTest, TextDumpContainsAllInstruments) {
  MetricsRegistry registry;
  registry.counter("service.submits")->Increment(7);
  registry.gauge("queries.running")->Set(2);
  registry.histogram("step.wall_ms")->Observe(1.5);
  const std::string dump = registry.TextDump();
  EXPECT_NE(dump.find("counter   service.submits 7"), std::string::npos);
  EXPECT_NE(dump.find("gauge     queries.running 2"), std::string::npos);
  EXPECT_NE(dump.find("histogram step.wall_ms count=1"), std::string::npos);
}

TEST(MetricsTest, HistogramTracksMinAndRendersIt) {
  Histogram histogram;
  histogram.Observe(3.0);
  histogram.Observe(0.5);
  histogram.Observe(12.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 12.0);
  EXPECT_NE(histogram.Render().find("min=0.5"), std::string::npos);
  // Empty histogram: min is 0, not garbage.
  EXPECT_DOUBLE_EQ(Histogram().min(), 0.0);
}

TEST(MetricsTest, QuantileInterpolatesWithinObservedRange) {
  Histogram histogram;  // default bounds end at 1024
  // All observations land in the overflow bucket (> 1024): every
  // quantile must interpolate between the observed min and max, not
  // report the last finite bound.
  histogram.Observe(5000.0);
  histogram.Observe(6000.0);
  histogram.Observe(7000.0);
  EXPECT_GE(histogram.Quantile(0.01), 5000.0);
  EXPECT_LE(histogram.Quantile(0.99), 7000.0);
  EXPECT_GT(histogram.Quantile(0.9), histogram.Quantile(0.1));

  // A single observation inside a wide bucket: the quantile is clamped
  // to the observed value instead of sweeping the whole bucket.
  Histogram single;
  single.Observe(2.0);  // bucket (1, 4]
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(single.Quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(Histogram().Quantile(0.5), 0.0);  // empty
}

TEST(MetricsTest, LabeledSeriesAreDistinctWithinAFamily) {
  MetricsRegistry registry;
  Counter* high = registry.counter("wlm.blocks", {{"priority", "high"}});
  Counter* low = registry.counter("wlm.blocks", {{"priority", "low"}});
  Counter* bare = registry.counter("wlm.blocks");
  EXPECT_NE(high, low);
  EXPECT_NE(high, bare);
  // Label order does not matter: the registry canonicalises.
  EXPECT_EQ(registry.histogram("pi.err", {{"a", "1"}, {"b", "2"}}),
            registry.histogram("pi.err", {{"b", "2"}, {"a", "1"}}));

  high->Increment(3);
  low->Increment();
  bare->Increment(9);
  const std::string dump = registry.TextDump();
  EXPECT_NE(dump.find("counter   wlm.blocks 9"), std::string::npos);
  EXPECT_NE(dump.find("counter   wlm.blocks{priority=high} 3"),
            std::string::npos);
  EXPECT_NE(dump.find("counter   wlm.blocks{priority=low} 1"),
            std::string::npos);
}

TEST(MetricsTest, HistogramCustomBoundsApplyOnCreation) {
  MetricsRegistry registry;
  Histogram* mape =
      registry.histogram("pi.mape", {}, {0.1, 0.5, 1.0});
  mape->Observe(0.3);
  const auto snapshot = mape->snapshot();
  ASSERT_EQ(snapshot.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(snapshot.bounds[0], 0.1);
  ASSERT_EQ(snapshot.cumulative.size(), 4u);
  EXPECT_EQ(snapshot.cumulative[0], 0u);
  EXPECT_EQ(snapshot.cumulative[1], 1u);  // (0.1, 0.5]
  EXPECT_EQ(snapshot.cumulative[3], 1u);  // +Inf total
  // Later lookups return the existing instrument; bounds are ignored.
  EXPECT_EQ(registry.histogram("pi.mape", {}, {99.0}), mape);
}

TEST(MetricsTest, PrometheusDumpExposesTypedFamilies) {
  MetricsRegistry registry;
  registry.counter("service.submits")->Increment(7);
  registry.counter("service.submits", {{"priority", "high"}})->Increment(2);
  registry.gauge("queries.running")->Set(2);
  Histogram* latency = registry.histogram("step.wall_ms", {}, {1.0, 4.0});
  latency->Observe(0.5);
  latency->Observe(2.0);
  latency->Observe(100.0);

  const std::string prom = registry.PrometheusDump();
  // Dots sanitized, one TYPE header per family, labeled + bare samples.
  EXPECT_NE(prom.find("# TYPE service_submits counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("service_submits 7\n"), std::string::npos);
  EXPECT_NE(prom.find("service_submits{priority=\"high\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE queries_running gauge\n"), std::string::npos);
  EXPECT_NE(prom.find("queries_running 2\n"), std::string::npos);
  // Histogram expansion: cumulative buckets, +Inf, sum, count.
  EXPECT_NE(prom.find("# TYPE step_wall_ms histogram\n"), std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_sum 102.5\n"), std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_count 3\n"), std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsDoNotLoseCounts) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("c");
  Histogram* histogram = registry.histogram("h");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram->count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ---- manual mode ------------------------------------------------------------

TEST(ServiceManualTest, SessionLifecycleAndSnapshotProgress) {
  storage::Catalog catalog;
  PiService service(&catalog, ManualOptions());
  auto session = service.OpenSession("client-a");

  // Before any tick: the never-null sequence-0 snapshot.
  EXPECT_EQ(service.snapshot()->sequence, 0u);

  auto a = session->Submit(QuerySpec::Synthetic(50.0));
  auto b = session->Submit(QuerySpec::Synthetic(200.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(session->LiveQueries(), 2u);

  // PublishNow surfaces the submissions without advancing time.
  service.PublishNow();
  auto progress = session->Progress(*a);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->session_id, session->id());
  EXPECT_EQ(progress->fraction_done, 0.0);

  // The rate C = 100 U/s is shared between the two running queries, so
  // the 50 U query finishes at t = 1.0; by t = 1.1 only it is done.
  ASSERT_TRUE(service.Advance(1.1).ok());
  progress = session->Progress(*a);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->state, sched::QueryState::kFinished);
  EXPECT_EQ(progress->fraction_done, 1.0);
  EXPECT_EQ(progress->eta_multi, 0.0);
  progress = session->Progress(*b);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->state, sched::QueryState::kRunning);
  EXPECT_GT(progress->fraction_done, 0.0);
  EXPECT_LT(progress->fraction_done, 1.0);
  EXPECT_TRUE(LegalEta(progress->eta_multi));

  auto idle_at = service.AdvanceUntilIdle(/*deadline=*/60.0);
  ASSERT_TRUE(idle_at.ok());
  EXPECT_TRUE(service.Idle());
  EXPECT_EQ(session->ListQueries().size(), 2u);
  for (const auto& query : session->ListQueries()) {
    EXPECT_EQ(query.state, sched::QueryState::kFinished);
  }

  // Snapshot sequence advanced once per quantum plus the PublishNow.
  EXPECT_GT(service.snapshot()->sequence, 5u);
  EXPECT_EQ(service.metrics()->counter("queries.finished")->value(), 2u);
  EXPECT_TRUE(session->Close().ok());
}

TEST(ServiceManualTest, ForecastCacheCountersPublished) {
  // The service republishes the PI's forecast-cache and incremental
  // engine statistics as metrics. Steady state with the incremental
  // engine on: snapshots answer running-query rows from O(log n)
  // point queries, so fast-path hits accumulate while full
  // simulations stay bounded by the warm-up quanta.
  storage::Catalog catalog;
  PiService service(&catalog, ManualOptions());
  auto session = service.OpenSession("cache-watch");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(500.0)).ok());
  }
  ASSERT_TRUE(service.Advance(2.0).ok());  // 20 quanta at 0.1 s

  const auto fast =
      service.metrics()->counter("pi.incremental_fast_path")->value();
  const auto fallback =
      service.metrics()->counter("pi.incremental_fallback")->value();
  const auto misses =
      service.metrics()->counter("pi.forecast_cache_miss")->value();
  EXPECT_GT(fast, 0u);
  // Fallbacks only before the first engine sync; never in steady state.
  EXPECT_LE(fallback, 20u);
  // <= one full simulation per quantum, with slack for submissions.
  EXPECT_LE(misses, 30u);
  const std::string dump = service.metrics()->TextDump();
  EXPECT_NE(dump.find("pi.forecast_cache_hit"), std::string::npos);
  EXPECT_NE(dump.find("pi.forecast_cache_miss"), std::string::npos);
  EXPECT_NE(dump.find("pi.incremental_fast_path"), std::string::npos);
  EXPECT_NE(dump.find("pi.incremental_fallback"), std::string::npos);
  EXPECT_NE(dump.find("pi.incremental_resyncs"), std::string::npos);
  // Snapshots consume the batch kernel once the fast path is up: every
  // call is either a mirror hit or a regen, and steady-state quanta
  // must produce hits (progress alone never invalidates the mirror).
  const auto batch_hits =
      service.metrics()->counter("pi.batch_kernel_hits")->value();
  const auto batch_regens =
      service.metrics()->counter("pi.batch_kernel_regens")->value();
  EXPECT_GT(batch_hits + batch_regens, 0u);
  EXPECT_GT(batch_hits, 0u);
  EXPECT_TRUE(session->Close().ok());
}

TEST(ServiceManualTest, QueuePositionsExposedWhileWaiting) {
  storage::Catalog catalog;
  auto options = ManualOptions();
  options.rdbms.max_concurrent = 1;
  PiService service(&catalog, options);
  auto session = service.OpenSession();

  auto running = session->Submit(QuerySpec::Synthetic(1000.0));
  auto first = session->Submit(QuerySpec::Synthetic(10.0));
  auto second = session->Submit(QuerySpec::Synthetic(10.0));
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  service.PublishNow();

  auto snap = service.snapshot();
  EXPECT_EQ(snap->num_running, 1);
  EXPECT_EQ(snap->num_queued, 2);
  EXPECT_EQ(snap->Find(*running)->queue_position, -1);
  EXPECT_EQ(snap->Find(*first)->queue_position, 0);
  EXPECT_EQ(snap->Find(*second)->queue_position, 1);
  session->Close();
}

TEST(ServiceManualTest, ControlRequiresOwnership) {
  storage::Catalog catalog;
  PiService service(&catalog, ManualOptions());
  auto alice = service.OpenSession("alice");
  auto bob = service.OpenSession("bob");

  auto query = alice->Submit(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(query.ok());

  // Bob can *read* Alice's progress but not control her query.
  service.PublishNow();
  EXPECT_TRUE(bob->Progress(*query).ok());
  EXPECT_TRUE(bob->Block(*query).code() == StatusCode::kFailedPrecondition);
  EXPECT_FALSE(bob->Abort(*query).ok());
  EXPECT_FALSE(bob->SetPriority(*query, Priority::kHigh).ok());

  EXPECT_TRUE(alice->Block(*query).ok());
  EXPECT_TRUE(alice->Resume(*query).ok());
  EXPECT_TRUE(alice->SetPriority(*query, Priority::kHigh).ok());
  EXPECT_TRUE(alice->Abort(*query).ok());
  alice->Close();
  bob->Close();
}

TEST(ServiceManualTest, InflightCapRejectsExcessSubmits) {
  storage::Catalog catalog;
  auto options = ManualOptions();
  options.max_inflight_per_session = 2;
  PiService service(&catalog, options);
  auto session = service.OpenSession();

  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(20.0)).ok());
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(20.0)).ok());
  auto rejected = session->Submit(QuerySpec::Synthetic(20.0));
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.metrics()->counter("service.submit_rejected")->value(),
            1u);

  // Capacity frees once queries finish.
  ASSERT_TRUE(service.AdvanceUntilIdle(60.0).ok());
  EXPECT_TRUE(session->Submit(QuerySpec::Synthetic(20.0)).ok());
  session->Close();
}

TEST(ServiceManualTest, CloseAbortsLiveQueriesAndDropsArrivals) {
  storage::Catalog catalog;
  PiService service(&catalog, ManualOptions());
  auto session = service.OpenSession();

  auto live = session->Submit(QuerySpec::Synthetic(1e6));
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(
      session->SubmitAt(5.0, QuerySpec::Synthetic(100.0)).ok());
  ASSERT_TRUE(session->Close().ok());
  EXPECT_TRUE(session->Close().ok());  // idempotent

  service.PublishNow();
  EXPECT_EQ(service.snapshot()->Find(*live)->state,
            sched::QueryState::kAborted);
  // The scheduled arrival was dropped with the session: advancing past
  // its due time admits nothing and the system is idle.
  ASSERT_TRUE(service.Advance(6.0).ok());
  EXPECT_TRUE(service.Idle());
  EXPECT_EQ(service.metrics()->counter("queries.aborted")->value(), 1u);
}

TEST(ServiceManualTest, ScheduledArrivalsSubmitOnTime) {
  storage::Catalog catalog;
  PiService service(&catalog, ManualOptions());
  auto session = service.OpenSession();

  ASSERT_TRUE(session->SubmitAt(1.0, QuerySpec::Synthetic(30.0)).ok());
  ASSERT_TRUE(session->SubmitAt(2.5, QuerySpec::Synthetic(30.0)).ok());
  EXPECT_FALSE(service.Idle());  // pending arrivals count as work

  ASSERT_TRUE(service.Advance(0.5).ok());
  EXPECT_EQ(service.snapshot()->queries.size(), 0u);  // not yet due
  ASSERT_TRUE(service.Advance(1.0).ok());
  EXPECT_EQ(service.snapshot()->queries.size(), 1u);
  auto idle_at = service.AdvanceUntilIdle(60.0);
  ASSERT_TRUE(idle_at.ok());
  const auto queries = session->ListQueries();
  ASSERT_EQ(queries.size(), 2u);
  // Arrival timestamps match the schedule (quantized to the tick).
  EXPECT_NEAR(queries[0].arrival_time, 1.0, 0.1 + 1e-9);
  EXPECT_NEAR(queries[1].arrival_time, 2.5, 0.1 + 1e-9);
  session->Close();
}

TEST(ServiceManualTest, ZipfScheduleReplayDrivesServiceTraffic) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 200, .matches_per_key = 4, .seed = 7});
  workload::ZipfWorkload workload(&catalog, &generator,
                                  {.max_rank = 3, .a = 1.5, .n_scale = 1});
  ASSERT_TRUE(workload.MaterializeTables().ok());

  auto options = ManualOptions();
  options.rdbms.processing_rate = 500.0;
  PiService service(&catalog, options);
  auto session = service.OpenSession("replay");

  Rng rng(11);
  const auto schedule =
      workload::GeneratePoissonArrivals(workload, /*lambda=*/0.5,
                                        /*horizon=*/10.0, &rng);
  ASSERT_FALSE(schedule.empty());
  ASSERT_TRUE(ReplaySchedule(session.get(), workload, schedule).ok());

  auto idle_at = service.AdvanceUntilIdle(/*deadline=*/600.0);
  ASSERT_TRUE(idle_at.ok());
  const auto queries = session->ListQueries();
  EXPECT_EQ(queries.size(), schedule.size());
  for (const auto& query : queries) {
    EXPECT_EQ(query.state, sched::QueryState::kFinished);
  }
  EXPECT_EQ(service.metrics()->counter("service.scheduled_arrivals")->value(),
            schedule.size());
  session->Close();
}

// ---- ticker mode ------------------------------------------------------------

TEST(ServiceTickerTest, TickerDrainsSubmittedWork) {
  storage::Catalog catalog;
  PiServiceOptions options;
  options.rdbms.processing_rate = 1000.0;
  options.rdbms.quantum = 0.1;
  options.time_scale = 0.0;  // as fast as possible
  PiService service(&catalog, options);
  ASSERT_TRUE(service.ticking());

  auto session = service.OpenSession();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(100.0)).ok());
  }
  ASSERT_TRUE(service.WaitUntilIdle(/*timeout_seconds=*/30.0));
  // The ticker's last publish may still be in flight right after idle;
  // publish a definitive snapshot ourselves before asserting on it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.PublishNow();
  for (const auto& query : session->ListQueries()) {
    EXPECT_EQ(query.state, sched::QueryState::kFinished);
  }
  // The parked ticker publishes nothing; sequence is stable once idle.
  const auto seq = service.snapshot()->sequence;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(service.snapshot()->sequence, seq);
  session->Close();
}

TEST(ServiceTickerTest, StopWithQueriesStillRunningIsClean) {
  storage::Catalog catalog;
  PiServiceOptions options;
  options.rdbms.processing_rate = 10.0;  // deliberately slow
  options.time_scale = 0.0;
  PiService service(&catalog, options);
  auto session = service.OpenSession();
  auto query = session->Submit(QuerySpec::Synthetic(1e9));
  ASSERT_TRUE(query.ok());

  // Let the ticker take a few quanta, then stop mid-flight.
  while (service.snapshot()->sequence < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  EXPECT_FALSE(service.ticking());

  // The final snapshot is still readable and consistent.
  auto snap = service.snapshot();
  const auto* progress = snap->Find(*query);
  ASSERT_NE(progress, nullptr);
  EXPECT_EQ(progress->state, sched::QueryState::kRunning);
  EXPECT_TRUE(LegalEta(progress->eta_multi));

  // A stopped service still accepts a clean session close (abort).
  EXPECT_TRUE(session->Close().ok());
}

// The flagship TSan scenario: writers submit/control queries from N
// threads while M readers poll snapshots flat out. Asserts no torn
// snapshots (monotonic sequence numbers, internally consistent rows)
// and a clean shutdown.
TEST(ServiceStressTest, ConcurrentSubmittersAndReaders) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kQueriesPerWriter = 6;

  // Writers submit real Zipf-mix queries over materialized tables
  // (small scale: this runs under TSan on modest machines).
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 100, .matches_per_key = 3, .seed = 13});
  workload::ZipfWorkload workload(&catalog, &generator,
                                  {.max_rank = 3, .a = 1.5, .n_scale = 1});
  ASSERT_TRUE(workload.MaterializeTables().ok());

  PiServiceOptions options;
  options.rdbms.processing_rate = 400.0;
  options.rdbms.quantum = 0.05;
  options.rdbms.max_concurrent = 6;  // force queueing
  options.time_scale = 0.0;
  options.future_prior = {.lambda = 0.5, .avg_cost = 100.0};
  options.future_prior_strength = 2.0;
  PiService service(&catalog, options);

  std::atomic<bool> done{false};
  std::atomic<int> reader_failures{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &done, &reader_failures] {
      std::uint64_t last_sequence = 0;
      SimTime last_sim_time = -1.0;
      while (!done.load(std::memory_order_acquire)) {
        const SnapshotPtr snap = service.snapshot();
        // Sequence numbers never go backwards, and simulated time
        // moves with them — a torn or stale-pointer read would break
        // this ordering.
        if (snap->sequence < last_sequence ||
            (snap->sequence > last_sequence &&
             snap->sim_time < last_sim_time - kTimeEpsilon)) {
          reader_failures.fetch_add(1);
        }
        last_sequence = snap->sequence;
        last_sim_time = snap->sim_time;
        QueryId previous_id = 0;
        for (const auto& query : snap->queries) {
          const bool sorted = query.id > previous_id;
          previous_id = query.id;
          const bool fraction_ok = query.fraction_done >= 0.0 &&
                                   query.fraction_done <= 1.0;
          if (!sorted || !fraction_ok || !LegalEta(query.eta_single) ||
              !LegalEta(query.eta_multi)) {
            reader_failures.fetch_add(1);
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  std::vector<std::thread> writers;
  std::atomic<int> submit_failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&service, &workload, &submit_failures, w] {
      auto session =
          service.OpenSession("writer-" + std::to_string(w));
      Rng rng(static_cast<std::uint64_t>(1000 + w));
      std::vector<QueryId> mine;
      for (int i = 0; i < kQueriesPerWriter; ++i) {
        auto id = session->Submit(
            workload.SampleSpec(&rng),
            i % 2 == 0 ? Priority::kNormal : Priority::kHigh);
        if (!id.ok()) {
          submit_failures.fetch_add(1);
          continue;
        }
        mine.push_back(*id);
        // Exercise control operations mid-flight; failures from
        // already-finished queries are expected and fine.
        if (i == 2 && !mine.empty()) {
          (void)session->Block(mine.front());
          (void)session->Resume(mine.front());
        }
        if (i == 4 && mine.size() > 1) (void)session->Abort(mine[1]);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Poll own progress a few times from the writer side too.
      for (int i = 0; i < 20; ++i) {
        for (QueryId id : mine) (void)session->Progress(id);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      // Keep queries running at close: don't abort them, let them
      // drain (ownership is released with the session).
      (void)session->Close();
    });
  }

  for (auto& writer : writers) writer.join();
  EXPECT_EQ(submit_failures.load(), 0);

  // Sessions closed with abort_queries_on_session_close=true abort
  // whatever was still live; the rest finished. Either way the system
  // must drain.
  ASSERT_TRUE(service.WaitUntilIdle(/*timeout_seconds=*/60.0));
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(reader_failures.load(), 0);

  // Session-close aborts and the last tick may postdate WaitUntilIdle's
  // return; publish a definitive final snapshot before asserting.
  service.PublishNow();
  const SnapshotPtr final_snapshot = service.snapshot();
  EXPECT_EQ(final_snapshot->queries.size(),
            static_cast<std::size_t>(kWriters * kQueriesPerWriter));
  for (const auto& query : final_snapshot->queries) {
    EXPECT_TRUE(query.terminal());
  }
  const auto finished =
      service.metrics()->counter("queries.finished")->value();
  const auto aborted =
      service.metrics()->counter("queries.aborted")->value();
  EXPECT_EQ(finished + aborted,
            static_cast<std::uint64_t>(kWriters * kQueriesPerWriter));
  EXPECT_GE(service.metrics()->counter("service.snapshot_reads")->value(),
            static_cast<std::uint64_t>(kReaders));
  service.Stop();
}

}  // namespace
}  // namespace mqpi::service
