// Three-way differential suite for the flat SoA batch-estimate kernel
// (pi/batch_kernel.h): analytic simulator vs. incremental treap vs.
// batch kernel over the same load, across chaos soak regimes and the
// degenerate shapes that stress the mirror (empty, singleton, zero
// cost, exact threshold ties, post-renormalize). Every test in the
// suite runs twice — once under CPU-feature SIMD dispatch and once
// pinned to the portable scalar sweep — so the vector paths are held
// to the same tolerance as the reference implementation.
//
// Tolerances mirror incremental_forecast_test.cc: treap vs. kernel is
// the engine contract (a few ULP, 1e-9 scaled-relative); simulator
// vs. kernel layers event-replay rounding on top (1e-6).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "pi/analytic_simulator.h"
#include "pi/batch_kernel.h"
#include "pi/incremental_forecast.h"
#include "pi/stage_profile.h"

namespace mqpi::pi {
namespace {

constexpr double kEngineRelTol = 1e-9;
constexpr double kSimulatorRelTol = 1e-6;

void ExpectClose(double expected, double actual, const char* what,
                 double tol) {
  if (expected == kInfiniteTime || actual == kInfiniteTime) {
    EXPECT_EQ(expected, actual) << what;
    return;
  }
  EXPECT_NEAR(expected, actual, tol * std::max(1.0, std::fabs(expected)))
      << what;
}

// Runs one EstimateAll and pins it three ways:
//  * shape: id-sorted, one row per live query;
//  * vs. treap: every row equals the O(log n) point query;
//  * vs. simulator: every row equals a from-scratch event replay of
//    the current clamped load (no arrivals, so forecast finish times
//    are remaining times).
void ExpectThreeWayMatch(BatchEstimateKernel& kernel,
                         const IncrementalForecast& engine, double rate,
                         const char* where) {
  SCOPED_TRACE(where);
  const BatchEstimateKernel::Batch batch = kernel.EstimateAll(engine, rate);
  ASSERT_EQ(batch.size, engine.size());
  const std::vector<QueryLoad> loads = engine.Entries();

  AnalyticModelOptions model;
  model.rate = rate;
  model.horizon = kInfiniteTime;
  auto simulated = AnalyticSimulator::Forecast(loads, {}, {}, model);
  ASSERT_TRUE(simulated.ok());

  for (std::size_t i = 0; i < batch.size; ++i) {
    if (i > 0) {
      EXPECT_LT(batch.ids[i - 1], batch.ids[i]) << "ids not ascending";
    }
    auto treap = engine.RemainingTime(batch.ids[i], rate);
    ASSERT_TRUE(treap.ok()) << "id " << batch.ids[i];
    ExpectClose(*treap, batch.etas[i], "treap vs kernel", kEngineRelTol);
    auto sim = simulated->FinishTimeOf(batch.ids[i]);
    ASSERT_TRUE(sim.ok()) << "id " << batch.ids[i];
    ExpectClose(*sim, batch.etas[i], "simulator vs kernel",
                kSimulatorRelTol);
  }
}

// Each test runs with SIMD dispatch (param false) and pinned scalar
// (param true).
class BatchKernelTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { BatchEstimateKernel::ForceScalar(GetParam()); }
  void TearDown() override { BatchEstimateKernel::ForceScalar(false); }
};

TEST_P(BatchKernelTest, ForceScalarPinsDispatch) {
  if (GetParam()) {
    EXPECT_STREQ(BatchEstimateKernel::ActiveIsaName(), "scalar");
  } else {
    // Whatever the CPU offers; the differential tests below hold it to
    // the same numbers either way.
    SUCCEED() << BatchEstimateKernel::ActiveIsaName();
  }
}

TEST_P(BatchKernelTest, EmptyEngine) {
  IncrementalForecast engine;
  BatchEstimateKernel kernel;
  const auto batch = kernel.EstimateAll(engine, 100.0);
  EXPECT_EQ(batch.size, 0u);
  ExpectThreeWayMatch(kernel, engine, 100.0, "empty");
}

TEST_P(BatchKernelTest, SingleQuery) {
  IncrementalForecast engine;
  ASSERT_TRUE(engine.Insert(7, 300.0, 1.5).ok());
  BatchEstimateKernel kernel;
  ExpectThreeWayMatch(kernel, engine, 100.0, "singleton");
  const auto batch = kernel.EstimateAll(engine, 100.0);
  ASSERT_EQ(batch.size, 1u);
  EXPECT_EQ(batch.ids[0], 7u);
  EXPECT_NEAR(batch.etas[0], 3.0, 1e-12);  // alone: 300 U at the full rate
}

TEST_P(BatchKernelTest, ZeroCostQueries) {
  IncrementalForecast engine;
  ASSERT_TRUE(engine.Insert(1, 0.0, 1.0).ok());
  ASSERT_TRUE(engine.Insert(2, 100.0, 1.0).ok());
  ASSERT_TRUE(engine.Insert(3, 0.0, 4.0).ok());
  BatchEstimateKernel kernel;
  ExpectThreeWayMatch(kernel, engine, 50.0, "zero-cost mix");
  const auto batch = kernel.EstimateAll(engine, 50.0);
  ASSERT_EQ(batch.size, 3u);
  EXPECT_EQ(batch.etas[0], 0.0);  // id 1
  EXPECT_EQ(batch.etas[2], 0.0);  // id 3
  EXPECT_GT(batch.etas[1], 0.0);  // id 2 still has work
}

TEST_P(BatchKernelTest, ExactThresholdTies) {
  // Four queries with identical v = c/w land on the same threshold;
  // the (v, id) tie-break must produce one well-defined prefix order
  // shared by profile, treap, and kernel.
  IncrementalForecast engine;
  ASSERT_TRUE(engine.Insert(4, 200.0, 2.0).ok());
  ASSERT_TRUE(engine.Insert(2, 100.0, 1.0).ok());
  ASSERT_TRUE(engine.Insert(9, 400.0, 4.0).ok());
  ASSERT_TRUE(engine.Insert(5, 100.0, 1.0).ok());
  BatchEstimateKernel kernel;
  ExpectThreeWayMatch(kernel, engine, 100.0, "exact ties");
  // Equal-threshold queries all retire at the same instant.
  const auto batch = kernel.EstimateAll(engine, 100.0);
  ASSERT_EQ(batch.size, 4u);
  for (std::size_t i = 1; i < batch.size; ++i) {
    EXPECT_NEAR(batch.etas[0], batch.etas[i], 1e-9);
  }
}

TEST_P(BatchKernelTest, SurvivesRenormalization) {
  IncrementalForecast engine;
  BatchEstimateKernel kernel;
  ASSERT_TRUE(engine.Insert(1, 5e6, 1.0).ok());
  ASSERT_TRUE(engine.Insert(2, 9e6, 2.0).ok());
  ExpectThreeWayMatch(kernel, engine, 1000.0, "before renorm");
  const std::uint64_t regens_before = kernel.regens();
  // Drive X past the renormalization threshold (but below the smallest
  // live threshold). The rebase rewrites every absolute v, so the
  // mirror must regenerate — a stale mirror would answer from the old
  // basis with the new offset and be wildly wrong.
  engine.Advance(2e6);
  ExpectThreeWayMatch(kernel, engine, 1000.0, "after renorm");
  EXPECT_EQ(kernel.regens(), regens_before + 1);
}

TEST_P(BatchKernelTest, HitsAndRegensAccounting) {
  IncrementalForecast engine;
  ASSERT_TRUE(engine.Insert(1, 100.0, 1.0).ok());
  ASSERT_TRUE(engine.Insert(2, 300.0, 1.0).ok());
  BatchEstimateKernel kernel;
  EXPECT_EQ(kernel.hits(), 0u);
  EXPECT_EQ(kernel.regens(), 0u);

  kernel.EstimateAll(engine, 100.0);  // first call always regenerates
  EXPECT_EQ(kernel.regens(), 1u);
  EXPECT_EQ(kernel.hits(), 0u);

  kernel.EstimateAll(engine, 100.0);  // unchanged structure: pure sweep
  kernel.EstimateAll(engine, 50.0);   // rate is a per-call scalar
  EXPECT_EQ(kernel.regens(), 1u);
  EXPECT_EQ(kernel.hits(), 2u);

  engine.Advance(10.0);               // progress only: mirror stays hot
  kernel.EstimateAll(engine, 100.0);
  EXPECT_EQ(kernel.regens(), 1u);
  EXPECT_EQ(kernel.hits(), 3u);

  ASSERT_TRUE(engine.Insert(3, 50.0, 2.0).ok());  // structural: regen
  kernel.EstimateAll(engine, 100.0);
  EXPECT_EQ(kernel.regens(), 2u);
  EXPECT_EQ(kernel.hits(), 3u);

  ASSERT_TRUE(engine.Remove(1).ok());
  ASSERT_TRUE(engine.Update(2, 250.0, 3.0).ok());
  kernel.EstimateAll(engine, 100.0);  // both bumps fold into one regen
  EXPECT_EQ(kernel.regens(), 3u);
  EXPECT_EQ(kernel.hits(), 3u);
}

TEST_P(BatchKernelTest, SharedKernelAcrossEngines) {
  // One kernel re-targeted at a different engine must notice even when
  // the version counters happen to collide — via size or content. The
  // version counter alone distinguishes engines with different op
  // counts; this pins the supported single-engine contract instead:
  // interleaving two engines through two kernels stays exact.
  IncrementalForecast a, b;
  ASSERT_TRUE(a.Insert(1, 100.0, 1.0).ok());
  ASSERT_TRUE(b.Insert(2, 900.0, 3.0).ok());
  BatchEstimateKernel ka, kb;
  ExpectThreeWayMatch(ka, a, 100.0, "engine a");
  ExpectThreeWayMatch(kb, b, 100.0, "engine b");
  ASSERT_TRUE(a.Insert(3, 40.0, 0.5).ok());
  ExpectThreeWayMatch(ka, a, 100.0, "engine a after growth");
  ExpectThreeWayMatch(kb, b, 100.0, "engine b unchanged");
}

// ---- chaos soak regimes -----------------------------------------------------

struct SoakRegime {
  const char* name;
  // Weights for op classes: insert, remove, update, advance.
  int insert, remove, update, advance;
  int ops;
  std::uint64_t seed;
};

class BatchKernelSoakTest
    : public ::testing::TestWithParam<std::tuple<bool, int>> {
 protected:
  void SetUp() override {
    BatchEstimateKernel::ForceScalar(std::get<0>(GetParam()));
  }
  void TearDown() override { BatchEstimateKernel::ForceScalar(false); }
};

const SoakRegime kRegimes[] = {
    {"mixed-churn", 3, 2, 2, 3, 320, 101},
    {"insert-heavy-growth", 6, 1, 1, 2, 320, 202},
    {"remove-heavy-drain", 1, 5, 1, 3, 320, 303},
    {"progress-dominated", 1, 1, 1, 12, 320, 404},
    {"reweight-storm", 1, 1, 8, 2, 320, 505},
};

TEST_P(BatchKernelSoakTest, RandomOpsStayExact) {
  const SoakRegime& regime = kRegimes[std::get<1>(GetParam())];
  SCOPED_TRACE(regime.name);
  Rng rng(regime.seed);
  IncrementalForecast engine;
  BatchEstimateKernel kernel;
  std::map<QueryId, double> live;  // id -> weight (shadow membership)
  QueryId next_id = 1;

  const int total_weight =
      regime.insert + regime.remove + regime.update + regime.advance;
  for (int op = 0; op < regime.ops; ++op) {
    int pick = static_cast<int>(rng.UniformInt(0, total_weight - 1));
    if (pick < regime.insert || live.empty()) {
      const double cost = rng.Uniform(0.0, 2000.0);
      const double weight = rng.Uniform(0.25, 8.0);
      ASSERT_TRUE(engine.Insert(next_id, cost, weight).ok());
      live[next_id] = weight;
      ++next_id;
    } else if ((pick -= regime.insert) < regime.remove) {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int>(live.size()) - 1));
      ASSERT_TRUE(engine.Remove(it->first).ok());
      live.erase(it);
    } else if ((pick -= regime.remove) < regime.update) {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int>(live.size()) - 1));
      const double cost = rng.Uniform(0.0, 2000.0);
      const double weight = rng.Uniform(0.25, 8.0);
      ASSERT_TRUE(engine.Update(it->first, cost, weight).ok());
      it->second = weight;
    } else {
      // Advance strictly below the smallest live remaining ratio so no
      // live query crosses its threshold (the engine contract).
      double min_ratio = kInfiniteTime;
      for (const auto& [id, weight] : live) {
        auto c = engine.CostOf(id);
        ASSERT_TRUE(c.ok());
        min_ratio = std::min(min_ratio, *c / weight);
      }
      if (min_ratio > 0.0 && min_ratio != kInfiniteTime) {
        engine.Advance(rng.Uniform(0.0, 0.9) * min_ratio);
      }
    }
    // Differential check after every single operation, at a rate that
    // itself varies so the per-call scalar path is exercised too.
    const double rate = rng.Uniform(10.0, 500.0);
    ExpectThreeWayMatch(kernel, engine, rate,
                        ("op " + std::to_string(op)).c_str());
  }
  // Every call was either a hit or a regen — nothing silently skipped.
  EXPECT_EQ(kernel.hits() + kernel.regens(),
            static_cast<std::uint64_t>(regime.ops));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, BatchKernelSoakTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Range(0, static_cast<int>(std::size(
                                               kRegimes)))),
    [](const ::testing::TestParamInfo<std::tuple<bool, int>>& info) {
      std::string name = kRegimes[std::get<1>(info.param)].name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name + (std::get<0>(info.param) ? "_scalar" : "_simd");
    });

INSTANTIATE_TEST_SUITE_P(Dispatch, BatchKernelTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "scalar" : "simd";
                         });

}  // namespace
}  // namespace mqpi::pi
