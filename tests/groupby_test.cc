// Tests for the GROUP BY path: operator correctness vs brute force,
// budget-aware execution, planner cardinalities, and SQL parsing.

#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "engine/planner.h"
#include "engine/sql_parser.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi::engine {
namespace {

using storage::AsDouble;
using storage::AsInt;
using storage::Catalog;
using storage::Tuple;

class GroupByTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::TpcrGenerator generator(
        {.num_part_keys = 300, .matches_per_key = 6, .seed = 19});
    ASSERT_TRUE(generator.BuildLineitem(&catalog_).ok());
    ASSERT_TRUE(catalog_.AnalyzeAll().ok());
  }

  /// Brute-force per-suppkey sums of quantity with optional filter.
  std::map<std::int64_t, double> BruteForce(double filter_threshold,
                                            bool has_filter) {
    const auto* lineitem = *catalog_.GetTable("lineitem");
    std::map<std::int64_t, double> sums;
    for (storage::RowId r = 0; r < lineitem->num_tuples(); ++r) {
      const Tuple& row = lineitem->Get(r);
      const double quantity = AsDouble(row.at(3));
      if (has_filter && !(quantity > filter_threshold)) continue;
      sums[AsInt(row.at(2))] += quantity;  // suppkey
    }
    return sums;
  }

  /// Runs a prepared group-by to completion collecting (key, value).
  std::map<std::int64_t, double> Collect(const QuerySpec& spec,
                                         WorkUnits budget) {
    storage::BufferManager pool;
    Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
    auto prepared = planner.Prepare(spec);
    EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
    // Collect emitted rows by re-running the operator tree manually
    // (QueryExecution counts rows but does not retain them).
    auto table = catalog_.GetTable(spec.table);
    auto group_col = (*table)->schema().ColumnIndex(spec.group_column);
    OperatorPtr input = std::make_unique<SeqScanOperator>(*table);
    if (spec.has_filter) {
      auto col = Col((*table)->schema(), spec.filter_column);
      input = std::make_unique<FilterOperator>(
          std::move(input),
          Bin(BinaryOp::kGt, std::move(*col), Const(spec.filter_threshold)));
    }
    ExprPtr arg = spec.agg == AggFunc::kCount
                      ? Const(1.0)
                      : std::move(*Col((*table)->schema(), spec.agg_column));
    HashGroupByOperator op(std::move(input), *group_col, spec.agg,
                           std::move(arg));
    storage::BufferAccount account(&pool);
    ExecContext ctx;
    ctx.account = &account;
    std::map<std::int64_t, double> out;
    Tuple row;
    while (true) {
      ctx.yield_at = account.charged() + budget;
      auto step = op.Next(&ctx, &row);
      EXPECT_TRUE(step.ok());
      if (!step.ok() || *step == OpResult::kDone) break;
      if (*step == OpResult::kRow) {
        out[AsInt(row.at(0))] = AsDouble(row.at(1));
      }
    }
    return out;
  }

  Catalog catalog_;
};

TEST_F(GroupByTest, SumsMatchBruteForce) {
  auto spec = QuerySpec::GroupByAggregate("lineitem", "suppkey",
                                          AggFunc::kSum, "quantity");
  const auto measured = Collect(spec, 1e18);
  const auto expected = BruteForce(0.0, false);
  ASSERT_EQ(measured.size(), expected.size());
  for (const auto& [key, value] : expected) {
    auto it = measured.find(key);
    ASSERT_NE(it, measured.end()) << key;
    EXPECT_NEAR(it->second, value, 1e-9 * (1.0 + value)) << key;
  }
}

TEST_F(GroupByTest, BudgetedExecutionSameResult) {
  auto spec = QuerySpec::GroupByAggregate("lineitem", "suppkey",
                                          AggFunc::kSum, "quantity");
  EXPECT_EQ(Collect(spec, 1e18), Collect(spec, 2.0));
}

TEST_F(GroupByTest, FilteredGroupBy) {
  auto spec = QuerySpec::GroupByAggregate("lineitem", "suppkey",
                                          AggFunc::kSum, "quantity")
                  .WithFilter("quantity", 30.0);
  const auto measured = Collect(spec, 1e18);
  const auto expected = BruteForce(30.0, true);
  EXPECT_EQ(measured.size(), expected.size());
  for (const auto& [key, value] : expected) {
    EXPECT_NEAR(measured.at(key), value, 1e-9 * (1.0 + value));
  }
}

TEST_F(GroupByTest, CountAndAvg) {
  auto count_spec = QuerySpec::GroupByAggregate("lineitem", "partkey",
                                                AggFunc::kCount, "");
  const auto counts = Collect(count_spec, 1e18);
  const auto* lineitem = *catalog_.GetTable("lineitem");
  double total = 0.0;
  for (const auto& [key, c] : counts) total += c;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(lineitem->num_tuples()));

  auto avg_spec = QuerySpec::GroupByAggregate("lineitem", "partkey",
                                              AggFunc::kAvg, "quantity");
  const auto avgs = Collect(avg_spec, 1e18);
  for (const auto& [key, avg] : avgs) {
    EXPECT_GE(avg, 1.0);
    EXPECT_LE(avg, 50.0);
  }
}

TEST_F(GroupByTest, RowsProducedEqualsGroups) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  auto spec = QuerySpec::GroupByAggregate("lineitem", "partkey",
                                          AggFunc::kCount, "");
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok());
  while (!prepared->execution->done()) prepared->execution->Advance(50.0);
  const auto stats = *catalog_.GetStats("lineitem");
  EXPECT_EQ(prepared->execution->rows_produced(), stats.num_distinct_keys);
}

TEST_F(GroupByTest, CardinalityEstimateUsesDistinct) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  auto prepared = planner.Prepare(QuerySpec::GroupByAggregate(
      "lineitem", "partkey", AggFunc::kCount, ""));
  ASSERT_TRUE(prepared.ok());
  const auto stats = *catalog_.GetStats("lineitem");
  EXPECT_DOUBLE_EQ(prepared->estimated_result_rows,
                   static_cast<double>(stats.num_distinct_keys));
}

TEST_F(GroupByTest, RejectsNonIntGroupColumn) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool);
  EXPECT_TRUE(planner
                  .Prepare(QuerySpec::GroupByAggregate(
                      "lineitem", "quantity", AggFunc::kCount, ""))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(planner
                  .Prepare(QuerySpec::GroupByAggregate(
                      "lineitem", "nope", AggFunc::kCount, ""))
                  .status()
                  .IsNotFound());
}

// ---- parsing -----------------------------------------------------------------

TEST(GroupByParseTest, BasicGroupBy) {
  auto spec =
      ParseSql("select suppkey, sum(quantity) from lineitem group by suppkey");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kGroupByAggregate);
  EXPECT_EQ(spec->group_column, "suppkey");
  EXPECT_EQ(spec->agg, AggFunc::kSum);
  EXPECT_EQ(spec->agg_column, "quantity");
}

TEST(GroupByParseTest, QualifiedWithFilter) {
  auto spec = ParseSql(
      "select l.suppkey, avg(l.extendedprice) from lineitem l "
      "where l.quantity > 10 group by l.suppkey");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->group_column, "suppkey");
  ASSERT_TRUE(spec->has_filter);
  EXPECT_DOUBLE_EQ(spec->filter_threshold, 10.0);
}

TEST(GroupByParseTest, MismatchedGroupColumnRejected) {
  EXPECT_FALSE(
      ParseSql("select suppkey, sum(quantity) from lineitem group by partkey")
          .ok());
}

TEST(GroupByParseTest, GroupByWithoutSelectColumnRejected) {
  EXPECT_FALSE(
      ParseSql("select sum(quantity) from lineitem group by suppkey").ok());
}

TEST(GroupByParseTest, ParsedGroupByExecutes) {
  Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 100, .matches_per_key = 4, .seed = 2});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  storage::BufferManager pool;
  Planner planner(&catalog, &pool, {.noise_sigma = 0.0});
  auto spec = ParseSql(
      "select suppkey, max(extendedprice) from lineitem group by suppkey");
  ASSERT_TRUE(spec.ok());
  auto prepared = planner.Prepare(*spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  while (!prepared->execution->done()) {
    prepared->execution->Advance(std::numeric_limits<double>::infinity());
  }
  EXPECT_GT(prepared->execution->rows_produced(), 0u);
}

}  // namespace
}  // namespace mqpi::engine
