#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "storage/buffer_manager.h"
#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/table.h"
#include "storage/tpcr_gen.h"

namespace mqpi::storage {
namespace {

Schema TwoColumnSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"value", ColumnType::kDouble}});
}

// ---- Schema -------------------------------------------------------------------

TEST(SchemaTest, ColumnLookup) {
  Schema schema = TwoColumnSchema();
  ASSERT_EQ(schema.num_columns(), 2u);
  EXPECT_EQ(*schema.ColumnIndex("key"), 0u);
  EXPECT_EQ(*schema.ColumnIndex("value"), 1u);
  EXPECT_TRUE(schema.ColumnIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, RowWidthIncludesHeader) {
  Schema schema = TwoColumnSchema();
  EXPECT_EQ(schema.RowWidthBytes(), 24u + 8u + 8u);
}

TEST(SchemaTest, StringColumnsAreWider) {
  Schema narrow({{"a", ColumnType::kInt64}});
  Schema wide({{"a", ColumnType::kString}});
  EXPECT_GT(wide.RowWidthBytes(), narrow.RowWidthBytes());
}

// ---- Table --------------------------------------------------------------------

TEST(TableTest, AppendAndGet) {
  Table table(1, "t", TwoColumnSchema());
  ASSERT_TRUE(table.Append(Tuple({Value{std::int64_t{7}}, Value{1.5}})).ok());
  EXPECT_EQ(table.num_tuples(), 1u);
  EXPECT_EQ(AsInt(table.Get(0).at(0)), 7);
  EXPECT_DOUBLE_EQ(AsDouble(table.Get(0).at(1)), 1.5);
}

TEST(TableTest, ArityMismatchRejected) {
  Table table(1, "t", TwoColumnSchema());
  EXPECT_TRUE(
      table.Append(Tuple({Value{std::int64_t{7}}})).IsInvalidArgument());
}

TEST(TableTest, PageGeometry) {
  Table table(1, "t", TwoColumnSchema());
  const std::size_t tpp = table.tuples_per_page();
  EXPECT_EQ(tpp, kPageBytes / (24 + 16));
  EXPECT_EQ(table.num_pages(), 0u);
  for (std::size_t i = 0; i < tpp; ++i) {
    ASSERT_TRUE(table
                    .Append(Tuple({Value{static_cast<std::int64_t>(i)},
                                   Value{0.0}}))
                    .ok());
  }
  EXPECT_EQ(table.num_pages(), 1u);
  ASSERT_TRUE(table.Append(Tuple({Value{std::int64_t{0}}, Value{0.0}})).ok());
  EXPECT_EQ(table.num_pages(), 2u);
  EXPECT_EQ(table.PageOfRow(0), 0u);
  EXPECT_EQ(table.PageOfRow(tpp), 1u);
  EXPECT_EQ(table.FirstRowOnPage(1), tpp);
  EXPECT_EQ(table.size_bytes(), 2 * kPageBytes);
}

// ---- Index --------------------------------------------------------------------

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(1, "t", TwoColumnSchema());
    // Keys 0..99, three rows each, appended in interleaved order.
    for (int rep = 0; rep < 3; ++rep) {
      for (std::int64_t k = 0; k < 100; ++k) {
        ASSERT_TRUE(
            table_->Append(Tuple({Value{k}, Value{static_cast<double>(rep)}}))
                .ok());
      }
    }
    auto built = Index::Build(2, "idx", *table_, "key");
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    index_ = std::make_unique<Index>(std::move(built).value());
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Index> index_;
};

TEST_F(IndexTest, LookupFindsAllMatches) {
  auto matches = index_->Lookup(42);
  ASSERT_EQ(matches.size(), 3u);
  for (const auto& entry : matches) {
    EXPECT_EQ(AsInt(table_->Get(entry.row).at(0)), 42);
  }
}

TEST_F(IndexTest, LookupMissingKeyEmpty) {
  EXPECT_TRUE(index_->Lookup(1000).empty());
  EXPECT_TRUE(index_->Lookup(-5).empty());
}

TEST_F(IndexTest, EntriesSortedAndComplete) {
  EXPECT_EQ(index_->num_entries(), 300u);
  EXPECT_EQ(index_->num_distinct_keys(), 100u);
  EXPECT_EQ(index_->min_key(), 0);
  EXPECT_EQ(index_->max_key(), 99);
}

TEST_F(IndexTest, PageAccounting) {
  EXPECT_GE(index_->height(), 1u);
  EXPECT_GE(index_->num_pages(), 1u);
  EXPECT_EQ(index_->LeafPagesForMatches(0), 1u);
  EXPECT_EQ(index_->LeafPagesForMatches(1), 1u);
  EXPECT_EQ(index_->LeafPagesForMatches(index_->leaf_fanout()), 1u);
  EXPECT_EQ(index_->LeafPagesForMatches(index_->leaf_fanout() + 1), 2u);
}

TEST(IndexBuildTest, RejectsNonInt64Column) {
  Table table(1, "t", TwoColumnSchema());
  EXPECT_TRUE(Index::Build(2, "idx", table, "value").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Index::Build(2, "idx", table, "missing").status().IsNotFound());
}

TEST(IndexBuildTest, EmptyTable) {
  Table table(1, "t", TwoColumnSchema());
  auto built = Index::Build(2, "idx", table, "key");
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->num_entries(), 0u);
  EXPECT_EQ(built->height(), 1u);
  EXPECT_TRUE(built->Lookup(1).empty());
}

// ---- BufferManager -------------------------------------------------------------

TEST(BufferManagerTest, ChargesPerAccess) {
  BufferManager manager({.capacity_pages = 4});
  EXPECT_DOUBLE_EQ(manager.Access(PageId{1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(manager.Access(PageId{1, 0}), 1.0);
  EXPECT_EQ(manager.stats().misses, 1u);
  EXPECT_EQ(manager.stats().hits, 1u);
}

TEST(BufferManagerTest, LruEviction) {
  BufferManager manager({.capacity_pages = 2});
  manager.Access(PageId{1, 0});
  manager.Access(PageId{1, 1});
  manager.Access(PageId{1, 0});  // 0 becomes MRU
  manager.Access(PageId{1, 2});  // evicts 1
  manager.Access(PageId{1, 0});  // hit
  manager.Access(PageId{1, 1});  // miss (was evicted)
  EXPECT_EQ(manager.stats().hits, 2u);
  EXPECT_EQ(manager.stats().misses, 4u);
  EXPECT_EQ(manager.resident_pages(), 2u);
}

TEST(BufferManagerTest, MissSurcharge) {
  BufferManager manager({.capacity_pages = 4,
                         .cost_per_hit = 1.0,
                         .cost_per_miss = 3.0});
  EXPECT_DOUBLE_EQ(manager.Access(PageId{1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(manager.Access(PageId{1, 0}), 1.0);
}

TEST(BufferManagerTest, ResetClearsEverything) {
  BufferManager manager({.capacity_pages = 4});
  manager.Access(PageId{1, 0});
  manager.Reset();
  EXPECT_EQ(manager.stats().hits + manager.stats().misses, 0u);
  EXPECT_EQ(manager.resident_pages(), 0u);
}

TEST(BufferAccountTest, AccumulatesCharges) {
  BufferManager manager({.capacity_pages = 4});
  BufferAccount account(&manager);
  account.Touch(PageId{1, 0});
  account.Touch(PageId{1, 1});
  account.Charge(0.5);
  EXPECT_DOUBLE_EQ(account.charged(), 2.5);
}

TEST(BufferAccountTest, AccountsShareThePool) {
  BufferManager manager({.capacity_pages = 4});
  BufferAccount a(&manager), b(&manager);
  a.Touch(PageId{1, 0});
  b.Touch(PageId{1, 0});  // hit: page cached by account a
  EXPECT_EQ(manager.stats().hits, 1u);
}

// ---- Catalog -------------------------------------------------------------------

TEST(CatalogTest, CreateAndGetTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TwoColumnSchema()).ok());
  EXPECT_TRUE(catalog.GetTable("t").ok());
  EXPECT_TRUE(catalog.GetTable("nope").status().IsNotFound());
  EXPECT_EQ(catalog.CreateTable("t", TwoColumnSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, IndexLifecycle) {
  Catalog catalog;
  auto table = catalog.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  for (std::int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE((*table)->Append(Tuple({Value{k}, Value{0.0}})).ok());
  }
  ASSERT_TRUE(catalog.CreateIndex("idx", "t", "key").ok());
  auto index = catalog.GetIndex("idx");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_entries(), 10u);
  auto on_table = catalog.IndexOnTable((*table)->id());
  ASSERT_TRUE(on_table.ok());
  EXPECT_EQ((*on_table)->name(), "idx");
  EXPECT_TRUE(catalog.CreateIndex("idx", "t", "key").status().code() ==
              StatusCode::kAlreadyExists);
}

TEST(CatalogTest, AnalyzeComputesStats) {
  Catalog catalog;
  auto table = catalog.CreateTable("t", TwoColumnSchema());
  ASSERT_TRUE(table.ok());
  for (std::int64_t k = 0; k < 30; ++k) {
    ASSERT_TRUE((*table)->Append(Tuple({Value{k % 10}, Value{0.0}})).ok());
  }
  ASSERT_TRUE(catalog.CreateIndex("idx", "t", "key").ok());
  ASSERT_TRUE(catalog.Analyze("t").ok());
  auto stats = catalog.GetStats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_tuples, 30u);
  EXPECT_EQ(stats->num_distinct_keys, 10u);
  EXPECT_DOUBLE_EQ(stats->avg_matches_per_key, 3.0);
  EXPECT_EQ(stats->min_key, 0);
  EXPECT_EQ(stats->max_key, 9);
}

TEST(CatalogTest, StatsRequireAnalyze) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TwoColumnSchema()).ok());
  EXPECT_TRUE(catalog.GetStats("t").status().IsNotFound());
}

// ---- TpcrGenerator --------------------------------------------------------------

class TpcrGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    generator_ = std::make_unique<TpcrGenerator>(
        TpcrConfig{.num_part_keys = 200, .matches_per_key = 10, .seed = 5});
    ASSERT_TRUE(generator_->BuildLineitem(&catalog_).ok());
  }
  Catalog catalog_;
  std::unique_ptr<TpcrGenerator> generator_;
};

TEST_F(TpcrGeneratorTest, LineitemShape) {
  auto table = catalog_.GetTable("lineitem");
  ASSERT_TRUE(table.ok());
  // ~10 matches per key on average, 200 keys.
  EXPECT_NEAR(static_cast<double>((*table)->num_tuples()), 2000.0, 400.0);
  auto stats = catalog_.GetStats("lineitem");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_distinct_keys, 200u);
  EXPECT_NEAR(stats->avg_matches_per_key, 10.0, 2.0);
}

TEST_F(TpcrGeneratorTest, PartTableHasDistinctKeysInRange) {
  ASSERT_TRUE(generator_->BuildPartTable(&catalog_, "part_1", 15).ok());
  auto part = catalog_.GetTable("part_1");
  ASSERT_TRUE(part.ok());
  EXPECT_EQ((*part)->num_tuples(), 150u);  // 10 * N_i
  std::set<std::int64_t> keys;
  for (RowId r = 0; r < (*part)->num_tuples(); ++r) {
    const std::int64_t k = AsInt((*part)->Get(r).at(0));
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 200);
    keys.insert(k);
  }
  EXPECT_EQ(keys.size(), 150u);  // all distinct
}

TEST_F(TpcrGeneratorTest, PartTableTooLargeRejected) {
  EXPECT_TRUE(generator_->BuildPartTable(&catalog_, "part_big", 21)
                  .IsInvalidArgument());  // 210 > 200 keys
}

TEST_F(TpcrGeneratorTest, MatchesScatterAcrossPages) {
  // The lineitem rows for one key should not be clustered: expect the
  // distinct pages of a key's matches to be close to the match count.
  auto table = catalog_.GetTable("lineitem");
  auto index = catalog_.GetIndex("lineitem_partkey_idx");
  ASSERT_TRUE(index.ok());
  if ((*table)->num_pages() < 5) GTEST_SKIP() << "table too small";
  double total_matches = 0.0, total_pages = 0.0;
  for (std::int64_t key = 1; key <= 50; ++key) {
    auto matches = (*index)->Lookup(key);
    std::set<std::uint64_t> pages;
    for (const auto& entry : matches) {
      pages.insert((*table)->PageOfRow(entry.row));
    }
    total_matches += static_cast<double>(matches.size());
    total_pages += static_cast<double>(pages.size());
  }
  EXPECT_GT(total_pages, 0.5 * total_matches);
}

TEST(TpcrGeneratorDeterminismTest, SameSeedSameData) {
  Catalog c1, c2;
  TpcrGenerator g1({.num_part_keys = 100, .matches_per_key = 5, .seed = 9});
  TpcrGenerator g2({.num_part_keys = 100, .matches_per_key = 5, .seed = 9});
  ASSERT_TRUE(g1.BuildLineitem(&c1).ok());
  ASSERT_TRUE(g2.BuildLineitem(&c2).ok());
  auto t1 = c1.GetTable("lineitem");
  auto t2 = c2.GetTable("lineitem");
  ASSERT_EQ((*t1)->num_tuples(), (*t2)->num_tuples());
  for (RowId r = 0; r < (*t1)->num_tuples(); r += 37) {
    EXPECT_EQ(AsInt((*t1)->Get(r).at(1)), AsInt((*t2)->Get(r).at(1)));
  }
}

TEST(TpcrGeneratorNamingTest, PartTableName) {
  EXPECT_EQ(TpcrGenerator::PartTableName(3), "part_3");
}

}  // namespace
}  // namespace mqpi::storage
