// Tests for index range scans and the planner's access-path choice.

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "engine/planner.h"
#include "engine/sql_parser.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi::engine {
namespace {

using storage::AsInt;
using storage::Catalog;
using storage::Tuple;

class IndexRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::TpcrGenerator generator(
        {.num_part_keys = 2000, .matches_per_key = 8, .seed = 23});
    ASSERT_TRUE(generator.BuildLineitem(&catalog_).ok());
    ASSERT_TRUE(catalog_.AnalyzeAll().ok());
    lineitem_ = *catalog_.GetTable("lineitem");
    index_ = *catalog_.GetIndex("lineitem_partkey_idx");
  }

  std::uint64_t BruteForceCount(std::int64_t lo, std::int64_t hi) {
    std::uint64_t count = 0;
    for (storage::RowId r = 0; r < lineitem_->num_tuples(); ++r) {
      const std::int64_t k = AsInt(lineitem_->Get(r).at(1));
      if (k >= lo && k <= hi) ++count;
    }
    return count;
  }

  Catalog catalog_;
  const storage::Table* lineitem_ = nullptr;
  const storage::Index* index_ = nullptr;
};

// ---- Index::LookupRange -------------------------------------------------------

TEST_F(IndexRangeTest, RangeLookupMatchesBruteForce) {
  for (const auto& [lo, hi] : std::vector<std::pair<std::int64_t,
                                                    std::int64_t>>{
           {1, 2000}, {100, 150}, {1999, 2000}, {1, 1}, {2500, 2600}, {10, 9}}) {
    const auto span = index_->LookupRange(lo, hi);
    EXPECT_EQ(span.size(), BruteForceCount(lo, hi)) << lo << ".." << hi;
    for (const auto& entry : span) {
      EXPECT_GE(entry.key, lo);
      EXPECT_LE(entry.key, hi);
    }
  }
}

TEST_F(IndexRangeTest, RangeIsKeyOrdered) {
  const auto span = index_->LookupRange(50, 250);
  for (std::size_t i = 1; i < span.size(); ++i) {
    EXPECT_LE(span[i - 1].key, span[i].key);
  }
}

// ---- IndexRangeScanOperator -----------------------------------------------------

TEST_F(IndexRangeTest, OperatorEmitsExactRows) {
  storage::BufferManager pool;
  storage::BufferAccount account(&pool);
  ExecContext ctx;
  ctx.account = &account;
  IndexRangeScanOperator scan(index_, lineitem_, 100, 104);
  Tuple row;
  std::uint64_t count = 0;
  while (true) {
    auto step = scan.Next(&ctx, &row);
    ASSERT_TRUE(step.ok());
    if (*step == OpResult::kDone) break;
    if (*step != OpResult::kRow) continue;
    const std::int64_t key = AsInt(row.at(1));
    EXPECT_GE(key, 100);
    EXPECT_LE(key, 104);
    ++count;
  }
  EXPECT_EQ(count, BruteForceCount(100, 104));
  // Charged: at least the descent, far less than a full heap scan for
  // a 5% range.
  EXPECT_GE(account.charged(), static_cast<double>(index_->height()));
  EXPECT_LT(account.charged(),
            static_cast<double>(lineitem_->num_pages()));
}

TEST_F(IndexRangeTest, EmptyRange) {
  storage::BufferManager pool;
  storage::BufferAccount account(&pool);
  ExecContext ctx;
  ctx.account = &account;
  IndexRangeScanOperator scan(index_, lineitem_, 19000, 19100);
  Tuple row;
  auto step = scan.Next(&ctx, &row);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(*step, OpResult::kDone);
}

// ---- planner access-path choice ---------------------------------------------------

TEST_F(IndexRangeTest, SelectivePredicateChoosesIndex) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  // partkey > 1998 selects ~0.1% of rows: index pays.
  auto narrow = planner.Prepare(
      QuerySpec::ScanAggregate("lineitem", AggFunc::kCount, "")
          .WithFilter("partkey", 1998.0));
  ASSERT_TRUE(narrow.ok());
  EXPECT_NE(narrow->plan_text.find("IndexRangeScan"), std::string::npos);

  // partkey > 100 selects ~95%: sequential scan pays.
  auto wide = planner.Prepare(
      QuerySpec::ScanAggregate("lineitem", AggFunc::kCount, "")
          .WithFilter("partkey", 100.0));
  ASSERT_TRUE(wide.ok());
  EXPECT_NE(wide->plan_text.find("SeqScan"), std::string::npos);

  // Non-indexed column always seq-scans.
  auto other = planner.Prepare(
      QuerySpec::ScanAggregate("lineitem", AggFunc::kCount, "")
          .WithFilter("quantity", 49.0));
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->plan_text.find("SeqScan"), std::string::npos);
}

TEST_F(IndexRangeTest, BothPathsComputeTheSameAnswer) {
  // Force both paths by predicate width and compare results via the
  // brute force; queries must agree regardless of the chosen plan.
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  for (double threshold : {1998.0, 1950.0, 1000.0, 100.0}) {
    auto spec = QuerySpec::ScanAggregate("lineitem", AggFunc::kCount, "")
                    .WithFilter("partkey", threshold);
    auto prepared = planner.Prepare(spec);
    ASSERT_TRUE(prepared.ok());
    auto* exec = prepared->execution.get();
    while (!exec->done()) exec->Advance(25.0);
    ASSERT_TRUE(exec->status().ok());
    // Re-derive the count via the true cost path: run the operator tree
    // by hand is overkill here; instead check the work done is positive
    // and, for the narrow index plan, much smaller than a heap scan.
    EXPECT_GT(exec->completed_work(), 0.0);
    if (prepared->plan_text.find("IndexRangeScan") != std::string::npos) {
      // An index plan is never much worse than the heap scan (bitmap
      // order bounds heap touches by the page count)...
      EXPECT_LE(exec->completed_work(),
                static_cast<double>(lineitem_->num_pages()) +
                    static_cast<double>(index_->num_pages()));
      // ...and decisively cheaper when the range is truly narrow.
      if (threshold >= 1998.0) {
        EXPECT_LT(exec->completed_work(),
                  0.3 * static_cast<double>(lineitem_->num_pages()));
      }
    }
  }
}

TEST_F(IndexRangeTest, IndexPlanIsActuallyCheaper) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  auto spec_narrow =
      QuerySpec::ScanAggregate("lineitem", AggFunc::kSum, "quantity")
          .WithFilter("partkey", 1998.0);
  auto narrow_cost = planner.MeasureTrueCost(spec_narrow);
  ASSERT_TRUE(narrow_cost.ok());
  EXPECT_LT(*narrow_cost, 0.3 * static_cast<double>(lineitem_->num_pages()));
}

TEST_F(IndexRangeTest, ParsedIndexableQuery) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  auto spec =
      ParseSql("select count(*) from lineitem where partkey > 1995");
  ASSERT_TRUE(spec.ok());
  auto prepared = planner.Prepare(*spec);
  ASSERT_TRUE(prepared.ok());
  EXPECT_NE(prepared->plan_text.find("IndexRangeScan"), std::string::npos);
  while (!prepared->execution->done()) {
    prepared->execution->Advance(std::numeric_limits<double>::infinity());
  }
  EXPECT_TRUE(prepared->execution->status().ok());
}

}  // namespace
}  // namespace mqpi::engine
