// Tests for the TopN (ORDER BY ... LIMIT) query class.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "engine/planner.h"
#include "engine/sql_parser.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi::engine {
namespace {

using storage::AsDouble;
using storage::Catalog;
using storage::Tuple;

class TopNTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::TpcrGenerator generator(
        {.num_part_keys = 250, .matches_per_key = 6, .seed = 41});
    ASSERT_TRUE(generator.BuildLineitem(&catalog_).ok());
    ASSERT_TRUE(catalog_.AnalyzeAll().ok());
    lineitem_ = *catalog_.GetTable("lineitem");
  }

  /// Runs the operator tree of a TopN spec and collects sort-key values.
  std::vector<double> CollectKeys(const QuerySpec& spec, WorkUnits budget) {
    auto order_col = Col(lineitem_->schema(), spec.order_column);
    EXPECT_TRUE(order_col.ok());
    OperatorPtr input = std::make_unique<SeqScanOperator>(lineitem_);
    if (spec.has_filter) {
      auto col = Col(lineitem_->schema(), spec.filter_column);
      input = std::make_unique<FilterOperator>(
          std::move(input),
          Bin(BinaryOp::kGt, std::move(*col), Const(spec.filter_threshold)));
    }
    TopNOperator op(std::move(input), std::move(*order_col),
                    spec.descending, spec.limit);
    storage::BufferManager pool;
    storage::BufferAccount account(&pool);
    ExecContext ctx;
    ctx.account = &account;
    std::vector<double> keys;
    auto key_col = *lineitem_->schema().ColumnIndex(spec.order_column);
    Tuple row;
    while (true) {
      ctx.yield_at = account.charged() + budget;
      auto step = op.Next(&ctx, &row);
      EXPECT_TRUE(step.ok());
      if (!step.ok() || *step == OpResult::kDone) break;
      if (*step == OpResult::kRow) {
        keys.push_back(AsDouble(row.at(key_col)));
      }
    }
    return keys;
  }

  /// Brute-force expected keys.
  std::vector<double> Expected(const QuerySpec& spec) {
    std::vector<double> keys;
    auto key_col = *lineitem_->schema().ColumnIndex(spec.order_column);
    for (storage::RowId r = 0; r < lineitem_->num_tuples(); ++r) {
      const Tuple& row = lineitem_->Get(r);
      if (spec.has_filter) {
        auto filter_col =
            *lineitem_->schema().ColumnIndex(spec.filter_column);
        if (!(AsDouble(row.at(filter_col)) > spec.filter_threshold)) {
          continue;
        }
      }
      keys.push_back(AsDouble(row.at(key_col)));
    }
    if (spec.descending) {
      std::sort(keys.rbegin(), keys.rend());
    } else {
      std::sort(keys.begin(), keys.end());
    }
    if (keys.size() > spec.limit) keys.resize(spec.limit);
    return keys;
  }

  Catalog catalog_;
  const storage::Table* lineitem_ = nullptr;
};

TEST_F(TopNTest, DescendingMatchesBruteForce) {
  auto spec = QuerySpec::TopN("lineitem", "extendedprice", true, 25);
  EXPECT_EQ(CollectKeys(spec, 1e18), Expected(spec));
}

TEST_F(TopNTest, AscendingMatchesBruteForce) {
  auto spec = QuerySpec::TopN("lineitem", "extendedprice", false, 10);
  EXPECT_EQ(CollectKeys(spec, 1e18), Expected(spec));
}

TEST_F(TopNTest, FilteredTopN) {
  auto spec = QuerySpec::TopN("lineitem", "extendedprice", true, 15)
                  .WithFilter("quantity", 45.0);
  EXPECT_EQ(CollectKeys(spec, 1e18), Expected(spec));
}

TEST_F(TopNTest, BudgetedExecutionSameResult) {
  auto spec = QuerySpec::TopN("lineitem", "quantity", true, 40);
  EXPECT_EQ(CollectKeys(spec, 1e18), CollectKeys(spec, 1.5));
}

TEST_F(TopNTest, LimitLargerThanInput) {
  auto spec = QuerySpec::TopN("lineitem", "quantity", false, 1u << 20);
  const auto keys = CollectKeys(spec, 1e18);
  EXPECT_EQ(keys.size(), lineitem_->num_tuples());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(TopNTest, ThroughPlanner) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool, {.noise_sigma = 0.0});
  auto spec = QuerySpec::TopN("lineitem", "extendedprice", true, 5);
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_NE(prepared->plan_text.find("TopN"), std::string::npos);
  EXPECT_DOUBLE_EQ(prepared->estimated_result_rows, 5.0);
  while (!prepared->execution->done()) prepared->execution->Advance(30.0);
  ASSERT_TRUE(prepared->execution->status().ok());
  EXPECT_EQ(prepared->execution->rows_produced(), 5u);
  // Cost: roughly the scan pages plus hashing CPU.
  EXPECT_GT(prepared->execution->completed_work(),
            static_cast<double>(lineitem_->num_pages()) - 1.0);
}

TEST_F(TopNTest, UnknownColumnsFail) {
  storage::BufferManager pool;
  Planner planner(&catalog_, &pool);
  EXPECT_TRUE(planner.Prepare(QuerySpec::TopN("lineitem", "nope", true, 5))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(planner.Prepare(QuerySpec::TopN("nope", "quantity", true, 5))
                  .status()
                  .IsNotFound());
}

// ---- parsing ------------------------------------------------------------------

TEST(TopNParseTest, OrderByDescLimit) {
  auto spec = ParseSql(
      "select * from lineitem order by extendedprice desc limit 10");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kTopN);
  EXPECT_EQ(spec->order_column, "extendedprice");
  EXPECT_TRUE(spec->descending);
  EXPECT_EQ(spec->limit, 10u);
  EXPECT_FALSE(spec->has_filter);
}

TEST(TopNParseTest, AscendingWithAliasAndFilter) {
  auto spec = ParseSql(
      "select * from lineitem l where l.quantity > 30 "
      "order by l.extendedprice asc limit 7");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kTopN);
  EXPECT_FALSE(spec->descending);
  EXPECT_EQ(spec->limit, 7u);
  ASSERT_TRUE(spec->has_filter);
  EXPECT_EQ(spec->filter_column, "quantity");
}

TEST(TopNParseTest, DefaultIsAscending) {
  auto spec =
      ParseSql("select * from lineitem order by quantity limit 3");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->descending);
}

TEST(TopNParseTest, TemplateStillParses) {
  // The TopN grammar must not break the correlated-template path.
  auto spec = ParseSql(
      "select * from part_2 p where p.retailprice * 0.75 > "
      "(select sum(l.extendedprice) / sum(l.quantity) from lineitem l "
      "where l.partkey = p.partkey)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kTpcrPartPrice);
}

TEST(TopNParseTest, BadLimits) {
  EXPECT_FALSE(
      ParseSql("select * from t order by x limit 0").ok());
  EXPECT_FALSE(
      ParseSql("select * from t order by x limit 2.5").ok());
  EXPECT_FALSE(ParseSql("select * from t order by x").ok());
}

}  // namespace
}  // namespace mqpi::engine
