#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "pi/pi_manager.h"
#include "sim/trace.h"
#include "storage/catalog.h"

namespace mqpi {
namespace {

using engine::QuerySpec;
using sched::QueryEventKind;

class EventTraceTest : public ::testing::Test {
 protected:
  EventTraceTest() {
    options_.processing_rate = 100.0;
    options_.quantum = 0.1;
    options_.cost_model.noise_sigma = 0.0;
  }
  storage::Catalog catalog_;
  sched::RdbmsOptions options_;
};

TEST_F(EventTraceTest, RecordsFullLifecycle) {
  sched::Rdbms db(&catalog_, options_);
  sim::EventTrace trace(&db);
  auto id = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(id.ok());
  db.RunUntilIdle();

  auto events = trace.ForQuery(*id);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, QueryEventKind::kSubmitted);
  EXPECT_EQ(events[1].kind, QueryEventKind::kStarted);
  EXPECT_EQ(events[2].kind, QueryEventKind::kFinished);
  EXPECT_DOUBLE_EQ(events[0].time, 0.0);
  EXPECT_NEAR(events[2].time, 1.0, 0.11);
  EXPECT_DOUBLE_EQ(events[2].info.completed_work, 100.0);
}

TEST_F(EventTraceTest, QueueingDelayMeasured) {
  options_.max_concurrent = 1;
  sched::Rdbms db(&catalog_, options_);
  sim::EventTrace trace(&db);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(a.ok());
  db.RunUntilIdle();
  EXPECT_NEAR(trace.QueueingDelayOf(*a), 0.0, 1e-9);
  EXPECT_NEAR(trace.QueueingDelayOf(*b), 1.0, 0.11);
  EXPECT_EQ(trace.QueueingDelayOf(999), kUnknown);
}

TEST_F(EventTraceTest, BlockResumeAbortPriorityEvents) {
  sched::Rdbms db(&catalog_, options_);
  sim::EventTrace trace(&db);
  auto a = db.Submit(QuerySpec::Synthetic(1000.0));
  auto b = db.Submit(QuerySpec::Synthetic(1000.0));
  ASSERT_TRUE(db.Block(*a).ok());
  ASSERT_TRUE(db.Resume(*a).ok());
  ASSERT_TRUE(db.SetPriority(*a, Priority::kHigh).ok());
  ASSERT_TRUE(db.Abort(*b).ok());
  EXPECT_EQ(trace.Filter(QueryEventKind::kBlocked).size(), 1u);
  EXPECT_EQ(trace.Filter(QueryEventKind::kResumed).size(), 1u);
  EXPECT_EQ(trace.Filter(QueryEventKind::kAborted).size(), 1u);
  auto priority_events = trace.Filter(QueryEventKind::kPriorityChanged);
  ASSERT_EQ(priority_events.size(), 1u);
  EXPECT_EQ(priority_events[0].info.priority, Priority::kHigh);
}

TEST_F(EventTraceTest, CsvExport) {
  sched::Rdbms db(&catalog_, options_);
  sim::EventTrace trace(&db);
  ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(50.0)).ok());
  db.RunUntilIdle();
  std::ostringstream os;
  trace.PrintCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time,kind,query"), std::string::npos);
  EXPECT_NE(csv.find("submitted"), std::string::npos);
  EXPECT_NE(csv.find("finished"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST_F(EventTraceTest, WriteFileRoundTripsPrintCsv) {
  sched::Rdbms db(&catalog_, options_);
  sim::EventTrace trace(&db);
  ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(50.0)).ok());
  ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(80.0)).ok());
  db.RunUntilIdle();

  const std::string path = ::testing::TempDir() + "mqpi_trace_test.csv";
  ASSERT_TRUE(trace.WriteFile(path).ok());

  // The file is byte-identical to what PrintCsv streams.
  std::ostringstream expected;
  trace.PrintCsv(expected);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream actual;
  actual << in.rdbuf();
  EXPECT_EQ(actual.str(), expected.str());

  // Header row first, then one line per event.
  std::istringstream lines(actual.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "time,kind,query,state,completed,remaining");
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, trace.events().size());

  std::remove(path.c_str());
  EXPECT_FALSE(trace.WriteFile("/nonexistent-dir/trace.csv").ok());
}

TEST_F(EventTraceTest, EventsOrderedByTime) {
  sched::Rdbms db(&catalog_, options_);
  sim::EventTrace trace(&db);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(40.0 + 20.0 * i)).ok());
  }
  db.RunUntilIdle();
  SimTime prev = 0.0;
  for (const auto& event : trace.events()) {
    EXPECT_GE(event.time, prev - 1e-12);
    prev = event.time;
  }
  EXPECT_EQ(trace.Filter(QueryEventKind::kFinished).size(), 5u);
}

// ---- PiManager::Report --------------------------------------------------------------

TEST_F(EventTraceTest, ProgressReportRows) {
  options_.max_concurrent = 2;
  sched::Rdbms db(&catalog_, options_);
  pi::PiManager pis(&db, {.sample_interval = 0.5,
                          .single_speed_window = 0.5});
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(400.0));
  auto c = db.Submit(QuerySpec::Synthetic(100.0));  // queued
  ASSERT_TRUE(c.ok());
  pis.Track(*a);
  pis.Track(*b);
  for (int i = 0; i < 10; ++i) {  // t = 1.0: a is half done, c queued
    db.Step(options_.quantum);
    pis.AfterStep();
  }
  auto rows = pis.Report();
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    if (row.id == *a || row.id == *b) {
      EXPECT_EQ(row.state, sched::QueryState::kRunning);
      EXPECT_GT(row.fraction_done, 0.05);
      EXPECT_LT(row.fraction_done, 1.0);
      EXPECT_GT(row.speed, 0.0);
      EXPECT_GT(row.eta_multi, 0.0);
      EXPECT_LT(row.eta_multi, kInfiniteTime);
    } else {
      EXPECT_EQ(row.id, *c);
      EXPECT_EQ(row.state, sched::QueryState::kQueued);
      // Untracked: no single-query history.
      EXPECT_EQ(row.eta_single, kUnknown);
      // Queue-aware multi still has an ETA for it.
      EXPECT_GT(row.eta_multi, 0.0);
    }
    EXPECT_FALSE(row.label.empty());
  }
  // a: ~50 of 100 done at t=1.
  for (const auto& row : rows) {
    if (row.id == *a) EXPECT_NEAR(row.fraction_done, 0.5, 0.1);
  }
}

}  // namespace
}  // namespace mqpi
