// Observability tests: the runtime tracer (ring-buffer bounds, drop
// policy, Chrome trace_event / JSONL export), the estimate-accuracy
// auditor (closed-form trajectories plus the §2.2 standard-case
// workload through PiService), Prometheus text exposition, and a
// TSan-targeted stress test with concurrent accuracy-report readers —
// the whole suite carries the "sanitize" label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/planner.h"
#include "obs/auditor.h"
#include "obs/tracer.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

namespace mqpi::obs {
namespace {

using engine::QuerySpec;

// ---- tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer;  // default options: disabled
  EXPECT_FALSE(tracer.enabled());
  tracer.Instant("test", "event");
  tracer.CounterValue("test", "value", 1.0);
  { TraceSpan span(&tracer, "test", "span"); }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(TracerTest, RecordsEventsInSequenceOrder) {
  Tracer tracer({.capacity = 64, .stripes = 2, .enabled = true});
  tracer.Instant("cat_a", "first", /*query=*/7, "t", 1.5);
  tracer.Instant("cat_b", "second");
  {
    TraceSpan span(&tracer, "cat_c", "work", /*query=*/9);
    span.arg("items", 3.0);
    span.arg("extra", 4.0);
    span.arg("ignored", 5.0);  // only two args stick
  }
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);

  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  EXPECT_STREQ(events[0].name, "first");
  EXPECT_EQ(events[0].phase, TracePhase::kInstant);
  EXPECT_EQ(events[0].query, 7u);
  EXPECT_STREQ(events[0].arg1_key, "t");
  EXPECT_DOUBLE_EQ(events[0].arg1, 1.5);

  EXPECT_STREQ(events[2].name, "work");
  EXPECT_EQ(events[2].phase, TracePhase::kComplete);
  EXPECT_EQ(events[2].query, 9u);
  EXPECT_STREQ(events[2].arg1_key, "items");
  EXPECT_STREQ(events[2].arg2_key, "extra");
  // The span's timestamp is its *start*: ts + dur never exceeds the
  // recording clock, so spans nest correctly in the viewer.
  EXPECT_GE(events[2].ts_ns + events[2].dur_ns, events[0].ts_ns);
}

TEST(TracerTest, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer({.capacity = 16, .stripes = 1, .enabled = true});
  for (int i = 0; i < 40; ++i) {
    tracer.Instant("test", "tick", kInvalidQueryId, "i", i);
  }
  EXPECT_EQ(tracer.recorded(), 40u);
  EXPECT_EQ(tracer.dropped(), 24u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 16u);
  // Drop policy is oldest-first: the retained window is the most
  // recent 16 events, still in record order.
  EXPECT_DOUBLE_EQ(events.front().arg1, 24.0);
  EXPECT_DOUBLE_EQ(events.back().arg1, 39.0);
}

TEST(TracerTest, ClearResetsEverything) {
  Tracer tracer({.capacity = 8, .stripes = 1, .enabled = true});
  for (int i = 0; i < 20; ++i) tracer.Instant("test", "e");
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.Clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
  tracer.Instant("test", "after");
  EXPECT_EQ(tracer.Events().size(), 1u);
}

TEST(TracerTest, ChromeTraceAndJsonlExportFormats) {
  Tracer tracer({.capacity = 32, .stripes = 1, .enabled = true});
  tracer.Instant("query", "submitted", /*query=*/1, "t", 0.0);
  { TraceSpan span(&tracer, "rdbms", "step"); }
  tracer.CounterValue("service", "running", 2.0);

  std::ostringstream chrome;
  tracer.ExportChromeTrace(chrome);
  const std::string trace = chrome.str();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"rdbms\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"query\":1,\"t\":0}"), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Structurally valid JSON as far as brace/bracket balance goes.
  int braces = 0, brackets = 0;
  for (char c : trace) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  std::ostringstream jsonl;
  tracer.ExportJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  int count = 0;
  const std::regex object(R"(^\{"ts":[0-9.eE+-]+,.*\}$)");
  while (std::getline(lines, line)) {
    EXPECT_TRUE(std::regex_match(line, object)) << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(TracerTest, StripedRecordingFromManyThreads) {
  Tracer tracer({.capacity = 4096, .stripes = 4, .enabled = true});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(&tracer, "test", "work");
        span.arg("i", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto events = tracer.Events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
}

// ---- auditor: closed-form trajectories --------------------------------------

EstimateObservation Sample(QueryId id, SimTime t, SimTime single,
                           SimTime multi) {
  EstimateObservation obs;
  obs.id = id;
  obs.time = t;
  obs.eta_single = single;
  obs.eta_multi = multi;
  return obs;
}

EstimateObservation Terminal(QueryId id, SimTime finish, bool finished) {
  EstimateObservation obs;
  obs.id = id;
  obs.time = finish;
  obs.terminal = true;
  obs.finished = finished;
  obs.finish_time = finish;
  return obs;
}

TEST(AuditorTest, ExactEstimatorScoresZeroErrorBiasedOneScoresItsBias) {
  EstimateAuditor auditor;
  // Query 1: arrival 0, finish 10. The multi estimate is exact
  // (10 - t); the single estimate is always double the truth.
  for (int t = 1; t <= 9; ++t) {
    const double truth = 10.0 - t;
    ASSERT_FALSE(
        auditor.Observe(Sample(1, t, 2.0 * truth, truth)).has_value());
  }
  auto report = auditor.Observe(Terminal(1, 10.0, /*finished=*/true));
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->finished);
  EXPECT_DOUBLE_EQ(report->lifetime, 10.0);

  EXPECT_EQ(report->multi.samples, 9);
  EXPECT_NEAR(report->multi.mape, 0.0, 1e-12);
  EXPECT_NEAR(report->multi.bias, 0.0, 1e-12);
  EXPECT_EQ(report->multi.monotonicity_violations, 0);
  // Exact from the first sample: converged at t=1, 10% of lifetime.
  EXPECT_DOUBLE_EQ(report->multi.converged_at, 1.0);
  EXPECT_NEAR(report->multi.converged_fraction, 0.1, 1e-12);

  EXPECT_NEAR(report->single.mape, 1.0, 1e-12);  // always +100% off
  EXPECT_NEAR(report->single.bias, 1.0, 1e-12);  // pessimistic
  EXPECT_EQ(report->single.converged_at, kUnknown);
  EXPECT_EQ(report->single.converged_fraction, kUnknown);

  const AccuracyAggregate agg = auditor.Aggregate();
  EXPECT_EQ(agg.queries_scored, 1u);
  EXPECT_EQ(agg.never_converged_single, 1u);
  EXPECT_EQ(agg.never_converged_multi, 0u);
}

TEST(AuditorTest, MonotonicityViolationsCountRises) {
  EstimateAuditor auditor;
  // Remaining-time readings that rise twice: 8 -> 9 (violation) and
  // 5 -> 7 (violation); the in-between declines are fine.
  const double readings[] = {8.0, 9.0, 6.0, 5.0, 7.0, 3.0};
  double t = 1.0;
  for (double reading : readings) {
    auditor.Observe(Sample(2, t, reading, reading));
    t += 1.0;
  }
  auto report = auditor.Observe(Terminal(2, 10.0, /*finished=*/true));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->single.monotonicity_violations, 2);
  EXPECT_EQ(report->multi.monotonicity_violations, 2);
}

TEST(AuditorTest, AbortedQueriesAreCountedNotScored) {
  EstimateAuditor auditor;
  auditor.Observe(Sample(3, 1.0, 4.0, 4.0));
  auto report = auditor.Observe(Terminal(3, 2.0, /*finished=*/false));
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->finished);
  EXPECT_EQ(report->single.samples, 0);
  EXPECT_EQ(report->multi.mape, kUnknown);
  const AccuracyAggregate agg = auditor.Aggregate();
  EXPECT_EQ(agg.queries_scored, 0u);
  EXPECT_EQ(agg.queries_aborted, 1u);
  // Re-observing a retired id is ignored.
  EXPECT_FALSE(auditor.Observe(Sample(3, 3.0, 1.0, 1.0)).has_value());
}

TEST(AuditorTest, UnusableEstimatesAreSkippedNotScored) {
  EstimateAuditor auditor;
  auditor.Observe(Sample(4, 1.0, kUnknown, 9.0));
  auditor.Observe(Sample(4, 2.0, kInfiniteTime, 8.0));
  auditor.Observe(Sample(4, 3.0, -2.0, 7.0));
  auto report = auditor.Observe(Terminal(4, 10.0, /*finished=*/true));
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->single.samples, 0);
  EXPECT_EQ(report->single.mape, kUnknown);
  EXPECT_EQ(report->multi.samples, 3);
  EXPECT_NEAR(report->multi.mape, 0.0, 1e-12);
}

TEST(AuditorTest, CompletedRetentionIsBoundedButAggregateIsNot) {
  AuditorOptions options;
  options.retain_completed = 2;
  EstimateAuditor auditor(options);
  for (QueryId id = 1; id <= 3; ++id) {
    auditor.Observe(Sample(id, 1.0, 9.0, 9.0));
    auditor.Observe(Terminal(id, 10.0, /*finished=*/true));
  }
  EXPECT_EQ(auditor.Completed().size(), 2u);
  EXPECT_EQ(auditor.ReportFor(1).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(auditor.ReportFor(3).ok());
  EXPECT_EQ(auditor.Aggregate().queries_scored, 3u);  // running sums
}

TEST(AuditorTest, ConvergenceHealsAfterLateViolation) {
  AuditorOptions options;
  options.convergence_band = 0.10;
  EstimateAuditor auditor(options);
  // Truth at t is 10 - t. In band at t=1..3, way off at t=4, back in
  // band t=5..9: converged_at must be 5, not 1.
  for (int t = 1; t <= 9; ++t) {
    const double truth = 10.0 - t;
    const double estimate = t == 4 ? 2.0 * truth : truth;
    auditor.Observe(Sample(5, t, estimate, estimate));
  }
  auto report = auditor.Observe(Terminal(5, 10.0, /*finished=*/true));
  ASSERT_TRUE(report.has_value());
  EXPECT_DOUBLE_EQ(report->multi.converged_at, 5.0);
  EXPECT_NEAR(report->multi.converged_fraction, 0.5, 1e-12);
}

TEST(AuditorTest, TruthResolutionForgivesSubResolutionError) {
  // The estimator predicts completion at t=10 but the publisher stamps
  // the finish at the end of the enclosing quantum (10.1): every sample
  // is off by exactly one quantum. With truth_resolution covering that
  // stamp quantization the trajectory scores as exact; without it the
  // endgame samples blow up relative error and kill convergence.
  auto run = [](double resolution) {
    AuditorOptions options;
    options.truth_resolution = resolution;
    EstimateAuditor auditor(options);
    for (int i = 1; i <= 99; ++i) {
      const double t = 0.1 * i;
      auditor.Observe(Sample(9, t, 10.0 - t, 10.0 - t));
    }
    return auditor.Observe(Terminal(9, 10.1, /*finished=*/true));
  };

  auto forgiving = run(/*resolution=*/0.2);
  ASSERT_TRUE(forgiving.has_value());
  EXPECT_DOUBLE_EQ(forgiving->multi.mape, 0.0);
  EXPECT_DOUBLE_EQ(forgiving->multi.bias, 0.0);
  EXPECT_NEAR(forgiving->multi.converged_at, 0.1, 1e-12);

  auto raw = run(/*resolution=*/0.0);
  ASSERT_TRUE(raw.has_value());
  EXPECT_GT(raw->multi.mape, 0.0);
  // The final scored sample (truth 0.3, estimate 0.2) is out of the 10%
  // band, so the raw trajectory never converges.
  EXPECT_EQ(raw->multi.converged_at, kUnknown);
}

// ---- auditor through the service: the §2.2 standard case --------------------

// Three queries of 100/200/300 U submitted together at C = 100 U/s,
// zero noise: processor sharing finishes them at t = 3, 5, and 6. The
// multi-query PI knows the full running set, so its remaining-time
// estimates are exact from the first quantum; the single-query PI
// extrapolates each query's own current speed and badly overestimates
// the long query early on (it cannot see the others finishing).
TEST(ServiceAuditTest, MultiPiBeatsSinglePiOnStandardCaseWorkload) {
  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession("audit");

  auto q1 = session->Submit(QuerySpec::Synthetic(100.0));
  auto q2 = session->Submit(QuerySpec::Synthetic(200.0));
  auto q3 = session->Submit(QuerySpec::Synthetic(300.0));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(q3.ok());
  ASSERT_TRUE(service.AdvanceUntilIdle(/*deadline=*/30.0).ok());

  const EstimateAuditor* auditor = service.auditor();
  const AccuracyAggregate agg = auditor->Aggregate();
  ASSERT_EQ(agg.queries_scored, 3u);
  EXPECT_EQ(agg.queries_aborted, 0u);

  // Multi-query PI: exact up to quantum granularity.
  EXPECT_LT(agg.mean_mape_multi, 0.05);
  EXPECT_EQ(agg.never_converged_multi, 0u);
  // Single-query PI: the long query's early estimates are ~60% high.
  auto long_report = auditor->ReportFor(*q3);
  ASSERT_TRUE(long_report.ok());
  EXPECT_GT(long_report->single.mape, 0.15);
  EXPECT_GT(long_report->single.bias, 0.0);  // overestimates
  EXPECT_GT(agg.mean_mape_single, agg.mean_mape_multi);

  // Completion published the labeled accuracy metrics.
  const std::string dump = service.metrics()->TextDump();
  EXPECT_NE(
      dump.find("pi.estimate_mape{estimator=multi,priority=normal}"),
      std::string::npos);
  EXPECT_NE(
      dump.find("pi.estimate_mape{estimator=single,priority=normal}"),
      std::string::npos);
  EXPECT_NE(dump.find("counter   pi.queries_scored 3"), std::string::npos);
  session->Close();
}

TEST(ServiceAuditTest, DisablingTheAuditorKeepsItEmpty) {
  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  options.enable_auditor = false;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(50.0)).ok());
  ASSERT_TRUE(service.AdvanceUntilIdle(30.0).ok());
  EXPECT_EQ(service.auditor()->Aggregate().queries_scored, 0u);
  EXPECT_EQ(service.auditor()->live_queries(), 0u);
  session->Close();
}

// ---- exposition + trace through a quickstart-sized service run --------------

TEST(ServiceObsTest, QuickstartRunExportsValidTraceAndPrometheusText) {
  GlobalTracer()->Clear();
  GlobalTracer()->set_enabled(true);

  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 200.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession("quickstart");
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(100.0)).ok());
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(300.0)).ok());
  ASSERT_TRUE(service.AdvanceUntilIdle(/*deadline=*/30.0).ok());
  session->Close();

  GlobalTracer()->set_enabled(false);

  // The whole stack recorded: engine steps, PI recomputation, service
  // publication, query lifecycle instants.
  std::ostringstream chrome;
  GlobalTracer()->ExportChromeTrace(chrome);
  const std::string trace = chrome.str();
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"cat\":\"rdbms\",\"name\":\"step\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"pi\",\"name\":\"after_step\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"service\",\"name\":\"step_and_publish\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"query\",\"name\":\"submitted\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"query\",\"name\":\"finished\""),
            std::string::npos);
  int braces = 0;
  for (char c : trace) braces += c == '{' ? 1 : c == '}' ? -1 : 0;
  EXPECT_EQ(braces, 0);

  // Prometheus exposition: every non-empty line is a # TYPE header or
  // a `name{labels} value` sample.
  const std::string prom = service.metrics()->PrometheusDump();
  ASSERT_FALSE(prom.empty());
  const std::regex type_line(
      R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$)");
  const std::regex sample_line(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")"
      R"((,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$)");
  std::istringstream lines(prom);
  std::string line;
  int samples = 0, types = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (std::regex_match(line, type_line)) {
      ++types;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_line)) << line;
      ++samples;
    }
  }
  EXPECT_GT(types, 5);
  EXPECT_GT(samples, types);
  // Spot-check the histogram expansion and name sanitization.
  EXPECT_NE(prom.find("# TYPE step_wall_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_sum"), std::string::npos);
  EXPECT_NE(prom.find("step_wall_ms_count"), std::string::npos);
  EXPECT_NE(prom.find("pi_estimate_mape_bucket{estimator=\"multi\","
                      "priority=\"normal\",le=\"0.01\"}"),
            std::string::npos);

  GlobalTracer()->Clear();
}

// ---- TSan stress: concurrent accuracy readers -------------------------------

// Ticker-mode service with tracing and auditing on; writers submit
// queries while readers hammer the accuracy report, the Prometheus
// dump, and the trace buffer. TSan (ctest -L sanitize on the
// -DMQPI_SANITIZE=thread build) proves the locking.
TEST(ServiceObsStressTest, ConcurrentAccuracyAndTraceReaders) {
  GlobalTracer()->Clear();
  GlobalTracer()->set_enabled(true);

  storage::Catalog catalog;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 400.0;
  options.rdbms.quantum = 0.05;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.time_scale = 0.0;
  service::PiService service(&catalog, options);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &done, r] {
      while (!done.load(std::memory_order_acquire)) {
        const AccuracyAggregate agg = service.auditor()->Aggregate();
        if (agg.queries_scored > 0) {
          // Means exist whenever anything scored; NaN would mean a
          // torn read of the running sums.
          EXPECT_FALSE(std::isnan(agg.mean_mape_multi));
        }
        switch (r) {
          case 0:
            (void)service.auditor()->RenderText();
            break;
          case 1:
            (void)service.metrics()->PrometheusDump();
            break;
          default:
            (void)service.tracer()->Events();
            break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  std::vector<std::thread> writers;
  std::atomic<int> submit_failures{0};
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&service, &submit_failures, w] {
      auto session = service.OpenSession("writer-" + std::to_string(w));
      for (int i = 0; i < 5; ++i) {
        if (!session->Submit(QuerySpec::Synthetic(40.0 + 10.0 * i)).ok()) {
          submit_failures.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Let this writer's queries drain before close (close aborts).
      for (int i = 0; i < 200 && session->LiveQueries() > 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      (void)session->Close();
    });
  }

  for (auto& writer : writers) writer.join();
  EXPECT_EQ(submit_failures.load(), 0);
  ASSERT_TRUE(service.WaitUntilIdle(/*timeout_seconds=*/60.0));
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  service.Stop();

  GlobalTracer()->set_enabled(false);
  const AccuracyAggregate agg = service.auditor()->Aggregate();
  EXPECT_EQ(agg.queries_scored + agg.queries_aborted, 10u);
  EXPECT_GT(GlobalTracer()->recorded(), 0u);
  GlobalTracer()->Clear();
}

}  // namespace
}  // namespace mqpi::obs
