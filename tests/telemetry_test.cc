// Telemetry-plane tests: JSON escaping in the shared trace renderer,
// the scoped hot-path profiler (hierarchy, disabled-is-inert), the
// flight recorder (bounded ring, gap watch, throttled auto-dump), the
// HTTP exporter's /metrics, /healthz, and /statusz endpoints against
// a live PiServer, the STATS wire round trip with per-connection
// overlays, TSan-checked scrape + STATS hammering during subscriber
// churn, and the chaos path: a forced watchdog restart must leave a
// flight-recorder dump on disk.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/planner.h"
#include "fault/fault_injector.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

namespace mqpi {
namespace {

using engine::QuerySpec;
using fault::FaultInjector;
using net::Client;
using net::PiServer;
using net::PiServerOptions;
using net::StatsReply;
using obs::FlightEvent;
using obs::FlightEventKind;
using obs::FlightRecorder;
using obs::FlightRecorderOptions;
using obs::ProfScope;
using obs::Profiler;
using obs::TraceEvent;
using obs::TracePhase;
using service::PiService;
using service::PiServiceOptions;

PiServiceOptions ManualOptions() {
  PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  return options;
}

// ---- JSON escaping in the shared trace renderer -----------------------------

TEST(TraceJsonTest, RenderEscapesQuotesBackslashesAndControls) {
  TraceEvent event;
  event.category = "cat\"with\\quote";
  event.name = "line\nbreak\ttab\x01" "end";
  event.phase = TracePhase::kInstant;
  event.arg1_key = "key\"1";
  event.arg1 = 2.5;
  const std::string json = obs::RenderTraceEventJson(event);

  EXPECT_NE(json.find("cat\\\"with\\\\quote"), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak\\ttab\\u0001end"), std::string::npos)
      << json;
  EXPECT_NE(json.find("key\\\"1"), std::string::npos) << json;
  // The rendered object must stay a single line with no raw controls.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(TraceJsonTest, CleanStringsPassThroughUnchanged) {
  TraceEvent event;
  event.category = "service";
  event.name = "step_quantum";
  const std::string json = obs::RenderTraceEventJson(event);
  EXPECT_NE(json.find("\"cat\":\"service\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"step_quantum\""), std::string::npos) << json;
}

// ---- profiler ---------------------------------------------------------------

TEST(ProfilerTest, DisabledScopeIsInert) {
  Profiler profiler;  // disabled by default
  obs::ProfSite* site = profiler.Site("test.off");
  for (int i = 0; i < 100; ++i) {
    ProfScope scope(&profiler, site);
  }
  EXPECT_EQ(site->count(), 0u);
  EXPECT_EQ(site->total_ns(), 0u);
}

TEST(ProfilerTest, RecordsCountTotalAndMax) {
  Profiler profiler;
  profiler.set_enabled(true);
  obs::ProfSite* site = profiler.Site("test.on");
  for (int i = 0; i < 50; ++i) {
    ProfScope scope(&profiler, site);
  }
  EXPECT_EQ(site->count(), 50u);
  EXPECT_GT(site->total_ns(), 0u);
  EXPECT_GE(site->max_ns(), site->total_ns() / 50);
  EXPECT_GT(site->ewma_ns(), 0.0);

  const auto snapshot = profiler.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "test.on");
  EXPECT_EQ(snapshot[0].count, 50u);
  EXPECT_GT(snapshot[0].mean_ns, 0.0);

  profiler.Reset();
  EXPECT_EQ(site->count(), 0u);
  EXPECT_EQ(site->total_ns(), 0u);
}

TEST(ProfilerTest, NestedScopesChargeChildToParent) {
  Profiler profiler;
  profiler.set_enabled(true);
  obs::ProfSite* outer = profiler.Site("test.outer");
  obs::ProfSite* inner = profiler.Site("test.inner");
  {
    ProfScope a(&profiler, outer);
    {
      ProfScope b(&profiler, inner);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(outer->count(), 1u);
  EXPECT_EQ(inner->count(), 1u);
  // The child's full duration was charged to the parent, so the
  // parent's self time is total minus (at least) the child's sleep.
  EXPECT_GE(outer->child_ns(), inner->total_ns());
  EXPECT_GE(outer->total_ns(), outer->child_ns());

  const auto snapshot = profiler.Snapshot();
  for (const auto& row : snapshot) {
    if (row.name == "test.outer") {
      EXPECT_EQ(row.self_ns, row.total_ns - row.child_ns);
    }
  }
}

TEST(ProfilerTest, SiteRegistrationIsStable) {
  Profiler profiler;
  obs::ProfSite* first = profiler.Site("test.same");
  obs::ProfSite* second = profiler.Site("test.same");
  EXPECT_EQ(first, second);
  EXPECT_NE(profiler.Summary().find("test.same"), std::string::npos);
}

// ---- flight recorder --------------------------------------------------------

TEST(FlightRecorderTest, RingKeepsNewestEventsOldestFirst) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightEventKind::kNote, "test", "event",
                    static_cast<double>(i));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, 6.0 + static_cast<double>(i));
  }
}

TEST(FlightRecorderTest, DisabledRecordsNothing) {
  FlightRecorderOptions options;
  options.enabled = false;
  FlightRecorder recorder(options);
  recorder.Record(FlightEventKind::kNote, "test", "event");
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(FlightRecorderTest, ObserveGapRecordsOnlyMismatches) {
  FlightRecorder recorder;
  recorder.ObserveGap("test", "stream", 5, 5);  // in order: no event
  EXPECT_EQ(recorder.recorded(), 0u);
  recorder.ObserveGap("test", "stream", 5, 9);  // skipped 4
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kSequenceGap);
  EXPECT_DOUBLE_EQ(events[0].value, 4.0);
  EXPECT_EQ(events[0].sequence, 9u);
}

TEST(FlightRecorderTest, DumpStringRendersJsonlThroughTracerPath) {
  FlightRecorder recorder;
  recorder.Record(FlightEventKind::kSpan, "svc", "step", 1500.0, 7);
  recorder.Record(FlightEventKind::kFault, "fault", "stall", 2.0);
  const std::string dump = recorder.DumpString();
  // One JSON object per line, Chrome-trace phases from the Tracer
  // renderer: spans are complete ("X") events, the rest instants.
  EXPECT_NE(dump.find("\"ph\":\"X\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"ph\":\"i\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"name\":\"step\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"seq\":7"), std::string::npos) << dump;
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST(FlightRecorderTest, TriggerAutoDumpsAndThrottles) {
  const std::string dir = ::testing::TempDir() + "mqpi_flight_trigger";
  ::mkdir(dir.c_str(), 0755);
  FlightRecorderOptions options;
  options.auto_dump = true;
  options.dump_dir = dir;
  options.min_dump_interval_s = 3600.0;  // second trigger must throttle
  FlightRecorder recorder(options);
  recorder.Record(FlightEventKind::kNote, "test", "before_trigger");

  const std::string path = recorder.Trigger("unit_test");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_STREQ(recorder.last_trigger(), "unit_test");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("before_trigger"), std::string::npos);

  EXPECT_TRUE(recorder.Trigger("unit_test").empty());  // throttled
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.triggers(), 2u);  // the trigger itself still counts
  std::remove(path.c_str());
}

// ---- HTTP exporter + STATS over a live server -------------------------------

// Blocking one-shot HTTP GET against 127.0.0.1:`port`; returns the
// full response (status line + headers + body).
std::string HttpGet(std::uint16_t port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Connection: close ends every response
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PiServiceOptions options = ManualOptions();
    options.enable_profiler = true;
    service_ = std::make_unique<PiService>(&catalog_, options);
    PiServerOptions server_options;
    server_options.http_port = 0;  // ephemeral
    server_ = std::make_unique<PiServer>(service_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->http_port(), 0);
  }

  void TearDown() override {
    server_->Stop();
    service_.reset();
    obs::GlobalProfiler()->set_enabled(false);
    obs::GlobalProfiler()->Reset();
  }

  storage::Catalog catalog_;
  std::unique_ptr<PiService> service_;
  std::unique_ptr<PiServer> server_;
};

TEST_F(TelemetryServerTest, MetricsEndpointServesPrometheusText) {
  auto session = service_->OpenSession("scrape");
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(100.0)).ok());
  service_->PublishNow();

  const std::string response =
      HttpGet(server_->http_port(), "GET /metrics HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  // Dotted registry names arrive underscored, with TYPE headers.
  EXPECT_NE(response.find("# TYPE service_snapshots_published counter"),
            std::string::npos);
  EXPECT_NE(response.find("service_uptime_quanta"), std::string::npos);
  EXPECT_NE(response.find("service_ticker_last_step_age_quanta"),
            std::string::npos);
  EXPECT_NE(response.find("net_publish_to_write_ns_bucket"),
            std::string::npos);
  session->Close();
}

TEST_F(TelemetryServerTest, HealthzReportsLiveTicker) {
  service_->PublishNow();
  const std::string response =
      HttpGet(server_->http_port(), "GET /healthz HTTP/1.1");
  // Manual mode is never busy, so the service reads as live.
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok\n"), std::string::npos);
  EXPECT_NE(response.find("uptime_quanta "), std::string::npos);
  EXPECT_NE(response.find("watchdog_restarts 0"), std::string::npos);
}

TEST_F(TelemetryServerTest, StatuszShowsProfilerAndFlightRecorder) {
  auto session = service_->OpenSession("statusz");
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(100.0)).ok());
  service_->Advance(0.5);
  service_->PublishNow();

  const std::string response =
      HttpGet(server_->http_port(), "GET /statusz HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("== profiler =="), std::string::npos);
  EXPECT_NE(response.find("== flight recorder =="), std::string::npos);
  // The profiler was enabled, so stepped sites must show up with data.
  EXPECT_NE(response.find("sched.step"), std::string::npos) << response;
  EXPECT_NE(response.find("service.build_snapshot"), std::string::npos);
  session->Close();
}

TEST_F(TelemetryServerTest, BadRequestsGetHttpErrors) {
  EXPECT_NE(HttpGet(server_->http_port(), "GET /nope HTTP/1.1")
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(HttpGet(server_->http_port(), "POST /metrics HTTP/1.1")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(HttpGet(server_->http_port(), "garbage").find("400 Bad Request"),
            std::string::npos);
  EXPECT_GE(server_->http()->requests_error(), 3u);
}

TEST_F(TelemetryServerTest, EpollAddFailureDoesNotLeakConnectionSlots) {
  // Regression: AcceptPending used to ignore the epoll_ctl(ADD) return
  // and track the fd anyway. An fd that never reaches the epoll never
  // becomes readable, so it was never closed and permanently counted
  // toward max_connections — 64 such failures starved /metrics forever.
  // Inject exactly max_connections' worth of registration failures; if
  // any of those fds leaked into the scrape map, the follow-up scrape
  // below would be refused at the cap.
  constexpr int kMaxConnections = 64;  // HttpExporter::Options default
  const std::uint64_t errors_before = server_->http()->requests_error();
  server_->http()->InjectEpollAddFailuresForTest(kMaxConnections);
  for (int i = 0; i < kMaxConnections; ++i) {
    // Each refused connection is closed by the server without a
    // response; the client just sees EOF.
    const std::string refused =
        HttpGet(server_->http_port(), "GET /metrics HTTP/1.1");
    EXPECT_EQ(refused, "");
  }
  // The tally is incremented on the loop thread just before the close
  // whose EOF the client observed; give the relaxed counter a moment.
  const std::uint64_t want = errors_before + kMaxConnections;
  for (int spin = 0; spin < 200 && server_->http()->requests_error() < want;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->http()->requests_error(), want);

  const std::string response =
      HttpGet(server_->http_port(), "GET /metrics HTTP/1.1");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST_F(TelemetryServerTest, StatsRoundTripWithConnectionOverlay) {
  auto connected = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(connected.ok());
  auto client = std::move(connected).value();
  auto session = service_->OpenSession("stats");
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(200.0)).ok());
  service_->PublishNow();

  ASSERT_TRUE(client->Subscribe().ok());
  service_->Advance(0.2);
  service_->PublishNow();
  ASSERT_TRUE(client->WaitForSequence(2, 5.0).ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->snapshots_published, 2u);
  EXPECT_GE(stats->uptime_quanta, 1u);
  EXPECT_FALSE(stats->degraded);
  EXPECT_EQ(stats->connections, 1u);
  EXPECT_EQ(stats->subscriptions, 1u);
  EXPECT_GE(stats->frames_sent, 3u);  // SUBSCRIBE reply + full + delta
  EXPECT_GT(stats->bytes_sent, 0u);
  EXPECT_EQ(stats->consumers_shed, 0u);
  // Per-connection overlay: this connection saw one full frame (on
  // subscribe) and at least one delta push.
  EXPECT_GE(stats->conn_full_frames, 1u);
  EXPECT_GE(stats->conn_delta_frames, 1u);
  EXPECT_GE(stats->conn_frames_sent, 2u);
  EXPECT_GT(stats->conn_bytes_sent, 0u);
  EXPECT_GE(stats->conn_queue_hw_frames, 1u);

  // The push path stamped publish→write latency into the histogram.
  EXPECT_GT(service_->metrics()
                ->histogram("net.publish_to_write_ns")
                ->count(),
            0u);
  session->Close();
}

TEST_F(TelemetryServerTest, StatsRequestSurvivesWireRoundTrip) {
  StatsReply reply;
  reply.uptime_quanta = 41;
  reply.ticker_age_quanta = 1.5;
  reply.snapshots_published = 99;
  reply.degraded = true;
  reply.conn_queue_hw_bytes = 1u << 20;
  const std::string bytes = net::EncodeFrame(7, net::FrameBody{reply});
  net::Frame decoded;
  std::size_t consumed = 0;
  Status error;
  ASSERT_EQ(net::TryDecodeFrame(bytes.data(), bytes.size(), bytes.size(),
                                &decoded, &consumed, &error),
            net::DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_TRUE(std::holds_alternative<StatsReply>(decoded.body));
  const auto& out = std::get<StatsReply>(decoded.body);
  EXPECT_EQ(out.uptime_quanta, 41u);
  EXPECT_DOUBLE_EQ(out.ticker_age_quanta, 1.5);
  EXPECT_EQ(out.snapshots_published, 99u);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.conn_queue_hw_bytes, 1u << 20);
}

// ---- concurrency: scrapes + STATS racing subscriber churn (TSan) -----------

TEST(TelemetryConcurrencyTest, ScrapesAndStatsDuringSubscriberChurn) {
  storage::Catalog catalog;
  PiServiceOptions options = ManualOptions();
  options.start_ticker = true;  // live ticker races every scrape
  options.time_scale = 0.0;
  options.enable_profiler = true;
  PiService service(&catalog, options);
  PiServerOptions server_options;
  server_options.http_port = 0;
  PiServer server(&service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto session = service.OpenSession("churn-load");
  for (int i = 0; i < 6; ++i) {
    (void)session->Submit(QuerySpec::Synthetic(300.0 + 20.0 * i));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Subscriber churn + STATS on the wire protocol.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 6; ++round) {
        auto client = Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (!(*client)->Subscribe().ok()) {
          failures.fetch_add(1);
          return;
        }
        (void)(*client)->WaitForSequence(1, 5.0);
        auto stats = (*client)->Stats();
        if (!stats.ok() || stats->connections < 1) failures.fetch_add(1);
        if (round % 2 == 0) (void)(*client)->Unsubscribe();
      }
    });
  }
  // HTTP scrapers on the same event loop.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const char* paths[] = {"GET /metrics HTTP/1.1", "GET /healthz HTTP/1.1",
                             "GET /statusz HTTP/1.1"};
      for (int round = 0; round < 8; ++round) {
        const std::string response =
            HttpGet(server.http_port(), paths[(t + round) % 3]);
        if (response.find("HTTP/1.1") != 0) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.http()->requests_ok(), 16u);
  session->Close();
  server.Stop();
  service.Stop();
  obs::GlobalProfiler()->set_enabled(false);
  obs::GlobalProfiler()->Reset();
}

// ---- chaos: a tripped watchdog must leave a flight dump ---------------------

TEST(TelemetryChaosTest, WatchdogRestartDumpsFlightRecorder) {
  const std::string dir = ::testing::TempDir() + "mqpi_flight_watchdog";
  ::mkdir(dir.c_str(), 0755);

  storage::Catalog catalog;
  FaultInjector injector;
  PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.enable_auditor = false;
  options.fault = &injector;
  options.time_scale = 0.0;
  options.watchdog.poll_interval_s = 0.01;
  options.watchdog.stall_threshold_s = 0.05;
  options.watchdog.backoff_initial_s = 0.01;
  options.flight_recorder.auto_dump = true;
  options.flight_recorder.dump_dir = dir;
  options.flight_recorder.min_dump_interval_s = 0.0;
  // The first busy tick goes deaf for 30 wall seconds; the watchdog
  // restarts the ticker, which must trip a flight-recorder dump.
  injector.ArmSchedule(fault::kServiceTickerStall, {0}, 30.0);
  PiService service(&catalog, options);
  auto session = service.OpenSession();
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(200.0)).ok());

  ASSERT_TRUE(service.WaitUntilIdle(/*timeout_seconds=*/20.0));
  EXPECT_GE(service.metrics()->counter("service.watchdog_restarts")->value(),
            1u);
  FlightRecorder* flight = service.flight_recorder();
  EXPECT_GE(flight->triggers(), 1u);
  ASSERT_GE(flight->dumps(), 1u);

  // The ring holds the restart marker, and the restart trigger left a
  // dump file on disk (a degraded publish around the stall may have
  // dumped first, so scan rather than assume the dump number).
  const std::string dump = flight->DumpString();
  EXPECT_NE(dump.find("watchdog_restart"), std::string::npos);
  bool found_restart_dump = false;
  DIR* scan = ::opendir(dir.c_str());
  ASSERT_NE(scan, nullptr);
  while (dirent* entry = ::readdir(scan)) {
    const std::string name = entry->d_name;
    if (name.find("flight_") == 0 &&
        name.find("watchdog_restart") != std::string::npos) {
      found_restart_dump = true;
    }
  }
  ::closedir(scan);
  EXPECT_TRUE(found_restart_dump);
  service.Stop();
}

}  // namespace
}  // namespace mqpi
