#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/priority.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace mqpi {
namespace {

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.ToString(), a.ToString());
  EXPECT_TRUE(b.code() == StatusCode::kInternal);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, ExponentialHasRightMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Observe(rng.Exponential(0.25));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Observe(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, LogNormalFactorMedianNearOne) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.LogNormalFactor(0.5));
  EXPECT_NEAR(Percentile(xs, 50.0), 1.0, 0.05);
  EXPECT_EQ(rng.LogNormalFactor(0.0), 1.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

// ---- ZipfSampler ---------------------------------------------------------------

class ZipfSamplerParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerParamTest, ProbabilitiesSumToOne) {
  const double a = GetParam();
  ZipfSampler sampler(50, a);
  double total = 0.0;
  for (int k = 1; k <= 50; ++k) total += sampler.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(ZipfSamplerParamTest, ProbabilitiesDecreaseWithRank) {
  ZipfSampler sampler(50, GetParam());
  for (int k = 2; k <= 50; ++k) {
    EXPECT_LT(sampler.Probability(k), sampler.Probability(k - 1));
  }
}

TEST_P(ZipfSamplerParamTest, EmpiricalMatchesAnalytic) {
  const double a = GetParam();
  ZipfSampler sampler(20, a);
  Rng rng(31);
  std::vector<int> counts(21, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  for (int k = 1; k <= 20; ++k) {
    const double expected = sampler.Probability(k) * kDraws;
    // Allow 5 sigma of binomial noise plus a small floor.
    const double sigma = std::sqrt(expected) + 1.0;
    EXPECT_NEAR(counts[k], expected, 5.0 * sigma) << "rank " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(ZipfParameters, ZipfSamplerParamTest,
                         ::testing::Values(0.5, 1.0, 1.2, 2.2, 3.0));

TEST(ZipfSamplerTest, DegenerateSingleRank) {
  ZipfSampler sampler(1, 2.0);
  Rng rng(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 1);
  EXPECT_DOUBLE_EQ(sampler.Probability(1), 1.0);
}

// ---- PoissonProcess -------------------------------------------------------------

TEST(PoissonProcessTest, ArrivalsAreMonotone) {
  PoissonProcess process(0.5);
  Rng rng(41);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = process.NextArrival(&rng);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PoissonProcessTest, RateMatchesLambda) {
  PoissonProcess process(2.0);
  Rng rng(43);
  const int kArrivals = 100000;
  double last = 0.0;
  for (int i = 0; i < kArrivals; ++i) last = process.NextArrival(&rng);
  // Mean inter-arrival should be ~1/lambda.
  EXPECT_NEAR(last / kArrivals, 0.5, 0.01);
}

TEST(PoissonProcessTest, ZeroRateInactive) {
  PoissonProcess process(0.0);
  EXPECT_FALSE(process.active());
}

// ---- Ewma / RunningStats ---------------------------------------------------------

TEST(EwmaTest, FirstObservationTaken) {
  Ewma e(0.3);
  EXPECT_FALSE(e.has_value());
  e.Observe(10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.Observe(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(EwmaTest, TracksStepChange) {
  Ewma e(0.5);
  e.Observe(0.0);
  for (int i = 0; i < 30; ++i) e.Observe(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-3);
}

TEST(EwmaTest, ResetClears) {
  Ewma e(0.3);
  e.Observe(4.0);
  e.Reset();
  EXPECT_FALSE(e.has_value());
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Observe(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

// ---- metric helpers ---------------------------------------------------------------

TEST(MetricsTest, RelativeErrorBasics) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
}

TEST(MetricsTest, MeanAndPercentile) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0, 1.0, 3.0}, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(UnitsTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.1));
  EXPECT_TRUE(ApproxEqual(1e9, 1e9 + 1.0, 1e-8));
}

// ---- priorities -------------------------------------------------------------------

TEST(PriorityTest, WeightsMonotone) {
  PriorityWeights weights;
  EXPECT_LT(weights.WeightOf(Priority::kLow),
            weights.WeightOf(Priority::kNormal));
  EXPECT_LT(weights.WeightOf(Priority::kNormal),
            weights.WeightOf(Priority::kHigh));
  EXPECT_LT(weights.WeightOf(Priority::kHigh),
            weights.WeightOf(Priority::kCritical));
}

TEST(PriorityTest, CustomWeights) {
  PriorityWeights weights(1.0, 3.0, 9.0, 27.0);
  EXPECT_DOUBLE_EQ(weights.WeightOf(Priority::kHigh), 9.0);
}

TEST(PriorityTest, Names) {
  EXPECT_EQ(PriorityName(Priority::kLow), "low");
  EXPECT_EQ(PriorityName(Priority::kCritical), "critical");
}

}  // namespace
}  // namespace mqpi
