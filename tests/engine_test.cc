#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/planner.h"
#include "engine/query_execution.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi::engine {
namespace {

using storage::AsDouble;
using storage::AsInt;
using storage::Catalog;
using storage::ColumnType;
using storage::Schema;
using storage::Tuple;
using storage::Value;

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"value", ColumnType::kDouble}});
}

// ---- Expr ---------------------------------------------------------------------

TEST(ExprTest, ConstAndColumn) {
  Tuple row({Value{std::int64_t{3}}, Value{2.5}});
  EXPECT_DOUBLE_EQ(Const(4.0)->Eval(row), 4.0);
  Schema schema = KvSchema();
  auto key = Col(schema, "key");
  auto value = Col(schema, "value");
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ((*key)->Eval(row), 3.0);
  EXPECT_DOUBLE_EQ((*value)->Eval(row), 2.5);
  EXPECT_TRUE(Col(schema, "missing").status().IsNotFound());
}

TEST(ExprTest, Arithmetic) {
  Tuple row;
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kAdd, Const(2), Const(3))->Eval(row), 5.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kSub, Const(2), Const(3))->Eval(row), -1.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kMul, Const(2), Const(3))->Eval(row), 6.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kDiv, Const(3), Const(2))->Eval(row), 1.5);
  EXPECT_TRUE(std::isnan(Bin(BinaryOp::kDiv, Const(3), Const(0))->Eval(row)));
}

TEST(ExprTest, Comparisons) {
  Tuple row;
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kGt, Const(2), Const(1))->Eval(row), 1.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kGt, Const(1), Const(2))->Eval(row), 0.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kGe, Const(2), Const(2))->Eval(row), 1.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kLt, Const(1), Const(2))->Eval(row), 1.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kLe, Const(3), Const(2))->Eval(row), 0.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kEq, Const(2), Const(2))->Eval(row), 1.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kNe, Const(2), Const(2))->Eval(row), 0.0);
}

TEST(ExprTest, LogicalShortCircuit) {
  Tuple row;
  EXPECT_DOUBLE_EQ(
      Bin(BinaryOp::kAnd, Const(1), Const(1))->Eval(row), 1.0);
  EXPECT_DOUBLE_EQ(
      Bin(BinaryOp::kAnd, Const(0), Const(1))->Eval(row), 0.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kOr, Const(0), Const(1))->Eval(row), 1.0);
  EXPECT_DOUBLE_EQ(Bin(BinaryOp::kOr, Const(0), Const(0))->Eval(row), 0.0);
}

TEST(ExprTest, NanComparesFalse) {
  // The correlated sub-query yields NaN for "no matches"; any
  // comparison against it must be false (SQL NULL semantics here).
  Tuple row;
  auto nan = Bin(BinaryOp::kDiv, Const(1), Const(0));
  EXPECT_DOUBLE_EQ(
      Bin(BinaryOp::kGt, Const(5), std::move(nan))->Eval(row), 0.0);
}

TEST(ExprTest, ToStringRendering) {
  Schema schema = KvSchema();
  auto e = Bin(BinaryOp::kGt,
               Bin(BinaryOp::kMul, *Col(schema, "value"), Const(0.75)),
               Const(10));
  EXPECT_EQ(e->ToString(), "((value * 0.75) > 10)");
}

// ---- operator fixtures ------------------------------------------------------------

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = catalog_.CreateTable("t", KvSchema());
    ASSERT_TRUE(table.ok());
    table_ = *table;
    // 500 rows, keys 0..49 repeating, value = key * 10.
    for (int i = 0; i < 500; ++i) {
      const std::int64_t key = i % 50;
      ASSERT_TRUE(table_
                      ->Append(Tuple({Value{key},
                                      Value{static_cast<double>(key) * 10}}))
                      .ok());
    }
    auto index = catalog_.CreateIndex("t_key_idx", "t", "key");
    ASSERT_TRUE(index.ok());
    index_ = *index;
    ASSERT_TRUE(catalog_.Analyze("t").ok());
  }

  /// Pulls everything from an operator with an unlimited budget.
  std::vector<Tuple> Drain(Operator* op, storage::BufferAccount* account) {
    ExecContext ctx;
    ctx.account = account;
    std::vector<Tuple> out;
    Tuple row;
    while (true) {
      auto step = op->Next(&ctx, &row);
      EXPECT_TRUE(step.ok()) << step.status().ToString();
      if (!step.ok() || *step == OpResult::kDone) break;
      if (*step == OpResult::kRow) out.push_back(row);
    }
    return out;
  }

  Catalog catalog_;
  storage::Table* table_ = nullptr;
  storage::Index* index_ = nullptr;
  storage::BufferManager buffers_;
};

TEST_F(OperatorTest, SeqScanEmitsAllRowsAndChargesPages) {
  storage::BufferAccount account(&buffers_);
  SeqScanOperator scan(table_);
  auto rows = Drain(&scan, &account);
  EXPECT_EQ(rows.size(), 500u);
  EXPECT_DOUBLE_EQ(account.charged(),
                   static_cast<double>(table_->num_pages()));
}

TEST_F(OperatorTest, IndexScanFindsMatches) {
  storage::BufferAccount account(&buffers_);
  IndexScanOperator scan(index_, table_, 7);
  auto rows = Drain(&scan, &account);
  EXPECT_EQ(rows.size(), 10u);  // 500 / 50 repeats
  for (const auto& row : rows) EXPECT_EQ(AsInt(row.at(0)), 7);
  // At least the index descent was charged.
  EXPECT_GE(account.charged(), static_cast<double>(index_->height()));
}

TEST_F(OperatorTest, IndexScanMissingKey) {
  storage::BufferAccount account(&buffers_);
  IndexScanOperator scan(index_, table_, 777);
  EXPECT_TRUE(Drain(&scan, &account).empty());
}

TEST_F(OperatorTest, FilterKeepsMatchingRows) {
  storage::BufferAccount account(&buffers_);
  auto pred = Bin(BinaryOp::kGe, *Col(table_->schema(), "key"), Const(45));
  FilterOperator filter(std::make_unique<SeqScanOperator>(table_),
                        std::move(pred));
  auto rows = Drain(&filter, &account);
  EXPECT_EQ(rows.size(), 50u);  // keys 45..49, 10 each
}

TEST_F(OperatorTest, ScalarAggregates) {
  struct Case {
    AggFunc func;
    double expected;
  };
  for (const Case& c : std::vector<Case>{{AggFunc::kCount, 500.0},
                                         {AggFunc::kSum, 122500.0},
                                         {AggFunc::kAvg, 245.0},
                                         {AggFunc::kMin, 0.0},
                                         {AggFunc::kMax, 490.0}}) {
    storage::BufferAccount account(&buffers_);
    ScalarAggregateOperator agg(std::make_unique<SeqScanOperator>(table_),
                                c.func, *Col(table_->schema(), "value"));
    auto rows = Drain(&agg, &account);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_DOUBLE_EQ(AsDouble(rows[0].at(0)), c.expected)
        << "agg " << static_cast<int>(c.func);
  }
}

TEST_F(OperatorTest, AggregateOverEmptyInput) {
  storage::BufferAccount account(&buffers_);
  auto pred = Bin(BinaryOp::kGt, *Col(table_->schema(), "key"), Const(1000));
  ScalarAggregateOperator agg(
      std::make_unique<FilterOperator>(
          std::make_unique<SeqScanOperator>(table_), std::move(pred)),
      AggFunc::kAvg, *Col(table_->schema(), "value"));
  auto rows = Drain(&agg, &account);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(std::isnan(AsDouble(rows[0].at(0))));
}

TEST_F(OperatorTest, AggregateYieldsOnBudget) {
  storage::BufferAccount account(&buffers_);
  ScalarAggregateOperator agg(std::make_unique<SeqScanOperator>(table_),
                              AggFunc::kCount, Const(1.0));
  ExecContext ctx;
  ctx.account = &account;
  ctx.yield_at = 1.0;  // yield after ~1 page
  Tuple row;
  auto step = agg.Next(&ctx, &row);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(*step, OpResult::kYield);
  EXPECT_GT(agg.rows_consumed(), 0u);
  EXPECT_LT(agg.rows_consumed(), 500u);
  // Resume with unlimited budget: finishes with the same total.
  ctx.yield_at = std::numeric_limits<double>::infinity();
  step = agg.Next(&ctx, &row);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(*step, OpResult::kRow);
  EXPECT_DOUBLE_EQ(AsDouble(row.at(0)), 500.0);
}

// ---- correlated sub-query vs brute force ------------------------------------------

class TpcrQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpcrGeneratorSetup();
  }

  void TpcrGeneratorSetup() {
    storage::TpcrGenerator generator(
        {.num_part_keys = 300, .matches_per_key = 8, .seed = 77});
    ASSERT_TRUE(generator.BuildLineitem(&catalog_).ok());
    ASSERT_TRUE(generator.BuildPartTable(&catalog_, "part_1", 12).ok());
  }

  /// Brute-force evaluation of the paper's predicate for one part row.
  bool QualifiesBruteForce(const Tuple& part_row) {
    const auto* lineitem = *catalog_.GetTable("lineitem");
    const std::int64_t key = AsInt(part_row.at(0));
    double num = 0.0, den = 0.0;
    bool any = false;
    for (storage::RowId r = 0; r < lineitem->num_tuples(); ++r) {
      const Tuple& row = lineitem->Get(r);
      if (AsInt(row.at(1)) == key) {
        num += AsDouble(row.at(4));  // extendedprice
        den += AsDouble(row.at(3));  // quantity
        any = true;
      }
    }
    if (!any || den == 0.0) return false;
    return AsDouble(part_row.at(1)) * 0.75 > num / den;
  }

  Catalog catalog_;
  storage::BufferManager buffers_;
};

TEST_F(TpcrQueryTest, MatchesBruteForce) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto prepared = planner.Prepare(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto* exec = prepared->execution.get();
  while (!exec->done()) {
    exec->Advance(std::numeric_limits<double>::infinity());
  }
  ASSERT_TRUE(exec->status().ok());

  const auto* part = *catalog_.GetTable("part_1");
  std::uint64_t expected = 0;
  for (storage::RowId r = 0; r < part->num_tuples(); ++r) {
    if (QualifiesBruteForce(part->Get(r))) ++expected;
  }
  EXPECT_EQ(exec->rows_produced(), expected);
  EXPECT_GT(expected, 0u);                      // predicate selects some
  EXPECT_LT(expected, part->num_tuples());      // ...but not all
}

TEST_F(TpcrQueryTest, ExecutionCostIsDeterministic) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto c1 = planner.MeasureTrueCost(QuerySpec::TpcrPartPrice("part_1"));
  auto c2 = planner.MeasureTrueCost(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_DOUBLE_EQ(*c1, *c2);
  EXPECT_GT(*c1, 0.0);
}

TEST_F(TpcrQueryTest, AnalyticCostTracksTrueCost) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto prepared = planner.Prepare(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(prepared.ok());
  auto true_cost = planner.MeasureTrueCost(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(true_cost.ok());
  // With perfect statistics the analytic estimate should land within
  // 25% of the measured cost (coupon-collector page estimate vs actual
  // scatter).
  EXPECT_NEAR(prepared->analytic_cost, *true_cost, 0.25 * *true_cost);
  // And with zero noise the optimizer cost equals the analytic cost.
  EXPECT_DOUBLE_EQ(prepared->analytic_cost, prepared->optimizer_cost);
}

TEST_F(TpcrQueryTest, NoiseMovesOptimizerCost) {
  Planner noisy(&catalog_, &buffers_, {.noise_sigma = 0.5, .noise_seed = 3});
  double sum_abs_rel = 0.0;
  for (int i = 0; i < 20; ++i) {
    auto prepared = noisy.Prepare(QuerySpec::TpcrPartPrice("part_1"));
    ASSERT_TRUE(prepared.ok());
    sum_abs_rel += std::fabs(prepared->optimizer_cost -
                             prepared->analytic_cost) /
                   prepared->analytic_cost;
  }
  EXPECT_GT(sum_abs_rel / 20.0, 0.1);  // noise is actually applied
}

TEST_F(TpcrQueryTest, BudgetedExecutionMatchesUnbudgeted) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto a = planner.Prepare(QuerySpec::TpcrPartPrice("part_1"));
  auto b = planner.Prepare(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  while (!a->execution->done()) {
    a->execution->Advance(std::numeric_limits<double>::infinity());
  }
  while (!b->execution->done()) b->execution->Advance(7.0);  // tiny quanta
  EXPECT_EQ(a->execution->rows_produced(), b->execution->rows_produced());
  EXPECT_DOUBLE_EQ(a->execution->completed_work(),
                   b->execution->completed_work());
}

TEST_F(TpcrQueryTest, RemainingCostEstimateConvergesToTruth) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.4, .noise_seed = 5});
  auto prepared = planner.Prepare(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(prepared.ok());
  auto true_cost = planner.MeasureTrueCost(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(true_cost.ok());
  auto* exec = prepared->execution.get();
  // Run ~60% of the query, then the refined remaining estimate should
  // be much closer to truth than the raw optimizer estimate was.
  while (!exec->done() && exec->completed_work() < 0.6 * *true_cost) {
    exec->Advance(50.0);
  }
  const double actual_remaining = *true_cost - exec->completed_work();
  const double refined_err =
      std::fabs(exec->EstimateRemainingCost() - actual_remaining);
  EXPECT_LT(refined_err, 0.25 * actual_remaining + 1.0);
}

// ---- ScanAggregate / Synthetic specs ------------------------------------------------

TEST_F(TpcrQueryTest, ScanAggregateSpec) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto spec = QuerySpec::ScanAggregate("lineitem", AggFunc::kCount, "");
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto* exec = prepared->execution.get();
  while (!exec->done()) exec->Advance(10.0);
  EXPECT_EQ(exec->rows_produced(), 1u);
  const auto* lineitem = *catalog_.GetTable("lineitem");
  EXPECT_DOUBLE_EQ(exec->completed_work(),
                   static_cast<double>(lineitem->num_pages()));
}

TEST_F(TpcrQueryTest, ScanAggregateWithFilter) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto spec = QuerySpec::ScanAggregate("lineitem", AggFunc::kSum, "quantity")
                  .WithFilter("quantity", 25.0);
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  while (!prepared->execution->done()) prepared->execution->Advance(10.0);
  EXPECT_TRUE(prepared->execution->status().ok());
}

TEST(SyntheticQueryTest, ConsumesExactCost) {
  SyntheticQueryExecution exec(100.0, 120.0);
  EXPECT_FALSE(exec.done());
  EXPECT_DOUBLE_EQ(exec.Advance(30.0), 30.0);
  EXPECT_DOUBLE_EQ(exec.completed_work(), 30.0);
  EXPECT_DOUBLE_EQ(exec.Advance(1000.0), 70.0);  // clipped at true cost
  EXPECT_TRUE(exec.done());
  EXPECT_DOUBLE_EQ(exec.EstimateRemainingCost(), 0.0);
}

TEST(SyntheticQueryTest, EstimateConvergesLinearly) {
  SyntheticQueryExecution exec(100.0, 200.0);
  // At start: believes total is 200 -> remaining 200.
  EXPECT_DOUBLE_EQ(exec.EstimateRemainingCost(), 200.0);
  exec.Advance(50.0);  // half done: believed total = 150 -> remaining 100
  EXPECT_DOUBLE_EQ(exec.EstimateRemainingCost(), 100.0);
  exec.Advance(25.0);  // 75%: believed total = 125 -> remaining 50
  EXPECT_DOUBLE_EQ(exec.EstimateRemainingCost(), 50.0);
}

TEST(SyntheticQueryTest, ZeroCostIsImmediatelyDone) {
  SyntheticQueryExecution exec(0.0, 0.0);
  EXPECT_TRUE(exec.done());
  EXPECT_DOUBLE_EQ(exec.Advance(10.0), 0.0);
}

TEST(PlannerSpecTest, SyntheticThroughPlanner) {
  Catalog catalog;
  storage::BufferManager buffers;
  Planner planner(&catalog, &buffers, {.noise_sigma = 0.0});
  auto prepared = planner.Prepare(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(prepared.ok());
  EXPECT_DOUBLE_EQ(prepared->optimizer_cost, 500.0);
  auto cost = planner.MeasureTrueCost(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(*cost, 500.0);
  EXPECT_TRUE(planner.Prepare(QuerySpec::Synthetic(-1.0)).status()
                  .IsInvalidArgument());
}

TEST(PlannerSpecTest, UnknownTableFails) {
  Catalog catalog;
  storage::BufferManager buffers;
  Planner planner(&catalog, &buffers);
  EXPECT_TRUE(planner.Prepare(QuerySpec::TpcrPartPrice("nope")).status()
                  .IsNotFound());
  EXPECT_TRUE(
      planner.Prepare(QuerySpec::ScanAggregate("nope", AggFunc::kCount, ""))
          .status()
          .IsNotFound());
}

TEST(QuerySpecTest, ToStringRendering) {
  EXPECT_NE(QuerySpec::TpcrPartPrice("part_9").ToString().find("part_9"),
            std::string::npos);
  EXPECT_NE(QuerySpec::Synthetic(42.0).ToString().find("synthetic"),
            std::string::npos);
  auto agg = QuerySpec::ScanAggregate("t", AggFunc::kSum, "v")
                 .WithFilter("v", 1.0);
  EXPECT_NE(agg.ToString().find("where"), std::string::npos);
}

}  // namespace
}  // namespace mqpi::engine
