// Cross-cutting property tests:
//  * exact page accounting for scans over parameterized table shapes,
//  * the analytic simulator (with admission queue AND virtual arrivals)
//    against an independent fine-grained Euler integration of the same
//    fluid model,
//  * estimate-refinement monotonicity at completion.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "engine/planner.h"
#include "pi/analytic_simulator.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi {
namespace {

using engine::QuerySpec;
using pi::AnalyticModelOptions;
using pi::AnalyticSimulator;
using pi::FutureArrival;
using pi::QueryLoad;

// ---- page accounting over table shapes ----------------------------------------

class PageAccountingTest : public ::testing::TestWithParam<int> {};

TEST_P(PageAccountingTest, SeqScanChargesExactPageCount) {
  const int rows = GetParam();
  storage::Catalog catalog;
  auto table = catalog.CreateTable(
      "t", storage::Schema({{"k", storage::ColumnType::kInt64},
                            {"v", storage::ColumnType::kDouble}}));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE((*table)
                    ->Append(storage::Tuple(
                        {storage::Value{static_cast<std::int64_t>(i)},
                         storage::Value{1.0}}))
                    .ok());
  }
  storage::BufferManager pool;
  storage::BufferAccount account(&pool);
  engine::ExecContext ctx;
  ctx.account = &account;
  engine::SeqScanOperator scan(*table);
  storage::Tuple row;
  std::uint64_t count = 0;
  while (true) {
    auto step = scan.Next(&ctx, &row);
    ASSERT_TRUE(step.ok());
    if (*step == engine::OpResult::kDone) break;
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::uint64_t>(rows));
  EXPECT_DOUBLE_EQ(account.charged(),
                   static_cast<double>((*table)->num_pages()));
  const std::size_t tpp = (*table)->tuples_per_page();
  const std::uint64_t expected_pages =
      rows == 0 ? 0 : (static_cast<std::uint64_t>(rows) + tpp - 1) / tpp;
  EXPECT_EQ((*table)->num_pages(), expected_pages);
}

INSTANTIATE_TEST_SUITE_P(TableShapes, PageAccountingTest,
                         ::testing::Values(0, 1, 100, 203, 204, 205, 1000,
                                           5000));

// ---- analytic simulator vs Euler integration ------------------------------------

struct FluidQuery {
  QueryId id;
  double remaining;
  double weight;
  bool active;
  double finish = -1.0;
};

/// Independent fine-grained integration of the fluid model with FIFO
/// admission and a virtual arrival stream.
std::vector<FluidQuery> EulerIntegrate(
    std::vector<FluidQuery> running, std::vector<FluidQuery> queued,
    std::vector<FutureArrival> arrivals, const AnalyticModelOptions& options,
    double dt, double horizon) {
  std::vector<FluidQuery> all = running;
  for (auto& q : all) q.active = true;
  std::vector<FluidQuery> waiting = queued;
  std::size_t arrival_pos = 0;
  double next_virtual =
      options.virtual_interval > 0.0 ? options.virtual_interval : 1e18;
  QueryId virtual_id = 1'000'000;

  for (double t = 0.0; t < horizon; t += dt) {
    // Arrivals whose time passed.
    while (arrival_pos < arrivals.size() &&
           arrivals[arrival_pos].time <= t) {
      waiting.push_back(FluidQuery{arrivals[arrival_pos].id,
                                   arrivals[arrival_pos].cost,
                                   arrivals[arrival_pos].weight, false});
      ++arrival_pos;
    }
    while (next_virtual <= t) {
      waiting.push_back(FluidQuery{virtual_id++, options.virtual_cost,
                                   options.virtual_weight, false});
      next_virtual += options.virtual_interval;
    }
    // Admission.
    int active_count = 0;
    for (const auto& q : all) {
      if (q.active && q.finish < 0.0) ++active_count;
    }
    while (!waiting.empty() && active_count < options.max_concurrent) {
      FluidQuery q = waiting.front();
      waiting.erase(waiting.begin());
      q.active = true;
      all.push_back(q);
      ++active_count;
    }
    // Progress.
    double total_weight = 0.0;
    for (const auto& q : all) {
      if (q.active && q.finish < 0.0) total_weight += q.weight;
    }
    if (total_weight <= 0.0) continue;
    for (auto& q : all) {
      if (!q.active || q.finish >= 0.0) continue;
      q.remaining -= options.rate * dt * q.weight / total_weight;
      if (q.remaining <= 0.0) q.finish = t + dt;
    }
  }
  return all;
}

class FluidPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FluidPropertyTest, AnalyticMatchesEulerWithQueueAndVirtuals) {
  Rng rng(60000 + static_cast<std::uint64_t>(GetParam()));
  AnalyticModelOptions options;
  options.rate = 100.0;
  options.max_concurrent = static_cast<int>(rng.UniformInt(1, 5));
  if (rng.NextDouble() < 0.7) {
    options.virtual_interval = rng.Uniform(0.5, 5.0);
    options.virtual_cost = rng.Uniform(10.0, 150.0);
    options.virtual_weight = 1.0;
  }

  std::vector<QueryLoad> running;
  std::vector<FluidQuery> running_fluid;
  const int n = static_cast<int>(rng.UniformInt(1, 5));
  for (int i = 0; i < n; ++i) {
    const double cost = rng.Uniform(20.0, 400.0);
    const double weight = rng.Uniform(0.5, 4.0);
    running.push_back(QueryLoad{static_cast<QueryId>(i + 1), cost, weight});
    running_fluid.push_back(
        FluidQuery{static_cast<QueryId>(i + 1), cost, weight, true});
  }
  std::vector<FutureArrival> arrivals;
  std::vector<double> times;
  const int na = static_cast<int>(rng.UniformInt(0, 3));
  for (int i = 0; i < na; ++i) times.push_back(rng.Uniform(0.1, 5.0));
  std::sort(times.begin(), times.end());
  for (int i = 0; i < na; ++i) {
    arrivals.push_back(FutureArrival{times[static_cast<std::size_t>(i)],
                                     rng.Uniform(10.0, 200.0), 1.0,
                                     static_cast<QueryId>(100 + i)});
  }

  auto forecast =
      AnalyticSimulator::Forecast(running, {}, arrivals, options);
  ASSERT_TRUE(forecast.ok());

  const double dt = 0.002;
  const auto fluid = EulerIntegrate(running_fluid, {}, arrivals, options,
                                    dt, /*horizon=*/500.0);
  for (const auto& q : fluid) {
    if (q.id >= 1'000'000) continue;  // virtual
    auto predicted = forecast->FinishTimeOf(q.id);
    ASSERT_TRUE(predicted.ok()) << "query " << q.id;
    ASSERT_GT(q.finish, 0.0) << "query " << q.id;
    EXPECT_NEAR(*predicted, q.finish, 0.01 * q.finish + 3.0 * dt)
        << "query " << q.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, FluidPropertyTest, ::testing::Range(0, 10));

// ---- refinement sanity ------------------------------------------------------------

TEST(RefinementTest, EstimateHitsZeroAtCompletion) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 150, .matches_per_key = 4, .seed = 44});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(generator.BuildPartTable(&catalog, "part_1", 4).ok());
  storage::BufferManager pool;
  engine::Planner planner(&catalog, &pool, {.noise_sigma = 0.5,
                                            .noise_seed = 77});
  for (auto spec :
       {QuerySpec::TpcrPartPrice("part_1"),
        QuerySpec::ScanAggregate("lineitem", engine::AggFunc::kCount, ""),
        QuerySpec::JoinAggregate("part_1", engine::AggFunc::kCount, ""),
        QuerySpec::GroupByAggregate("lineitem", "suppkey",
                                    engine::AggFunc::kCount, ""),
        QuerySpec::TopN("lineitem", "extendedprice", true, 5)}) {
    auto prepared = planner.Prepare(spec);
    ASSERT_TRUE(prepared.ok()) << spec.ToString();
    auto* exec = prepared->execution.get();
    while (!exec->done()) exec->Advance(40.0);
    EXPECT_DOUBLE_EQ(exec->EstimateRemainingCost(), 0.0) << spec.ToString();
    EXPECT_TRUE(exec->status().ok()) << spec.ToString();
  }
}

}  // namespace
}  // namespace mqpi
