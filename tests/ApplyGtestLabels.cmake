# Runs at ctest time, included *after* gtest_discover_tests' generated
# include file, via a thin per-suite shim that sets:
#   _mqpi_labels_glob  — glob matching the suite's <name>[N]_tests.cmake
#   _mqpi_labels       — the ;-separated LABELS list to apply
#
# Why this exists: gtest_discover_tests cannot forward list-valued
# properties — every ';' in a PROPERTIES value is flattened to a space
# on the way into its generated script, so `PROPERTIES LABELS "a;b"`
# silently degrades to just "a". Parsing the discovered test names back
# out of the generated file and labelling them here keeps multi-label
# suites (e.g. `ctest -L shard` and `ctest -L sanitize` both selecting
# shard_test) working without patching the GoogleTest module.

file(GLOB _mqpi_discovery_files "${_mqpi_labels_glob}")
foreach(_mqpi_file IN LISTS _mqpi_discovery_files)
  file(STRINGS "${_mqpi_file}" _mqpi_lines REGEX "^add_test\\(")
  foreach(_mqpi_line IN LISTS _mqpi_lines)
    # Names are bracket-quoted as [=[Suite.Case]=] (guard depth grows if
    # a name ever contains ]=]); gtest names never contain ']', so
    # capture up to the first one.
    if(_mqpi_line MATCHES "^add_test\\(\\[=+\\[([^]]+)\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
        LABELS "${_mqpi_labels}")
    endif()
  endforeach()
endforeach()
