#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"
#include "wlm/maintenance.h"
#include "wlm/speedup.h"
#include "wlm/wlm_advisor.h"

namespace mqpi::wlm {
namespace {

using engine::QuerySpec;
using pi::QueryLoad;

std::vector<QueryLoad> RandomLoads(Rng* rng, int n, bool uniform_weights) {
  std::vector<QueryLoad> loads;
  for (int i = 0; i < n; ++i) {
    loads.push_back(QueryLoad{
        static_cast<QueryId>(i + 1), rng->Uniform(1.0, 500.0),
        uniform_weights ? 1.0 : rng->Uniform(0.5, 8.0)});
  }
  return loads;
}

// ---- SingleQuerySpeedup: unit cases -----------------------------------------------

TEST(SingleSpeedupTest, LaterFinisherPreferredWhenHeavy) {
  // Target finishes first; any later query is a candidate; the paper's
  // rule picks the heaviest-weight one.
  std::vector<QueryLoad> loads{
      {1, 100.0, 1.0}, {2, 500.0, 1.0}, {3, 600.0, 4.0}};
  auto choice = SingleQuerySpeedup::ChooseVictims(loads, 1, 1, 100.0);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->victims[0], 3u);  // weight 4 beats weight 1
}

TEST(SingleSpeedupTest, EarlierFinisherChosenByCost) {
  // Target finishes last: all victims are earlier finishers; benefit is
  // c_m / C, so the largest remaining cost wins.
  std::vector<QueryLoad> loads{
      {1, 50.0, 1.0}, {2, 200.0, 1.0}, {3, 900.0, 1.0}};
  auto choice = SingleQuerySpeedup::ChooseVictims(loads, 3, 1, 100.0);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->victims[0], 2u);
  EXPECT_NEAR(choice->time_saved, 2.0, 1e-9);  // 200/100
}

TEST(SingleSpeedupTest, HVictimsAreTopBenefits) {
  std::vector<QueryLoad> loads{
      {1, 400.0, 1.0}, {2, 100.0, 1.0}, {3, 200.0, 1.0}, {4, 900.0, 1.0}};
  auto choice = SingleQuerySpeedup::ChooseVictims(loads, 1, 2, 100.0);
  ASSERT_TRUE(choice.ok());
  ASSERT_EQ(choice->victims.size(), 2u);
  // Equal weights: later finisher (q4) benefit = K; earlier finishers'
  // benefit = c/C. Verify the two largest were chosen.
  EXPECT_TRUE(std::find(choice->victims.begin(), choice->victims.end(), 4u) !=
              choice->victims.end());
}

TEST(SingleSpeedupTest, ErrorsOnBadArguments) {
  std::vector<QueryLoad> loads{{1, 10.0, 1.0}, {2, 10.0, 1.0}};
  EXPECT_FALSE(SingleQuerySpeedup::ChooseVictims(loads, 1, 0, 100.0).ok());
  EXPECT_FALSE(SingleQuerySpeedup::ChooseVictims(loads, 1, 2, 100.0).ok());
  EXPECT_FALSE(SingleQuerySpeedup::ChooseVictims(loads, 9, 1, 100.0).ok());
}

TEST(SingleSpeedupTest, EqualPriorityFastPath) {
  std::vector<QueryLoad> loads{
      {1, 100.0, 1.0}, {2, 300.0, 1.0}, {3, 50.0, 1.0}};
  // Target q3 (smallest): any bigger query qualifies.
  auto victim = SingleQuerySpeedup::ChooseVictimEqualPriority(loads, 3);
  ASSERT_TRUE(victim.ok());
  EXPECT_NE(*victim, 3u);
  auto target_load = loads[2];
  const QueryLoad* chosen = nullptr;
  for (const auto& q : loads) {
    if (q.id == *victim) chosen = &q;
  }
  ASSERT_NE(chosen, nullptr);
  EXPECT_GE(chosen->remaining_cost, target_load.remaining_cost);
  // Target q2 (largest): victim must be the largest of the others.
  auto v2 = SingleQuerySpeedup::ChooseVictimEqualPriority(loads, 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 1u);
}

TEST(SingleSpeedupTest, FastPathRejectsMixedWeights) {
  std::vector<QueryLoad> loads{{1, 100.0, 1.0}, {2, 300.0, 2.0}};
  EXPECT_EQ(SingleQuerySpeedup::ChooseVictimEqualPriority(loads, 1)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// ---- SingleQuerySpeedup: property tests vs brute force ----------------------------

class SpeedupPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SpeedupPropertyTest, FormulaMatchesExactBenefit) {
  // The paper's closed-form benefit must equal the first-principles
  // benefit (difference of two stage profiles) for every candidate.
  auto [seed, uniform] = GetParam();
  Rng rng(7000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  auto loads = RandomLoads(&rng, n, uniform);
  const double rate = 100.0;
  const QueryId target =
      loads[static_cast<std::size_t>(rng.UniformInt(0, n - 1))].id;

  auto profile = pi::StageProfile::Compute(loads, rate);
  ASSERT_TRUE(profile.ok());
  const std::size_t pos = *profile->FinishPosition(target);
  double k_factor = 0.0;
  for (std::size_t j = 0; j <= pos; ++j) {
    k_factor += profile->stage_durations()[j] / profile->suffix_weights()[j];
  }
  for (std::size_t p = 0; p < profile->num_queries(); ++p) {
    if (p == pos) continue;
    const QueryLoad& q = profile->finish_order()[p];
    const double formula =
        p > pos ? q.weight * k_factor : q.remaining_cost / rate;
    auto exact = SingleQuerySpeedup::ExactBenefit(loads, target, q.id, rate);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(formula, *exact, 1e-6 * (1.0 + std::fabs(*exact)))
        << "victim " << q.id << " target " << target;
  }
}

TEST_P(SpeedupPropertyTest, ChosenVictimIsOptimal) {
  auto [seed, uniform] = GetParam();
  Rng rng(8000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  auto loads = RandomLoads(&rng, n, uniform);
  const double rate = 100.0;
  const QueryId target =
      loads[static_cast<std::size_t>(rng.UniformInt(0, n - 1))].id;

  auto choice = SingleQuerySpeedup::ChooseVictims(loads, target, 1, rate);
  ASSERT_TRUE(choice.ok());
  auto chosen_benefit =
      SingleQuerySpeedup::ExactBenefit(loads, target, choice->victims[0],
                                       rate);
  ASSERT_TRUE(chosen_benefit.ok());
  // Brute force over all candidates.
  double best = 0.0;
  for (const QueryLoad& q : loads) {
    if (q.id == target) continue;
    auto benefit = SingleQuerySpeedup::ExactBenefit(loads, target, q.id, rate);
    ASSERT_TRUE(benefit.ok());
    best = std::max(best, *benefit);
  }
  EXPECT_NEAR(*chosen_benefit, best, 1e-6 * (1.0 + best));
}

TEST_P(SpeedupPropertyTest, EqualPriorityFastPathIsOptimal) {
  auto [seed, uniform] = GetParam();
  if (!uniform) GTEST_SKIP() << "fast path requires uniform weights";
  Rng rng(9000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  auto loads = RandomLoads(&rng, n, true);
  const double rate = 100.0;
  const QueryId target =
      loads[static_cast<std::size_t>(rng.UniformInt(0, n - 1))].id;
  auto fast = SingleQuerySpeedup::ChooseVictimEqualPriority(loads, target);
  ASSERT_TRUE(fast.ok());
  auto fast_benefit =
      SingleQuerySpeedup::ExactBenefit(loads, target, *fast, rate);
  ASSERT_TRUE(fast_benefit.ok());
  double best = 0.0;
  for (const QueryLoad& q : loads) {
    if (q.id == target) continue;
    auto benefit = SingleQuerySpeedup::ExactBenefit(loads, target, q.id, rate);
    best = std::max(best, *benefit);
  }
  EXPECT_NEAR(*fast_benefit, best, 1e-6 * (1.0 + best));
}

TEST_P(SpeedupPropertyTest, MultiSpeedupFormulaMatchesExact) {
  auto [seed, uniform] = GetParam();
  Rng rng(10000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  auto loads = RandomLoads(&rng, n, uniform);
  const double rate = 100.0;
  auto profile = pi::StageProfile::Compute(loads, rate);
  ASSERT_TRUE(profile.ok());
  double prefix = 0.0;
  for (std::size_t p = 0; p < profile->num_queries(); ++p) {
    prefix += static_cast<double>(n - 1 - static_cast<int>(p)) *
              profile->stage_durations()[p] / profile->suffix_weights()[p];
    const QueryLoad& q = profile->finish_order()[p];
    const double formula = q.weight * prefix;
    auto exact = MultiQuerySpeedup::ExactImprovement(loads, q.id, rate);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(formula, *exact, 1e-6 * (1.0 + std::fabs(*exact)))
        << "victim " << q.id;
  }
}

TEST_P(SpeedupPropertyTest, MultiSpeedupVictimIsOptimal) {
  auto [seed, uniform] = GetParam();
  Rng rng(11000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  auto loads = RandomLoads(&rng, n, uniform);
  const double rate = 100.0;
  auto choice = MultiQuerySpeedup::ChooseVictim(loads, rate);
  ASSERT_TRUE(choice.ok());
  auto chosen = MultiQuerySpeedup::ExactImprovement(loads, choice->victim,
                                                    rate);
  ASSERT_TRUE(chosen.ok());
  double best = 0.0;
  for (const QueryLoad& q : loads) {
    auto improvement = MultiQuerySpeedup::ExactImprovement(loads, q.id, rate);
    best = std::max(best, *improvement);
  }
  EXPECT_NEAR(*chosen, best, 1e-6 * (1.0 + best));
}

TEST_P(SpeedupPropertyTest, CombinedBenefitIsExactlyAdditive) {
  // §3.1 additivity (speedup.h header note): the greedy h-victim
  // time_saved must equal both the sum of per-victim ExactBenefits
  // against the *original* load and the first-principles difference
  // r_before - r_after with every victim removed at once. In-model
  // this holds exactly, not approximately.
  auto [seed, uniform] = GetParam();
  Rng rng(12000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(4, 12));
  auto loads = RandomLoads(&rng, n, uniform);
  const double rate = 100.0;
  const QueryId target =
      loads[static_cast<std::size_t>(rng.UniformInt(0, n - 1))].id;
  const int h = static_cast<int>(rng.UniformInt(2, n - 1));

  auto choice = SingleQuerySpeedup::ChooseVictims(loads, target, h, rate);
  ASSERT_TRUE(choice.ok());
  ASSERT_EQ(choice->victims.size(), static_cast<std::size_t>(h));

  double summed = 0.0;
  std::vector<QueryLoad> survivors;
  for (const QueryLoad& q : loads) {
    if (std::find(choice->victims.begin(), choice->victims.end(), q.id) ==
        choice->victims.end()) {
      survivors.push_back(q);
    }
  }
  for (QueryId victim : choice->victims) {
    auto benefit = SingleQuerySpeedup::ExactBenefit(loads, target, victim,
                                                    rate);
    ASSERT_TRUE(benefit.ok());
    summed += *benefit;
  }
  auto before = pi::StageProfile::Compute(loads, rate);
  auto after = pi::StageProfile::Compute(survivors, rate);
  ASSERT_TRUE(before.ok() && after.ok());
  const double all_at_once =
      *before->RemainingTimeOf(target) - *after->RemainingTimeOf(target);
  EXPECT_NEAR(choice->time_saved, summed, 1e-7 * (1.0 + summed));
  EXPECT_NEAR(choice->time_saved, all_at_once, 1e-7 * (1.0 + all_at_once));
}

TEST_P(SpeedupPropertyTest, EngineOverloadMatchesVectorOverload) {
  // The O(n log n) engine-backed fan-out must pick the same victims
  // with the same combined benefit as the stage-profile overload.
  auto [seed, uniform] = GetParam();
  Rng rng(13000 + static_cast<std::uint64_t>(seed));
  const int n = static_cast<int>(rng.UniformInt(3, 12));
  auto loads = RandomLoads(&rng, n, uniform);
  const double rate = 100.0;
  const QueryId target =
      loads[static_cast<std::size_t>(rng.UniformInt(0, n - 1))].id;
  const int h = static_cast<int>(rng.UniformInt(1, n - 1));

  pi::IncrementalForecast engine;
  for (const QueryLoad& q : loads) {
    ASSERT_TRUE(engine.Insert(q.id, q.remaining_cost, q.weight).ok());
  }
  auto from_engine =
      SingleQuerySpeedup::ChooseVictims(engine, target, h, rate);
  auto from_loads = SingleQuerySpeedup::ChooseVictims(loads, target, h, rate);
  ASSERT_TRUE(from_engine.ok());
  ASSERT_TRUE(from_loads.ok());
  EXPECT_EQ(from_engine->victims, from_loads->victims);
  EXPECT_NEAR(from_engine->time_saved, from_loads->time_saved,
              1e-7 * (1.0 + from_loads->time_saved));
  // Per-victim point queries agree with the two-profile computation.
  for (QueryId victim : from_engine->victims) {
    auto fast = SingleQuerySpeedup::ExactBenefit(engine, target, victim,
                                                 rate);
    auto slow = SingleQuerySpeedup::ExactBenefit(loads, target, victim,
                                                 rate);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_NEAR(*fast, *slow, 1e-7 * (1.0 + std::fabs(*slow)))
        << "victim " << victim;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, SpeedupPropertyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Bool()));

// ---- MaintenancePlanner ------------------------------------------------------------

std::vector<MaintenanceQuery> SampleQueries() {
  return {{1, 10.0, 100.0},
          {2, 200.0, 50.0},
          {3, 40.0, 300.0},
          {4, 5.0, 20.0}};
}

TEST(MaintenanceTest, NothingAbortedWhenDeadlineGenerous) {
  auto plan = MaintenancePlanner::PlanGreedy(SampleQueries(), 100.0, 100.0,
                                             LossMetric::kCompletedWork);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->abort_now.empty());
  EXPECT_NEAR(plan->quiescent_time, 4.7, 1e-9);  // 470 U / 100
}

TEST(MaintenanceTest, GreedyAbortsCheapestLossFirst) {
  // Deadline 2 s -> budget 200 U; total remaining 470 U, so >= 270 U of
  // remaining cost must be shed. Loss/V ordering (Case 1):
  // q1: 10/100=0.1, q4: 5/20=0.25, q3: 40/300=0.133, q2: 200/50=4.
  // Order q1, q3, q4, q2: aborting q1 (370 left), then q3 (70 left) fits.
  auto plan = MaintenancePlanner::PlanGreedy(SampleQueries(), 2.0, 100.0,
                                             LossMetric::kCompletedWork);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->abort_now.size(), 2u);
  EXPECT_EQ(plan->abort_now[0], 1u);
  EXPECT_EQ(plan->abort_now[1], 3u);
  EXPECT_NEAR(plan->lost_work, 50.0, 1e-9);
  EXPECT_NEAR(plan->quiescent_time, 0.7, 1e-9);
}

TEST(MaintenanceTest, CaseTwoUsesTotalCost) {
  // Under Case 2 loss = e + c, the ratios change:
  // q1: 110/100=1.1, q2: 250/50=5, q3: 340/300=1.133, q4: 25/20=1.25.
  auto plan = MaintenancePlanner::PlanGreedy(SampleQueries(), 2.0, 100.0,
                                             LossMetric::kTotalCost);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->abort_now.size(), 2u);
  EXPECT_EQ(plan->abort_now[0], 1u);
  EXPECT_EQ(plan->abort_now[1], 3u);
  EXPECT_NEAR(plan->lost_work, 450.0, 1e-9);
}

TEST(MaintenanceTest, ZeroDeadlineAbortsEverythingWithWork) {
  auto plan = MaintenancePlanner::PlanGreedy(SampleQueries(), 0.0, 100.0,
                                             LossMetric::kCompletedWork);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->abort_now.size(), 4u);
  EXPECT_DOUBLE_EQ(plan->quiescent_time, 0.0);
}

TEST(MaintenanceTest, OptimalNeverWorseThanGreedy) {
  Rng rng(12000);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<MaintenanceQuery> queries;
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      queries.push_back(MaintenanceQuery{static_cast<QueryId>(i + 1),
                                         rng.Uniform(0.0, 200.0),
                                         rng.Uniform(1.0, 300.0)});
    }
    const double deadline = rng.Uniform(0.0, 5.0);
    for (auto metric :
         {LossMetric::kCompletedWork, LossMetric::kTotalCost}) {
      auto greedy =
          MaintenancePlanner::PlanGreedy(queries, deadline, 100.0, metric);
      auto optimal =
          MaintenancePlanner::PlanOptimal(queries, deadline, 100.0, metric);
      ASSERT_TRUE(greedy.ok());
      ASSERT_TRUE(optimal.ok());
      // Both plans must meet the deadline...
      EXPECT_LE(greedy->quiescent_time, deadline + 1e-9);
      EXPECT_LE(optimal->quiescent_time, deadline + 1e-9);
      // ...and the DP must not lose more work than the greedy
      // (tolerance for the quantization grid).
      EXPECT_LE(optimal->lost_work, greedy->lost_work + 1e-6);
    }
  }
}

TEST(MaintenanceTest, OptimalMatchesBruteForceSmall) {
  Rng rng(13000);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<MaintenanceQuery> queries;
    const int n = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      queries.push_back(MaintenanceQuery{static_cast<QueryId>(i + 1),
                                         rng.Uniform(0.0, 100.0),
                                         rng.Uniform(1.0, 100.0)});
    }
    const double rate = 100.0;
    const double deadline = rng.Uniform(0.0, 3.0);
    const auto metric = LossMetric::kTotalCost;
    auto optimal = MaintenancePlanner::PlanOptimal(queries, deadline, rate,
                                                   metric, 1 << 14);
    ASSERT_TRUE(optimal.ok());
    // Brute force over all subsets.
    double best = 1e18;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double kept_cost = 0.0, loss = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) {
          kept_cost += queries[static_cast<std::size_t>(i)].remaining;
        } else {
          loss += MaintenancePlanner::LossOf(
              queries[static_cast<std::size_t>(i)], metric);
        }
      }
      if (kept_cost <= rate * deadline) best = std::min(best, loss);
    }
    EXPECT_NEAR(optimal->lost_work, best,
                0.02 * (1.0 + best));  // quantization tolerance
  }
}

TEST(MaintenanceTest, InvalidInputs) {
  EXPECT_FALSE(MaintenancePlanner::PlanGreedy({}, -1.0, 100.0,
                                              LossMetric::kTotalCost)
                   .ok());
  EXPECT_FALSE(MaintenancePlanner::PlanGreedy({}, 1.0, 0.0,
                                              LossMetric::kTotalCost)
                   .ok());
  EXPECT_FALSE(MaintenancePlanner::PlanOptimal({{1, -1.0, 1.0}}, 1.0, 100.0,
                                               LossMetric::kTotalCost)
                   .ok());
}

// ---- WlmAdvisor on a live system ---------------------------------------------------

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest() {
    options_.processing_rate = 100.0;
    options_.quantum = 0.05;
    options_.cost_model.noise_sigma = 0.0;
    db_ = std::make_unique<sched::Rdbms>(&catalog_, options_);
  }
  storage::Catalog catalog_;
  sched::RdbmsOptions options_;
  std::unique_ptr<sched::Rdbms> db_;
};

TEST_F(AdvisorTest, SpeedUpQueryBlocksVictimAndHelps) {
  auto a = db_->Submit(QuerySpec::Synthetic(300.0));
  auto b = db_->Submit(QuerySpec::Synthetic(300.0));
  auto c = db_->Submit(QuerySpec::Synthetic(300.0));
  ASSERT_TRUE(c.ok());
  (void)b;
  WlmAdvisor advisor(db_.get());
  auto choice = advisor.SpeedUpQuery(*a, 1);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  ASSERT_EQ(choice->victims.size(), 1u);
  EXPECT_EQ(db_->info(choice->victims[0])->state,
            sched::QueryState::kBlocked);
  db_->RunUntilIdle();
  // With one of three blocked, a shares with one peer: 300/(100/2) = 6 s
  // instead of 9 s in the 3-way standard case.
  EXPECT_NEAR(db_->info(*a)->finish_time, 6.0, 0.2);
}

TEST_F(AdvisorTest, SpeedUpOthersPicksAndBlocks) {
  // Weights break the tie: the heavy high-priority query consumes 8/9
  // of the machine, so blocking it helps the other most.
  auto heavy = db_->Submit(QuerySpec::Synthetic(400.0), Priority::kCritical);
  auto light = db_->Submit(QuerySpec::Synthetic(400.0), Priority::kLow);
  ASSERT_TRUE(light.ok());
  (void)light;
  WlmAdvisor advisor(db_.get());
  auto choice = advisor.SpeedUpOthers();
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->victim, *heavy);
  EXPECT_EQ(db_->info(*heavy)->state, sched::QueryState::kBlocked);
  EXPECT_GT(choice->total_response_improvement, 0.0);
}

TEST_F(AdvisorTest, MultiPiMaintenanceMeetsDeadline) {
  std::vector<QueryId> ids;
  for (int i = 1; i <= 5; ++i) {
    ids.push_back(*db_->Submit(QuerySpec::Synthetic(100.0 * i)));
  }
  db_->Step(1.0);  // accumulate some completed work
  WlmAdvisor advisor(db_.get());
  const SimTime deadline = 4.0;
  auto plan = advisor.PrepareMaintenance(deadline, LossMetric::kTotalCost,
                                         MaintenanceMethod::kMultiPi,
                                         nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(db_->admission_open());
  EXPECT_LE(plan->quiescent_time, deadline + 1e-6);
  const SimTime start = db_->now();
  db_->RunUntilIdle(start + deadline);
  // All survivors must have finished by the deadline.
  for (QueryId id : ids) {
    const auto info = *db_->info(id);
    if (info.state == sched::QueryState::kFinished) {
      EXPECT_LE(info.finish_time, start + deadline + 2 * options_.quantum);
    } else {
      EXPECT_EQ(info.state, sched::QueryState::kAborted);
    }
  }
}

TEST_F(AdvisorTest, NoPiMaintenanceOnlyClosesAdmission) {
  auto id = db_->Submit(QuerySpec::Synthetic(1000.0));
  ASSERT_TRUE(id.ok());
  WlmAdvisor advisor(db_.get());
  auto plan = advisor.PrepareMaintenance(1.0, LossMetric::kTotalCost,
                                         MaintenanceMethod::kNoPi, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->abort_now.empty());
  EXPECT_FALSE(db_->admission_open());
  EXPECT_EQ(db_->info(*id)->state, sched::QueryState::kRunning);
}

TEST_F(AdvisorTest, SinglePiMaintenanceOverAborts) {
  // Five equal queries sharing C: each runs at C/5, so the single-query
  // PI thinks each needs 5x its solo time and aborts queries that would
  // in fact have finished.
  pi::PiManager pis(db_.get(), {.sample_interval = 10.0});
  std::vector<QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = db_->Submit(QuerySpec::Synthetic(100.0));
    ids.push_back(*id);
    pis.Track(*id);
  }
  for (int step = 0; step < 4; ++step) {
    db_->Step(options_.quantum);
    pis.AfterStep();
  }
  WlmAdvisor advisor(db_.get());
  // Total work 500 U: everything can finish by t=5 (quiescent time),
  // but each query's single-PI estimate is ~5 s > deadline 4.5... so
  // the single-PI method aborts all five.
  auto plan = advisor.PrepareMaintenance(4.5, LossMetric::kTotalCost,
                                         MaintenanceMethod::kSinglePi, &pis);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->abort_now.size(), 5u);
  // The multi-PI method on the same state would abort nothing: verify
  // via the planner directly.
  std::vector<MaintenanceQuery> queries;
  for (QueryId id : ids) {
    queries.push_back(MaintenanceQuery{id, 20.0, 80.0});
  }
  auto multi_plan = MaintenancePlanner::PlanGreedy(
      queries, 4.5, 100.0, LossMetric::kTotalCost);
  ASSERT_TRUE(multi_plan.ok());
  EXPECT_TRUE(multi_plan->abort_now.empty());
}

TEST_F(AdvisorTest, AbortAllUnfinishedSweepsEveryState) {
  auto options = options_;
  options.max_concurrent = 1;
  sched::Rdbms db(&catalog_, options);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));  // queued
  ASSERT_TRUE(b.ok());
  WlmAdvisor advisor(&db);
  auto aborted = advisor.AbortAllUnfinished();
  EXPECT_EQ(aborted.size(), 2u);
  EXPECT_EQ(db.info(*a)->state, sched::QueryState::kAborted);
  EXPECT_EQ(db.info(*b)->state, sched::QueryState::kAborted);
  EXPECT_TRUE(db.Idle());
}

}  // namespace
}  // namespace mqpi::wlm
