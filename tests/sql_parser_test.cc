#include <gtest/gtest.h>

#include "engine/sql_parser.h"
#include "storage/tpcr_gen.h"

namespace mqpi::engine {
namespace {

using internal::Token;
using internal::TokenKind;
using internal::Tokenize;

// ---- tokenizer ----------------------------------------------------------------

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT * FROM t WHERE x > 1.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // 8 + end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "select");  // lower-cased
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kStar);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kIdentifier);  // x
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[7].number, 1.5);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(TokenizerTest, PunctuationAndPositions) {
  auto tokens = Tokenize("a.b(c)=d/e,f");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdentifier, TokenKind::kDot,
                       TokenKind::kIdentifier, TokenKind::kLParen,
                       TokenKind::kIdentifier, TokenKind::kRParen,
                       TokenKind::kEq, TokenKind::kIdentifier,
                       TokenKind::kDiv, TokenKind::kIdentifier,
                       TokenKind::kComma, TokenKind::kIdentifier,
                       TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[1].position, 1u);
}

TEST(TokenizerTest, RejectsUnknownCharacter) {
  EXPECT_TRUE(Tokenize("select ; drop").status().IsInvalidArgument());
}

TEST(TokenizerTest, NumbersWithLeadingDot) {
  auto tokens = Tokenize(".75");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 0.75);
}

// ---- scan aggregates -------------------------------------------------------------

TEST(ParserTest, CountStar) {
  auto spec = ParseSql("SELECT COUNT(*) FROM lineitem");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kScanAggregate);
  EXPECT_EQ(spec->agg, AggFunc::kCount);
  EXPECT_EQ(spec->table, "lineitem");
  EXPECT_FALSE(spec->has_filter);
}

TEST(ParserTest, SumWithFilter) {
  auto spec =
      ParseSql("select sum(quantity) from lineitem where quantity > 25");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->agg, AggFunc::kSum);
  EXPECT_EQ(spec->agg_column, "quantity");
  ASSERT_TRUE(spec->has_filter);
  EXPECT_EQ(spec->filter_column, "quantity");
  EXPECT_DOUBLE_EQ(spec->filter_threshold, 25.0);
}

TEST(ParserTest, AllAggregateFunctions) {
  for (const auto& [sql, func] :
       std::vector<std::pair<std::string, AggFunc>>{
           {"select avg(x) from t", AggFunc::kAvg},
           {"select min(x) from t", AggFunc::kMin},
           {"select max(x) from t", AggFunc::kMax}}) {
    auto spec = ParseSql(sql);
    ASSERT_TRUE(spec.ok()) << sql;
    EXPECT_EQ(spec->agg, func) << sql;
  }
}

TEST(ParserTest, QualifiedColumnAndAlias) {
  auto spec = ParseSql("select avg(l.extendedprice) from lineitem l "
                       "where l.quantity > 10");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->agg_column, "extendedprice");
  EXPECT_EQ(spec->filter_column, "quantity");
}

// ---- join aggregates --------------------------------------------------------------

TEST(ParserTest, JoinAggregate) {
  auto spec = ParseSql(
      "SELECT SUM(l.extendedprice) FROM part_3 p JOIN lineitem l "
      "ON p.partkey = l.partkey");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kJoinAggregate);
  EXPECT_EQ(spec->table, "part_3");
  EXPECT_EQ(spec->agg, AggFunc::kSum);
  EXPECT_EQ(spec->agg_column, "extendedprice");
}

TEST(ParserTest, JoinWithoutAliases) {
  auto spec = ParseSql(
      "select count(*) from part_1 join lineitem on partkey = partkey");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kJoinAggregate);
}

TEST(ParserTest, JoinMustProbeLineitem) {
  EXPECT_FALSE(ParseSql("select count(*) from part_1 join part_2 "
                        "on partkey = partkey")
                   .ok());
}

TEST(ParserTest, JoinMustUsePartkey) {
  EXPECT_FALSE(ParseSql("select count(*) from part_1 join lineitem "
                        "on suppkey = suppkey")
                   .ok());
}

// ---- the paper's template -----------------------------------------------------------

TEST(ParserTest, TpcrTemplate) {
  auto spec = ParseSql(
      "select * from part_7 p where p.retailprice * 0.75 > "
      "(select sum(l.extendedprice) / sum(l.quantity) from lineitem l "
      "where l.partkey = p.partkey)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->kind, QuerySpec::Kind::kTpcrPartPrice);
  EXPECT_EQ(spec->table, "part_7");
}

TEST(ParserTest, TemplateRejectsWrongPieces) {
  // Wrong multiplier.
  EXPECT_FALSE(ParseSql("select * from p x where x.retailprice * 0.5 > "
                        "(select sum(l.extendedprice) / sum(l.quantity) "
                        "from lineitem l where l.partkey = x.partkey)")
                   .ok());
  // Wrong numerator.
  EXPECT_FALSE(ParseSql("select * from p x where x.retailprice * 0.75 > "
                        "(select sum(l.tax) / sum(l.quantity) "
                        "from lineitem l where l.partkey = x.partkey)")
                   .ok());
  // Wrong inner table.
  EXPECT_FALSE(ParseSql("select * from p x where x.retailprice * 0.75 > "
                        "(select sum(l.extendedprice) / sum(l.quantity) "
                        "from orders l where l.partkey = x.partkey)")
                   .ok());
}

// ---- errors ---------------------------------------------------------------------------

TEST(ParserTest, ErrorsCarryOffsets) {
  auto result = ParseSql("select count(*) from");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  // ("extra" alone would parse as a table alias.)
  EXPECT_FALSE(ParseSql("select count(*) from t where x > 1 zzz").ok());
  EXPECT_FALSE(ParseSql("select count(*) from t alias zzz").ok());
}

TEST(ParserTest, RejectsUnknownAggregate) {
  EXPECT_FALSE(ParseSql("select median(x) from t").ok());
}

TEST(ParserTest, RejectsMissingSelect) {
  EXPECT_FALSE(ParseSql("count(*) from t").ok());
}

// ---- end-to-end: parse then execute ---------------------------------------------------

TEST(ParserExecutionTest, ParsedQueryRuns) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 200, .matches_per_key = 5, .seed = 3});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(generator.BuildPartTable(&catalog, "part_1", 8).ok());
  storage::BufferManager buffers;
  Planner planner(&catalog, &buffers, {.noise_sigma = 0.0});

  for (const char* sql :
       {"select count(*) from lineitem where quantity > 40",
        "select sum(l.extendedprice) from part_1 p join lineitem l "
        "on p.partkey = l.partkey",
        "select * from part_1 p where p.retailprice * 0.75 > "
        "(select sum(l.extendedprice) / sum(l.quantity) from lineitem l "
        "where l.partkey = p.partkey)"}) {
    auto spec = ParseSql(sql);
    ASSERT_TRUE(spec.ok()) << sql << ": " << spec.status().ToString();
    auto prepared = planner.Prepare(*spec);
    ASSERT_TRUE(prepared.ok()) << sql;
    while (!prepared->execution->done()) prepared->execution->Advance(100.0);
    EXPECT_TRUE(prepared->execution->status().ok()) << sql;
    EXPECT_GT(prepared->execution->completed_work(), 0.0) << sql;
  }
}

}  // namespace
}  // namespace mqpi::engine
