// Recovery-plane tests: journal record framing (round trip, torn-tail
// truncation at every byte offset, CRC rejection), the DurableLog
// (rotation, retention, write-failure poisoning + checkpoint healing,
// corrupt-checkpoint fallback), differential crash recovery (the
// recovered ProgressSnapshot is byte-identical to the pre-crash one,
// across quiet and chaos regimes), graceful drain (admissions close
// with kUnavailable, subscribers get a goodbye frame, the journal gets
// a final checkpoint), and the self-healing ResilientClient converging
// gap-free across a full server restart under net.conn_drop.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/planner.h"
#include "fault/fault_injector.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "net/wire.h"
#include "recover/durable_log.h"
#include "recover/event.h"
#include "recover/journal.h"
#include "recover/recovery.h"
#include "service/metrics.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

namespace mqpi::recover {
namespace {

using engine::QuerySpec;
using service::PiService;
using service::PiServiceOptions;

storage::Catalog* TestCatalog() {
  static storage::Catalog catalog;
  return &catalog;
}

PiServiceOptions ManualOptions() {
  PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  return options;
}

// A fresh temp directory per test; removed (recursively, two levels
// deep at most) on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/mqpi_recover_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    (void)::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Event MakeEvent(EventKind kind, std::uint64_t session_id, QueryId query_id) {
  Event event;
  event.kind = kind;
  event.session_id = session_id;
  event.query_id = query_id;
  event.time = 1.25;
  event.priority = Priority::kHigh;
  event.op = sched::QueryEventKind::kBlocked;
  event.flag = true;
  event.spec = QuerySpec::Synthetic(321.5);
  event.name = "journal-round-trip";
  return event;
}

// ---- record framing ---------------------------------------------------------

TEST(Journal, EventRoundTripsThroughRecordFraming) {
  std::vector<Event> events;
  for (int kind = static_cast<int>(EventKind::kSessionOpen);
       kind <= static_cast<int>(EventKind::kDrain); ++kind) {
    events.push_back(MakeEvent(static_cast<EventKind>(kind),
                               static_cast<std::uint64_t>(kind), kind * 7));
  }

  TempDir dir;
  const std::string path = dir.Sub("round.wal");
  {
    RecordWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (const Event& event : events) {
      ASSERT_TRUE(
          writer.Append(RecordType::kEvent, EncodeEvent(event)).ok());
    }
    ASSERT_TRUE(writer.Sync().ok());
  }

  auto read = ReadLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->truncated_tail);
  ASSERT_EQ(read->records.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_EQ(read->records[i].type, RecordType::kEvent);
    Event decoded_event;
    ASSERT_TRUE(DecodeEvent(read->records[i].payload, &decoded_event).ok());
    const Event* decoded = &decoded_event;
    EXPECT_EQ(decoded->kind, events[i].kind);
    EXPECT_EQ(decoded->session_id, events[i].session_id);
    EXPECT_EQ(decoded->query_id, events[i].query_id);
    EXPECT_EQ(decoded->time, events[i].time);
    EXPECT_EQ(decoded->priority, events[i].priority);
    EXPECT_EQ(decoded->op, events[i].op);
    EXPECT_EQ(decoded->flag, events[i].flag);
    EXPECT_EQ(decoded->name, events[i].name);
    EXPECT_EQ(decoded->spec.synthetic_cost, events[i].spec.synthetic_cost);
  }
}

TEST(Journal, TornTailAtEveryByteOffsetDropsOnlyTheLastRecord) {
  TempDir dir;
  const std::string path = dir.Sub("torn.wal");
  {
    RecordWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(writer
                      .Append(RecordType::kEvent,
                              EncodeEvent(MakeEvent(EventKind::kSubmit, 1, i)))
                      .ok());
    }
  }
  const std::string full = ReadFileBytes(path);
  auto intact = ReadLog(path);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), 4u);
  const std::size_t prefix = static_cast<std::size_t>(
      intact->valid_bytes -
      (kRecordPrefixBytes + intact->records.back().payload.size()));

  // Truncate at every byte offset inside the final record: the reader
  // must keep exactly the first three records and report the tear.
  const std::string torn_path = dir.Sub("torn_copy.wal");
  for (std::size_t cut = prefix; cut < full.size(); ++cut) {
    WriteFileBytes(torn_path, full.substr(0, cut));
    auto read = ReadLog(torn_path);
    ASSERT_TRUE(read.ok()) << "cut at " << cut;
    EXPECT_EQ(read->records.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(read->valid_bytes, prefix) << "cut at " << cut;
    EXPECT_EQ(read->truncated_tail, cut != prefix) << "cut at " << cut;
    EXPECT_EQ(read->dropped_bytes, cut - prefix) << "cut at " << cut;
  }
}

TEST(Journal, CorruptByteInsideARecordEndsTheValidPrefix) {
  TempDir dir;
  const std::string path = dir.Sub("flip.wal");
  {
    RecordWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(writer
                      .Append(RecordType::kEvent,
                              EncodeEvent(MakeEvent(EventKind::kSubmit, 1, i)))
                      .ok());
    }
  }
  std::string bytes = ReadFileBytes(path);
  // Flip one payload byte of the second record.
  auto intact = ReadLog(path);
  ASSERT_TRUE(intact.ok());
  const std::size_t first_len =
      kRecordPrefixBytes + intact->records[0].payload.size();
  bytes[first_len + kRecordPrefixBytes + 3] ^= 0x40;
  WriteFileBytes(path, bytes);

  auto read = ReadLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 1u);
  EXPECT_TRUE(read->truncated_tail);
  EXPECT_EQ(read->valid_bytes, first_len);
}

// ---- scenario driver --------------------------------------------------------

enum class ChaosRegime { kNone, kScheduler, kEstimator };

const char* RegimeName(ChaosRegime regime) {
  switch (regime) {
    case ChaosRegime::kNone:
      return "none";
    case ChaosRegime::kScheduler:
      return "scheduler";
    case ChaosRegime::kEstimator:
      return "estimator";
  }
  return "?";
}

void ArmRegime(fault::FaultInjector* injector, ChaosRegime regime) {
  switch (regime) {
    case ChaosRegime::kNone:
      break;
    case ChaosRegime::kScheduler:
      injector->ArmProbability(fault::kSchedRateCollapse, 0.2, 0.4);
      injector->ArmProbability(fault::kSchedQuantumStall, 0.1);
      injector->ArmProbability(fault::kSchedSpuriousAbort, 0.05);
      break;
    case ChaosRegime::kEstimator:
      injector->ArmProbability(fault::kPiCacheInvalidate, 0.2);
      injector->ArmProbability(fault::kPiWindowCorrupt, 0.1, -5.0);
      injector->ArmProbability(fault::kServicePublishDelay, 0.2);
      break;
  }
}

constexpr std::uint64_t kChaosSeed = 0xD1CEu;

// Drives a journaled service through a busy little lifetime —
// sessions, submissions, scheduled arrivals, control calls, steps,
// publishes, optionally periodic checkpoints — then "crashes"
// (detaches the sink so nothing else is journaled) and returns the
// byte image of the pre-crash state.
std::string RunScenarioAndCrash(const std::string& dir, ChaosRegime regime,
                                int checkpoint_every = 0) {
  fault::FaultInjector injector(kChaosSeed);
  ArmRegime(&injector, regime);
  auto log = std::make_unique<DurableLog>();
  DurableLog::Options log_options;
  EXPECT_TRUE(log->Open(dir, log_options).ok());

  PiServiceOptions options = ManualOptions();
  options.fault = regime == ChaosRegime::kNone ? nullptr : &injector;
  options.event_sink = log.get();
  PiService service(TestCatalog(), options);

  auto alice = service.OpenSession("alice");
  auto bob = service.OpenSession("bob");
  std::vector<QueryId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = alice->Submit(QuerySpec::Synthetic(80.0 + 40.0 * i));
    EXPECT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_TRUE(bob->SubmitAt(0.7, QuerySpec::Synthetic(120.0)).ok());
  EXPECT_TRUE(bob->SubmitAt(1.4, QuerySpec::Synthetic(60.0)).ok());

  int steps = 0;
  for (int round = 0; round < 6; ++round) {
    EXPECT_TRUE(service.Advance(0.3).ok());
    if (round == 1) {
      // Under the scheduler chaos regime a spurious abort may already
      // have killed the target; only SUCCESSFUL controls are journaled
      // either way, so failure here is a legal timeline, not an error.
      (void)alice->Block(ids[0]);
      (void)alice->SetPriority(ids[1], Priority::kHigh);
    }
    if (round == 3) {
      (void)alice->Resume(ids[0]);
      auto late = bob->Submit(QuerySpec::Synthetic(200.0), Priority::kLow);
      EXPECT_TRUE(late.ok());
    }
    if (round == 4) service.SetAdmissionOpen(false);
    if (round == 5) service.SetAdmissionOpen(true);
    service.PublishNow();
    ++steps;
    if (checkpoint_every > 0 && steps % checkpoint_every == 0) {
      EXPECT_TRUE(Checkpoint(&service, log.get()).ok());
    }
  }

  // The pre-crash image: probe (journaled), encode, then crash — the
  // sink detaches so the session teardown below is never journaled,
  // exactly as if the process had died here.
  const std::string pre = EncodeSnapshotBytes(service.BuildUnpublishedSnapshot());
  EXPECT_TRUE(log->Sync().ok());
  service.SetEventSink(nullptr);
  alice->Close();
  bob->Close();
  return pre;
}

// Recover `dir` with a fresh same-seed injector and return the byte
// image at the replayed probe point.
std::string RecoverAndEncode(const std::string& dir, ChaosRegime regime,
                             RecoveredService* out = nullptr) {
  fault::FaultInjector injector(kChaosSeed);
  ArmRegime(&injector, regime);
  PiServiceOptions options = ManualOptions();
  options.fault = regime == ChaosRegime::kNone ? nullptr : &injector;
  auto recovered = Recover(TestCatalog(), dir, options);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return "";
  const std::string post =
      EncodeSnapshotBytes(recovered->service->BuildUnpublishedSnapshot());
  if (out != nullptr) *out = std::move(*recovered);
  return post;
}

// ---- differential recovery --------------------------------------------------

class DifferentialRecovery : public ::testing::TestWithParam<ChaosRegime> {};

TEST_P(DifferentialRecovery, RecoveredSnapshotIsByteIdentical) {
  TempDir dir;
  const std::string pre = RunScenarioAndCrash(dir.path(), GetParam());
  ASSERT_FALSE(pre.empty());
  RecoveredService recovered;
  const std::string post = RecoverAndEncode(dir.path(), GetParam(), &recovered);
  EXPECT_EQ(pre, post) << "regime " << RegimeName(GetParam());
  EXPECT_GT(recovered.events_replayed, 0u);
  EXPECT_FALSE(recovered.had_checkpoint);
  EXPECT_EQ(recovered.sessions.size(), 2u);  // crash left both open
}

TEST_P(DifferentialRecovery, WithCheckpointsVerifiesAndMatches) {
  TempDir dir;
  const std::string pre =
      RunScenarioAndCrash(dir.path(), GetParam(), /*checkpoint_every=*/2);
  ASSERT_FALSE(pre.empty());
  RecoveredService recovered;
  const std::string post = RecoverAndEncode(dir.path(), GetParam(), &recovered);
  EXPECT_EQ(pre, post) << "regime " << RegimeName(GetParam());
  EXPECT_TRUE(recovered.had_checkpoint);
  EXPECT_TRUE(recovered.verified) << "checkpoint verification failed";
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, DifferentialRecovery,
    ::testing::Values(ChaosRegime::kNone, ChaosRegime::kScheduler,
                      ChaosRegime::kEstimator),
    [](const ::testing::TestParamInfo<ChaosRegime>& info) {
      return RegimeName(info.param);
    });

// Kill-mid-soak: with checkpoints cut under churn, truncate the active
// journal at EVERY byte offset of its final record. Each truncation
// must recover cleanly — either the full history (cut at the record
// boundary) or the history minus exactly the torn record.
TEST(Recovery, KillMidSoakTruncatedAtEveryByteOffset) {
  TempDir dir;
  const std::string scenario = dir.Sub("scenario");
  (void)RunScenarioAndCrash(scenario, ChaosRegime::kNone,
                            /*checkpoint_every=*/4);

  auto loaded = DurableLog::Load(scenario);
  ASSERT_TRUE(loaded.ok());
  const std::uint64_t active = loaded->active_index;
  const std::string active_path =
      DurableLog::JournalPath(scenario, active);
  const std::string full = ReadFileBytes(active_path);
  auto intact = ReadLog(active_path);
  ASSERT_TRUE(intact.ok());
  ASSERT_GE(intact->records.size(), 2u);
  const std::size_t prefix = static_cast<std::size_t>(
      intact->valid_bytes -
      (kRecordPrefixBytes + intact->records.back().payload.size()));
  const std::size_t full_events = loaded->events.size();

  for (std::size_t cut = prefix; cut <= full.size(); ++cut) {
    WriteFileBytes(active_path, full.substr(0, cut));
    PiServiceOptions options = ManualOptions();
    auto recovered = Recover(TestCatalog(), scenario, options);
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status().ToString();
    const std::size_t expected =
        cut == full.size() ? full_events : full_events - 1;
    EXPECT_EQ(recovered->events_replayed, expected) << "cut at " << cut;
    EXPECT_TRUE(recovered->had_checkpoint);
    EXPECT_TRUE(recovered->verified) << "cut at " << cut;
    // Resuming the log truncated the tear; restore the full journal
    // for the next iteration.
    recovered->log->Close();
    WriteFileBytes(active_path, full);
  }
}

// ---- checkpoint fallback ----------------------------------------------------

TEST(Recovery, CorruptNewestCheckpointFallsBackToPrevious) {
  TempDir dir;
  const std::string pre = RunScenarioAndCrash(dir.path(), ChaosRegime::kNone,
                                              /*checkpoint_every=*/2);
  auto loaded = DurableLog::Load(dir.path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->had_checkpoint);
  ASSERT_GE(loaded->checkpoint_index, 2u);  // at least two cut

  // Flip a byte in the middle of the newest checkpoint.
  const std::string newest =
      DurableLog::CheckpointPath(dir.path(), loaded->checkpoint_index);
  std::string bytes = ReadFileBytes(newest);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFileBytes(newest, bytes);

  RecoveredService recovered;
  const std::string post =
      RecoverAndEncode(dir.path(), ChaosRegime::kNone, &recovered);
  // Journals are rotated, never truncated: the older checkpoint plus
  // the retained journal segments replay to the identical state.
  EXPECT_EQ(pre, post);
  EXPECT_TRUE(recovered.had_checkpoint);
  EXPECT_GT(recovered.events_replayed, 0u);
  EXPECT_GE(recovered.corrupt_checkpoints, 1u);
}

TEST(Recovery, CheckpointCorruptFaultPointExercisesFallback) {
  TempDir dir;
  fault::FaultInjector injector(kChaosSeed);
  // Corrupt the SECOND checkpoint as it is written.
  injector.ArmSchedule(fault::kRecoverCheckpointCorrupt, {1});

  auto log = std::make_unique<DurableLog>();
  DurableLog::Options log_options;
  log_options.fault = &injector;
  ASSERT_TRUE(log->Open(dir.path(), log_options).ok());
  PiServiceOptions options = ManualOptions();
  options.event_sink = log.get();
  PiService service(TestCatalog(), options);
  auto session = service.OpenSession("chaos");
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(90.0)).ok());
  ASSERT_TRUE(service.Advance(0.5).ok());
  ASSERT_TRUE(Checkpoint(&service, log.get()).ok());  // checkpoint 1, clean
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(150.0)).ok());
  ASSERT_TRUE(service.Advance(0.5).ok());
  ASSERT_TRUE(Checkpoint(&service, log.get()).ok());  // checkpoint 2, corrupt
  ASSERT_TRUE(service.Advance(0.4).ok());
  const std::string pre =
      EncodeSnapshotBytes(service.BuildUnpublishedSnapshot());
  service.SetEventSink(nullptr);
  session->Close();
  log->Close();

  RecoveredService recovered;
  const std::string post =
      RecoverAndEncode(dir.path(), ChaosRegime::kNone, &recovered);
  EXPECT_EQ(pre, post);
  EXPECT_GE(recovered.corrupt_checkpoints, 1u);
  EXPECT_TRUE(recovered.had_checkpoint);  // fell back to checkpoint 1
}

// ---- journal write failure --------------------------------------------------

TEST(DurableLogTest, WriteFailPoisonsSegmentAndCheckpointHeals) {
  TempDir dir;
  fault::FaultInjector injector(7);
  service::MetricsRegistry metrics;
  injector.ArmSchedule(fault::kRecoverJournalWriteFail, {2});

  DurableLog log;
  DurableLog::Options options;
  options.fault = &injector;
  options.metrics = &metrics;
  ASSERT_TRUE(log.Open(dir.path(), options).ok());
  for (int i = 0; i < 5; ++i) {
    log.Append(MakeEvent(EventKind::kSubmit, 1, i));
  }
  // Append #2 fired the fault: the segment is poisoned, the in-memory
  // history is intact, and nothing after the poison hit the disk.
  EXPECT_FALSE(log.healthy());
  EXPECT_EQ(log.history_size(), 5u);
  EXPECT_EQ(metrics.counter("recover.journal_write_fails")->value(), 1.0);
  EXPECT_EQ(metrics.counter("recover.journal_records")->value(), 2.0);
  auto on_disk = ReadLog(DurableLog::JournalPath(dir.path(), 0));
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(on_disk->records.size(), 2u);

  // A checkpoint is written from the authoritative in-memory history:
  // it heals the log and carries all five events.
  ASSERT_TRUE(log.WriteCheckpoint("verify-bytes").ok());
  EXPECT_TRUE(log.healthy());
  log.Append(MakeEvent(EventKind::kSubmit, 1, 99));
  log.Close();

  auto loaded = DurableLog::Load(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->had_checkpoint);
  ASSERT_EQ(loaded->events.size(), 6u);
  EXPECT_EQ(loaded->events[5].query_id, 99u);
  EXPECT_EQ(loaded->verification, "verify-bytes");
}

// ---- graceful drain ---------------------------------------------------------

TEST(Drain, ClosesAdmissionsSaysGoodbyeAndCheckpoints) {
  TempDir dir;
  auto log = std::make_unique<DurableLog>();
  ASSERT_TRUE(log->Open(dir.path(), {}).ok());
  PiServiceOptions options = ManualOptions();
  options.event_sink = log.get();
  PiService service(TestCatalog(), options);
  auto session = service.OpenSession("drainee");
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(500.0)).ok());
  ASSERT_TRUE(service.Advance(0.5).ok());
  service.PublishNow();

  net::PiServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe().ok());
  ASSERT_TRUE((*client)->WaitForSequence(1, 5.0).ok());

  bool flushed = false;
  PiService::DrainHooks hooks;
  hooks.flush = [&] {
    flushed = true;
    EXPECT_TRUE(log->Sync().ok());
    EXPECT_TRUE(Checkpoint(&service, log.get()).ok());
  };
  hooks.goodbye = [&] { EXPECT_TRUE(server.Drain().ok()); };
  ASSERT_TRUE(service.Drain(hooks).ok());
  EXPECT_TRUE(flushed);
  EXPECT_TRUE(service.draining());
  EXPECT_EQ(service.metrics()->counter("service.drains")->value(), 1.0);

  // Submissions are refused with kUnavailable.
  auto refused = session->Submit(QuerySpec::Synthetic(10.0));
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable());
  EXPECT_FALSE(session->SubmitAt(9.0, QuerySpec::Synthetic(10.0)).ok());

  // The subscriber receives the goodbye ERROR frame (kUnavailable) and
  // then the connection closes.
  bool saw_goodbye = false;
  for (int i = 0; i < 50 && !saw_goodbye; ++i) {
    auto pushed = (*client)->PumpOne(0.2);
    if (!pushed.ok()) {
      saw_goodbye = pushed.status().IsUnavailable();
      break;
    }
  }
  EXPECT_TRUE(saw_goodbye);

  // A second drain is refused.
  EXPECT_FALSE(service.Drain({}).ok());

  server.Stop();
  session->Close();

  // The final checkpoint makes the drained state recoverable.
  auto loaded = DurableLog::Load(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->had_checkpoint);
  bool saw_drain_event = false;
  for (const Event& event : loaded->events) {
    if (event.kind == EventKind::kDrain) saw_drain_event = true;
  }
  EXPECT_TRUE(saw_drain_event);
}

// ---- resilient client -------------------------------------------------------

net::ResilientClient::Options FastClientOptions() {
  net::ResilientClient::Options options;
  options.connect_timeout_s = 1.0;
  options.backoff_initial_s = 0.02;
  options.backoff_max_s = 0.2;
  options.ping_interval_s = 0.2;
  options.call_timeout_s = 2.0;
  return options;
}

TEST(ResilientClientTest, ConvergesGapFreeAcrossServerRestart) {
  
  PiServiceOptions options = ManualOptions();
  service::MetricsRegistry client_metrics;

  // First server generation.
  auto service1 = std::make_unique<PiService>(TestCatalog(), options);
  auto session1 = service1->OpenSession("gen1");
  ASSERT_TRUE(session1->Submit(QuerySpec::Synthetic(400.0)).ok());
  ASSERT_TRUE(service1->Advance(0.3).ok());
  service1->PublishNow();
  auto server1 = std::make_unique<net::PiServer>(service1.get());
  ASSERT_TRUE(server1->Start().ok());
  const std::uint16_t port = server1->port();

  auto client_options = FastClientOptions();
  client_options.metrics = &client_metrics;
  net::ResilientClient client("127.0.0.1", port, client_options);
  ASSERT_TRUE(client.WaitForSequence(1, 5.0));
  const std::uint64_t seq1 = client.sequence();
  EXPECT_GE(seq1, 1u);

  // Kill generation one outright — subscribers are cut mid-stream.
  server1->Stop();
  session1->Close();
  server1.reset();
  service1.reset();

  // Second generation on the SAME port, with chaos: net.conn_drop
  // keeps severing live connections, so the client must reconnect
  // repeatedly and still converge.
  fault::FaultInjector chaos(42);
  chaos.ArmProbability(fault::kNetConnDrop, 0.05);
  auto service2 = std::make_unique<PiService>(TestCatalog(), options);
  auto session2 = service2->OpenSession("gen2");
  ASSERT_TRUE(session2->Submit(QuerySpec::Synthetic(300.0)).ok());
  net::PiServerOptions server_options;
  server_options.port = port;
  server_options.fault = &chaos;
  auto server2 =
      std::make_unique<net::PiServer>(service2.get(), server_options);
  // The old port may linger in TIME_WAIT paperwork briefly; retry.
  Status started = Status::OK();
  for (int i = 0; i < 50; ++i) {
    started = server2->Start();
    if (started.ok()) break;
    ::usleep(100 * 1000);
  }
  ASSERT_TRUE(started.ok()) << started.ToString();

  // Publish a stream of snapshots; the client must follow it to the
  // end despite the restart and the connection drops.
  std::uint64_t target = 0;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(service2->Advance(0.2).ok());
    service2->PublishNow();
    target = service2->snapshot()->sequence;
    ::usleep(20 * 1000);
  }
  ASSERT_TRUE(client.WaitForSequence(target, 20.0))
      << "client stuck at " << client.sequence() << " of " << target;
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.resubscribes(), 1u);
  EXPECT_EQ(client_metrics.counter("net.client.reconnects")->value(),
            static_cast<double>(client.reconnects()));

  // Gap-free: the converged view matches the server's snapshot rows.
  const net::SnapshotView view = client.View();
  const auto truth = service2->snapshot();
  EXPECT_EQ(view.sequence(), truth->sequence);
  EXPECT_EQ(view.rows(), truth->queries.size());

  client.Stop();
  server2->Stop();
  session2->Close();
}

TEST(ResilientClientTest, ConnectFailFaultDrivesBackoffPath) {
  // No server at all on a fresh ephemeral port; the fault point makes
  // half the attempts fail before the socket, and the rest fail for
  // real. The client must keep scheduling retries without spinning.
  fault::FaultInjector chaos(7);
  chaos.ArmProbability(fault::kNetClientConnectFail, 0.5);
  service::MetricsRegistry metrics;
  auto options = FastClientOptions();
  options.fault = &chaos;
  options.metrics = &metrics;
  net::ResilientClient client("127.0.0.1", 1, options);  // port 1: refused
  ::usleep(300 * 1000);
  client.Stop();
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.reconnects(), 0u);  // never connected at all
  EXPECT_GE(metrics.counter("net.client.connect_fails")->value(), 1.0);
  // The fault point was consulted.
  bool evaluated = false;
  for (const auto& point : chaos.Stats()) {
    if (std::string(point.point) == fault::kNetClientConnectFail) {
      evaluated = point.evaluations > 0;
    }
  }
  EXPECT_TRUE(evaluated);
}

TEST(SnapshotViewTest, ResetClearsRowsButKeepsTallies) {
  net::SnapshotView view;
  net::SnapshotFrame frame;
  frame.sequence = 5;
  frame.sim_time = 2.0;
  frame.num_running = 1;
  service::QueryProgress row;
  row.id = 3;
  frame.rows.push_back(row);
  frame.total_rows = 1;
  ASSERT_TRUE(view.Apply(frame, /*is_full=*/true).ok());
  ASSERT_EQ(view.rows(), 1u);
  ASSERT_EQ(view.sequence(), 5u);

  view.Reset();
  EXPECT_EQ(view.rows(), 0u);
  EXPECT_EQ(view.sequence(), 0u);
  EXPECT_EQ(view.fulls_applied(), 1u);

  // A delta against the old sequence is now a gap, and the error names
  // both sides.
  net::SnapshotFrame delta;
  delta.sequence = 6;
  delta.base_sequence = 5;
  const Status gap = view.Apply(delta, /*is_full=*/false);
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.ToString().find("holds sequence 0"), std::string::npos)
      << gap.ToString();
  EXPECT_NE(gap.ToString().find("base 5"), std::string::npos);
}

}  // namespace
}  // namespace mqpi::recover
