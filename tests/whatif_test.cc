// Tests for the what-if forecaster and the EXPLAIN facility.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/planner.h"
#include "pi/analytic_simulator.h"
#include "pi/multi_query_pi.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"
#include "wlm/speedup.h"

namespace mqpi {
namespace {

using engine::QuerySpec;

class WhatIfTest : public ::testing::Test {
 protected:
  WhatIfTest() {
    options_.processing_rate = 100.0;
    options_.quantum = 0.05;
    options_.cost_model.noise_sigma = 0.0;
    options_.weights = PriorityWeights(1.0, 2.0, 4.0, 8.0);
    db_ = std::make_unique<sched::Rdbms>(&catalog_, options_);
  }
  storage::Catalog catalog_;
  sched::RdbmsOptions options_;
  std::unique_ptr<sched::Rdbms> db_;
};

TEST_F(WhatIfTest, BlockingScenarioMatchesSpeedupMath) {
  auto a = db_->Submit(QuerySpec::Synthetic(300.0));
  auto b = db_->Submit(QuerySpec::Synthetic(400.0));
  auto c = db_->Submit(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(c.ok());
  pi::MultiQueryPi pi(db_.get());

  auto baseline = pi.EstimateRemainingTime(*a);
  ASSERT_TRUE(baseline.ok());

  pi::MultiQueryPi::WhatIf scenario;
  scenario.blocked.push_back(*c);
  auto what_if = pi.ForecastWhatIf(scenario);
  ASSERT_TRUE(what_if.ok());
  auto hypothetical = what_if->FinishTimeOf(*a);
  ASSERT_TRUE(hypothetical.ok());

  // Cross-check with the Section 3.1 exact benefit.
  std::vector<pi::QueryLoad> loads;
  for (const auto& info : db_->RunningQueries()) {
    loads.push_back(
        pi::QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
  }
  auto benefit = wlm::SingleQuerySpeedup::ExactBenefit(
      loads, *a, *c, options_.processing_rate);
  ASSERT_TRUE(benefit.ok());
  EXPECT_NEAR(*baseline - *hypothetical, *benefit, 1e-9);
  // Blocked queries vanish from the what-if forecast.
  EXPECT_TRUE(what_if->FinishTimeOf(*c).status().IsNotFound());
}

TEST_F(WhatIfTest, ReweightScenarioMatchesPriorityMath) {
  auto a = db_->Submit(QuerySpec::Synthetic(300.0));
  auto b = db_->Submit(QuerySpec::Synthetic(300.0));
  ASSERT_TRUE(b.ok());
  pi::MultiQueryPi pi(db_.get());

  pi::MultiQueryPi::WhatIf scenario;
  scenario.reweighted.emplace_back(*a, 8.0);
  auto what_if = pi.ForecastWhatIf(scenario);
  ASSERT_TRUE(what_if.ok());

  std::vector<pi::QueryLoad> loads;
  for (const auto& info : db_->RunningQueries()) {
    loads.push_back(
        pi::QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
  }
  auto advice = wlm::SingleQuerySpeedup::EvaluateWeightChange(
      loads, *a, 8.0, options_.processing_rate);
  ASSERT_TRUE(advice.ok());
  EXPECT_NEAR(*what_if->FinishTimeOf(*a), advice->new_remaining, 1e-9);
}

TEST_F(WhatIfTest, AbortScenarioShortensQuiescentTime) {
  auto a = db_->Submit(QuerySpec::Synthetic(400.0));
  auto b = db_->Submit(QuerySpec::Synthetic(600.0));
  ASSERT_TRUE(b.ok());
  pi::MultiQueryPi pi(db_.get());
  auto baseline = pi.ForecastAll();
  ASSERT_TRUE(baseline.ok());
  pi::MultiQueryPi::WhatIf scenario;
  scenario.aborted.push_back(*b);
  auto what_if = pi.ForecastWhatIf(scenario);
  ASSERT_TRUE(what_if.ok());
  EXPECT_NEAR(baseline->quiescent_time(), 10.0, 1e-9);
  EXPECT_NEAR(what_if->quiescent_time(), 4.0, 1e-9);
  (void)a;
}

TEST_F(WhatIfTest, EmptyScenarioEqualsForecastAll) {
  auto a = db_->Submit(QuerySpec::Synthetic(123.0));
  ASSERT_TRUE(a.ok());
  pi::MultiQueryPi pi(db_.get());
  auto all = pi.ForecastAll();
  auto what_if = pi.ForecastWhatIf({});
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(what_if.ok());
  EXPECT_DOUBLE_EQ(*all->FinishTimeOf(*a), *what_if->FinishTimeOf(*a));
}

TEST_F(WhatIfTest, LargeMixedScenarioMatchesManualForecast) {
  // The scenario builder works from the PI's cached base-load snapshot
  // with hash-set lookups; cross-check a mixed blocked + aborted +
  // reweighted scenario against a forecast assembled by hand from the
  // raw query tables.
  std::vector<QueryId> ids;
  for (int i = 0; i < 40; ++i) {
    auto id = db_->Submit(QuerySpec::Synthetic(50.0 + 10.0 * i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  pi::MultiQueryPi pi(db_.get());

  pi::MultiQueryPi::WhatIf scenario;
  for (int i = 0; i < 40; i += 4) scenario.blocked.push_back(ids[i]);
  for (int i = 1; i < 40; i += 4) scenario.aborted.push_back(ids[i]);
  for (int i = 2; i < 40; i += 4) {
    scenario.reweighted.emplace_back(ids[i], 8.0);
  }
  auto what_if = pi.ForecastWhatIf(scenario);
  ASSERT_TRUE(what_if.ok());

  std::unordered_set<QueryId> removed(scenario.blocked.begin(),
                                      scenario.blocked.end());
  removed.insert(scenario.aborted.begin(), scenario.aborted.end());
  std::unordered_map<QueryId, double> reweighted(
      scenario.reweighted.begin(), scenario.reweighted.end());
  std::vector<pi::QueryLoad> loads;
  for (const auto& info : db_->RunningQueries()) {
    if (removed.count(info.id) != 0) continue;
    auto weight = reweighted.find(info.id);
    loads.push_back(pi::QueryLoad{
        info.id, info.estimated_remaining_cost,
        weight == reweighted.end() ? info.weight : weight->second});
  }
  pi::AnalyticModelOptions model;
  model.rate = options_.processing_rate;
  model.max_concurrent = options_.max_concurrent;
  auto manual = pi::AnalyticSimulator::Forecast(loads, {}, {}, model);
  ASSERT_TRUE(manual.ok());

  for (QueryId id : ids) {
    if (removed.count(id) != 0) {
      EXPECT_TRUE(what_if->FinishTimeOf(id).status().IsNotFound());
      continue;
    }
    auto expected = manual->FinishTimeOf(id);
    auto got = what_if->FinishTimeOf(id);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_DOUBLE_EQ(*got, *expected) << "id=" << id;
  }
  EXPECT_DOUBLE_EQ(what_if->quiescent_time(), manual->quiescent_time());
  EXPECT_EQ(pi.whatif_forecasts(), 1u);
}

// ---- Explain ------------------------------------------------------------------

TEST(ExplainTest, ReportsPlanAndEstimates) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 200, .matches_per_key = 5, .seed = 8});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(generator.BuildPartTable(&catalog, "part_1", 6).ok());
  storage::BufferManager buffers;
  engine::Planner planner(&catalog, &buffers, {.noise_sigma = 0.0});

  auto report = planner.Explain(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("CorrelatedSubqueryFilter"), std::string::npos);
  EXPECT_NE(report->find("Cost:"), std::string::npos);
  EXPECT_NE(report->find("Rows out:"), std::string::npos);

  auto join = planner.Explain(
      QuerySpec::JoinAggregate("part_1", engine::AggFunc::kCount, ""));
  ASSERT_TRUE(join.ok());
  EXPECT_NE(join->find("HashJoin"), std::string::npos);

  EXPECT_TRUE(planner.Explain(QuerySpec::TpcrPartPrice("nope")).status()
                  .IsNotFound());
}

}  // namespace
}  // namespace mqpi
