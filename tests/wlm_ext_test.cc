// Tests for the workload-management extensions: priority-raise advice
// (Section 3.1's "natural choice") and the scheduler properties the
// Section 2.1 assumptions rest on (work conservation, weighted
// fairness) after the serve-loop scheduler design.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"
#include "wlm/speedup.h"
#include "storage/tpcr_gen.h"
#include "wlm/wlm_advisor.h"

namespace mqpi::wlm {
namespace {

using engine::QuerySpec;
using pi::QueryLoad;

// ---- EvaluateWeightChange ------------------------------------------------------

TEST(PriorityRaiseTest, RaisingWeightShortensTarget) {
  std::vector<QueryLoad> loads{
      {1, 300.0, 1.0}, {2, 300.0, 1.0}, {3, 300.0, 1.0}};
  auto advice =
      SingleQuerySpeedup::EvaluateWeightChange(loads, 1, 4.0, 100.0);
  ASSERT_TRUE(advice.ok());
  EXPECT_GT(advice->time_saved, 0.0);
  EXPECT_LT(advice->new_remaining, advice->current_remaining);
  // Exact: with weights {4,1,1} and equal 300 U costs, target runs at
  // 4/6 of C until it finishes: 300 / (100 * 4/6) = 4.5 s.
  EXPECT_NEAR(advice->new_remaining, 4.5, 1e-9);
  EXPECT_NEAR(advice->current_remaining, 9.0, 1e-9);  // last of 3 equals
}

TEST(PriorityRaiseTest, SameWeightSavesNothing) {
  std::vector<QueryLoad> loads{{1, 100.0, 2.0}, {2, 500.0, 2.0}};
  auto advice =
      SingleQuerySpeedup::EvaluateWeightChange(loads, 1, 2.0, 100.0);
  ASSERT_TRUE(advice.ok());
  EXPECT_NEAR(advice->time_saved, 0.0, 1e-12);
}

TEST(PriorityRaiseTest, LoweringWeightCostsTime) {
  std::vector<QueryLoad> loads{{1, 300.0, 4.0}, {2, 300.0, 1.0}};
  auto advice =
      SingleQuerySpeedup::EvaluateWeightChange(loads, 1, 1.0, 100.0);
  ASSERT_TRUE(advice.ok());
  EXPECT_LT(advice->time_saved, 0.0);
}

TEST(PriorityRaiseTest, InvalidArguments) {
  std::vector<QueryLoad> loads{{1, 100.0, 1.0}};
  EXPECT_FALSE(
      SingleQuerySpeedup::EvaluateWeightChange(loads, 1, 0.0, 100.0).ok());
  EXPECT_TRUE(SingleQuerySpeedup::EvaluateWeightChange(loads, 9, 2.0, 100.0)
                  .status()
                  .IsNotFound());
}

TEST(PriorityRaiseTest, MatchesLiveExecution) {
  // The predicted remaining time after a raise must match the actual
  // finish time on the scheduler.
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.01;
  options.cost_model.noise_sigma = 0.0;
  options.weights = PriorityWeights(1.0, 1.0, 4.0, 8.0);
  sched::Rdbms db(&catalog, options);
  auto target = db.Submit(QuerySpec::Synthetic(300.0));
  auto other1 = db.Submit(QuerySpec::Synthetic(300.0));
  auto other2 = db.Submit(QuerySpec::Synthetic(300.0));
  ASSERT_TRUE(other2.ok());
  (void)other1;
  WlmAdvisor advisor(&db);
  auto advice = advisor.SpeedUpByPriority(*target, Priority::kHigh);
  ASSERT_TRUE(advice.ok()) << advice.status().ToString();
  EXPECT_EQ(db.info(*target)->priority, Priority::kHigh);
  db.RunUntilIdle();
  EXPECT_NEAR(db.info(*target)->finish_time, advice->new_remaining, 0.15);
}

TEST(PriorityRaiseTest, RejectsNonRunningTarget) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.max_concurrent = 1;
  sched::Rdbms db(&catalog, options);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));  // queued
  ASSERT_TRUE(a.ok());
  WlmAdvisor advisor(&db);
  EXPECT_EQ(advisor.SpeedUpByPriority(*b, Priority::kHigh).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---- scheduler conservation / fairness properties --------------------------------

class SchedulerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerPropertyTest, WorkConservationWithSyntheticQueries) {
  // Total completion time equals total work / C to quantum precision,
  // whatever the mix (Assumption 1 realized by the serve loop).
  Rng rng(42000 + static_cast<std::uint64_t>(GetParam()));
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = rng.Uniform(50.0, 400.0);
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  double total = 0.0;
  const int n = static_cast<int>(rng.UniformInt(1, 15));
  for (int i = 0; i < n; ++i) {
    const double cost = rng.Uniform(10.0, 800.0);
    total += cost;
    const auto pri = static_cast<Priority>(rng.UniformInt(0, 3));
    ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(cost), pri).ok());
  }
  db.RunUntilIdle();
  EXPECT_NEAR(db.now(), total / options.processing_rate,
              2.0 * options.quantum + 1e-9);
}

TEST_P(SchedulerPropertyTest, LongRunSharesProportionalToWeights) {
  // Over a long window with everyone backlogged, per-query consumption
  // ratios approach the weight ratios (Assumption 3).
  Rng rng(43000 + static_cast<std::uint64_t>(GetParam()));
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.0;
  options.weights = PriorityWeights(1.0, 2.0, 4.0, 8.0);
  sched::Rdbms db(&catalog, options);
  const Priority priorities[] = {Priority::kLow, Priority::kNormal,
                                 Priority::kHigh, Priority::kCritical};
  std::vector<QueryId> ids;
  for (Priority p : priorities) {
    ids.push_back(*db.Submit(QuerySpec::Synthetic(1e9), p));
  }
  db.Step(200.0);
  const double base = db.info(ids[0])->completed_work;
  ASSERT_GT(base, 0.0);
  EXPECT_NEAR(db.info(ids[1])->completed_work / base, 2.0, 0.05);
  EXPECT_NEAR(db.info(ids[2])->completed_work / base, 4.0, 0.05);
  EXPECT_NEAR(db.info(ids[3])->completed_work / base, 8.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Random, SchedulerPropertyTest,
                         ::testing::Range(0, 6));

TEST(SchedulerConservationTest, RealQueriesDeliverAggregateRate) {
  // With real TPC-R queries (lumpy 33-U probes), the aggregate delivery
  // over the whole run must still match C within a small tolerance —
  // the property the Figure 11 experiment depends on.
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 800, .matches_per_key = 10, .seed = 61});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  for (int n : {10, 20, 30}) {
    ASSERT_TRUE(generator
                    .BuildPartTable(&catalog, "part_c" + std::to_string(n), n)
                    .ok());
  }
  sched::RdbmsOptions options;
  options.processing_rate = 80.0;
  options.quantum = 0.5;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  std::vector<QueryId> ids;
  for (const char* table : {"part_c10", "part_c20", "part_c30",
                            "part_c10", "part_c20"}) {
    ids.push_back(*db.Submit(engine::QuerySpec::TpcrPartPrice(table)));
  }
  db.RunUntilIdle();
  double total = 0.0;
  for (QueryId id : ids) total += db.info(id)->completed_work;
  const double expected_span = total / options.processing_rate;
  EXPECT_NEAR(db.now(), expected_span, 0.05 * expected_span + 1.0);
}

TEST(SchedulerConservationTest, BlockedQueriesFreeTheirShare) {
  // Blocking must hand the victim's share to the survivors at once.
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  auto a = db.Submit(QuerySpec::Synthetic(1e9));
  auto b = db.Submit(QuerySpec::Synthetic(1e9));
  db.Step(10.0);
  const double before = db.info(*a)->completed_work;
  ASSERT_TRUE(db.Block(*b).ok());
  db.Step(10.0);
  const double delta = db.info(*a)->completed_work - before;
  EXPECT_NEAR(delta, 1000.0, 10.0);  // full rate for 10 s
}

}  // namespace
}  // namespace mqpi::wlm
