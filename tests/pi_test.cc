#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "pi/future_model.h"
#include "pi/multi_query_pi.h"
#include "pi/pi_manager.h"
#include "pi/single_query_pi.h"
#include "sched/rdbms.h"
#include "sim/runner.h"
#include "storage/catalog.h"

namespace mqpi::pi {
namespace {

using engine::QuerySpec;

sched::RdbmsOptions CleanOptions() {
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.05;
  options.cost_model.noise_sigma = 0.0;  // perfect statistics
  return options;
}

// ---- SingleQueryPi -----------------------------------------------------------

TEST(SingleQueryPiTest, UnobservedIsInfinite) {
  SingleQueryPi pi(1);
  EXPECT_EQ(pi.EstimateRemainingTime(), kInfiniteTime);
}

TEST(SingleQueryPiTest, EstimateIsCostOverSpeed) {
  SingleQueryPi pi(1, /*speed_alpha=*/1.0, /*window=*/2.0);
  sched::QueryInfo info;
  info.id = 1;
  info.state = sched::QueryState::kRunning;
  info.estimated_remaining_cost = 200.0;
  info.completed_work = 0.0;
  pi.Observe(info, 0.0);
  // Window not yet full: still no speed.
  EXPECT_EQ(pi.EstimateRemainingTime(), kInfiniteTime);
  info.completed_work = 100.0;  // 100 U over 2 s -> 50 U/s
  info.estimated_remaining_cost = 100.0;
  pi.Observe(info, 2.0);
  EXPECT_DOUBLE_EQ(pi.speed(), 50.0);
  EXPECT_DOUBLE_EQ(pi.EstimateRemainingTime(), 2.0);
}

TEST(SingleQueryPiTest, FinishedIsZero) {
  SingleQueryPi pi(1);
  sched::QueryInfo info;
  info.id = 1;
  info.state = sched::QueryState::kFinished;
  pi.Observe(info, 1.0);
  EXPECT_DOUBLE_EQ(pi.EstimateRemainingTime(), 0.0);
  EXPECT_TRUE(pi.finished());
}

TEST(SingleQueryPiTest, ExtrapolatesCurrentSpeedOnly) {
  // The defining weakness: it assumes the current speed persists.
  // Feed a speed that corresponds to 4-way sharing; the estimate must
  // be cost / shared-speed even though peers will finish soon.
  SingleQueryPi pi(1, 1.0, 2.0);
  sched::QueryInfo info;
  info.id = 1;
  info.state = sched::QueryState::kRunning;
  info.estimated_remaining_cost = 100.0;
  info.completed_work = 0.0;
  pi.Observe(info, 0.0);
  info.completed_work = 50.0;  // 25 U/s: quarter of C=100
  pi.Observe(info, 2.0);
  EXPECT_DOUBLE_EQ(pi.EstimateRemainingTime(), 4.0);
}

TEST(SingleQueryPiTest, BlockedStretchResetsWindow) {
  SingleQueryPi pi(1, 1.0, 2.0);
  sched::QueryInfo info;
  info.id = 1;
  info.state = sched::QueryState::kRunning;
  info.estimated_remaining_cost = 100.0;
  info.completed_work = 0.0;
  pi.Observe(info, 0.0);
  info.state = sched::QueryState::kBlocked;
  pi.Observe(info, 5.0);  // long blocked stretch must not count
  info.state = sched::QueryState::kRunning;
  info.completed_work = 10.0;
  pi.Observe(info, 6.0);   // window restarts here
  info.completed_work = 110.0;
  pi.Observe(info, 8.0);   // 100 U over 2 s
  EXPECT_DOUBLE_EQ(pi.speed(), 50.0);
}

// ---- FutureWorkloadModel -------------------------------------------------------

TEST(FutureModelTest, StaticModelNeverMoves) {
  FutureWorkloadModel model({.lambda = 0.1, .avg_cost = 50.0,
                             .avg_weight = 2.0});
  model.ObserveArrival(1.0, 500.0, 8.0);
  model.ObserveElapsed(100.0);
  const auto est = model.Current();
  EXPECT_DOUBLE_EQ(est.lambda, 0.1);
  EXPECT_DOUBLE_EQ(est.avg_cost, 50.0);
  EXPECT_DOUBLE_EQ(est.avg_weight, 2.0);
}

TEST(FutureModelTest, AdaptiveConvergesTowardObservations) {
  // Prior lambda' = 0.15 but true arrivals come at 0.03: after many
  // observations the estimate must approach the truth.
  FutureWorkloadModel model({.lambda = 0.15, .avg_cost = 100.0,
                             .avg_weight = 1.0},
                            /*prior_strength=*/10.0);
  SimTime t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += 1.0 / 0.03;
    model.ObserveArrival(t, 40.0, 1.0);
  }
  const auto est = model.Current();
  EXPECT_NEAR(est.lambda, 0.03, 0.005);
  EXPECT_NEAR(est.avg_cost, 40.0, 5.0);
}

TEST(FutureModelTest, QuietPeriodDecaysLambda) {
  FutureWorkloadModel model({.lambda = 0.5, .avg_cost = 100.0,
                             .avg_weight = 1.0},
                            /*prior_strength=*/5.0);
  model.ObserveElapsed(1000.0);  // long silence
  EXPECT_LT(model.Current().lambda, 0.05);
}

TEST(FutureModelTest, PriorStrengthControlsInertia) {
  FutureWorkloadModel weak({.lambda = 0.2, .avg_cost = 100.0,
                            .avg_weight = 1.0},
                           1.0);
  FutureWorkloadModel strong({.lambda = 0.2, .avg_cost = 100.0,
                              .avg_weight = 1.0},
                             100.0);
  for (SimTime t = 10.0; t <= 100.0; t += 10.0) {
    weak.ObserveArrival(t, 100.0, 1.0);    // observed rate 0.1
    strong.ObserveArrival(t, 100.0, 1.0);
  }
  // The weak prior should have moved much closer to 0.1.
  EXPECT_LT(std::fabs(weak.Current().lambda - 0.1),
            std::fabs(strong.Current().lambda - 0.1));
}

// ---- MultiQueryPi ---------------------------------------------------------------

TEST(MultiQueryPiTest, ExactUnderCleanAssumptions) {
  // With perfect statistics and no perturbations the multi-query PI's
  // time-0 estimates equal the standard-case closed form.
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  MultiQueryPi pi(&db);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(300.0));
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(*pi.EstimateRemainingTime(*a), 2.0, 1e-9);
  EXPECT_NEAR(*pi.EstimateRemainingTime(*b), 4.0, 1e-9);
}

TEST(MultiQueryPiTest, QueueAwareSeesQueuedQueries) {
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.max_concurrent = 1;
  sched::Rdbms db(&catalog, options);
  MultiQueryPi aware(&db, {.consider_admission_queue = true});
  MultiQueryPi blind(&db, {.consider_admission_queue = false});
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(b.ok());
  // Aware: b runs after a -> 2 s. Blind: cannot see b at all.
  EXPECT_NEAR(*aware.EstimateRemainingTime(*b), 2.0, 1e-9);
  EXPECT_EQ(*blind.EstimateRemainingTime(*b), kInfiniteTime);
  // And a is unaffected by the queue in either view.
  EXPECT_NEAR(*aware.EstimateRemainingTime(*a), 1.0, 1e-9);
  EXPECT_NEAR(*blind.EstimateRemainingTime(*a), 1.0, 1e-9);
}

TEST(MultiQueryPiTest, MeasuresEffectiveRate) {
  // Under a thrashing perturbation the configured C is wrong; the PI's
  // measured rate corrects it after a few steps.
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.perturbation.thrash_threshold = 1;
  options.perturbation.thrash_factor = 0.25;
  sched::Rdbms db(&catalog, options);
  MultiQueryPi pi(&db, {.rate_alpha = 1.0, .rate_window = 0.1});
  auto a = db.Submit(QuerySpec::Synthetic(1000.0));
  auto b = db.Submit(QuerySpec::Synthetic(1000.0));
  ASSERT_TRUE(b.ok());
  (void)a;
  for (int i = 0; i < 4; ++i) {
    db.Step(options.quantum);
    pi.ObserveStep();
  }
  // 2 running, threshold 1, factor 0.25 -> effective rate 75.
  EXPECT_NEAR(pi.estimated_rate(), 75.0, 1.0);
}

TEST(MultiQueryPiTest, FutureModelRaisesEstimates) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  FutureWorkloadModel future({.lambda = 0.5, .avg_cost = 100.0,
                              .avg_weight = 2.0});
  MultiQueryPi with(&db, {}, &future);
  MultiQueryPi without(&db, {}, nullptr);
  auto id = db.Submit(QuerySpec::Synthetic(400.0));
  ASSERT_TRUE(id.ok());
  EXPECT_GT(*with.EstimateRemainingTime(*id),
            *without.EstimateRemainingTime(*id) + 1.0);
}

TEST(MultiQueryPiTest, TerminalAndBlockedStates) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  MultiQueryPi pi(&db);
  auto a = db.Submit(QuerySpec::Synthetic(10.0));
  auto b = db.Submit(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(db.Block(*b).ok());
  EXPECT_EQ(*pi.EstimateRemainingTime(*b), kInfiniteTime);
  db.RunUntilIdle();
  EXPECT_DOUBLE_EQ(*pi.EstimateRemainingTime(*a), 0.0);
  EXPECT_TRUE(pi.EstimateRemainingTime(12345).status().IsNotFound());
}

TEST(MultiQueryPiTest, EstimateTracksActualOverLife) {
  // Run ten synthetic queries; at every second compare the multi-query
  // estimate for the longest query against its eventual actual
  // remaining time. Clean assumptions -> error stays tiny.
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  pi::PiManager pis(&db, {.sample_interval = 1.0});
  sim::SimulationRunner runner(&db, &pis);
  std::vector<QueryId> ids;
  for (int i = 1; i <= 10; ++i) {
    auto id = runner.SubmitNow(QuerySpec::Synthetic(60.0 * i));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const QueryId longest = ids.back();
  pis.Track(longest);
  runner.RunUntilIdle();
  const SimTime finish = db.info(longest)->finish_time;
  ASSERT_GT(finish, 10.0);
  int checked = 0;
  for (const auto& sample : pis.Trace(longest)) {
    const SimTime actual = finish - sample.time;
    ASSERT_NE(sample.multi, kUnknown);
    EXPECT_NEAR(sample.multi, actual, 0.05 * actual + 0.5)
        << "at t=" << sample.time;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

// ---- PiManager -------------------------------------------------------------------

TEST(PiManagerTest, TracksTracesAtInterval) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  PiManager pis(&db, {.sample_interval = 0.5});
  sim::SimulationRunner runner(&db, &pis);
  auto id = runner.SubmitNow(QuerySpec::Synthetic(200.0));
  ASSERT_TRUE(id.ok());
  pis.Track(*id);
  runner.StepFor(1.0);
  const auto& trace = pis.Trace(*id);
  ASSERT_GE(trace.size(), 2u);
  EXPECT_LE(trace.front().time, 0.5 + 1e-9);
  // Single and multi estimates populated.
  EXPECT_GT(trace.back().multi, 0.0);
  EXPECT_GT(trace.back().single, 0.0);
}

TEST(PiManagerTest, UntrackedQueryHasEmptyTrace) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  PiManager pis(&db);
  EXPECT_TRUE(pis.Trace(77).empty());
  // Untracked ids are not an error — they report "unknown" so callers
  // need no Track()-before-sample ordering (service sessions poll
  // arbitrary ids).
  auto untracked = pis.EstimateSingle(77);
  ASSERT_TRUE(untracked.ok());
  EXPECT_EQ(*untracked, kUnknown);
  EXPECT_EQ(pis.SpeedOf(77), 0.0);
}

TEST(PiManagerTest, QueueBlindVariantRecorded) {
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.max_concurrent = 1;
  sched::Rdbms db(&catalog, options);
  PiManager pis(&db, {.sample_interval = 0.5,
                      .record_queue_blind_variant = true});
  sim::SimulationRunner runner(&db, &pis);
  auto a = runner.SubmitNow(QuerySpec::Synthetic(100.0));
  auto b = runner.SubmitNow(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(b.ok());
  pis.Track(*a);
  runner.StepFor(0.6);
  const auto& trace = pis.Trace(*a);
  ASSERT_FALSE(trace.empty());
  // Queue-blind estimate exists and (for the running query a) matches
  // the aware one since the queue only affects b's own estimate.
  EXPECT_NE(trace.front().multi_no_queue, kUnknown);
}

TEST(PiManagerTest, SingleVsMultiOnSharedWorkload) {
  // Reproduces the quickstart observation as an assertion: for the
  // longest of three queries, at its first sample the multi-query
  // estimate must be far closer to the actual remaining time.
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, CleanOptions());
  PiManager pis(&db, {.sample_interval = 1.0});
  sim::SimulationRunner runner(&db, &pis);
  auto a = runner.SubmitNow(QuerySpec::Synthetic(100.0));
  auto b = runner.SubmitNow(QuerySpec::Synthetic(200.0));
  auto c = runner.SubmitNow(QuerySpec::Synthetic(600.0));
  ASSERT_TRUE(c.ok());
  (void)a;
  (void)b;
  pis.Track(*c);
  runner.RunUntilIdle();
  const SimTime finish = db.info(*c)->finish_time;
  const auto& trace = pis.Trace(*c);
  ASSERT_FALSE(trace.empty());
  const auto& first = trace.front();
  const double actual = finish - first.time;
  EXPECT_LT(RelativeError(first.multi, actual), 0.10);
  EXPECT_GT(RelativeError(first.single, actual), 0.50);
}

// ---- sampling cadence ------------------------------------------------------------

TEST(PiManagerTest, SampleGridSurvivesQuantumOvershoot) {
  // A quantum (0.3) that does not divide the sample interval (1.0)
  // overshoots most grid points. The sampler must keep anchoring to
  // the fixed grid: each sample lands within one quantum after its
  // grid point. (The old code advanced next_sample_ from `now`, so
  // every overshoot shifted all later samples and the drift
  // compounded: samples at 0.3, 1.5, 2.7, 3.9, ...)
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.quantum = 0.3;
  sched::Rdbms db(&catalog, options);
  PiManager pis(&db, {.sample_interval = 1.0});
  sim::SimulationRunner runner(&db, &pis);
  auto id = runner.SubmitNow(QuerySpec::Synthetic(2000.0));
  ASSERT_TRUE(id.ok());
  pis.Track(*id);
  runner.StepFor(9.9);  // 33 quanta, grid points 0..9 all pass
  const auto& trace = pis.Trace(*id);
  ASSERT_EQ(trace.size(), 10u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const SimTime offset = trace[i].time - static_cast<SimTime>(i) * 1.0;
    EXPECT_GE(offset, -1e-9) << "sample " << i << " at " << trace[i].time;
    EXPECT_LE(offset, options.quantum + 1e-9)
        << "sample " << i << " at " << trace[i].time;
  }
}

// ---- idle-gap rate handling ------------------------------------------------------

TEST(MultiQueryPiTest, IdleGapFlushesStaleRate) {
  // Two thrashing queries drag the measured rate to 75 U/s. Once the
  // system has been idle for a full rate window, that measurement
  // describes a workload that no longer exists and must be flushed:
  // the PI falls back to the configured rate.
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.perturbation.thrash_threshold = 1;
  options.perturbation.thrash_factor = 0.25;
  sched::Rdbms db(&catalog, options);
  MultiQueryPi pi(&db, {.rate_alpha = 1.0, .rate_window = 0.1});
  auto a = db.Submit(QuerySpec::Synthetic(60.0));
  auto b = db.Submit(QuerySpec::Synthetic(60.0));
  ASSERT_TRUE(b.ok());
  (void)a;
  while (!db.Idle()) {
    db.Step(options.quantum);
    pi.ObserveStep();
  }
  EXPECT_NEAR(pi.estimated_rate(), 75.0, 2.0);
  // Idle quanta spanning at least one full rate window.
  for (int i = 0; i < 4; ++i) {
    db.Step(options.quantum);
    pi.ObserveStep();
  }
  EXPECT_DOUBLE_EQ(pi.estimated_rate(), 100.0);
}

TEST(MultiQueryPiTest, IdleGapDropsPartialRateWindow) {
  // A partial rate window measured before an idle gap must not be
  // concatenated with post-gap consumption: the first completed
  // window after the gap has to measure the new workload only.
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.perturbation.thrash_threshold = 1;
  options.perturbation.thrash_factor = 0.25;
  sched::Rdbms db(&catalog, options);
  MultiQueryPi pi(&db, {.rate_alpha = 1.0, .rate_window = 1.0});
  // Phase 1: one query alone runs at the full 100 U/s for 0.5 s —
  // only half a window, never emitted as a rate sample.
  auto warm = db.Submit(QuerySpec::Synthetic(50.0));
  ASSERT_TRUE(warm.ok());
  while (!db.Idle()) {
    db.Step(options.quantum);
    pi.ObserveStep();
  }
  // Short idle gap (shorter than the window: no flush, but the
  // partial window must be dropped).
  for (int i = 0; i < 2; ++i) {
    db.Step(options.quantum);
    pi.ObserveStep();
  }
  // Phase 2: two queries thrash at 75 U/s. After one full window the
  // measured rate must reflect phase 2 only; splicing the pre-gap
  // fragment in would yield a blended ~86 U/s.
  auto a = db.Submit(QuerySpec::Synthetic(500.0));
  auto b = db.Submit(QuerySpec::Synthetic(500.0));
  ASSERT_TRUE(b.ok());
  (void)a;
  for (int i = 0; i < 24; ++i) {
    db.Step(options.quantum);
    pi.ObserveStep();
  }
  EXPECT_NEAR(pi.estimated_rate(), 75.0, 2.0);
}

// ---- forecast cache --------------------------------------------------------------

TEST(MultiQueryPiTest, CacheCoherentAcrossTransitions) {
  // A cached PI and a cache-disabled PI attached to the same Rdbms
  // must report bit-identical estimates across every load-relevant
  // transition: the epoch key makes the memoization exact, never
  // heuristic.
  storage::Catalog catalog;
  auto options = CleanOptions();
  options.max_concurrent = 3;
  options.weights = PriorityWeights(1.0, 2.0, 4.0, 8.0);
  sched::Rdbms db(&catalog, options);
  // Incremental estimates pinned off: this test is about the forecast
  // cache, so every probe must reach the simulator path.
  MultiQueryPi cached(&db, {.enable_incremental = false});
  MultiQueryPi fresh(
      &db, {.enable_forecast_cache = false, .enable_incremental = false});

  std::vector<QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = db.Submit(QuerySpec::Synthetic(100.0 * (i + 1)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  auto expect_identical = [&](const char* where) {
    for (QueryId id : ids) {
      auto c = cached.EstimateRemainingTime(id);
      auto f = fresh.EstimateRemainingTime(id);
      ASSERT_EQ(c.ok(), f.ok()) << where << " id=" << id;
      if (c.ok()) {
        EXPECT_EQ(*c, *f) << where << " id=" << id;
      }
    }
  };
  auto step = [&](int quanta) {
    for (int i = 0; i < quanta; ++i) {
      db.Step(options.quantum);
      cached.ObserveStep();
      fresh.ObserveStep();
    }
  };

  expect_identical("after submit");
  // Repeated reads within one epoch must hit the cache.
  expect_identical("second read");
  EXPECT_GT(cached.forecast_cache_hits(), 0u);

  step(4);
  expect_identical("after steps");
  ASSERT_TRUE(db.SetPriority(ids[1], Priority::kHigh).ok());
  expect_identical("after reweight");
  ASSERT_TRUE(db.Block(ids[0]).ok());
  expect_identical("after block");
  step(3);
  ASSERT_TRUE(db.Resume(ids[0]).ok());
  expect_identical("after resume");
  ASSERT_TRUE(db.Abort(ids[2]).ok());
  expect_identical("after abort");
  auto late = db.Submit(QuerySpec::Synthetic(50.0));
  ASSERT_TRUE(late.ok());
  ids.push_back(*late);
  expect_identical("after late submit");
  step(30);
  expect_identical("after more steps");

  // The cached PI must have answered most probes from the cache: one
  // simulation per epoch, not one per estimate call.
  EXPECT_LT(cached.forecast_cache_misses(),
            cached.forecast_cache_hits());
}

TEST(PiManagerTest, OneForecastPerQuantumWhenSampling) {
  // 20 tracked queries sampled every quantum, incremental engine
  // pinned off: the batched estimate path must run one analytic
  // simulation per quantum, not one per query (the old per-call path
  // was O(n^2 log n) per quantum).
  storage::Catalog catalog;
  auto options = CleanOptions();
  sched::Rdbms db(&catalog, options);
  PiManagerOptions pm_options;
  pm_options.sample_interval = options.quantum;
  pm_options.multi.enable_incremental = false;
  PiManager pis(&db, pm_options);
  sim::SimulationRunner runner(&db, &pis);
  for (int i = 0; i < 20; ++i) {
    auto id = runner.SubmitNow(QuerySpec::Synthetic(1000.0));
    ASSERT_TRUE(id.ok());
    pis.Track(*id);
  }
  runner.StepFor(0.5);  // 10 quanta, each samples all 20 queries
  const MultiQueryPi* multi = pis.multi();
  EXPECT_LE(multi->forecast_cache_misses(), 11u);
  EXPECT_GE(multi->forecast_cache_hits(), 20u * 10u - 11u);
  // A full report right now costs zero extra simulations: the epoch
  // has not moved since the last sample.
  const std::uint64_t misses_before = multi->forecast_cache_misses();
  const auto rows = pis.Report();
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(multi->forecast_cache_misses(), misses_before);
}

TEST(PiManagerTest, SteadyStateSamplingNeedsNoSimulationAtAll) {
  // Same workload with the incremental engine on (the default): after
  // the first quantum's rebuild, every running-query estimate is an
  // O(log n) point query — zero simulations, zero cache traffic in
  // steady state.
  storage::Catalog catalog;
  auto options = CleanOptions();
  sched::Rdbms db(&catalog, options);
  PiManager pis(&db, {.sample_interval = options.quantum});
  sim::SimulationRunner runner(&db, &pis);
  for (int i = 0; i < 20; ++i) {
    auto id = runner.SubmitNow(QuerySpec::Synthetic(1000.0));
    ASSERT_TRUE(id.ok());
    pis.Track(*id);
  }
  runner.StepFor(0.5);  // 10 quanta, each samples all 20 queries
  const MultiQueryPi* multi = pis.multi();
  EXPECT_GE(multi->incremental_fast_path(), 20u * 9u);
  // Early probes (before the first ObserveStep syncs the engine) may
  // fall back, but steady state must not.
  EXPECT_LE(multi->incremental_fallback(), 20u * 1u);
  const std::uint64_t fallback_before = multi->incremental_fallback();
  const std::uint64_t misses_before = multi->forecast_cache_misses();
  const auto rows = pis.Report();
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(multi->incremental_fallback(), fallback_before);
  EXPECT_EQ(multi->forecast_cache_misses(), misses_before);
}

}  // namespace
}  // namespace mqpi::pi
