#include <gtest/gtest.h>

#include <cmath>

#include "sched/rdbms.h"
#include "storage/catalog.h"

namespace mqpi::sched {
namespace {

using engine::QuerySpec;

/// Most scheduler behaviour is exercised with synthetic (cost-only)
/// queries: their costs are exact, so finish times can be checked
/// against the paper's analytic model to quantum precision.
class RdbmsTest : public ::testing::Test {
 protected:
  RdbmsOptions BaseOptions() {
    RdbmsOptions options;
    options.processing_rate = 100.0;  // 100 U/s
    options.quantum = 0.1;
    options.cost_model.noise_sigma = 0.0;
    return options;
  }

  storage::Catalog catalog_;
};

TEST_F(RdbmsTest, SingleQueryRunsAtFullRate) {
  Rdbms db(&catalog_, BaseOptions());
  auto id = db.Submit(QuerySpec::Synthetic(200.0));
  ASSERT_TRUE(id.ok());
  db.RunUntilIdle();
  auto info = db.info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, QueryState::kFinished);
  // 200 U at 100 U/s = 2 s (quantum tolerance).
  EXPECT_NEAR(info->finish_time, 2.0, 0.11);
  EXPECT_DOUBLE_EQ(info->completed_work, 200.0);
}

TEST_F(RdbmsTest, EqualPrioritiesShareFairly) {
  Rdbms db(&catalog_, BaseOptions());
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(300.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  db.RunUntilIdle();
  // Stage model: A finishes at 2*100/100 = 2 s; B at 2 + 200/100 = 4 s.
  EXPECT_NEAR(db.info(*a)->finish_time, 2.0, 0.11);
  EXPECT_NEAR(db.info(*b)->finish_time, 4.0, 0.11);
}

TEST_F(RdbmsTest, PriorityWeightsSplitRate) {
  auto options = BaseOptions();
  options.weights = PriorityWeights(1.0, 1.0, 3.0, 8.0);
  Rdbms db(&catalog_, options);
  // High-priority (w=3) vs normal (w=1): high gets 75 U/s.
  auto high = db.Submit(QuerySpec::Synthetic(150.0), Priority::kHigh);
  auto normal = db.Submit(QuerySpec::Synthetic(150.0), Priority::kNormal);
  ASSERT_TRUE(high.ok());
  ASSERT_TRUE(normal.ok());
  db.RunUntilIdle();
  // High: 150/(100*0.75) = 2 s. Normal: at t=2 it has 150-2*25=100 left,
  // then full rate: 2 + 1 = 3 s.
  EXPECT_NEAR(db.info(*high)->finish_time, 2.0, 0.11);
  EXPECT_NEAR(db.info(*normal)->finish_time, 3.0, 0.11);
}

TEST_F(RdbmsTest, AdmissionQueueLimitsConcurrency) {
  auto options = BaseOptions();
  options.max_concurrent = 2;
  Rdbms db(&catalog_, options);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  auto c = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(db.num_running(), 2);
  EXPECT_EQ(db.num_queued(), 1);
  EXPECT_EQ(db.info(*c)->state, QueryState::kQueued);
  db.RunUntilIdle();
  // a and b share until both finish at t=2; c runs alone 1 s more.
  EXPECT_NEAR(db.info(*a)->finish_time, 2.0, 0.11);
  EXPECT_NEAR(db.info(*b)->finish_time, 2.0, 0.11);
  EXPECT_NEAR(db.info(*c)->finish_time, 3.0, 0.21);
  EXPECT_NEAR(db.info(*c)->start_time, 2.0, 0.11);
}

TEST_F(RdbmsTest, ClosedAdmissionHoldsQueries) {
  Rdbms db(&catalog_, BaseOptions());
  db.SetAdmissionOpen(false);
  auto id = db.Submit(QuerySpec::Synthetic(50.0));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(db.info(*id)->state, QueryState::kQueued);
  db.Step(1.0);
  EXPECT_EQ(db.info(*id)->state, QueryState::kQueued);
  db.SetAdmissionOpen(true);
  EXPECT_EQ(db.info(*id)->state, QueryState::kRunning);
  db.RunUntilIdle();
  EXPECT_EQ(db.info(*id)->state, QueryState::kFinished);
}

TEST_F(RdbmsTest, BlockAndResume) {
  Rdbms db(&catalog_, BaseOptions());
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(db.Block(*b).ok());
  EXPECT_EQ(db.info(*b)->state, QueryState::kBlocked);
  db.Step(1.0);
  // Blocked query makes no progress; a gets the full rate.
  EXPECT_DOUBLE_EQ(db.info(*b)->completed_work, 0.0);
  EXPECT_NEAR(db.info(*a)->completed_work, 100.0, 10.1);
  ASSERT_TRUE(db.Resume(*b).ok());
  db.RunUntilIdle();
  EXPECT_EQ(db.info(*b)->state, QueryState::kFinished);
  // Double block is an error.
  EXPECT_TRUE(db.Block(*b).IsInvalidArgument() ||
              db.Block(*b).code() == StatusCode::kFailedPrecondition);
}

TEST_F(RdbmsTest, BlockedQueryHoldsItsSlot) {
  auto options = BaseOptions();
  options.max_concurrent = 1;
  Rdbms db(&catalog_, options);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(db.Block(*a).ok());
  db.Step(1.0);
  // b must stay queued: the blocked query keeps the only slot.
  EXPECT_EQ(db.info(*b)->state, QueryState::kQueued);
  ASSERT_TRUE(db.Resume(*a).ok());
  db.RunUntilIdle();
  EXPECT_EQ(db.info(*b)->state, QueryState::kFinished);
}

TEST_F(RdbmsTest, AbortRunningQuery) {
  Rdbms db(&catalog_, BaseOptions());
  auto a = db.Submit(QuerySpec::Synthetic(1000.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  db.Step(0.5);
  ASSERT_TRUE(db.Abort(*a).ok());
  EXPECT_EQ(db.info(*a)->state, QueryState::kAborted);
  EXPECT_NEAR(db.info(*a)->finish_time, 0.5, 1e-9);
  db.RunUntilIdle();
  // b sped up after the abort: 25 U done in shared phase, 75 alone.
  EXPECT_NEAR(db.info(*b)->finish_time, 1.25, 0.11);
  // Aborting again fails.
  EXPECT_EQ(db.Abort(*a).code(), StatusCode::kFailedPrecondition);
}

TEST_F(RdbmsTest, AbortQueuedQuery) {
  auto options = BaseOptions();
  options.max_concurrent = 1;
  Rdbms db(&catalog_, options);
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(db.Abort(*b).ok());
  db.RunUntilIdle();
  EXPECT_EQ(db.info(*a)->state, QueryState::kFinished);
  EXPECT_EQ(db.info(*b)->state, QueryState::kAborted);
  EXPECT_DOUBLE_EQ(db.info(*b)->completed_work, 0.0);
}

TEST_F(RdbmsTest, SetPriorityTakesEffect) {
  auto options = BaseOptions();
  options.weights = PriorityWeights(1.0, 1.0, 4.0, 8.0);
  Rdbms db(&catalog_, options);
  auto a = db.Submit(QuerySpec::Synthetic(200.0));
  auto b = db.Submit(QuerySpec::Synthetic(200.0));
  ASSERT_TRUE(db.SetPriority(*a, Priority::kHigh).ok());
  db.Step(1.0);
  // a should be ~4x faster than b.
  const double ratio =
      db.info(*a)->completed_work / db.info(*b)->completed_work;
  EXPECT_NEAR(ratio, 4.0, 0.2);
  (void)b;
}

TEST_F(RdbmsTest, FastForwardAdvancesWithoutTime) {
  Rdbms db(&catalog_, BaseOptions());
  auto id = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(db.FastForward(*id, 60.0).ok());
  EXPECT_DOUBLE_EQ(db.now(), 0.0);
  EXPECT_DOUBLE_EQ(db.info(*id)->completed_work, 60.0);
  // Fast-forwarding to completion fires the terminal transition.
  ASSERT_TRUE(db.FastForward(*id, 100.0).ok());
  EXPECT_EQ(db.info(*id)->state, QueryState::kFinished);
  EXPECT_TRUE(db.FastForward(*id, 1.0).code() ==
              StatusCode::kFailedPrecondition);
}

TEST_F(RdbmsTest, CompletionListenersFire) {
  Rdbms db(&catalog_, BaseOptions());
  std::vector<QueryId> completed;
  db.AddCompletionListener(
      [&](const QueryInfo& info) { completed.push_back(info.id); });
  auto a = db.Submit(QuerySpec::Synthetic(100.0));
  auto b = db.Submit(QuerySpec::Synthetic(200.0));
  db.RunUntilIdle();
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0], *a);
  EXPECT_EQ(completed[1], *b);
}

TEST_F(RdbmsTest, InfoForUnknownQuery) {
  Rdbms db(&catalog_, BaseOptions());
  EXPECT_TRUE(db.info(999).status().IsNotFound());
  EXPECT_TRUE(db.Abort(999).IsNotFound());
  EXPECT_TRUE(db.Block(999).IsNotFound());
}

TEST_F(RdbmsTest, IdleSemantics) {
  Rdbms db(&catalog_, BaseOptions());
  EXPECT_TRUE(db.Idle());
  auto id = db.Submit(QuerySpec::Synthetic(10.0));
  EXPECT_FALSE(db.Idle());
  db.RunUntilIdle();
  EXPECT_TRUE(db.Idle());
  // A blocked query alone does not prevent idleness...
  auto blocked = db.Submit(QuerySpec::Synthetic(10.0));
  ASSERT_TRUE(db.Block(*blocked).ok());
  EXPECT_TRUE(db.Idle());
  (void)id;
}

TEST_F(RdbmsTest, ThroughputConservation) {
  // Total work done per second equals C regardless of how many queries
  // run (Assumption 1 by construction).
  Rdbms db(&catalog_, BaseOptions());
  std::vector<QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(*db.Submit(QuerySpec::Synthetic(1000.0)));
  }
  db.Step(2.0);
  double total = 0.0;
  for (QueryId id : ids) total += db.info(id)->completed_work;
  EXPECT_NEAR(total, 200.0, 1e-6);
}

// ---- perturbations -----------------------------------------------------------------

TEST_F(RdbmsTest, ThrashingDegradesAggregateRate) {
  auto options = BaseOptions();
  options.perturbation.thrash_threshold = 2;
  options.perturbation.thrash_factor = 0.2;
  Rdbms db(&catalog_, options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(1000.0)).ok());
  }
  // 4 running, threshold 2 -> factor 1 - 0.2*2 = 0.6.
  EXPECT_NEAR(db.EffectiveRate(), 60.0, 1e-9);
  db.Step(1.0);
  double total = 0.0;
  for (const auto& info : db.RunningQueries()) total += info.completed_work;
  EXPECT_NEAR(total, 60.0, 1e-6);
}

TEST(PerturbationModelTest, RateFactorFloorsAtTenPercent) {
  PerturbationModel model({.thrash_threshold = 1, .thrash_factor = 0.5});
  EXPECT_DOUBLE_EQ(model.AggregateRateFactor(1), 1.0);
  EXPECT_DOUBLE_EQ(model.AggregateRateFactor(2), 0.5);
  EXPECT_DOUBLE_EQ(model.AggregateRateFactor(10), 0.1);
}

TEST(PerturbationModelTest, JitterOffMeansUnity) {
  PerturbationModel model{PerturbationOptions{}};
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(model.DrawSpeedMultiplier(), 1.0);
  }
}

TEST(PerturbationModelTest, JitterOnVaries) {
  PerturbationModel model({.speed_jitter_sigma = 0.5, .seed = 3});
  double spread = 0.0;
  for (int i = 0; i < 20; ++i) {
    spread += std::fabs(model.DrawSpeedMultiplier() - 1.0);
  }
  EXPECT_GT(spread, 0.5);
}

TEST(QueryStateTest, Names) {
  EXPECT_EQ(QueryStateName(QueryState::kQueued), "queued");
  EXPECT_EQ(QueryStateName(QueryState::kAborted), "aborted");
}

}  // namespace
}  // namespace mqpi::sched
