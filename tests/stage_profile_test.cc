#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "pi/analytic_simulator.h"
#include "pi/stage_profile.h"
#include "sched/rdbms.h"
#include "storage/catalog.h"

namespace mqpi::pi {
namespace {

// ---- closed-form basics -------------------------------------------------------

TEST(StageProfileTest, EmptyInput) {
  auto profile = StageProfile::Compute({}, 100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_queries(), 0u);
  EXPECT_DOUBLE_EQ(profile->quiescent_time(), 0.0);
}

TEST(StageProfileTest, SingleQuery) {
  auto profile = StageProfile::Compute({{1, 300.0, 1.0}}, 100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(1), 3.0);
  EXPECT_DOUBLE_EQ(profile->quiescent_time(), 3.0);
}

TEST(StageProfileTest, PaperFigure1Shape) {
  // Four equal-priority queries (Figure 1): costs 100, 200, 300, 400 at
  // C = 100. Stage boundaries: Q1 at 4*1=4 (it needs 100 at speed 25),
  // then Q2 has 100 left at speed 100/3, ...
  auto profile = StageProfile::Compute(
      {{1, 100.0, 1.0}, {2, 200.0, 1.0}, {3, 300.0, 1.0}, {4, 400.0, 1.0}},
      100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(1), 4.0);
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(2), 7.0);   // 4 + 100/(100/3)
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(3), 9.0);   // 7 + 100/(100/2)
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(4), 10.0);  // 9 + 100/100
  // Quiescent time = total work / C, always.
  EXPECT_DOUBLE_EQ(profile->quiescent_time(), 10.0);
}

TEST(StageProfileTest, FinishOrderSortsByCostOverWeight) {
  auto profile = StageProfile::Compute(
      {{1, 400.0, 4.0}, {2, 300.0, 1.0}, {3, 100.0, 2.0}}, 100.0);
  ASSERT_TRUE(profile.ok());
  // ratios: Q1=100, Q2=300, Q3=50 -> order Q3, Q1, Q2.
  EXPECT_EQ(profile->finish_order()[0].id, 3u);
  EXPECT_EQ(profile->finish_order()[1].id, 1u);
  EXPECT_EQ(profile->finish_order()[2].id, 2u);
}

TEST(StageProfileTest, WeightedExample) {
  // Two queries, weights 3 and 1, C = 100: speeds 75 / 25.
  auto profile =
      StageProfile::Compute({{1, 150.0, 3.0}, {2, 100.0, 1.0}}, 100.0);
  ASSERT_TRUE(profile.ok());
  // Q1 ratio 50 < Q2 ratio 100 -> Q1 first at t = 150/75 = 2.
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(1), 2.0);
  // Q2 did 50 U by t=2, then 50 left at full rate: 2 + 0.5.
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(2), 2.5);
}

TEST(StageProfileTest, ZeroCostQueryFinishesImmediately) {
  auto profile =
      StageProfile::Compute({{1, 0.0, 1.0}, {2, 100.0, 1.0}}, 100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(1), 0.0);
  // Q1 consumes no capacity, so Q2 effectively runs alone.
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(2), 1.0);
}

TEST(StageProfileTest, TiedRatiosFinishTogether) {
  auto profile =
      StageProfile::Compute({{1, 100.0, 1.0}, {2, 200.0, 2.0}}, 100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(1), 3.0);
  EXPECT_DOUBLE_EQ(*profile->RemainingTimeOf(2), 3.0);
}

TEST(StageProfileTest, InvalidInputsRejected) {
  EXPECT_FALSE(StageProfile::Compute({{1, 10.0, 1.0}}, 0.0).ok());
  EXPECT_FALSE(StageProfile::Compute({{1, 10.0, 0.0}}, 100.0).ok());
  EXPECT_FALSE(StageProfile::Compute({{1, -1.0, 1.0}}, 100.0).ok());
}

TEST(StageProfileTest, UnknownQueryLookup) {
  auto profile = StageProfile::Compute({{1, 10.0, 1.0}}, 100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile->RemainingTimeOf(9).status().IsNotFound());
  EXPECT_TRUE(profile->FinishPosition(9).status().IsNotFound());
}

// ---- property: profile matches the real scheduler -------------------------------

class StageProfilePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StageProfilePropertyTest, PredictsSchedulerFinishTimes) {
  // Random instances: the analytic remaining times must match the
  // quantum-stepped scheduler's actual finish times for synthetic
  // queries (Assumptions 1-3 hold by construction).
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(2, 12));
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.01;
  options.cost_model.noise_sigma = 0.0;
  options.weights = PriorityWeights(1.0, 2.0, 4.0, 8.0);
  sched::Rdbms db(&catalog, options);

  std::vector<QueryLoad> loads;
  std::vector<QueryId> ids;
  for (int i = 0; i < n; ++i) {
    const double cost = rng.Uniform(10.0, 500.0);
    const auto pri = static_cast<Priority>(rng.UniformInt(0, 3));
    auto id = db.Submit(engine::QuerySpec::Synthetic(cost), pri);
    ASSERT_TRUE(id.ok());
    loads.push_back(QueryLoad{*id, cost, options.weights.WeightOf(pri)});
    ids.push_back(*id);
  }
  auto profile = StageProfile::Compute(loads, options.processing_rate);
  ASSERT_TRUE(profile.ok());
  db.RunUntilIdle();
  for (QueryId id : ids) {
    const SimTime predicted = *profile->RemainingTimeOf(id);
    const SimTime actual = db.info(id)->finish_time;
    // Each earlier finisher can waste up to one quantum of shared
    // capacity (its in-quantum surplus is not redistributed), so the
    // bound scales with the number of queries.
    EXPECT_NEAR(actual, predicted, (n + 2) * options.quantum + 1e-6)
        << "query " << id;
  }
}

TEST_P(StageProfilePropertyTest, AgreesWithAnalyticSimulator) {
  // With no arrivals and no admission limit, the event-driven simulator
  // must reproduce the closed form exactly.
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(1, 20));
  std::vector<QueryLoad> loads;
  for (int i = 0; i < n; ++i) {
    loads.push_back(QueryLoad{static_cast<QueryId>(i + 1),
                              rng.Uniform(0.0, 1000.0),
                              rng.Uniform(0.5, 8.0)});
  }
  const double rate = rng.Uniform(10.0, 500.0);
  auto profile = StageProfile::Compute(loads, rate);
  ASSERT_TRUE(profile.ok());
  AnalyticModelOptions model;
  model.rate = rate;
  auto forecast = AnalyticSimulator::Forecast(loads, {}, {}, model);
  ASSERT_TRUE(forecast.ok());
  for (const QueryLoad& q : loads) {
    EXPECT_NEAR(*forecast->FinishTimeOf(q.id), *profile->RemainingTimeOf(q.id),
                1e-6 * (1.0 + *profile->RemainingTimeOf(q.id)))
        << "query " << q.id;
  }
  EXPECT_NEAR(forecast->quiescent_time(), profile->quiescent_time(),
              1e-6 * (1.0 + profile->quiescent_time()));
}

TEST_P(StageProfilePropertyTest, QuiescentTimeEqualsTotalWorkOverRate) {
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(1, 15));
  std::vector<QueryLoad> loads;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double cost = rng.Uniform(0.0, 300.0);
    total += cost;
    loads.push_back(QueryLoad{static_cast<QueryId>(i + 1), cost,
                              rng.Uniform(0.5, 4.0)});
  }
  auto profile = StageProfile::Compute(loads, 100.0);
  ASSERT_TRUE(profile.ok());
  EXPECT_NEAR(profile->quiescent_time(), total / 100.0,
              1e-9 * (1.0 + total));
}

TEST_P(StageProfilePropertyTest, RemainingTimesAreMonotoneInFinishOrder) {
  Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(2, 30));
  std::vector<QueryLoad> loads;
  for (int i = 0; i < n; ++i) {
    loads.push_back(QueryLoad{static_cast<QueryId>(i + 1),
                              rng.Uniform(0.0, 500.0),
                              rng.Uniform(0.25, 8.0)});
  }
  auto profile = StageProfile::Compute(loads, 50.0);
  ASSERT_TRUE(profile.ok());
  for (std::size_t i = 1; i < profile->num_queries(); ++i) {
    EXPECT_LE(profile->remaining_times()[i - 1],
              profile->remaining_times()[i] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, StageProfilePropertyTest,
                         ::testing::Range(0, 12));

// ---- AnalyticSimulator specifics --------------------------------------------------

TEST(AnalyticSimulatorTest, KnownArrivalDelaysExisting) {
  // One running query of 100 U at C=100; at t=0.5 a second query of
  // 100 U arrives. First query: 50 U alone, then 50 U at half speed
  // -> finishes at 1.5. Arrival: 50 U shared (until 1.5) + 50 U... wait,
  // both have 50 left at t=1.5? No: arrival does 25 U by t=1.5, then
  // 75 alone -> 2.0. Check exact numbers.
  std::vector<FutureArrival> arrivals{{0.5, 100.0, 1.0, 2}};
  AnalyticModelOptions model;
  model.rate = 100.0;
  auto forecast =
      AnalyticSimulator::Forecast({{1, 100.0, 1.0}}, {}, arrivals, model);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(*forecast->FinishTimeOf(1), 1.5, 1e-9);
  EXPECT_NEAR(*forecast->FinishTimeOf(2), 2.0, 1e-9);
}

TEST(AnalyticSimulatorTest, AdmissionQueueSerializes) {
  // Limit 1: queries run strictly in order.
  AnalyticModelOptions model;
  model.rate = 100.0;
  model.max_concurrent = 1;
  auto forecast = AnalyticSimulator::Forecast(
      {{1, 100.0, 1.0}}, {{2, 200.0, 1.0}, {3, 100.0, 1.0}}, {}, model);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(*forecast->FinishTimeOf(1), 1.0, 1e-9);
  EXPECT_NEAR(*forecast->FinishTimeOf(2), 3.0, 1e-9);
  EXPECT_NEAR(*forecast->FinishTimeOf(3), 4.0, 1e-9);
}

TEST(AnalyticSimulatorTest, QueueAdmittedIntoFreedSlot) {
  AnalyticModelOptions model;
  model.rate = 100.0;
  model.max_concurrent = 2;
  auto forecast = AnalyticSimulator::Forecast(
      {{1, 50.0, 1.0}, {2, 200.0, 1.0}}, {{3, 100.0, 1.0}}, {}, model);
  ASSERT_TRUE(forecast.ok());
  // Q1 finishes at 1.0 (50 at 50/s); Q3 starts then.
  EXPECT_NEAR(*forecast->FinishTimeOf(1), 1.0, 1e-9);
  // Q2: 50 done at t=1, then shares with Q3. Q2 has 150, Q3 100.
  // Q3 finishes first at 1 + 100/50 = 3.0; Q2: 100 done in that span,
  // 50 left alone -> 3.5.
  EXPECT_NEAR(*forecast->FinishTimeOf(3), 3.0, 1e-9);
  EXPECT_NEAR(*forecast->FinishTimeOf(2), 3.5, 1e-9);
}

TEST(AnalyticSimulatorTest, VirtualArrivalsSlowRealQueries) {
  // Without virtual load: 400 U at 100 U/s -> 4 s. With a virtual
  // 100 U query arriving every 2 s the real query must finish later.
  AnalyticModelOptions base;
  base.rate = 100.0;
  auto without = AnalyticSimulator::Forecast({{1, 400.0, 1.0}}, {}, {}, base);
  ASSERT_TRUE(without.ok());
  AnalyticModelOptions with = base;
  with.virtual_interval = 2.0;
  with.virtual_cost = 100.0;
  with.virtual_weight = 1.0;
  auto withv = AnalyticSimulator::Forecast({{1, 400.0, 1.0}}, {}, {}, with);
  ASSERT_TRUE(withv.ok());
  EXPECT_NEAR(*without->FinishTimeOf(1), 4.0, 1e-9);
  EXPECT_GT(*withv->FinishTimeOf(1), 4.5);
}

TEST(AnalyticSimulatorTest, VirtualArrivalExactTimeline) {
  // Real query: 300 U, C=100. Virtual query (200 U) arrives at t=2.
  // By t=2 real has 100 left; then both share at 50 U/s. Real finishes
  // at t = 2 + 100/50 = 4.
  AnalyticModelOptions model;
  model.rate = 100.0;
  model.virtual_interval = 2.0;
  model.virtual_cost = 200.0;
  // Second virtual arrival at t=4 doesn't affect the real query.
  auto forecast = AnalyticSimulator::Forecast({{1, 300.0, 1.0}}, {}, {}, model);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(*forecast->FinishTimeOf(1), 4.0, 1e-9);
}

TEST(AnalyticSimulatorTest, OverloadHitsEventCap) {
  // Virtual load strictly exceeds capacity: the real query's share
  // decays but the event cap guarantees termination; the forecast is
  // either finite (if it finished before the cap) or infinite.
  AnalyticModelOptions model;
  model.rate = 100.0;
  model.virtual_interval = 0.5;
  model.virtual_cost = 200.0;  // 400 U/s arriving vs 100 U/s capacity
  model.max_events = 20000;
  model.horizon = 1e5;
  auto forecast =
      AnalyticSimulator::Forecast({{1, 5000.0, 1.0}}, {}, {}, model);
  ASSERT_TRUE(forecast.ok());
  SUCCEED();
}

TEST(AnalyticSimulatorTest, FinishJustPastHorizonReportsInfinite) {
  // Regression: the horizon check used to run only at the top of the
  // *next* loop iteration, so the first finish past the horizon was
  // recorded with its real beyond-horizon time. Q1 (100 U) and Q2
  // (300 U) share C=100: Q1 finishes at t=2, Q2 at t=4. A horizon of
  // 3 must report Q2 as unbounded, not 4.0.
  AnalyticModelOptions model;
  model.rate = 100.0;
  model.horizon = 3.0;
  auto forecast = AnalyticSimulator::Forecast(
      {{1, 100.0, 1.0}, {2, 300.0, 1.0}}, {}, {}, model);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(*forecast->FinishTimeOf(1), 2.0, 1e-9);
  EXPECT_EQ(*forecast->FinishTimeOf(2), kInfiniteTime);
  EXPECT_EQ(forecast->quiescent_time(), kInfiniteTime);
}

TEST(AnalyticSimulatorTest, FinishExactlyAtHorizonStillCounts) {
  // The horizon clamp is strict (> horizon): a finish landing exactly
  // on the horizon is committed with its real time.
  AnalyticModelOptions model;
  model.rate = 100.0;
  model.horizon = 4.0;
  auto forecast = AnalyticSimulator::Forecast(
      {{1, 100.0, 1.0}, {2, 300.0, 1.0}}, {}, {}, model);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(*forecast->FinishTimeOf(2), 4.0, 1e-9);
  EXPECT_NEAR(forecast->quiescent_time(), 4.0, 1e-9);
}

TEST(AnalyticSimulatorTest, EmptySystem) {
  auto forecast = AnalyticSimulator::Forecast({}, {}, {}, {});
  ASSERT_TRUE(forecast.ok());
  EXPECT_EQ(forecast->forecasts().size(), 0u);
  EXPECT_DOUBLE_EQ(forecast->quiescent_time(), 0.0);
}

TEST(AnalyticSimulatorTest, IdleGapBeforeArrival) {
  // Nothing running; a real arrival at t=3 of 100 U -> finishes at 4.
  std::vector<FutureArrival> arrivals{{3.0, 100.0, 1.0, 7}};
  AnalyticModelOptions model;
  model.rate = 100.0;
  auto forecast = AnalyticSimulator::Forecast({}, {}, arrivals, model);
  ASSERT_TRUE(forecast.ok());
  EXPECT_NEAR(*forecast->FinishTimeOf(7), 4.0, 1e-9);
}

TEST(AnalyticSimulatorTest, InvalidInputs) {
  AnalyticModelOptions bad_rate;
  bad_rate.rate = 0.0;
  EXPECT_FALSE(AnalyticSimulator::Forecast({}, {}, {}, bad_rate).ok());
  AnalyticModelOptions model;
  EXPECT_FALSE(
      AnalyticSimulator::Forecast({{1, -5.0, 1.0}}, {}, {}, model).ok());
  EXPECT_FALSE(
      AnalyticSimulator::Forecast({}, {}, {{-1.0, 10.0, 1.0, 2}}, model)
          .ok());
}

// ---- property: analytic simulator vs real scheduler with arrivals -----------------

class ArrivalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArrivalPropertyTest, MatchesSchedulerWithArrivalsAndQueue) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.01;
  options.max_concurrent = static_cast<int>(rng.UniformInt(1, 4));
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);

  std::vector<QueryLoad> running;
  const int n0 = static_cast<int>(rng.UniformInt(1, 5));
  std::vector<QueryId> all_ids;
  for (int i = 0; i < n0; ++i) {
    const double cost = rng.Uniform(20.0, 200.0);
    auto id = db.Submit(engine::QuerySpec::Synthetic(cost));
    ASSERT_TRUE(id.ok());
    all_ids.push_back(*id);
  }
  // Initial submissions split into running + queued by the Rdbms itself.
  std::vector<QueryLoad> queued;
  for (const auto& info : db.RunningQueries()) {
    running.push_back(QueryLoad{info.id, info.optimizer_cost, info.weight});
  }
  for (const auto& info : db.QueuedQueries()) {
    queued.push_back(QueryLoad{info.id, info.optimizer_cost, info.weight});
  }

  // Future arrivals, known to the forecast.
  std::vector<FutureArrival> arrivals;
  const int na = static_cast<int>(rng.UniformInt(0, 4));
  std::vector<std::pair<SimTime, double>> plan;
  for (int i = 0; i < na; ++i) {
    plan.emplace_back(rng.Uniform(0.05, 3.0), rng.Uniform(10.0, 150.0));
  }
  std::sort(plan.begin(), plan.end());
  QueryId next_id = all_ids.back() + 1;
  const double normal_weight =
      options.weights.WeightOf(Priority::kNormal);
  for (const auto& [t, cost] : plan) {
    arrivals.push_back(FutureArrival{t, cost, normal_weight, next_id++});
  }

  AnalyticModelOptions model;
  model.rate = options.processing_rate;
  model.max_concurrent = options.max_concurrent;
  auto forecast = AnalyticSimulator::Forecast(running, queued, arrivals, model);
  ASSERT_TRUE(forecast.ok());

  // Drive the real system, submitting arrivals on schedule.
  std::size_t next_arrival = 0;
  while (!db.Idle() || next_arrival < plan.size()) {
    while (next_arrival < plan.size() &&
           plan[next_arrival].first <= db.now() + 1e-9) {
      auto id = db.Submit(
          engine::QuerySpec::Synthetic(plan[next_arrival].second));
      ASSERT_TRUE(id.ok());
      all_ids.push_back(*id);
      ++next_arrival;
    }
    db.Step(options.quantum);
  }

  for (QueryId id : all_ids) {
    auto predicted = forecast->FinishTimeOf(id);
    ASSERT_TRUE(predicted.ok()) << "query " << id;
    const SimTime actual = db.info(id)->finish_time;
    // Arrival times quantize to the step grid in the real system.
    EXPECT_NEAR(actual, *predicted, 5.0 * options.quantum + 1e-6)
        << "query " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArrivalInstances, ArrivalPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mqpi::pi
