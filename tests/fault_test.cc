// Fault-injection and graceful-degradation tests:
//  * FaultInjector semantics — seeded determinism, independent
//    per-point streams, exact schedules, fire caps, disarm,
//  * Rdbms fault points — spurious aborts, admission flaps, rate
//    collapse, stalled quanta,
//  * MultiQueryPi guardrails — rate floor, corrupt-window rejection,
//  * PiService degradation — overload shedding, delayed publication
//    with staleness tags, session-control failures, last-known-good
//    estimate carry, and the ticker watchdog (runs under TSan via the
//    "sanitize" label).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fault/fault_injector.h"
#include "pi/multi_query_pi.h"
#include "sched/rdbms.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "storage/catalog.h"

namespace mqpi {
namespace {

using engine::QuerySpec;
using fault::FaultInjector;
using fault::FaultSpec;

// ---- injector semantics -----------------------------------------------------

std::vector<bool> FireSequence(FaultInjector* injector, const char* point,
                               int evaluations) {
  std::vector<bool> fired;
  fired.reserve(static_cast<std::size_t>(evaluations));
  for (int i = 0; i < evaluations; ++i) {
    fired.push_back(injector->ShouldFire(point));
  }
  return fired;
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameFireSequence) {
  std::vector<bool> first;
  std::vector<bool> second;
  for (std::vector<bool>* out : {&first, &second}) {
    FaultInjector injector(42);
    injector.ArmProbability(fault::kSchedRateCollapse, 0.3, 0.5);
    *out = FireSequence(&injector, fault::kSchedRateCollapse, 200);
  }
  EXPECT_EQ(first, second);
  const auto fires = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, first.size());  // p = 0.3: neither never nor always

  FaultInjector other_seed(43);
  other_seed.ArmProbability(fault::kSchedRateCollapse, 0.3, 0.5);
  EXPECT_NE(first,
            FireSequence(&other_seed, fault::kSchedRateCollapse, 200));
}

TEST(FaultInjectorTest, PointStreamsAreIndependentOfOtherArmedPoints) {
  FaultInjector alone(7);
  alone.ArmProbability(fault::kSchedRateCollapse, 0.4);
  const auto solo = FireSequence(&alone, fault::kSchedRateCollapse, 100);

  // Same seed, but a second point armed and interleaved 1:1 — the
  // first point's decisions must not shift.
  FaultInjector crowded(7);
  crowded.ArmProbability(fault::kSchedRateCollapse, 0.4);
  crowded.ArmProbability(fault::kSchedRateSpike, 0.4);
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    interleaved.push_back(crowded.ShouldFire(fault::kSchedRateCollapse));
    crowded.ShouldFire(fault::kSchedRateSpike);
  }
  EXPECT_EQ(solo, interleaved);
}

TEST(FaultInjectorTest, ScheduleFiresExactlyOnListedEvaluations) {
  FaultInjector injector;
  injector.ArmSchedule(fault::kServiceTickerStall, {2, 5, 6}, 30.0);
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto fire = injector.Evaluate(fault::kServiceTickerStall);
    if (fire.fired) {
      fired_at.push_back(i);
      EXPECT_DOUBLE_EQ(fire.value, 30.0);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{2, 5, 6}));
}

TEST(FaultInjectorTest, MaxFiresCapsAnAlwaysOnPoint) {
  FaultInjector injector;
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 3;
  injector.Arm(fault::kSchedQuantumStall, spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.ShouldFire(fault::kSchedQuantumStall)) ++fires;
  }
  EXPECT_EQ(fires, 3);
  const auto stats = injector.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].evaluations, 10u);
  EXPECT_EQ(stats[0].fires, 3u);
  EXPECT_EQ(injector.total_fires(), 3u);
}

TEST(FaultInjectorTest, DisarmStopsFiresAndKeepsStats) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  injector.ArmProbability(fault::kPiCacheInvalidate, 1.0);
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(injector.ShouldFire(fault::kPiCacheInvalidate));

  injector.Disarm(fault::kPiCacheInvalidate);
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFire(fault::kPiCacheInvalidate));
  // The fire before the disarm is still auditable.
  const auto stats = injector.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].fires, 1u);

  injector.ArmProbability(fault::kPiCacheInvalidate, 1.0);
  injector.ArmProbability(fault::kPiWindowCorrupt, 1.0);
  EXPECT_TRUE(injector.enabled());
  injector.DisarmAll();
  EXPECT_FALSE(injector.enabled());
}

TEST(FaultInjectorTest, ScaleOrReturnsPayloadOnFireOnly) {
  FaultInjector injector;
  injector.ArmSchedule(fault::kSchedRateCollapse, {1}, 0.25);
  EXPECT_DOUBLE_EQ(injector.ScaleOr(fault::kSchedRateCollapse, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(injector.ScaleOr(fault::kSchedRateCollapse, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(injector.ScaleOr(fault::kSchedRateCollapse, 1.0), 1.0);
}

TEST(FaultInjectorTest, PickIndexIsDeterministicAndInRange) {
  std::vector<std::uint64_t> first;
  std::vector<std::uint64_t> second;
  for (std::vector<std::uint64_t>* out : {&first, &second}) {
    FaultInjector injector(99);
    injector.ArmProbability(fault::kSchedSpuriousAbort, 1.0);
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t pick =
          injector.PickIndex(fault::kSchedSpuriousAbort, 7);
      EXPECT_LT(pick, 7u);
      out->push_back(pick);
    }
  }
  EXPECT_EQ(first, second);
}

// ---- Rdbms fault points -----------------------------------------------------

sched::RdbmsOptions QuietRdbms() {
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.0;
  return options;
}

TEST(RdbmsFaultTest, SpuriousAbortKillsExactlyOneRunningQuery) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, QuietRdbms());
  FaultInjector injector;
  db.SetFaultInjector(&injector);

  std::vector<QueryId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(*db.Submit(QuerySpec::Synthetic(1000.0)));
  }
  db.Step();  // admit; no faults armed yet
  ASSERT_GT(db.num_running(), 0);

  injector.ArmSchedule(fault::kSchedSpuriousAbort, {0});
  db.Step();
  int aborted = 0;
  for (QueryId id : ids) {
    if (db.info(id)->state == sched::QueryState::kAborted) ++aborted;
  }
  EXPECT_EQ(aborted, 1);
  db.Step();  // schedule exhausted: no further victims
  int aborted_after = 0;
  for (QueryId id : ids) {
    if (db.info(id)->state == sched::QueryState::kAborted) ++aborted_after;
  }
  EXPECT_EQ(aborted_after, 1);
}

TEST(RdbmsFaultTest, AdmissionFlapTogglesTheGate) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, QuietRdbms());
  FaultInjector injector;
  db.SetFaultInjector(&injector);
  ASSERT_TRUE(db.admission_open());

  injector.ArmSchedule(fault::kSchedAdmissionFlap, {0});
  db.Step();
  EXPECT_FALSE(db.admission_open());
  // Closed gate: new submissions stay queued.
  const QueryId id = *db.Submit(QuerySpec::Synthetic(1000.0));
  db.Step();
  EXPECT_EQ(db.info(id)->state, sched::QueryState::kQueued);

  injector.ArmSchedule(fault::kSchedAdmissionFlap, {0});  // re-arm: flap back
  db.Step();
  EXPECT_TRUE(db.admission_open());
  db.Step();
  EXPECT_EQ(db.info(id)->state, sched::QueryState::kRunning);
}

TEST(RdbmsFaultTest, RateCollapseSlowsWorkQuantumStallStopsIt) {
  storage::Catalog catalog;
  sched::Rdbms baseline(&catalog, QuietRdbms());
  sched::Rdbms collapsed(&catalog, QuietRdbms());
  FaultInjector injector;
  collapsed.SetFaultInjector(&injector);
  injector.ArmProbability(fault::kSchedRateCollapse, 1.0, 0.25);

  const QueryId a = *baseline.Submit(QuerySpec::Synthetic(1000.0));
  const QueryId b = *collapsed.Submit(QuerySpec::Synthetic(1000.0));
  for (int i = 0; i < 10; ++i) {
    baseline.Step();
    collapsed.Step();
  }
  const double full = baseline.info(a)->completed_work;
  const double slowed = collapsed.info(b)->completed_work;
  EXPECT_GT(slowed, 0.0);
  EXPECT_LT(slowed, 0.5 * full);

  // A stalled quantum serves nothing, but the clock still advances.
  injector.DisarmAll();
  injector.ArmProbability(fault::kSchedQuantumStall, 1.0);
  const double before = collapsed.info(b)->completed_work;
  const SimTime now_before = collapsed.now();
  collapsed.Step();
  EXPECT_DOUBLE_EQ(collapsed.info(b)->completed_work, before);
  EXPECT_GT(collapsed.now(), now_before);
}

// ---- MultiQueryPi guardrails ------------------------------------------------

TEST(PiGuardrailTest, CollapsedRateIsClampedToTheFloor) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, QuietRdbms());
  FaultInjector injector;
  db.SetFaultInjector(&injector);
  pi::MultiQueryPi pi(&db);

  const auto id = db.Submit(QuerySpec::Synthetic(1e6));
  ASSERT_TRUE(id.ok());
  // Warm up a healthy measurement, then collapse the rate to (nearly)
  // zero. The EWMA (alpha 0.2, one sample per 5 s window) needs ~35
  // collapsed windows to decay below the 0.1 U/s floor.
  for (int i = 0; i < 100; ++i) {
    db.Step();
    pi.ObserveStep();
  }
  injector.ArmProbability(fault::kSchedRateCollapse, 1.0, 1e-9);
  for (int i = 0; i < 2500; ++i) {
    db.Step();
    pi.ObserveStep();
  }
  const double floor = db.options().processing_rate * 1e-3;
  const double rate = pi.estimated_rate();
  EXPECT_TRUE(std::isfinite(rate));
  EXPECT_DOUBLE_EQ(rate, floor);
  EXPECT_GT(pi.rate_floor_hits(), 0u);
  // Estimates built on the floored rate stay finite.
  const auto eta = pi.EstimateRemainingTime(*id);
  ASSERT_TRUE(eta.ok());
  EXPECT_TRUE(std::isfinite(*eta) || *eta == kInfiniteTime);
  EXPECT_FALSE(std::isnan(*eta));
}

TEST(PiGuardrailTest, CorruptWindowSamplesAreRejectedNotSmoothed) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, QuietRdbms());
  pi::MultiQueryPi pi(&db);
  FaultInjector injector;
  pi.SetFaultInjector(&injector);
  injector.ArmProbability(fault::kPiWindowCorrupt, 1.0,
                          std::numeric_limits<double>::quiet_NaN());

  ASSERT_TRUE(db.Submit(QuerySpec::Synthetic(1e6)).ok());
  for (int i = 0; i < 200; ++i) {
    db.Step();
    pi.ObserveStep();
  }
  // Every window accumulator was poisoned with NaN, every sample
  // rejected: the PI never observed a rate and falls back to the
  // configured one instead of smoothing garbage.
  EXPECT_GT(pi.corrupt_rate_samples(), 0u);
  EXPECT_DOUBLE_EQ(pi.estimated_rate(), db.options().processing_rate);
}

// ---- service degradation ----------------------------------------------------

service::PiServiceOptions ManualServiceOptions() {
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  options.enable_auditor = false;
  return options;
}

TEST(ServiceDegradationTest, BoundedQueueShedsSubmitsWithResourceExhausted) {
  storage::Catalog catalog;
  auto options = ManualServiceOptions();
  options.rdbms.max_concurrent = 1;
  options.max_queued_queries = 2;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();

  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(1e6)).ok());
  ASSERT_TRUE(service.Advance(0.1).ok());  // first query now running
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(10.0)).ok());
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(10.0)).ok());
  const auto shed = session->Submit(QuerySpec::Synthetic(10.0));
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  EXPECT_EQ(service.metrics()->counter("service.submits_shed")->value(), 1u);
}

TEST(ServiceDegradationTest, BoundedArrivalBacklogShedsSubmitAt) {
  storage::Catalog catalog;
  auto options = ManualServiceOptions();
  options.max_pending_arrivals = 1;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();

  ASSERT_TRUE(session->SubmitAt(5.0, QuerySpec::Synthetic(10.0)).ok());
  const auto shed = session->SubmitAt(6.0, QuerySpec::Synthetic(10.0));
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_EQ(service.metrics()->counter("service.submits_shed")->value(), 1u);
}

TEST(ServiceDegradationTest, DelayedPublicationTagsStalenessAndRecovers) {
  storage::Catalog catalog;
  FaultInjector injector;
  auto options = ManualServiceOptions();
  options.fault = &injector;
  options.stale_snapshot_quanta = 2;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();
  ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(1e5)).ok());

  ASSERT_TRUE(service.Advance(0.1).ok());  // one fresh snapshot first
  const auto fresh = service.snapshot();
  EXPECT_EQ(fresh->age_quanta, 0);
  EXPECT_FALSE(fresh->degraded);
  const std::uint64_t fresh_sequence = fresh->sequence;

  injector.ArmSchedule(fault::kServicePublishDelay, {0, 1, 2});
  ASSERT_TRUE(service.Advance(0.1).ok());
  auto stale = service.snapshot();
  EXPECT_EQ(stale->age_quanta, 1);
  EXPECT_FALSE(stale->degraded);  // below the threshold
  EXPECT_EQ(stale->sim_time, fresh->sim_time);  // frozen content

  ASSERT_TRUE(service.Advance(0.2).ok());
  stale = service.snapshot();
  EXPECT_EQ(stale->age_quanta, 3);
  EXPECT_TRUE(stale->degraded);  // at/past the threshold
  // Every re-publication still advanced the sequence: readers can see
  // the service is alive, just degraded.
  EXPECT_EQ(stale->sequence, fresh_sequence + 3);
  EXPECT_EQ(service.metrics()->counter("service.stale_snapshots")->value(),
            3u);

  // Publication heals: the next quantum publishes fresh content again.
  ASSERT_TRUE(service.Advance(0.1).ok());
  const auto healed = service.snapshot();
  EXPECT_EQ(healed->age_quanta, 0);
  EXPECT_FALSE(healed->degraded);
  EXPECT_GT(healed->sim_time, fresh->sim_time);
}

TEST(ServiceDegradationTest, SessionControlFaultFailsCleanly) {
  storage::Catalog catalog;
  FaultInjector injector;
  auto options = ManualServiceOptions();
  options.fault = &injector;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();
  const auto id = session->Submit(QuerySpec::Synthetic(1e5));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Advance(0.1).ok());

  injector.ArmProbability(fault::kServiceSessionControlFail, 1.0);
  const Status blocked = session->Block(*id);
  ASSERT_FALSE(blocked.ok());
  // The failure is clean: the query is untouched and the operation
  // succeeds once the fault clears.
  EXPECT_EQ(service.snapshot()->Find(*id)->state,
            sched::QueryState::kRunning);
  injector.DisarmAll();
  EXPECT_TRUE(session->Block(*id).ok());
  EXPECT_TRUE(session->Resume(*id).ok());
}

TEST(ServiceDegradationTest, AbsurdEstimateDegradesToLastKnownGood) {
  storage::Catalog catalog;
  FaultInjector injector;
  auto options = ManualServiceOptions();
  options.fault = &injector;
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();
  const auto id = session->Submit(QuerySpec::Synthetic(1000.0));
  ASSERT_TRUE(id.ok());

  // Healthy phase: the single-query ETA converges to a credible value
  // (its speed window needs >= 2 simulated seconds for a sample).
  ASSERT_TRUE(service.Advance(3.0).ok());
  const auto* healthy = service.snapshot()->Find(*id);
  ASSERT_NE(healthy, nullptr);
  ASSERT_TRUE(std::isfinite(healthy->eta_single));
  EXPECT_FALSE(healthy->degraded);

  // Collapse the engine rate to (nearly) zero: the single-query PI's
  // speed EWMA decays toward denormal and c/s explodes past the
  // forecast horizon — the signature the publication guardrail exists
  // to catch. (Long enough for the multi PI's windowed rate EWMA to
  // decay below its floor too: ~35 windows of 5 s.)
  injector.ArmProbability(fault::kSchedRateCollapse, 1.0, 1e-9);
  ASSERT_TRUE(service.Advance(200.0).ok());

  const auto* degraded = service.snapshot()->Find(*id);
  ASSERT_NE(degraded, nullptr);
  EXPECT_TRUE(degraded->degraded);
  // The published ETA is the last credible one, not the absurdity.
  EXPECT_TRUE(std::isfinite(degraded->eta_single));
  EXPECT_LE(degraded->eta_single, options.pi.multi.horizon);
  EXPECT_GE(degraded->eta_single, 0.0);
  EXPECT_GT(service.metrics()->counter("pi.degraded_estimates")->value(),
            0u);
  // The multi-query estimator survives the same collapse through its
  // rate floor: finite and within-horizon without degradation.
  EXPECT_TRUE(std::isfinite(degraded->eta_multi));
  EXPECT_GT(
      service.metrics()->counter("pi.rate_floor_hits")->value(), 0u);
  // Per-point fire accounting reached the metrics registry.
  EXPECT_GT(service.metrics()
                ->counter("fault.injected",
                          {{"point", fault::kSchedRateCollapse}})
                ->value(),
            0u);
}

TEST(ServiceWatchdogTest, RestartsAStalledTickerAndDrains) {
  storage::Catalog catalog;
  FaultInjector injector;
  service::PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.enable_auditor = false;
  options.fault = &injector;
  options.time_scale = 0.0;  // flat out
  options.watchdog.poll_interval_s = 0.01;
  options.watchdog.stall_threshold_s = 0.05;
  options.watchdog.backoff_initial_s = 0.01;
  // The first busy tick goes deaf for 30 wall seconds — only the
  // watchdog can save this run from timing out.
  injector.ArmSchedule(fault::kServiceTickerStall, {0}, 30.0);
  service::PiService service(&catalog, options);
  auto session = service.OpenSession();
  const auto id = session->Submit(QuerySpec::Synthetic(200.0));
  ASSERT_TRUE(id.ok());

  EXPECT_TRUE(service.WaitUntilIdle(/*timeout_seconds=*/20.0));
  EXPECT_GE(service.metrics()->counter("service.watchdog_restarts")->value(),
            1u);
  const auto* row = service.snapshot()->Find(*id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->state, sched::QueryState::kFinished);
  service.Stop();
}

}  // namespace
}  // namespace mqpi
