// Tests for administrative features: statement timeouts and catalog
// drop operations.

#include <gtest/gtest.h>

#include "sched/rdbms.h"
#include "sim/trace.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi {
namespace {

using engine::QuerySpec;

// ---- statement timeout -----------------------------------------------------------

TEST(StatementTimeoutTest, RunawayQueryIsAborted) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.max_query_seconds = 2.0;
  sched::Rdbms db(&catalog, options);
  sim::EventTrace trace(&db);
  auto quick = db.Submit(QuerySpec::Synthetic(50.0));
  auto runaway = db.Submit(QuerySpec::Synthetic(100000.0));
  ASSERT_TRUE(runaway.ok());
  db.RunUntilIdle(20.0);
  EXPECT_EQ(db.info(*quick)->state, sched::QueryState::kFinished);
  const auto info = *db.info(*runaway);
  EXPECT_EQ(info.state, sched::QueryState::kAborted);
  EXPECT_NEAR(info.finish_time, 2.0, 0.25);
  EXPECT_EQ(trace.Filter(sched::QueryEventKind::kAborted).size(), 1u);
}

TEST(StatementTimeoutTest, TimeoutCountsRunningTimeNotQueueTime) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.max_concurrent = 1;
  options.max_query_seconds = 3.0;
  sched::Rdbms db(&catalog, options);
  auto first = db.Submit(QuerySpec::Synthetic(200.0));   // 2 s
  auto second = db.Submit(QuerySpec::Synthetic(250.0));  // queued 2 s
  ASSERT_TRUE(second.ok());
  db.RunUntilIdle();
  // The second query waited 2 s in the queue then ran 2.5 s — under the
  // 3 s running-time limit, so it must finish, not abort.
  EXPECT_EQ(db.info(*first)->state, sched::QueryState::kFinished);
  EXPECT_EQ(db.info(*second)->state, sched::QueryState::kFinished);
}

TEST(StatementTimeoutTest, ZeroDisables) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.max_query_seconds = 0.0;
  sched::Rdbms db(&catalog, options);
  auto id = db.Submit(QuerySpec::Synthetic(5000.0));
  ASSERT_TRUE(id.ok());
  db.RunUntilIdle();
  EXPECT_EQ(db.info(*id)->state, sched::QueryState::kFinished);
}

TEST(StatementTimeoutTest, BlockedTimeStillCounts) {
  // A query blocked by WLM keeps aging toward its timeout only while
  // running; blocking pauses progress but the clock keeps going — the
  // guard measures wall time since start, like real statement timeouts.
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  options.max_query_seconds = 2.0;
  sched::Rdbms db(&catalog, options);
  auto id = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(db.Block(*id).ok());
  db.Step(3.0);
  // Blocked queries are not aborted by the guard (they make no
  // progress by DBA decision)...
  EXPECT_EQ(db.info(*id)->state, sched::QueryState::kBlocked);
  // ...but once resumed, wall time since start applies immediately.
  ASSERT_TRUE(db.Resume(*id).ok());
  db.Step(0.2);
  EXPECT_EQ(db.info(*id)->state, sched::QueryState::kAborted);
}

// ---- catalog drops ------------------------------------------------------------

TEST(CatalogDropTest, DropTableCascades) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 100, .matches_per_key = 4, .seed = 12});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(catalog.GetTable("lineitem").ok());
  ASSERT_TRUE(catalog.GetIndex("lineitem_partkey_idx").ok());
  ASSERT_TRUE(catalog.GetHistogram("lineitem", "quantity").ok());

  ASSERT_TRUE(catalog.DropTable("lineitem").ok());
  EXPECT_TRUE(catalog.GetTable("lineitem").status().IsNotFound());
  EXPECT_TRUE(
      catalog.GetIndex("lineitem_partkey_idx").status().IsNotFound());
  EXPECT_TRUE(
      catalog.GetHistogram("lineitem", "quantity").status().IsNotFound());
  EXPECT_TRUE(catalog.GetStats("lineitem").status().IsNotFound());
  // Re-creating after a drop works.
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  EXPECT_TRUE(catalog.GetTable("lineitem").ok());
}

TEST(CatalogDropTest, DropIndexOnly) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 100, .matches_per_key = 4, .seed = 13});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(catalog.DropIndex("lineitem_partkey_idx").ok());
  EXPECT_TRUE(
      catalog.GetIndex("lineitem_partkey_idx").status().IsNotFound());
  EXPECT_TRUE(catalog.GetTable("lineitem").ok());  // table survives
  EXPECT_TRUE(catalog.DropIndex("lineitem_partkey_idx").IsNotFound());
}

TEST(CatalogDropTest, DropUnknownTableFails) {
  storage::Catalog catalog;
  EXPECT_TRUE(catalog.DropTable("nope").IsNotFound());
}

TEST(CatalogDropTest, DropDoesNotTouchOtherTables) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 100, .matches_per_key = 4, .seed = 14});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(generator.BuildPartTable(&catalog, "part_1", 3).ok());
  ASSERT_TRUE(generator.BuildPartTable(&catalog, "part_10", 3).ok());
  // Dropping part_1 must not clobber part_10's histograms despite the
  // shared name prefix.
  ASSERT_TRUE(catalog.DropTable("part_1").ok());
  EXPECT_TRUE(catalog.GetTable("part_10").ok());
  EXPECT_TRUE(catalog.GetHistogram("part_10", "retailprice").ok());
  EXPECT_TRUE(catalog.GetTable("lineitem").ok());
}

}  // namespace
}  // namespace mqpi
