// Tests for the engine extensions: hash join, the join-aggregate query
// class, column histograms, and histogram-based cardinality estimates.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "engine/planner.h"
#include "storage/catalog.h"
#include "storage/histogram.h"
#include "storage/tpcr_gen.h"

namespace mqpi::engine {
namespace {

using storage::AsDouble;
using storage::Catalog;
using storage::ColumnType;
using storage::Histogram;
using storage::Schema;
using storage::Tuple;
using storage::Value;

// ---- Histogram ---------------------------------------------------------------

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto table = catalog_.CreateTable(
        "t", Schema({{"k", ColumnType::kInt64}, {"v", ColumnType::kDouble}}));
    ASSERT_TRUE(table.ok());
    table_ = *table;
    // v uniform over [0, 100): 1000 rows.
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(table_
                      ->Append(Tuple({Value{static_cast<std::int64_t>(i)},
                                      Value{(i % 100) + 0.5}}))
                      .ok());
    }
  }
  Catalog catalog_;
  storage::Table* table_ = nullptr;
};

TEST_F(HistogramTest, UniformSelectivity) {
  auto h = Histogram::Build(*table_, 1, 20);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_rows(), 1000u);
  EXPECT_NEAR(h->SelectivityGreaterThan(50.0), 0.5, 0.03);
  EXPECT_NEAR(h->SelectivityGreaterThan(90.0), 0.1, 0.03);
  EXPECT_DOUBLE_EQ(h->SelectivityGreaterThan(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h->SelectivityGreaterThan(1000.0), 0.0);
  EXPECT_NEAR(h->SelectivityAtMost(25.0), 0.25, 0.03);
}

TEST_F(HistogramTest, EstimatedMean) {
  auto h = Histogram::Build(*table_, 1, 20);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimatedMean(), 50.0, 2.0);
}

TEST_F(HistogramTest, BoundsAndBuckets) {
  auto h = Histogram::Build(*table_, 1, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 99.5);
  EXPECT_EQ(h->num_buckets(), 8);
}

TEST_F(HistogramTest, ErrorsOnBadInput) {
  EXPECT_TRUE(Histogram::Build(*table_, 1, 0).status().IsInvalidArgument());
  EXPECT_EQ(Histogram::Build(*table_, 9, 4).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(HistogramTest, ConstantColumn) {
  auto table = catalog_.CreateTable(
      "c", Schema({{"v", ColumnType::kDouble}}));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*table)->Append(Tuple({Value{7.0}})).ok());
  }
  auto h = Histogram::Build(**table, 0, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->SelectivityGreaterThan(7.0), 0.0);
  EXPECT_DOUBLE_EQ(h->SelectivityGreaterThan(6.0), 1.0);
  EXPECT_NEAR(h->EstimatedMean(), 7.0, 0.5);
}

TEST_F(HistogramTest, EmptyTable) {
  auto table = catalog_.CreateTable(
      "e", Schema({{"v", ColumnType::kDouble}}));
  ASSERT_TRUE(table.ok());
  auto h = Histogram::Build(**table, 0, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_rows(), 0u);
  EXPECT_DOUBLE_EQ(h->SelectivityGreaterThan(0.0), 0.0);
}

TEST_F(HistogramTest, CatalogIntegration) {
  ASSERT_TRUE(catalog_.Analyze("t").ok());
  auto h = catalog_.GetHistogram("t", "v");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ((*h)->num_rows(), 1000u);
  EXPECT_TRUE(catalog_.GetHistogram("t", "nope").status().IsNotFound());
  EXPECT_TRUE(catalog_.GetHistogram("zzz", "v").status().IsNotFound());
}

// ---- hash join ------------------------------------------------------------------

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::TpcrGenerator generator(
        {.num_part_keys = 250, .matches_per_key = 7, .seed = 31});
    ASSERT_TRUE(generator.BuildLineitem(&catalog_).ok());
    ASSERT_TRUE(generator.BuildPartTable(&catalog_, "part_j", 10).ok());
  }

  /// Ground truth via the index: lineitem rows whose partkey appears in
  /// part_j.
  std::uint64_t BruteForceJoinCount() {
    const auto* part = *catalog_.GetTable("part_j");
    const auto* index = *catalog_.GetIndex("lineitem_partkey_idx");
    std::uint64_t count = 0;
    for (storage::RowId r = 0; r < part->num_tuples(); ++r) {
      count += index->Lookup(storage::AsInt(part->Get(r).at(0))).size();
    }
    return count;
  }

  Catalog catalog_;
  storage::BufferManager buffers_;
};

TEST_F(JoinTest, JoinCountMatchesBruteForce) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto prepared =
      planner.Prepare(QuerySpec::JoinAggregate("part_j", AggFunc::kCount, ""));
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto* exec = prepared->execution.get();
  Tuple row;
  // Run with small budgets to exercise yields in both phases.
  while (!exec->done()) exec->Advance(5.0);
  ASSERT_TRUE(exec->status().ok());
  EXPECT_EQ(exec->rows_produced(), 1u);

  // Re-run unbudgeted and inspect the aggregate value via a fresh
  // execution returning the count.
  auto again =
      planner.Prepare(QuerySpec::JoinAggregate("part_j", AggFunc::kCount, ""));
  ASSERT_TRUE(again.ok());
  while (!again->execution->done()) {
    again->execution->Advance(std::numeric_limits<double>::infinity());
  }
  EXPECT_DOUBLE_EQ(again->execution->completed_work(),
                   prepared->execution->completed_work());
  EXPECT_GT(BruteForceJoinCount(), 0u);
}

TEST_F(JoinTest, JoinSumMatchesIndexSum) {
  // sum(l.quantity) over the join == sum over index lookups.
  const auto* part = *catalog_.GetTable("part_j");
  const auto* lineitem = *catalog_.GetTable("lineitem");
  const auto* index = *catalog_.GetIndex("lineitem_partkey_idx");
  double expected = 0.0;
  for (storage::RowId r = 0; r < part->num_tuples(); ++r) {
    for (const auto& entry :
         index->Lookup(storage::AsInt(part->Get(r).at(0)))) {
      expected += AsDouble(lineitem->Get(entry.row).at(3));  // quantity
    }
  }

  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto prepared = planner.Prepare(
      QuerySpec::JoinAggregate("part_j", AggFunc::kSum, "quantity"));
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  // Drive through a budgeted loop and capture the single output row by
  // dry-measuring: rows_produced proves the aggregate emitted; validate
  // the sum by re-executing the tree manually.
  auto* exec = prepared->execution.get();
  while (!exec->done()) exec->Advance(37.0);
  ASSERT_TRUE(exec->status().ok());
  EXPECT_EQ(exec->rows_produced(), 1u);

  // Manual operator-level execution to check the actual value.
  const auto* part_table = *catalog_.GetTable("part_j");
  auto build_key = part_table->schema().ColumnIndex("partkey");
  auto probe_key = lineitem->schema().ColumnIndex("partkey");
  auto join = std::make_unique<HashJoinOperator>(
      std::make_unique<SeqScanOperator>(part_table), *build_key,
      std::make_unique<SeqScanOperator>(lineitem), *probe_key);
  auto arg = Col(join->output_schema(), "quantity");
  ASSERT_TRUE(arg.ok());
  ScalarAggregateOperator agg(std::move(join), AggFunc::kSum,
                              std::move(*arg));
  storage::BufferManager pool;
  storage::BufferAccount account(&pool);
  ExecContext ctx;
  ctx.account = &account;
  Tuple out;
  Result<OpResult> step = OpResult::kYield;
  do {
    step = agg.Next(&ctx, &out);
    ASSERT_TRUE(step.ok());
  } while (*step == OpResult::kYield);
  ASSERT_EQ(*step, OpResult::kRow);
  EXPECT_NEAR(AsDouble(out.at(0)), expected, 1e-6 * expected);
}

TEST_F(JoinTest, BudgetedAndUnbudgetedAgree) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto spec = QuerySpec::JoinAggregate("part_j", AggFunc::kAvg, "quantity");
  auto a = planner.Prepare(spec);
  auto b = planner.Prepare(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  while (!a->execution->done()) {
    a->execution->Advance(std::numeric_limits<double>::infinity());
  }
  while (!b->execution->done()) b->execution->Advance(3.0);
  EXPECT_DOUBLE_EQ(a->execution->completed_work(),
                   b->execution->completed_work());
}

TEST_F(JoinTest, CostEstimateReasonable) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto spec = QuerySpec::JoinAggregate("part_j", AggFunc::kCount, "");
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok());
  auto true_cost = planner.MeasureTrueCost(spec);
  ASSERT_TRUE(true_cost.ok());
  EXPECT_NEAR(prepared->analytic_cost, *true_cost, 0.15 * *true_cost);
}

TEST_F(JoinTest, RefinementConverges) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.5, .noise_seed = 9});
  auto spec = QuerySpec::JoinAggregate("part_j", AggFunc::kCount, "");
  auto prepared = planner.Prepare(spec);
  auto true_cost = planner.MeasureTrueCost(spec);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(true_cost.ok());
  auto* exec = prepared->execution.get();
  while (!exec->done() && exec->completed_work() < 0.7 * *true_cost) {
    exec->Advance(25.0);
  }
  const double actual_remaining = *true_cost - exec->completed_work();
  EXPECT_NEAR(exec->EstimateRemainingCost(), actual_remaining,
              0.3 * actual_remaining + 2.0);
}

TEST_F(JoinTest, MissingTableFails) {
  Planner planner(&catalog_, &buffers_);
  EXPECT_TRUE(
      planner.Prepare(QuerySpec::JoinAggregate("nope", AggFunc::kCount, ""))
          .status()
          .IsNotFound());
}

// ---- cardinality estimates ---------------------------------------------------------

TEST_F(JoinTest, JoinCardinalityEstimate) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto prepared =
      planner.Prepare(QuerySpec::JoinAggregate("part_j", AggFunc::kCount, ""));
  ASSERT_TRUE(prepared.ok());
  const double actual = static_cast<double>(BruteForceJoinCount());
  EXPECT_NEAR(prepared->estimated_input_rows, actual, 0.25 * actual);
  EXPECT_DOUBLE_EQ(prepared->estimated_result_rows, 1.0);
}

TEST_F(JoinTest, TpcrCardinalityEstimateWithinFactorTwo) {
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  auto spec = QuerySpec::TpcrPartPrice("part_j");
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok());
  auto* exec = prepared->execution.get();
  while (!exec->done()) {
    exec->Advance(std::numeric_limits<double>::infinity());
  }
  const double actual = static_cast<double>(exec->rows_produced());
  ASSERT_GT(actual, 0.0);
  EXPECT_GT(prepared->estimated_result_rows, 0.4 * actual);
  EXPECT_LT(prepared->estimated_result_rows, 2.5 * actual);
}

TEST_F(JoinTest, FilterSelectivityEstimate) {
  ASSERT_TRUE(catalog_.AnalyzeAll().ok());
  Planner planner(&catalog_, &buffers_, {.noise_sigma = 0.0});
  // quantity uniform over [1, 50]: > 25 selects roughly half.
  auto spec = QuerySpec::ScanAggregate("lineitem", AggFunc::kCount, "")
                  .WithFilter("quantity", 25.0);
  auto prepared = planner.Prepare(spec);
  ASSERT_TRUE(prepared.ok());
  const auto* lineitem = *catalog_.GetTable("lineitem");
  const double n = static_cast<double>(lineitem->num_tuples());
  EXPECT_NEAR(prepared->estimated_input_rows / n, 0.5, 0.06);
}

}  // namespace
}  // namespace mqpi::engine
