// Tests for the smaller library features: per-query I/O statistics,
// PiManager auto-tracking, schedule serialization, and buffer-account
// hit accounting.

#include <gtest/gtest.h>

#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "storage/tpcr_gen.h"
#include "workload/arrival_schedule.h"

namespace mqpi {
namespace {

using engine::QuerySpec;

// ---- per-query I/O statistics -------------------------------------------------

TEST(IoStatsTest, QueryInfoReportsPages) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 200, .matches_per_key = 5, .seed = 4});
  ASSERT_TRUE(generator.BuildLineitem(&catalog).ok());
  ASSERT_TRUE(generator.BuildPartTable(&catalog, "part_1", 5).ok());

  sched::RdbmsOptions options;
  options.processing_rate = 1000.0;
  options.quantum = 0.1;
  options.cost_model.noise_sigma = 0.0;
  sched::Rdbms db(&catalog, options);
  auto id = db.Submit(QuerySpec::TpcrPartPrice("part_1"));
  ASSERT_TRUE(id.ok());
  db.RunUntilIdle();
  const auto info = *db.info(*id);
  EXPECT_GT(info.pages_accessed, 0u);
  EXPECT_LE(info.buffer_hits, info.pages_accessed);
  // Repeated index descents make hits plentiful on a warm pool.
  EXPECT_GT(info.buffer_hits, info.pages_accessed / 2);
  // Uniform charges: pages accessed == completed work for page-only
  // operators (the correlated template charges no CPU-only work).
  EXPECT_DOUBLE_EQ(static_cast<double>(info.pages_accessed),
                   info.completed_work);
}

TEST(IoStatsTest, SyntheticQueriesHaveNone) {
  storage::Catalog catalog;
  sched::Rdbms db(&catalog, {});
  auto id = db.Submit(QuerySpec::Synthetic(100.0));
  ASSERT_TRUE(id.ok());
  db.RunUntilIdle();
  EXPECT_EQ(db.info(*id)->pages_accessed, 0u);
}

TEST(IoStatsTest, BufferAccountHitAccounting) {
  storage::BufferManager pool({.capacity_pages = 2});
  storage::BufferAccount account(&pool);
  account.Touch(storage::PageId{1, 0});  // miss
  account.Touch(storage::PageId{1, 0});  // hit
  account.Touch(storage::PageId{1, 1});  // miss
  account.Touch(storage::PageId{1, 2});  // miss, evicts 0
  account.Touch(storage::PageId{1, 0});  // miss again
  EXPECT_EQ(account.pages_accessed(), 5u);
  EXPECT_EQ(account.buffer_hits(), 1u);
  EXPECT_DOUBLE_EQ(account.hit_rate(), 0.2);
}

// ---- auto-track -----------------------------------------------------------------

TEST(AutoTrackTest, TracksSubmissionsAutomatically) {
  storage::Catalog catalog;
  sched::RdbmsOptions options;
  options.processing_rate = 100.0;
  options.quantum = 0.1;
  sched::Rdbms db(&catalog, options);
  pi::PiManager pis(&db, {.sample_interval = 0.5,
                          .single_speed_window = 0.5,
                          .auto_track = true});
  auto a = db.Submit(QuerySpec::Synthetic(200.0));
  auto b = db.Submit(QuerySpec::Synthetic(200.0));
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 15; ++i) {
    db.Step(options.quantum);
    pis.AfterStep();
  }
  // Both queries were tracked without explicit Track() calls.
  EXPECT_FALSE(pis.Trace(*a).empty());
  EXPECT_FALSE(pis.Trace(*b).empty());
  EXPECT_TRUE(pis.EstimateSingle(*a).ok());
  EXPECT_LT(*pis.EstimateSingle(*a), kInfiniteTime);
}

// ---- schedule serialization -------------------------------------------------------

TEST(ScheduleSerializationTest, RoundTrip) {
  std::vector<workload::ScheduledArrival> schedule{
      {1.5, 3}, {2.25, 1}, {10.0, 42}};
  const std::string csv = workload::SerializeSchedule(schedule);
  auto parsed = workload::ParseSchedule(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_DOUBLE_EQ((*parsed)[i].time, schedule[i].time);
    EXPECT_EQ((*parsed)[i].rank, schedule[i].rank);
  }
}

TEST(ScheduleSerializationTest, EmptySchedule) {
  auto parsed =
      workload::ParseSchedule(workload::SerializeSchedule({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(ScheduleSerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(workload::ParseSchedule("bogus\n1,2\n").ok());
  EXPECT_FALSE(workload::ParseSchedule("time,rank\nabc,2\n").ok());
  EXPECT_FALSE(workload::ParseSchedule("time,rank\n1.0\n").ok());
  EXPECT_FALSE(workload::ParseSchedule("time,rank\n1.0,0\n").ok());
  // Non-increasing times.
  EXPECT_FALSE(workload::ParseSchedule("time,rank\n2.0,1\n1.0,1\n").ok());
}

TEST(ScheduleSerializationTest, GeneratedScheduleRoundTrips) {
  storage::Catalog catalog;
  storage::TpcrGenerator generator(
      {.num_part_keys = 300, .matches_per_key = 4, .seed = 6});
  workload::ZipfWorkload zipf(&catalog, &generator,
                              {.max_rank = 6, .a = 2.0, .n_scale = 1});
  ASSERT_TRUE(zipf.MaterializeTables().ok());
  Rng rng(5);
  const auto schedule =
      workload::GeneratePoissonArrivals(zipf, 0.5, 100.0, &rng);
  auto parsed =
      workload::ParseSchedule(workload::SerializeSchedule(schedule));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_NEAR((*parsed)[i].time, schedule[i].time, 1e-4);
    EXPECT_EQ((*parsed)[i].rank, schedule[i].rank);
  }
}

}  // namespace
}  // namespace mqpi
