// Shard-plane tests: the global id space and FNV-1a routing, the
// coordinator's cached merge (sequence/count/rate sums, max sim_time,
// busy-gated quiescent ETA, globally sorted remapped rows) and its
// byte-stability under an idle fleet, global-id what-ifs with
// cross-shard rejection, the cross-shard WLM victim differential
// (greedy pick == brute-force per-shard EstimateWhatIf enumeration),
// the concurrent-drain regression (wall ~ max, not sum), the TSan
// stress run (session churn across 4 shards + a merged-snapshot
// reader + shard-scoped TCP subscribers), per-shard chaos soaks with
// independent seeds, sharded journal recovery, and a ResilientClient
// riding net.conn_drop against a sharded server.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/planner.h"
#include "fault/fault_injector.h"
#include "net/client.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "recover/durable_log.h"
#include "recover/recovery.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "service/sharded_service.h"
#include "storage/catalog.h"
#include "wlm/cross_shard.h"

namespace mqpi {
namespace {

using engine::QuerySpec;
using service::GlobalId;
using service::LocalIdOf;
using service::PiService;
using service::PiServiceOptions;
using service::ProgressSnapshot;
using service::QueryProgress;
using service::RouteHash;
using service::ShardedPiService;
using service::ShardedPiServiceOptions;
using service::ShardOfGlobalId;
using service::SnapshotPtr;

storage::Catalog* TestCatalog() {
  static storage::Catalog catalog;
  return &catalog;
}

PiServiceOptions ManualShardOptions() {
  PiServiceOptions options;
  options.rdbms.processing_rate = 100.0;
  options.rdbms.quantum = 0.1;
  options.rdbms.cost_model.noise_sigma = 0.0;
  options.start_ticker = false;
  return options;
}

ShardedPiServiceOptions ManualSharded(int num_shards) {
  ShardedPiServiceOptions options;
  options.num_shards = num_shards;
  options.shard = ManualShardOptions();
  return options;
}

ShardedPiServiceOptions TickingSharded(int num_shards) {
  ShardedPiServiceOptions options = ManualSharded(num_shards);
  options.shard.start_ticker = true;
  options.shard.time_scale = 0.0;  // flat out
  return options;
}

// Open sessions until every shard hosts at least one, routing by name
// exactly like a fleet of tenants would. Returns (session, shard)
// pairs; at most 64 * num_shards names are tried (the hash covers a
// small fleet long before that).
std::vector<std::pair<std::unique_ptr<service::Session>, int>>
CoverEveryShard(ShardedPiService* coordinator, const std::string& prefix) {
  std::vector<std::pair<std::unique_ptr<service::Session>, int>> sessions;
  std::vector<bool> covered(
      static_cast<std::size_t>(coordinator->num_shards()), false);
  int remaining = coordinator->num_shards();
  for (int i = 0; remaining > 0 && i < coordinator->num_shards() * 64; ++i) {
    const std::string name = prefix + std::to_string(i);
    const int shard = coordinator->Route(name);
    if (covered[static_cast<std::size_t>(shard)]) continue;
    covered[static_cast<std::size_t>(shard)] = true;
    --remaining;
    int opened_on = -1;
    auto session = coordinator->OpenSession(name, &opened_on);
    EXPECT_EQ(opened_on, shard);
    sessions.emplace_back(std::move(session), shard);
  }
  EXPECT_EQ(remaining, 0);
  return sessions;
}

// ---- global id space --------------------------------------------------------

TEST(GlobalIdTest, EncodingRoundTripsAndShardZeroIsIdentity) {
  for (int shard : {0, 1, 7, 255}) {
    for (std::uint64_t local : {std::uint64_t{0}, std::uint64_t{1},
                                std::uint64_t{12345},
                                service::kShardLocalMask}) {
      const std::uint64_t global = GlobalId(shard, local);
      EXPECT_EQ(ShardOfGlobalId(global), shard);
      EXPECT_EQ(LocalIdOf(global), local);
    }
  }
  // Shard 0 encodes to the identity: a single-shard deployment speaks
  // the exact unsharded id space.
  EXPECT_EQ(GlobalId(0, 42u), 42u);
  EXPECT_EQ(GlobalId(0, service::kShardLocalMask), service::kShardLocalMask);
}

// ---- routing ----------------------------------------------------------------

TEST(RoutingTest, RouteIsDeterministicStatelessAndMatchesTheHash) {
  ShardedPiService coordinator(TestCatalog(), ManualSharded(4));
  ShardedPiService other(TestCatalog(), ManualSharded(4));
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 256; ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    const int shard = coordinator.Route(name);
    EXPECT_EQ(shard, static_cast<int>(RouteHash(name) % 4));
    // Stateless: a second coordinator (a restarted process) places the
    // same tenant identically.
    EXPECT_EQ(other.Route(name), shard);
    ++hits[static_cast<std::size_t>(shard)];
  }
  // FNV-1a spreads a modest fleet across every shard.
  for (int shard = 0; shard < 4; ++shard) EXPECT_GT(hits[shard], 0);
}

// ---- merged global snapshot -------------------------------------------------

TEST(MergeTest, GlobalSnapshotSumsCountsRemapsIdsAndStaysSorted) {
  ShardedPiService coordinator(TestCatalog(), ManualSharded(4));
  auto sessions = CoverEveryShard(&coordinator, "merge-tenant-");
  for (auto& [session, shard] : sessions) {
    ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(200.0)).ok());
    ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(400.0)).ok());
  }
  // Distinct per-shard timelines: shard i advances i+1 quanta.
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(
        coordinator.shard_service(shard)->Advance(0.1 * (shard + 1)).ok());
  }

  const SnapshotPtr merged = coordinator.GlobalSnapshot();
  std::uint64_t sequence_sum = 0;
  SimTime max_sim_time = 0.0;
  int running_sum = 0;
  int queued_sum = 0;
  double rate_sum = 0.0;
  std::size_t rows_sum = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const SnapshotPtr snap = coordinator.shard_service(shard)->snapshot();
    sequence_sum += snap->sequence;
    max_sim_time = std::max(max_sim_time, snap->sim_time);
    running_sum += snap->num_running;
    queued_sum += snap->num_queued;
    rate_sum += snap->measured_rate;
    rows_sum += snap->queries.size();
  }
  EXPECT_EQ(merged->sequence, sequence_sum);
  EXPECT_DOUBLE_EQ(merged->sim_time, max_sim_time);
  EXPECT_EQ(merged->num_running, running_sum);
  EXPECT_EQ(merged->num_queued, queued_sum);
  EXPECT_DOUBLE_EQ(merged->measured_rate, rate_sum);
  ASSERT_EQ(merged->queries.size(), rows_sum);

  // Rows are globally sorted, remapped to global ids, and each row is
  // bit-for-bit its shard-local original.
  for (std::size_t i = 1; i < merged->queries.size(); ++i) {
    EXPECT_LT(merged->queries[i - 1].id, merged->queries[i].id);
  }
  for (const QueryProgress& row : merged->queries) {
    const int shard = ShardOfGlobalId(row.id);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    const SnapshotPtr snap = coordinator.shard_service(shard)->snapshot();
    const QueryProgress* local = snap->Find(LocalIdOf(row.id));
    ASSERT_NE(local, nullptr);
    EXPECT_EQ(ShardOfGlobalId(row.session_id), shard);
    EXPECT_EQ(LocalIdOf(row.session_id), local->session_id);
    EXPECT_DOUBLE_EQ(row.fraction_done, local->fraction_done);
    EXPECT_DOUBLE_EQ(row.remaining_cost, local->remaining_cost);
  }

  // Per-shard load gauges ride the merge, in shard order.
  ASSERT_EQ(merged->shard_loads.size(), 4u);
  for (int shard = 0; shard < 4; ++shard) {
    const service::ShardLoad& load =
        merged->shard_loads[static_cast<std::size_t>(shard)];
    const SnapshotPtr snap = coordinator.shard_service(shard)->snapshot();
    EXPECT_EQ(load.shard, shard);
    EXPECT_EQ(load.sequence, snap->sequence);
    EXPECT_EQ(load.num_running, snap->num_running);
    EXPECT_DOUBLE_EQ(load.sim_time, snap->sim_time);
  }

  // Coordinator instruments observed the work.
  EXPECT_EQ(coordinator.metrics()->gauge("coord.shards")->value(), 4.0);
  EXPECT_GE(coordinator.metrics()->counter("coord.merges")->value(), 1u);
}

TEST(MergeTest, IdleCoordinatorIsCachedAndByteStable) {
  ShardedPiService coordinator(TestCatalog(), ManualSharded(4));
  auto sessions = CoverEveryShard(&coordinator, "stable-tenant-");
  for (auto& [session, shard] : sessions) {
    ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(300.0)).ok());
  }
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(coordinator.shard_service(shard)->Advance(0.2).ok());
  }

  // No shard publishes between these calls: the cache must return the
  // identical pointer, and an uncached re-merge must wire-encode to
  // the identical bytes (the acceptance differential).
  const SnapshotPtr first = coordinator.GlobalSnapshot();
  const SnapshotPtr second = coordinator.GlobalSnapshot();
  EXPECT_EQ(first.get(), second.get());
  const std::uint64_t merges_before =
      coordinator.metrics()->counter("coord.merges")->value();
  EXPECT_EQ(recover::EncodeSnapshotBytes(coordinator.MergeNow()),
            recover::EncodeSnapshotBytes(first));
  EXPECT_EQ(recover::EncodeSnapshotBytes(coordinator.MergeNow()),
            recover::EncodeSnapshotBytes(first));

  // A single shard publish invalidates the cache: exactly one addend
  // bumps by one.
  coordinator.shard_service(2)->PublishNow();
  const SnapshotPtr third = coordinator.GlobalSnapshot();
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(third->sequence, first->sequence + 1);
  EXPECT_GT(coordinator.metrics()->counter("coord.merges")->value(),
            merges_before);
}

TEST(MergeTest, QuiescentEtaIsBusyGated) {
  ShardedPiService coordinator(TestCatalog(), ManualSharded(3));
  // A wholly idle fleet is quiescent now, even though every shard's
  // construction snapshot still carries the kUnknown sentinel.
  EXPECT_DOUBLE_EQ(coordinator.GlobalSnapshot()->quiescent_eta, 0.0);

  // Exactly one busy shard: the merged ETA is that shard's absolute
  // quiesce time re-expressed against the merged (max) sim_time.
  auto sessions = CoverEveryShard(&coordinator, "eta-tenant-");
  auto& [busy_session, busy_shard] = sessions.front();
  ASSERT_TRUE(busy_session->Submit(QuerySpec::Synthetic(500.0)).ok());
  for (int shard = 0; shard < 3; ++shard) {
    // Idle shards advance further than the busy one, so the merged
    // sim_time exceeds the busy shard's and the re-expression matters.
    const double dt = shard == busy_shard ? 0.2 : 0.5;
    ASSERT_TRUE(coordinator.shard_service(shard)->Advance(dt).ok());
  }
  const SnapshotPtr busy_snap =
      coordinator.shard_service(busy_shard)->snapshot();
  ASSERT_GT(busy_snap->num_running + busy_snap->num_queued, 0);
  const SnapshotPtr merged = coordinator.GlobalSnapshot();
  if (busy_snap->quiescent_eta < 0.0) {
    EXPECT_EQ(merged->quiescent_eta, kUnknown);
  } else if (std::isinf(busy_snap->quiescent_eta)) {
    EXPECT_GE(merged->quiescent_eta, kInfiniteTime);
  } else {
    const SimTime expected = std::max(
        0.0,
        busy_snap->sim_time + busy_snap->quiescent_eta - merged->sim_time);
    EXPECT_DOUBLE_EQ(merged->quiescent_eta, expected);
  }
}

// ---- global-id what-ifs -----------------------------------------------------

TEST(WhatIfTest, GlobalIdsRouteToTheirShardAndCrossShardIsRejected) {
  ShardedPiService coordinator(TestCatalog(), ManualSharded(4));
  auto sessions = CoverEveryShard(&coordinator, "whatif-tenant-");
  ASSERT_GE(sessions.size(), 2u);
  auto& [session_a, shard_a] = sessions[0];
  auto& [session_b, shard_b] = sessions[1];
  auto target = session_a->Submit(QuerySpec::Synthetic(400.0));
  auto rival = session_a->Submit(QuerySpec::Synthetic(400.0));
  auto foreign = session_b->Submit(QuerySpec::Synthetic(400.0));
  ASSERT_TRUE(target.ok() && rival.ok() && foreign.ok());
  for (int shard = 0; shard < 4; ++shard) {
    ASSERT_TRUE(coordinator.shard_service(shard)->Advance(0.5).ok());
  }

  // Global routing agrees with asking the shard directly in local ids.
  pi::MultiQueryPi::WhatIf global_scenario;
  global_scenario.blocked.push_back(GlobalId(shard_a, *rival));
  auto via_coordinator = coordinator.EstimateWhatIf(
      global_scenario, GlobalId(shard_a, *target));
  pi::MultiQueryPi::WhatIf local_scenario;
  local_scenario.blocked.push_back(*rival);
  auto via_shard = coordinator.shard_service(shard_a)->EstimateWhatIf(
      local_scenario, *target);
  ASSERT_TRUE(via_coordinator.ok()) << via_coordinator.status().ToString();
  ASSERT_TRUE(via_shard.ok());
  EXPECT_DOUBLE_EQ(*via_coordinator, *via_shard);

  // A scenario spanning two engines has no single forecast: rejected.
  pi::MultiQueryPi::WhatIf crossed;
  crossed.blocked.push_back(GlobalId(shard_b, *foreign));
  auto rejected =
      coordinator.EstimateWhatIf(crossed, GlobalId(shard_a, *target));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // As does a target naming a shard the fleet does not have.
  auto missing = coordinator.EstimateWhatIf({}, GlobalId(9, *target));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

// ---- cross-shard WLM differential -------------------------------------------

// Independently re-derives the greedy pick: per shard, the bottleneck
// target is the running query with the largest finite eta_multi
// (largest remaining cost when none is finite), every other running
// query is a candidate, benefit = baseline - EstimateWhatIf({blocked:
// victim}), and the fleet-wide winner is the argmax with the selector's
// deterministic (shard, victim) tiebreak.
TEST(CrossShardWlmTest, BestVictimMatchesBruteForcePerShardEnumeration) {
  ShardedPiService coordinator(TestCatalog(), ManualSharded(3));
  auto sessions = CoverEveryShard(&coordinator, "wlm-tenant-");
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    auto& [session, shard] = sessions[s];
    // Uneven loads so shards disagree about the best trade.
    for (int i = 0; i < 3 + static_cast<int>(s); ++i) {
      ASSERT_TRUE(
          session
              ->Submit(QuerySpec::Synthetic(300.0 + 150.0 * i),
                       i % 2 == 0 ? Priority::kNormal : Priority::kHigh)
              .ok());
    }
  }
  for (int shard = 0; shard < 3; ++shard) {
    ASSERT_TRUE(coordinator.shard_service(shard)->Advance(0.5).ok());
  }

  struct Candidate {
    int shard = -1;
    QueryId victim = kInvalidQueryId;
    QueryId target = kInvalidQueryId;
    SimTime benefit = 0.0;
  };
  Candidate best;
  bool have_best = false;
  int enumerated = 0;
  for (int shard = 0; shard < 3; ++shard) {
    PiService* svc = coordinator.shard_service(shard);
    const SnapshotPtr snap = svc->snapshot();
    const QueryProgress* target = nullptr;
    bool target_finite = false;
    for (const QueryProgress& q : snap->queries) {
      if (q.state != sched::QueryState::kRunning) continue;
      const bool finite = q.eta_multi >= 0.0 && std::isfinite(q.eta_multi);
      if (target == nullptr || (finite && !target_finite) ||
          (finite == target_finite &&
           (finite ? q.eta_multi > target->eta_multi
                   : q.remaining_cost > target->remaining_cost))) {
        target = &q;
        target_finite = finite;
      }
    }
    if (target == nullptr) continue;
    auto baseline = svc->EstimateWhatIf({}, target->id);
    if (!baseline.ok()) continue;
    for (const QueryProgress& q : snap->queries) {
      if (q.state != sched::QueryState::kRunning || q.id == target->id) {
        continue;
      }
      pi::MultiQueryPi::WhatIf scenario;
      scenario.blocked.push_back(q.id);
      auto hypothetical = svc->EstimateWhatIf(scenario, target->id);
      if (!hypothetical.ok()) continue;
      ++enumerated;
      Candidate cand{shard, q.id, target->id, *baseline - *hypothetical};
      const bool wins =
          !have_best || cand.benefit > best.benefit ||
          (cand.benefit == best.benefit &&
           (cand.shard < best.shard ||
            (cand.shard == best.shard && cand.victim < best.victim)));
      if (wins) {
        best = cand;
        have_best = true;
      }
    }
  }
  ASSERT_TRUE(have_best);
  ASSERT_GT(best.benefit, 0.0);

  wlm::CrossShardSpeedup selector(&coordinator);
  auto picked = selector.BestVictim();
  ASSERT_TRUE(picked.ok()) << picked.status().ToString();
  EXPECT_EQ(picked->shard, best.shard);
  EXPECT_EQ(picked->victim, best.victim);
  EXPECT_EQ(picked->target, best.target);
  EXPECT_DOUBLE_EQ(picked->benefit, best.benefit);
  EXPECT_EQ(picked->global_victim, GlobalId(best.shard, best.victim));
  EXPECT_EQ(picked->global_target, GlobalId(best.shard, best.target));

  // Multi-pick under an unconstrained budget: decreasing benefits,
  // exact accounting, and the brute-force winner leads.
  wlm::CrossShardOptions options;
  options.max_victims = 3;
  auto choice = selector.ChooseVictims(options);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->candidates, enumerated);
  ASSERT_FALSE(choice->victims.empty());
  EXPECT_EQ(choice->victims.front().victim, best.victim);
  SimTime total = 0.0;
  for (std::size_t i = 0; i < choice->victims.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(choice->victims[i].benefit, choice->victims[i - 1].benefit);
    }
    total += choice->victims[i].benefit;
  }
  EXPECT_DOUBLE_EQ(choice->total_benefit, total);

  // A budget below the best pick's rate share forces a cheaper pick
  // (or a clean error) — never an over-budget selection.
  wlm::CrossShardOptions tight;
  tight.max_victims = 3;
  tight.rate_budget = picked->rate_share * 0.5;
  auto constrained = selector.ChooseVictims(tight);
  if (constrained.ok()) {
    EXPECT_LE(constrained->rate_spent, tight.rate_budget);
    for (const auto& victim : constrained->victims) {
      EXPECT_NE(victim.global_victim, picked->global_victim);
    }
  } else {
    EXPECT_EQ(constrained.status().code(), StatusCode::kFailedPrecondition);
  }
}

// ---- concurrent drain -------------------------------------------------------

TEST(DrainTest, ShardDrainsRunConcurrentlySoWallIsMaxNotSum) {
  ShardedPiService coordinator(TestCatalog(), TickingSharded(4));
  std::atomic<int> flushes{0};
  std::atomic<int> goodbyes{0};
  ShardedPiService::DrainHooks hooks;
  hooks.flush = [&flushes](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    flushes.fetch_add(1);
  };
  hooks.goodbye = [&goodbyes] { goodbyes.fetch_add(1); };

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(coordinator.Drain(hooks).ok());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(flushes.load(), 4);
  EXPECT_EQ(goodbyes.load(), 1);
  EXPECT_TRUE(coordinator.draining());
  // Serial drains would sleep 4 x 150 ms = 600 ms; concurrent ones
  // sleep ~150 ms. The 450 ms ceiling leaves 3 shards' worth of slack
  // for scheduling noise while still refuting the serial shape.
  EXPECT_GE(wall, 0.15);
  EXPECT_LT(wall, 0.45);

  // Admissions are closed fleet-wide...
  auto session = coordinator.OpenSession("late-tenant");
  auto rejected = session->Submit(QuerySpec::Synthetic(10.0));
  EXPECT_FALSE(rejected.ok());
  // ...and a second coordinated drain is refused.
  EXPECT_EQ(coordinator.Drain().code(), StatusCode::kFailedPrecondition);
}

// ---- sharded server: stats, scoped subscribe, id translation ---------------

TEST(ShardServerTest, StatsCarriesShardRowsAndSubscribeScopesAreEnforced) {
  ShardedPiService coordinator(TestCatalog(), TickingSharded(4));
  net::PiServer server(&coordinator);
  ASSERT_TRUE(server.Start().ok());

  auto connected = net::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  auto client = std::move(connected).value();

  // STATS: one row per shard, in shard order (pi_top's footer).
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->shards.size(), 4u);
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(stats->shards[static_cast<std::size_t>(shard)].shard, shard);
  }

  // Submit over the wire: the reply id is globally encoded, readable
  // back through the same connection, and a same-local-id probe aimed
  // at a different shard is NotFound, not someone else's query.
  auto id = client->SubmitSynthetic(500.0);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const int home = ShardOfGlobalId(*id);
  ASSERT_LT(home, 4);
  coordinator.shard_service(home)->PublishNow();
  auto progress = client->Progress(*id);
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress->row.id, *id);
  const std::uint64_t foreign = GlobalId((home + 1) % 4, LocalIdOf(*id));
  EXPECT_FALSE(client->Progress(foreign).ok());
  EXPECT_TRUE(client->Ping().ok());  // the error did not cost the conn

  // Subscribe scoping: out of range is an error that keeps the
  // connection; shard and merged scopes both stream.
  EXPECT_FALSE(client->Subscribe(7).ok());
  EXPECT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Subscribe(home).ok());
  auto shard_sequence = client->WaitForSequence(1, 5.0);
  EXPECT_TRUE(shard_sequence.ok()) << shard_sequence.status().ToString();
  // Re-scope to the merged view: the next push is a SNAPSHOT_FULL of
  // the global snapshot. Pump until it lands (WaitForSequence cannot
  // tell shard-local from merged sequence numbering).
  const std::uint64_t fulls_before = client->view().fulls_applied();
  ASSERT_TRUE(client->Subscribe(-1).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (client->view().fulls_applied() == fulls_before &&
         std::chrono::steady_clock::now() < deadline) {
    auto pumped = client->PumpOne(0.2);
    ASSERT_TRUE(pumped.ok()) << pumped.status().ToString();
  }
  ASSERT_GT(client->view().fulls_applied(), fulls_before);
  // Merged frames carry the per-shard load gauges.
  EXPECT_EQ(client->view().shard_loads().size(), 4u);

  client.reset();
  server.Stop();
}

// ---- TSan stress ------------------------------------------------------------

TEST(ShardStressTest, ChurnAcrossShardsWithMergedAndShardScopedReaders) {
  ShardedPiService coordinator(TestCatalog(), TickingSharded(4));
  net::PiServer server(&coordinator);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Tenants churn: open, submit, close, across every shard.
  std::vector<std::thread> churners;
  for (int t = 0; t < 2; ++t) {
    churners.emplace_back([&, t] {
      for (int round = 0; round < 40 && !stop.load(); ++round) {
        auto session = coordinator.OpenSession(
            "churn-" + std::to_string(t) + "-" + std::to_string(round));
        for (int i = 0; i < 3; ++i) {
          if (!session->Submit(QuerySpec::Synthetic(50.0 + 10.0 * i)).ok()) {
            failures.fetch_add(1);
          }
        }
        session->Close();
      }
    });
  }

  // A merged reader hammers the coordinator's cache while shards
  // publish underneath it; sequence must never move backwards.
  std::thread merged_reader([&] {
    std::uint64_t last = 0;
    while (!stop.load()) {
      const SnapshotPtr merged = coordinator.GlobalSnapshot();
      if (merged->sequence < last) failures.fetch_add(1);
      last = merged->sequence;
    }
  });

  // Two shard-scoped TCP subscribers ride their shards' own streams.
  std::vector<std::thread> subscribers;
  for (int shard : {0, 1}) {
    subscribers.emplace_back([&, shard] {
      auto client = net::Client::Connect("127.0.0.1", server.port());
      if (!client.ok() || !(*client)->Subscribe(shard).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::uint64_t want = 1;
      while (!stop.load()) {
        auto sequence = (*client)->WaitForSequence(want, 0.2);
        if (sequence.ok()) want = *sequence + 1;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  stop.store(true);
  for (auto& t : churners) t.join();
  merged_reader.join();
  for (auto& t : subscribers) t.join();
  EXPECT_EQ(failures.load(), 0);

  server.Stop();
  coordinator.Stop();
}

// ---- per-shard chaos soak ---------------------------------------------------

TEST(ShardChaosTest, IndependentPerShardRegimesNeverPoisonTheMerge) {
  constexpr int kShards = 4;
  // One injector per shard, independently seeded: shard i's fault
  // stream is what it would be alone, so a chaos storm on one shard
  // proves isolation rather than synchronized failure.
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  for (int shard = 0; shard < kShards; ++shard) {
    injectors.push_back(std::make_unique<fault::FaultInjector>(
        0xD1CEu + static_cast<std::uint64_t>(shard) * 0x9E37u));
    auto* injector = injectors.back().get();
    injector->ArmProbability(fault::kSchedRateCollapse, 0.2, 0.4);
    injector->ArmProbability(fault::kSchedQuantumStall, 0.1);
    injector->ArmProbability(fault::kSchedSpuriousAbort, 0.05);
    injector->ArmProbability(fault::kPiCacheInvalidate, 0.2);
    injector->ArmProbability(fault::kPiWindowCorrupt, 0.1, -5.0);
    injector->ArmProbability(fault::kServicePublishDelay, 0.2);
  }
  ShardedPiServiceOptions options = ManualSharded(kShards);
  options.per_shard = [&injectors](int shard, PiServiceOptions* opts) {
    opts->fault = injectors[static_cast<std::size_t>(shard)].get();
  };
  ShardedPiService coordinator(TestCatalog(), options);

  auto sessions = CoverEveryShard(&coordinator, "chaos-tenant-");
  for (auto& [session, shard] : sessions) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          session->Submit(QuerySpec::Synthetic(150.0 + 50.0 * i)).ok());
    }
  }
  for (int round = 0; round < 30; ++round) {
    for (int shard = 0; shard < kShards; ++shard) {
      ASSERT_TRUE(coordinator.shard_service(shard)->Advance(0.1).ok());
    }
    const SnapshotPtr merged = coordinator.GlobalSnapshot();
    for (std::size_t i = 0; i < merged->queries.size(); ++i) {
      const QueryProgress& row = merged->queries[i];
      EXPECT_FALSE(std::isnan(row.fraction_done));
      EXPECT_FALSE(std::isnan(row.eta_multi));
      if (i > 0) EXPECT_LT(merged->queries[i - 1].id, row.id);
    }
  }
  for (const auto& injector : injectors) {
    EXPECT_GT(injector->total_fires(), 0u);
  }
}

// ---- sharded recovery -------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/mqpi_shard_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path_ + "'";
    (void)::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ShardRecoveryTest, PerShardJournalsRecoverByteIdentically) {
  constexpr int kShards = 4;
  TempDir root;
  std::vector<std::string> pre_images(kShards);

  {
    // Phase 1: a journaled sharded lifetime, ending in a "crash"
    // (sinks detached before teardown so nothing after the probe is
    // journaled).
    std::vector<std::unique_ptr<recover::DurableLog>> logs;
    for (int shard = 0; shard < kShards; ++shard) {
      logs.push_back(std::make_unique<recover::DurableLog>());
      ASSERT_TRUE(
          logs.back()
              ->Open(recover::ShardJournalDir(root.path(), shard), {})
              .ok());
    }
    ShardedPiServiceOptions options = ManualSharded(kShards);
    options.per_shard = [&logs](int shard, PiServiceOptions* opts) {
      opts->event_sink = logs[static_cast<std::size_t>(shard)].get();
    };
    ShardedPiService coordinator(TestCatalog(), options);

    auto sessions = CoverEveryShard(&coordinator, "recover-tenant-");
    for (auto& [session, shard] : sessions) {
      ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(120.0)).ok());
      ASSERT_TRUE(
          session->SubmitAt(0.4, QuerySpec::Synthetic(80.0)).ok());
    }
    for (int round = 0; round < 3; ++round) {
      for (int shard = 0; shard < kShards; ++shard) {
        ASSERT_TRUE(coordinator.shard_service(shard)->Advance(0.2).ok());
      }
    }
    for (int shard = 0; shard < kShards; ++shard) {
      ASSERT_TRUE(recover::Checkpoint(coordinator.shard_service(shard),
                                      logs[static_cast<std::size_t>(shard)]
                                          .get())
                      .ok());
    }
    // Post-checkpoint activity so replay continues past the cut.
    for (auto& [session, shard] : sessions) {
      ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(60.0)).ok());
    }
    for (int shard = 0; shard < kShards; ++shard) {
      ASSERT_TRUE(coordinator.shard_service(shard)->Advance(0.2).ok());
      pre_images[static_cast<std::size_t>(shard)] =
          recover::EncodeSnapshotBytes(coordinator.shard_service(shard)
                                           ->BuildUnpublishedSnapshot());
      ASSERT_TRUE(logs[static_cast<std::size_t>(shard)]->Sync().ok());
      coordinator.shard_service(shard)->SetEventSink(nullptr);
    }
    for (auto& [session, shard] : sessions) session->Close();
  }

  // Phase 2: recover every shard from its own journal directory.
  auto recovered = recover::RecoverSharded(TestCatalog(), root.path(),
                                           kShards, ManualShardOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered->events_replayed, 0u);
  EXPECT_TRUE(recovered->all_verified);
  ASSERT_EQ(recovered->shards.size(), static_cast<std::size_t>(kShards));
  for (int shard = 0; shard < kShards; ++shard) {
    auto& per_shard = recovered->shards[static_cast<std::size_t>(shard)];
    EXPECT_TRUE(per_shard.had_checkpoint);
    EXPECT_TRUE(per_shard.verified);
    EXPECT_EQ(recover::EncodeSnapshotBytes(
                  per_shard.service->BuildUnpublishedSnapshot()),
              pre_images[static_cast<std::size_t>(shard)]);
  }
  // The adopting coordinator fronts the recovered fleet: the merged
  // sequence is the sum of the replayed shard sequences, and routing
  // still places the journaled tenants where their journals live.
  std::uint64_t sequence_sum = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    sequence_sum += recovered->coordinator->shard_service(shard)
                        ->snapshot()
                        ->sequence;
  }
  EXPECT_EQ(recovered->coordinator->GlobalSnapshot()->sequence, sequence_sum);
}

// ---- resilience under conn drops --------------------------------------------

TEST(ShardResilienceTest, ResilientClientsRideConnDropsOnAShardedServer) {
  fault::FaultInjector injector(0x5AAD5u);
  injector.ArmProbability(fault::kNetConnDrop, 0.25);

  ShardedPiService coordinator(TestCatalog(), TickingSharded(4));
  net::PiServerOptions server_options;
  server_options.fault = &injector;
  net::PiServer server(&coordinator, server_options);
  ASSERT_TRUE(server.Start().ok());

  // Long-running load on every shard keeps all streams moving.
  auto sessions = CoverEveryShard(&coordinator, "drop-tenant-");
  for (auto& [session, shard] : sessions) {
    ASSERT_TRUE(session->Submit(QuerySpec::Synthetic(1e9)).ok());
  }

  net::ResilientClient::Options client_options;
  client_options.backoff_initial_s = 0.01;
  client_options.backoff_max_s = 0.1;
  // One merged subscriber, one pinned to shard 0: the scope must be
  // re-applied on every reconnect the drops force.
  net::ResilientClient merged("127.0.0.1", server.port(), client_options);
  client_options.subscribe_shard = 0;
  client_options.seed = 0xFEEDu;
  net::ResilientClient scoped("127.0.0.1", server.port(), client_options);

  EXPECT_TRUE(merged.WaitForSequence(40, 20.0));
  EXPECT_TRUE(scoped.WaitForSequence(10, 20.0));
  // Keep the streams running until the chaos actually bites, then
  // prove both mirrors still advance past it (the healing path).
  const auto chaos_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (injector.total_fires() == 0 &&
         std::chrono::steady_clock::now() < chaos_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(injector.total_fires(), 0u);
  const std::uint64_t merged_seq = merged.sequence();
  const std::uint64_t scoped_seq = scoped.sequence();
  EXPECT_TRUE(merged.WaitForSequence(merged_seq + 20, 20.0));
  EXPECT_TRUE(scoped.WaitForSequence(scoped_seq + 5, 20.0));
  // The merged mirror carries the fleet shape end to end.
  EXPECT_EQ(merged.View().shard_loads().size(), 4u);

  merged.Stop();
  scoped.Stop();
  injector.DisarmAll();
  for (auto& [session, shard] : sessions) session->Close();
  server.Stop();
  coordinator.Stop();
}

}  // namespace
}  // namespace mqpi
