file(REMOVE_RECURSE
  "CMakeFiles/live_dashboard.dir/live_dashboard.cpp.o"
  "CMakeFiles/live_dashboard.dir/live_dashboard.cpp.o.d"
  "live_dashboard"
  "live_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
