# Empty compiler generated dependencies file for live_dashboard.
# This may be replaced when dependencies are built.
