# Empty dependencies file for maintenance_planner.
# This may be replaced when dependencies are built.
