file(REMOVE_RECURSE
  "CMakeFiles/maintenance_planner.dir/maintenance_planner.cpp.o"
  "CMakeFiles/maintenance_planner.dir/maintenance_planner.cpp.o.d"
  "maintenance_planner"
  "maintenance_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
