file(REMOVE_RECURSE
  "CMakeFiles/mqpi_shell.dir/mqpi_shell.cpp.o"
  "CMakeFiles/mqpi_shell.dir/mqpi_shell.cpp.o.d"
  "mqpi_shell"
  "mqpi_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
