# Empty compiler generated dependencies file for mqpi_shell.
# This may be replaced when dependencies are built.
