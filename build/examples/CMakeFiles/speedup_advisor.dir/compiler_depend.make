# Empty compiler generated dependencies file for speedup_advisor.
# This may be replaced when dependencies are built.
