file(REMOVE_RECURSE
  "CMakeFiles/speedup_advisor.dir/speedup_advisor.cpp.o"
  "CMakeFiles/speedup_advisor.dir/speedup_advisor.cpp.o.d"
  "speedup_advisor"
  "speedup_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
