file(REMOVE_RECURSE
  "CMakeFiles/sim_workload_test.dir/sim_workload_test.cc.o"
  "CMakeFiles/sim_workload_test.dir/sim_workload_test.cc.o.d"
  "sim_workload_test"
  "sim_workload_test.pdb"
  "sim_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
