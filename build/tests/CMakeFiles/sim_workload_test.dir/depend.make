# Empty dependencies file for sim_workload_test.
# This may be replaced when dependencies are built.
