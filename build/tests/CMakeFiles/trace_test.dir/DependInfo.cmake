
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wlm/CMakeFiles/mqpi_wlm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mqpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pi/CMakeFiles/mqpi_pi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mqpi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mqpi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mqpi_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqpi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
