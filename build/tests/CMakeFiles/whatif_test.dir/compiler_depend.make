# Empty compiler generated dependencies file for whatif_test.
# This may be replaced when dependencies are built.
