# Empty dependencies file for sched_test.
# This may be replaced when dependencies are built.
