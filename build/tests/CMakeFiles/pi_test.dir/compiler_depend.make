# Empty compiler generated dependencies file for pi_test.
# This may be replaced when dependencies are built.
