file(REMOVE_RECURSE
  "CMakeFiles/pi_test.dir/pi_test.cc.o"
  "CMakeFiles/pi_test.dir/pi_test.cc.o.d"
  "pi_test"
  "pi_test.pdb"
  "pi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
