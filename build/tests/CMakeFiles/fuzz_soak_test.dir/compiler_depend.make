# Empty compiler generated dependencies file for fuzz_soak_test.
# This may be replaced when dependencies are built.
