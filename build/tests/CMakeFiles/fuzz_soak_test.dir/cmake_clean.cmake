file(REMOVE_RECURSE
  "CMakeFiles/fuzz_soak_test.dir/fuzz_soak_test.cc.o"
  "CMakeFiles/fuzz_soak_test.dir/fuzz_soak_test.cc.o.d"
  "fuzz_soak_test"
  "fuzz_soak_test.pdb"
  "fuzz_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
