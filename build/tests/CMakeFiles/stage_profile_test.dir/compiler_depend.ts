# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stage_profile_test.
