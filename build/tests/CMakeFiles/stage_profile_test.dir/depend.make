# Empty dependencies file for stage_profile_test.
# This may be replaced when dependencies are built.
