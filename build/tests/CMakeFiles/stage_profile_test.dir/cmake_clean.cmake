file(REMOVE_RECURSE
  "CMakeFiles/stage_profile_test.dir/stage_profile_test.cc.o"
  "CMakeFiles/stage_profile_test.dir/stage_profile_test.cc.o.d"
  "stage_profile_test"
  "stage_profile_test.pdb"
  "stage_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
