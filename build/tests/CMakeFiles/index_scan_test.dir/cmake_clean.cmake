file(REMOVE_RECURSE
  "CMakeFiles/index_scan_test.dir/index_scan_test.cc.o"
  "CMakeFiles/index_scan_test.dir/index_scan_test.cc.o.d"
  "index_scan_test"
  "index_scan_test.pdb"
  "index_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
