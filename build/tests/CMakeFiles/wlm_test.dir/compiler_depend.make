# Empty compiler generated dependencies file for wlm_test.
# This may be replaced when dependencies are built.
