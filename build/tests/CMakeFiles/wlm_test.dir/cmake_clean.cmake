file(REMOVE_RECURSE
  "CMakeFiles/wlm_test.dir/wlm_test.cc.o"
  "CMakeFiles/wlm_test.dir/wlm_test.cc.o.d"
  "wlm_test"
  "wlm_test.pdb"
  "wlm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
