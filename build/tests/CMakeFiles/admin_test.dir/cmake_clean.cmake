file(REMOVE_RECURSE
  "CMakeFiles/admin_test.dir/admin_test.cc.o"
  "CMakeFiles/admin_test.dir/admin_test.cc.o.d"
  "admin_test"
  "admin_test.pdb"
  "admin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
