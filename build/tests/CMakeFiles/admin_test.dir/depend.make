# Empty dependencies file for admin_test.
# This may be replaced when dependencies are built.
