# Empty dependencies file for engine_ext_test.
# This may be replaced when dependencies are built.
