file(REMOVE_RECURSE
  "CMakeFiles/engine_ext_test.dir/engine_ext_test.cc.o"
  "CMakeFiles/engine_ext_test.dir/engine_ext_test.cc.o.d"
  "engine_ext_test"
  "engine_ext_test.pdb"
  "engine_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
