# Empty dependencies file for features_test.
# This may be replaced when dependencies are built.
