file(REMOVE_RECURSE
  "CMakeFiles/wlm_ext_test.dir/wlm_ext_test.cc.o"
  "CMakeFiles/wlm_ext_test.dir/wlm_ext_test.cc.o.d"
  "wlm_ext_test"
  "wlm_ext_test.pdb"
  "wlm_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wlm_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
