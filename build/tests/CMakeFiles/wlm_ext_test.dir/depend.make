# Empty dependencies file for wlm_ext_test.
# This may be replaced when dependencies are built.
