file(REMOVE_RECURSE
  "CMakeFiles/topn_test.dir/topn_test.cc.o"
  "CMakeFiles/topn_test.dir/topn_test.cc.o.d"
  "topn_test"
  "topn_test.pdb"
  "topn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
