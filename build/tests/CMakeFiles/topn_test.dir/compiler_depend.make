# Empty compiler generated dependencies file for topn_test.
# This may be replaced when dependencies are built.
