# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/stage_profile_test[1]_include.cmake")
include("/root/repo/build/tests/pi_test[1]_include.cmake")
include("/root/repo/build/tests/wlm_test[1]_include.cmake")
include("/root/repo/build/tests/sim_workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/engine_ext_test[1]_include.cmake")
include("/root/repo/build/tests/wlm_ext_test[1]_include.cmake")
include("/root/repo/build/tests/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/groupby_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_test[1]_include.cmake")
include("/root/repo/build/tests/index_scan_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/topn_test[1]_include.cmake")
include("/root/repo/build/tests/admin_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_soak_test[1]_include.cmake")
