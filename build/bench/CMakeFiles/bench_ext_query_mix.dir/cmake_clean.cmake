file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_query_mix.dir/bench_ext_query_mix.cc.o"
  "CMakeFiles/bench_ext_query_mix.dir/bench_ext_query_mix.cc.o.d"
  "bench_ext_query_mix"
  "bench_ext_query_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_query_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
