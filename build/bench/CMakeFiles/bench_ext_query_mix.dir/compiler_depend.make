# Empty compiler generated dependencies file for bench_ext_query_mix.
# This may be replaced when dependencies are built.
