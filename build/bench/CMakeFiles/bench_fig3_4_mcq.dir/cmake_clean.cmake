file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_4_mcq.dir/bench_fig3_4_mcq.cc.o"
  "CMakeFiles/bench_fig3_4_mcq.dir/bench_fig3_4_mcq.cc.o.d"
  "bench_fig3_4_mcq"
  "bench_fig3_4_mcq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_4_mcq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
