file(REMOVE_RECURSE
  "CMakeFiles/bench_wlm_speedup.dir/bench_wlm_speedup.cc.o"
  "CMakeFiles/bench_wlm_speedup.dir/bench_wlm_speedup.cc.o.d"
  "bench_wlm_speedup"
  "bench_wlm_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wlm_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
