# Empty dependencies file for bench_wlm_speedup.
# This may be replaced when dependencies are built.
