file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive_wlm.dir/bench_ext_adaptive_wlm.cc.o"
  "CMakeFiles/bench_ext_adaptive_wlm.dir/bench_ext_adaptive_wlm.cc.o.d"
  "bench_ext_adaptive_wlm"
  "bench_ext_adaptive_wlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
