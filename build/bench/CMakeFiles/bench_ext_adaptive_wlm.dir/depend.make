# Empty dependencies file for bench_ext_adaptive_wlm.
# This may be replaced when dependencies are built.
