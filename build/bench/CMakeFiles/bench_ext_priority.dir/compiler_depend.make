# Empty compiler generated dependencies file for bench_ext_priority.
# This may be replaced when dependencies are built.
