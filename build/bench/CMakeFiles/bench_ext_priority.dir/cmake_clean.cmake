file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_priority.dir/bench_ext_priority.cc.o"
  "CMakeFiles/bench_ext_priority.dir/bench_ext_priority.cc.o.d"
  "bench_ext_priority"
  "bench_ext_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
