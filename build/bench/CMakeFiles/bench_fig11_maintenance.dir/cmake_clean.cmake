file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_maintenance.dir/bench_fig11_maintenance.cc.o"
  "CMakeFiles/bench_fig11_maintenance.dir/bench_fig11_maintenance.cc.o.d"
  "bench_fig11_maintenance"
  "bench_fig11_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
