# Empty dependencies file for bench_fig11_maintenance.
# This may be replaced when dependencies are built.
