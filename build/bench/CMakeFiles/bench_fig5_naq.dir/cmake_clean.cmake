file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_naq.dir/bench_fig5_naq.cc.o"
  "CMakeFiles/bench_fig5_naq.dir/bench_fig5_naq.cc.o.d"
  "bench_fig5_naq"
  "bench_fig5_naq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_naq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
