# Empty dependencies file for bench_perf_algorithms.
# This may be replaced when dependencies are built.
