file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_assumptions.dir/bench_ablation_assumptions.cc.o"
  "CMakeFiles/bench_ablation_assumptions.dir/bench_ablation_assumptions.cc.o.d"
  "bench_ablation_assumptions"
  "bench_ablation_assumptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
