# Empty dependencies file for bench_ablation_assumptions.
# This may be replaced when dependencies are built.
