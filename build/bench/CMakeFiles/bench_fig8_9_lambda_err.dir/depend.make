# Empty dependencies file for bench_fig8_9_lambda_err.
# This may be replaced when dependencies are built.
