file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_lambda_err.dir/bench_fig8_9_lambda_err.cc.o"
  "CMakeFiles/bench_fig8_9_lambda_err.dir/bench_fig8_9_lambda_err.cc.o.d"
  "bench_fig8_9_lambda_err"
  "bench_fig8_9_lambda_err.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_lambda_err.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
