file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_scq.dir/bench_fig6_7_scq.cc.o"
  "CMakeFiles/bench_fig6_7_scq.dir/bench_fig6_7_scq.cc.o.d"
  "bench_fig6_7_scq"
  "bench_fig6_7_scq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_scq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
