# Empty compiler generated dependencies file for bench_fig6_7_scq.
# This may be replaced when dependencies are built.
