file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_2_stages.dir/bench_fig1_2_stages.cc.o"
  "CMakeFiles/bench_fig1_2_stages.dir/bench_fig1_2_stages.cc.o.d"
  "bench_fig1_2_stages"
  "bench_fig1_2_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_2_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
