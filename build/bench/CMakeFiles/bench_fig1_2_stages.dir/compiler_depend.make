# Empty compiler generated dependencies file for bench_fig1_2_stages.
# This may be replaced when dependencies are built.
