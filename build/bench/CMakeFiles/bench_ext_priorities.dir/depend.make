# Empty dependencies file for bench_ext_priorities.
# This may be replaced when dependencies are built.
