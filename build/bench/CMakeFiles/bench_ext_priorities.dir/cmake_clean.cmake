file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_priorities.dir/bench_ext_priorities.cc.o"
  "CMakeFiles/bench_ext_priorities.dir/bench_ext_priorities.cc.o.d"
  "bench_ext_priorities"
  "bench_ext_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
