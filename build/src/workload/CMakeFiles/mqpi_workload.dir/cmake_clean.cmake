file(REMOVE_RECURSE
  "CMakeFiles/mqpi_workload.dir/arrival_schedule.cc.o"
  "CMakeFiles/mqpi_workload.dir/arrival_schedule.cc.o.d"
  "CMakeFiles/mqpi_workload.dir/zipf_workload.cc.o"
  "CMakeFiles/mqpi_workload.dir/zipf_workload.cc.o.d"
  "libmqpi_workload.a"
  "libmqpi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
