file(REMOVE_RECURSE
  "libmqpi_workload.a"
)
