# Empty dependencies file for mqpi_workload.
# This may be replaced when dependencies are built.
