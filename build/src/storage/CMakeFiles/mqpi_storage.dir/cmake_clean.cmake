file(REMOVE_RECURSE
  "CMakeFiles/mqpi_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/mqpi_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/mqpi_storage.dir/catalog.cc.o"
  "CMakeFiles/mqpi_storage.dir/catalog.cc.o.d"
  "CMakeFiles/mqpi_storage.dir/histogram.cc.o"
  "CMakeFiles/mqpi_storage.dir/histogram.cc.o.d"
  "CMakeFiles/mqpi_storage.dir/index.cc.o"
  "CMakeFiles/mqpi_storage.dir/index.cc.o.d"
  "CMakeFiles/mqpi_storage.dir/schema.cc.o"
  "CMakeFiles/mqpi_storage.dir/schema.cc.o.d"
  "CMakeFiles/mqpi_storage.dir/table.cc.o"
  "CMakeFiles/mqpi_storage.dir/table.cc.o.d"
  "CMakeFiles/mqpi_storage.dir/tpcr_gen.cc.o"
  "CMakeFiles/mqpi_storage.dir/tpcr_gen.cc.o.d"
  "libmqpi_storage.a"
  "libmqpi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
