file(REMOVE_RECURSE
  "libmqpi_storage.a"
)
