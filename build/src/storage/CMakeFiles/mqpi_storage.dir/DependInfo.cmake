
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_manager.cc" "src/storage/CMakeFiles/mqpi_storage.dir/buffer_manager.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/buffer_manager.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/mqpi_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/histogram.cc" "src/storage/CMakeFiles/mqpi_storage.dir/histogram.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/histogram.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/storage/CMakeFiles/mqpi_storage.dir/index.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/index.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/mqpi_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/mqpi_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/table.cc.o.d"
  "/root/repo/src/storage/tpcr_gen.cc" "src/storage/CMakeFiles/mqpi_storage.dir/tpcr_gen.cc.o" "gcc" "src/storage/CMakeFiles/mqpi_storage.dir/tpcr_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
