# Empty dependencies file for mqpi_storage.
# This may be replaced when dependencies are built.
