file(REMOVE_RECURSE
  "CMakeFiles/mqpi_engine.dir/expr.cc.o"
  "CMakeFiles/mqpi_engine.dir/expr.cc.o.d"
  "CMakeFiles/mqpi_engine.dir/operators.cc.o"
  "CMakeFiles/mqpi_engine.dir/operators.cc.o.d"
  "CMakeFiles/mqpi_engine.dir/planner.cc.o"
  "CMakeFiles/mqpi_engine.dir/planner.cc.o.d"
  "CMakeFiles/mqpi_engine.dir/query_execution.cc.o"
  "CMakeFiles/mqpi_engine.dir/query_execution.cc.o.d"
  "CMakeFiles/mqpi_engine.dir/sql_parser.cc.o"
  "CMakeFiles/mqpi_engine.dir/sql_parser.cc.o.d"
  "libmqpi_engine.a"
  "libmqpi_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
