
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/mqpi_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/mqpi_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/mqpi_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/mqpi_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/planner.cc" "src/engine/CMakeFiles/mqpi_engine.dir/planner.cc.o" "gcc" "src/engine/CMakeFiles/mqpi_engine.dir/planner.cc.o.d"
  "/root/repo/src/engine/query_execution.cc" "src/engine/CMakeFiles/mqpi_engine.dir/query_execution.cc.o" "gcc" "src/engine/CMakeFiles/mqpi_engine.dir/query_execution.cc.o.d"
  "/root/repo/src/engine/sql_parser.cc" "src/engine/CMakeFiles/mqpi_engine.dir/sql_parser.cc.o" "gcc" "src/engine/CMakeFiles/mqpi_engine.dir/sql_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/mqpi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
