file(REMOVE_RECURSE
  "libmqpi_engine.a"
)
