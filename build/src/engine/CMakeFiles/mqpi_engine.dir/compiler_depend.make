# Empty compiler generated dependencies file for mqpi_engine.
# This may be replaced when dependencies are built.
