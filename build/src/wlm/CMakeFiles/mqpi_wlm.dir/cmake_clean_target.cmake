file(REMOVE_RECURSE
  "libmqpi_wlm.a"
)
