file(REMOVE_RECURSE
  "CMakeFiles/mqpi_wlm.dir/maintenance.cc.o"
  "CMakeFiles/mqpi_wlm.dir/maintenance.cc.o.d"
  "CMakeFiles/mqpi_wlm.dir/speedup.cc.o"
  "CMakeFiles/mqpi_wlm.dir/speedup.cc.o.d"
  "CMakeFiles/mqpi_wlm.dir/wlm_advisor.cc.o"
  "CMakeFiles/mqpi_wlm.dir/wlm_advisor.cc.o.d"
  "libmqpi_wlm.a"
  "libmqpi_wlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_wlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
