# Empty compiler generated dependencies file for mqpi_wlm.
# This may be replaced when dependencies are built.
