file(REMOVE_RECURSE
  "libmqpi_sched.a"
)
