# Empty dependencies file for mqpi_sched.
# This may be replaced when dependencies are built.
