file(REMOVE_RECURSE
  "CMakeFiles/mqpi_sched.dir/rdbms.cc.o"
  "CMakeFiles/mqpi_sched.dir/rdbms.cc.o.d"
  "libmqpi_sched.a"
  "libmqpi_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
