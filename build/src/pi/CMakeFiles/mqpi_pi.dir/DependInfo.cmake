
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pi/analytic_simulator.cc" "src/pi/CMakeFiles/mqpi_pi.dir/analytic_simulator.cc.o" "gcc" "src/pi/CMakeFiles/mqpi_pi.dir/analytic_simulator.cc.o.d"
  "/root/repo/src/pi/future_model.cc" "src/pi/CMakeFiles/mqpi_pi.dir/future_model.cc.o" "gcc" "src/pi/CMakeFiles/mqpi_pi.dir/future_model.cc.o.d"
  "/root/repo/src/pi/multi_query_pi.cc" "src/pi/CMakeFiles/mqpi_pi.dir/multi_query_pi.cc.o" "gcc" "src/pi/CMakeFiles/mqpi_pi.dir/multi_query_pi.cc.o.d"
  "/root/repo/src/pi/pi_manager.cc" "src/pi/CMakeFiles/mqpi_pi.dir/pi_manager.cc.o" "gcc" "src/pi/CMakeFiles/mqpi_pi.dir/pi_manager.cc.o.d"
  "/root/repo/src/pi/single_query_pi.cc" "src/pi/CMakeFiles/mqpi_pi.dir/single_query_pi.cc.o" "gcc" "src/pi/CMakeFiles/mqpi_pi.dir/single_query_pi.cc.o.d"
  "/root/repo/src/pi/stage_profile.cc" "src/pi/CMakeFiles/mqpi_pi.dir/stage_profile.cc.o" "gcc" "src/pi/CMakeFiles/mqpi_pi.dir/stage_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/mqpi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqpi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mqpi_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqpi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
