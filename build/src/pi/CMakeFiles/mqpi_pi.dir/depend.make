# Empty dependencies file for mqpi_pi.
# This may be replaced when dependencies are built.
