file(REMOVE_RECURSE
  "CMakeFiles/mqpi_pi.dir/analytic_simulator.cc.o"
  "CMakeFiles/mqpi_pi.dir/analytic_simulator.cc.o.d"
  "CMakeFiles/mqpi_pi.dir/future_model.cc.o"
  "CMakeFiles/mqpi_pi.dir/future_model.cc.o.d"
  "CMakeFiles/mqpi_pi.dir/multi_query_pi.cc.o"
  "CMakeFiles/mqpi_pi.dir/multi_query_pi.cc.o.d"
  "CMakeFiles/mqpi_pi.dir/pi_manager.cc.o"
  "CMakeFiles/mqpi_pi.dir/pi_manager.cc.o.d"
  "CMakeFiles/mqpi_pi.dir/single_query_pi.cc.o"
  "CMakeFiles/mqpi_pi.dir/single_query_pi.cc.o.d"
  "CMakeFiles/mqpi_pi.dir/stage_profile.cc.o"
  "CMakeFiles/mqpi_pi.dir/stage_profile.cc.o.d"
  "libmqpi_pi.a"
  "libmqpi_pi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
