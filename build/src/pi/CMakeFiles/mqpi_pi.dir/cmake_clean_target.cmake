file(REMOVE_RECURSE
  "libmqpi_pi.a"
)
