# Empty compiler generated dependencies file for mqpi_common.
# This may be replaced when dependencies are built.
