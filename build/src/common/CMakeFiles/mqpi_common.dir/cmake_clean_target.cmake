file(REMOVE_RECURSE
  "libmqpi_common.a"
)
