file(REMOVE_RECURSE
  "CMakeFiles/mqpi_common.dir/logging.cc.o"
  "CMakeFiles/mqpi_common.dir/logging.cc.o.d"
  "CMakeFiles/mqpi_common.dir/priority.cc.o"
  "CMakeFiles/mqpi_common.dir/priority.cc.o.d"
  "CMakeFiles/mqpi_common.dir/random.cc.o"
  "CMakeFiles/mqpi_common.dir/random.cc.o.d"
  "CMakeFiles/mqpi_common.dir/stats.cc.o"
  "CMakeFiles/mqpi_common.dir/stats.cc.o.d"
  "CMakeFiles/mqpi_common.dir/status.cc.o"
  "CMakeFiles/mqpi_common.dir/status.cc.o.d"
  "libmqpi_common.a"
  "libmqpi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
