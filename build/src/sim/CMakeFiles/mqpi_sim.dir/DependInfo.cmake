
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/report.cc" "src/sim/CMakeFiles/mqpi_sim.dir/report.cc.o" "gcc" "src/sim/CMakeFiles/mqpi_sim.dir/report.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/mqpi_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/mqpi_sim.dir/runner.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/mqpi_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/mqpi_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pi/CMakeFiles/mqpi_pi.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mqpi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mqpi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqpi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mqpi_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqpi_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
