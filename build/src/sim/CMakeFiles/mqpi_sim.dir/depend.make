# Empty dependencies file for mqpi_sim.
# This may be replaced when dependencies are built.
