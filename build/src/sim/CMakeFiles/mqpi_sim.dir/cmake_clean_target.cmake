file(REMOVE_RECURSE
  "libmqpi_sim.a"
)
