file(REMOVE_RECURSE
  "CMakeFiles/mqpi_sim.dir/report.cc.o"
  "CMakeFiles/mqpi_sim.dir/report.cc.o.d"
  "CMakeFiles/mqpi_sim.dir/runner.cc.o"
  "CMakeFiles/mqpi_sim.dir/runner.cc.o.d"
  "CMakeFiles/mqpi_sim.dir/trace.cc.o"
  "CMakeFiles/mqpi_sim.dir/trace.cc.o.d"
  "libmqpi_sim.a"
  "libmqpi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqpi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
