// Deterministic random number generation for workload synthesis.
//
// All randomness in the repository flows from a seeded Rng so every
// experiment is reproducible; benches print their seeds. The Zipf
// sampler implements the distribution used throughout the paper's
// evaluation (query sizes N_i ~ Zipf(a)), and the Poisson process
// drives Section 5.2.3's stream of arriving queries.
#pragma once

#include <cstdint>
#include <vector>

namespace mqpi {

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and good enough
/// statistical quality for simulation workloads; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double Exponential(double lambda);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal multiplicative factor with median 1 and the given sigma
  /// of the underlying normal; used for optimizer-estimate noise.
  double LogNormalFactor(double sigma);

  /// Forks an independent stream (jump-free: reseeds from this stream).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

/// Samples ranks from a Zipfian distribution over {1, ..., n}:
/// P(rank = k) proportional to 1 / k^a. Uses an O(log n) inverse-CDF
/// lookup over precomputed cumulative weights.
class ZipfSampler {
 public:
  /// Requires n >= 1 and a > 0.
  ZipfSampler(int n, double a);

  /// Returns a rank in [1, n].
  int Sample(Rng* rng) const;

  int n() const { return n_; }
  double a() const { return a_; }

  /// P(rank = k), for tests and analytic checks.
  double Probability(int k) const;

 private:
  int n_;
  double a_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

/// Homogeneous Poisson arrival process with rate lambda (events/sec).
/// NextArrival() advances internal time by an Exponential(lambda) gap.
class PoissonProcess {
 public:
  PoissonProcess(double lambda, double start_time = 0.0);

  /// True when lambda > 0 (a zero-rate process never fires).
  bool active() const { return lambda_ > 0.0; }
  double lambda() const { return lambda_; }

  /// Returns the next arrival time (strictly after the previous one)
  /// and advances the process. Requires active().
  double NextArrival(Rng* rng);

  /// Time of the most recently generated arrival (or start time).
  double current_time() const { return t_; }

 private:
  double lambda_;
  double t_;
};

}  // namespace mqpi
