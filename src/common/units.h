// Core quantity types shared by every module.
//
// The paper measures query cost in abstract work units "U" (1 U = the
// work to process one page of bytes) and time in seconds. We keep both
// as doubles but wrap them in thin aliases + helpers so call sites stay
// readable and unit mistakes are greppable.
#pragma once

#include <cstdint>
#include <limits>

namespace mqpi {

/// Work measured in U's (pages of processing). Fractional values arise
/// from analytic stage computations, never from the executor.
using WorkUnits = double;

/// Simulated time in seconds.
using SimTime = double;

/// Processing speed in U's per second.
using Speed = double;

/// Sentinel for "unknown / not yet estimated".
inline constexpr double kUnknown = -1.0;

/// Positive infinity, used for "never finishes" horizons.
inline constexpr double kInfiniteTime =
    std::numeric_limits<double>::infinity();

/// Identifier of a query within one Rdbms instance. Monotonically
/// assigned at submission; never reused.
using QueryId = std::uint64_t;
inline constexpr QueryId kInvalidQueryId = ~QueryId{0};

/// Tolerance for floating-point comparisons on times/costs. Stage
/// boundaries are computed analytically and compared against quantized
/// executor progress, so exact equality is never appropriate.
inline constexpr double kTimeEpsilon = 1e-9;

inline bool ApproxEqual(double a, double b, double eps = 1e-9) {
  double diff = a > b ? a - b : b - a;
  double scale = (a < 0 ? -a : a) + (b < 0 ? -b : b) + 1.0;
  return diff <= eps * scale;
}

}  // namespace mqpi
