// Query priorities and their scheduler weights (paper Assumption 3:
// each query executes at speed s_i = C * w_i / W, where w_i is the
// weight associated with the query's priority).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mqpi {

/// Discrete priority levels, ordered low-to-high. The paper's PostgreSQL
/// prototype had a single level ("PostgreSQL does not support priorities
/// for queries"); our engine supports the full weighted model so the
/// priority-aware algorithms of Sections 2-3 are exercised.
enum class Priority : std::uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
  kCritical = 3,
};

inline constexpr int kNumPriorities = 4;

/// Maps priorities to scheduler weights. Weights are strictly positive
/// and monotone in priority; the defaults follow a 1/2/4/8 doubling
/// ladder, a common choice in commercial workload managers.
class PriorityWeights {
 public:
  constexpr PriorityWeights() : weights_{1.0, 2.0, 4.0, 8.0} {}
  constexpr PriorityWeights(double low, double normal, double high,
                            double critical)
      : weights_{low, normal, high, critical} {}

  constexpr double WeightOf(Priority p) const {
    return weights_[static_cast<int>(p)];
  }

 private:
  std::array<double, kNumPriorities> weights_;
};

std::string_view PriorityName(Priority p);

}  // namespace mqpi
