#include "common/random.h"

#include <cassert>
#include <cmath>

namespace mqpi {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  // Guard against log(0) by nudging u away from zero.
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::LogNormalFactor(double sigma) {
  if (sigma <= 0.0) return 1.0;
  return std::exp(Normal(0.0, sigma));
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(int n, double a) : n_(n), a_(a) {
  assert(n >= 1);
  assert(a > 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (int k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), a);
    cdf_[static_cast<std::size_t>(k - 1)] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // exact, despite rounding
}

int ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  // Binary search for the first cdf_ entry >= u.
  int lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (cdf_[static_cast<std::size_t>(mid)] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

double ZipfSampler::Probability(int k) const {
  assert(k >= 1 && k <= n_);
  const double lower = (k == 1) ? 0.0 : cdf_[static_cast<std::size_t>(k - 2)];
  return cdf_[static_cast<std::size_t>(k - 1)] - lower;
}

PoissonProcess::PoissonProcess(double lambda, double start_time)
    : lambda_(lambda), t_(start_time) {}

double PoissonProcess::NextArrival(Rng* rng) {
  assert(active());
  t_ += rng->Exponential(lambda_);
  return t_;
}

}  // namespace mqpi
