// Status / Result<T>: exception-free error handling for the public API,
// following the RocksDB/Arrow idiom. A Status is cheap to copy when OK
// (no allocation) and carries a code + message otherwise.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mqpi {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kAborted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kResourceExhausted = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// Message text; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // nullptr == OK
};

/// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

#define MQPI_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::mqpi::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace mqpi
