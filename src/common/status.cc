#include "common/status.h"

namespace mqpi {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s(StatusCodeName(code()));
  s += ": ";
  s += message();
  return s;
}

}  // namespace mqpi
