#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mqpi {

Ewma::Ewma(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::Observe(double value) {
  if (!initialized_) {
    value_ = value;
    initialized_ = true;
  } else {
    value_ = alpha_ * value + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

void RunningStats::Observe(double value) {
  ++n_;
  if (n_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RelativeError(double estimate, double actual) {
  const double diff = std::fabs(estimate - actual);
  if (std::fabs(actual) < 1e-12) {
    return diff < 1e-12 ? 0.0 : diff;  // degenerate: no meaningful scale
  }
  return diff / std::fabs(actual);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace mqpi
