// Small statistics helpers used by the progress indicators (speed
// smoothing) and by the experiment harness (error aggregation).
#pragma once

#include <cstddef>
#include <vector>

namespace mqpi {

/// Exponentially weighted moving average. The single-query PI of
/// Luo et al. [11, 12] monitors "the current query execution speed";
/// we smooth the instantaneous speed with an EWMA so short scheduler
/// quanta do not make the estimate jitter.
class Ewma {
 public:
  /// alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha = 0.3);

  void Observe(double value);
  void Reset();

  bool has_value() const { return initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Observe(double value);
  void Reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Relative error |estimate - actual| / actual, the paper's metric in
/// Section 5.2.3. Returns 0 when both are ~0; treats actual == 0 with a
/// nonzero estimate as 100% error per unit of estimate magnitude.
double RelativeError(double estimate, double actual);

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Exact percentile (nearest-rank) of a copy-sorted vector.
/// p in [0, 100]. Returns 0 for empty input.
double Percentile(std::vector<double> xs, double p);

}  // namespace mqpi
