#include "common/priority.h"

namespace mqpi {

std::string_view PriorityName(Priority p) {
  switch (p) {
    case Priority::kLow:
      return "low";
    case Priority::kNormal:
      return "normal";
    case Priority::kHigh:
      return "high";
    case Priority::kCritical:
      return "critical";
  }
  return "unknown";
}

}  // namespace mqpi
