// Minimal leveled logger. Logging is off by default (benches print
// structured output themselves); tests flip it on when debugging.
#pragma once

#include <sstream>
#include <string>

namespace mqpi {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line to stderr if `level` >= threshold.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define MQPI_LOG(level) ::mqpi::internal::LogLine(::mqpi::LogLevel::level)

/// Soft invariant check for service paths: a violated MQPI_DCHECK logs
/// an error and *continues* in every build mode, so the caller's
/// graceful-degradation path runs identically in debug and NDEBUG
/// builds. Use it where an `assert` would make an injected fault abort
/// the process in one build flavor and silently pass in the other;
/// keep `assert` for programmer errors in cold, single-threaded code.
/// Evaluates to the condition's truth value so callers can branch:
///   if (!MQPI_DCHECK(record != nullptr)) continue;
#define MQPI_DCHECK(cond)                                               \
  (static_cast<bool>(cond)                                              \
       ? true                                                           \
       : (::mqpi::internal::LogLine(::mqpi::LogLevel::kError)           \
              << "DCHECK failed: " << #cond << " (" << __FILE__ << ":"  \
              << __LINE__ << ")",                                       \
          false))

}  // namespace mqpi
