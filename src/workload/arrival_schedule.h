// ArrivalSchedule: pre-generated Poisson arrival times paired with
// sampled query ranks, so a run and its analysis see the identical
// arrival trace (Section 5.2.3's "new queries kept arriving at the
// RDBMS according to a Poisson process with parameter lambda").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "workload/zipf_workload.h"

namespace mqpi::workload {

struct ScheduledArrival {
  SimTime time = 0.0;
  int rank = 1;
};

/// Generates arrivals on [0, horizon) at rate `lambda` with ranks drawn
/// from `workload`'s Zipf mix. Returns an empty schedule for lambda<=0.
std::vector<ScheduledArrival> GeneratePoissonArrivals(
    const ZipfWorkload& workload, double lambda, SimTime horizon, Rng* rng);

/// Serializes a schedule to a CSV string ("time,rank" per line) so an
/// arrival trace can be stored and replayed across processes.
std::string SerializeSchedule(const std::vector<ScheduledArrival>& schedule);

/// Parses the CSV produced by SerializeSchedule. Fails on malformed
/// lines, non-increasing times, or ranks < 1.
Result<std::vector<ScheduledArrival>> ParseSchedule(std::string_view csv);

}  // namespace mqpi::workload
