#include "workload/zipf_workload.h"

namespace mqpi::workload {

ZipfWorkload::ZipfWorkload(storage::Catalog* catalog,
                           storage::TpcrGenerator* generator,
                           ZipfWorkloadOptions options)
    : catalog_(catalog),
      generator_(generator),
      options_(options),
      sampler_(options.max_rank, options.a),
      cost_cache_(static_cast<std::size_t>(options.max_rank) + 1, kUnknown) {}

Status ZipfWorkload::MaterializeTables() {
  if (!catalog_->GetTable("lineitem").ok()) {
    MQPI_RETURN_NOT_OK(generator_->BuildLineitem(catalog_));
  }
  for (int rank = 1; rank <= options_.max_rank; ++rank) {
    const std::string name = storage::TpcrGenerator::PartTableName(rank);
    if (catalog_->GetTable(name).ok()) continue;
    MQPI_RETURN_NOT_OK(generator_->BuildPartTable(
        catalog_, name,
        static_cast<std::int64_t>(options_.n_scale) * rank));
  }
  return Status::OK();
}

int ZipfWorkload::SampleRank(Rng* rng) const { return sampler_.Sample(rng); }

engine::QuerySpec ZipfWorkload::SpecForRank(int rank) const {
  return engine::QuerySpec::TpcrPartPrice(
      storage::TpcrGenerator::PartTableName(rank));
}

engine::QuerySpec ZipfWorkload::SampleSpec(Rng* rng) const {
  return SpecForRank(SampleRank(rng));
}

Result<WorkUnits> ZipfWorkload::TrueCostOfRank(engine::Planner* planner,
                                               int rank) {
  if (rank < 1 || rank > options_.max_rank) {
    return Status::InvalidArgument("rank " + std::to_string(rank) +
                                   " out of range");
  }
  double& cached = cost_cache_[static_cast<std::size_t>(rank)];
  if (cached != kUnknown) return cached;
  auto cost = planner->MeasureTrueCost(SpecForRank(rank));
  if (!cost.ok()) return cost.status();
  cached = *cost;
  return cached;
}

Result<WorkUnits> ZipfWorkload::AverageTrueCost(engine::Planner* planner) {
  double avg = 0.0;
  for (int rank = 1; rank <= options_.max_rank; ++rank) {
    auto cost = TrueCostOfRank(planner, rank);
    if (!cost.ok()) return cost.status();
    avg += sampler_.Probability(rank) * *cost;
  }
  return avg;
}

}  // namespace mqpi::workload
