// ZipfWorkload: the paper's query mix.
//
// Query Q_i runs the correlated-subquery template over part_i, whose
// size is proportional to N_i; the N_i's "follow a Zipfian distribution
// with parameter a" (Sections 5.2 / 5.3). We realize this as ranks
// 1..max_rank with P(rank = k) proportional to 1/k^a and
// N_rank = n_scale * rank, materializing one part table per rank so
// every sampled query executes against real data.
//
// Per-rank true costs are deterministic (same table, same plan), so the
// workload measures them once by dry run and derives the exact average
// cost c-bar — the quantity the Section 2.4 future model needs.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "engine/planner.h"
#include "storage/catalog.h"
#include "storage/tpcr_gen.h"

namespace mqpi::workload {

struct ZipfWorkloadOptions {
  /// Ranks 1..max_rank; rank k is drawn with probability ~ 1/k^a.
  int max_rank = 100;
  /// Zipf parameter a (paper uses 1.2 and 2.2).
  double a = 2.2;
  /// N_rank = n_scale * rank; part_rank has 10 * N_rank tuples.
  int n_scale = 1;
};

class ZipfWorkload {
 public:
  /// `catalog` and `generator` must outlive the workload. Data is not
  /// built until MaterializeTables().
  ZipfWorkload(storage::Catalog* catalog, storage::TpcrGenerator* generator,
               ZipfWorkloadOptions options);

  /// Builds lineitem (if absent) and all part_<rank> tables.
  Status MaterializeTables();

  const ZipfWorkloadOptions& options() const { return options_; }

  /// Draws a rank from the Zipf distribution.
  int SampleRank(Rng* rng) const;

  /// The query spec for one rank.
  engine::QuerySpec SpecForRank(int rank) const;

  /// Convenience: SpecForRank(SampleRank(rng)).
  engine::QuerySpec SampleSpec(Rng* rng) const;

  /// Exact execution cost of the rank's query (dry run, cached).
  Result<WorkUnits> TrueCostOfRank(engine::Planner* planner, int rank);

  /// Exact average query cost c-bar = sum_k P(k) * cost(k).
  Result<WorkUnits> AverageTrueCost(engine::Planner* planner);

  /// P(rank = k), exposed for analytic checks.
  double RankProbability(int rank) const {
    return sampler_.Probability(rank);
  }

 private:
  storage::Catalog* catalog_;
  storage::TpcrGenerator* generator_;
  ZipfWorkloadOptions options_;
  ZipfSampler sampler_;
  std::vector<double> cost_cache_;  // kUnknown until measured
};

}  // namespace mqpi::workload
