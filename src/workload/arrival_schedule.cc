#include "workload/arrival_schedule.h"

#include <cstdlib>
#include <sstream>

namespace mqpi::workload {

std::vector<ScheduledArrival> GeneratePoissonArrivals(
    const ZipfWorkload& workload, double lambda, SimTime horizon, Rng* rng) {
  std::vector<ScheduledArrival> schedule;
  if (lambda <= 0.0) return schedule;
  PoissonProcess process(lambda);
  while (true) {
    const SimTime t = process.NextArrival(rng);
    if (t >= horizon) break;
    schedule.push_back(ScheduledArrival{t, workload.SampleRank(rng)});
  }
  return schedule;
}

std::string SerializeSchedule(
    const std::vector<ScheduledArrival>& schedule) {
  std::ostringstream os;
  os << "time,rank\n";
  for (const auto& arrival : schedule) {
    os << arrival.time << "," << arrival.rank << "\n";
  }
  return os.str();
}

Result<std::vector<ScheduledArrival>> ParseSchedule(std::string_view csv) {
  std::vector<ScheduledArrival> schedule;
  std::istringstream is{std::string(csv)};
  std::string line;
  bool header = true;
  double prev = -1.0;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (header) {
      header = false;
      if (line != "time,rank") {
        return Status::InvalidArgument(
            "schedule CSV must start with 'time,rank'");
      }
      continue;
    }
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": missing ','");
    }
    char* end = nullptr;
    const double time = std::strtod(line.c_str(), &end);
    if (end != line.c_str() + comma) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad time");
    }
    const long rank = std::strtol(line.c_str() + comma + 1, &end, 10);
    if (*end != '\0' || rank < 1) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad rank");
    }
    if (time <= prev) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": times must be increasing");
    }
    prev = time;
    schedule.push_back(
        ScheduledArrival{time, static_cast<int>(rank)});
  }
  return schedule;
}

}  // namespace mqpi::workload
