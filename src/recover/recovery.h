// Startup recovery: rebuild a PiService from its durable log.
//
// Recovery = construct a fresh service (same options, fresh same-seed
// fault injector), replay the recovered input history with the event
// sink detached, then reattach the log and resume appends. Because the
// stack is deterministic (see recover/event.h), replay reproduces the
// pre-crash state exactly — estimator windows, treap shape, snapshot
// sequence numbers, everything — which the checkpoint's verification
// trailer proves byte-for-byte at the checkpoint cut.
//
// Invariants the replay enforces:
//   - session and query ids re-assigned by the engine must match the
//     journaled ids (a mismatch means the history is not the one this
//     configuration produced — recovery fails loudly rather than
//     continuing from a diverged state);
//   - a control event that succeeded pre-crash must succeed on replay;
//   - the verification snapshot, rebuilt at the journaled probe point,
//     must match the checkpoint trailer (recorded in `verified`; a
//     checkpoint-less directory has nothing to verify).
//
// Caveat: faults that fail *calls* without changing state (e.g.
// service.session_control_fail) desynchronize fault-point evaluation
// counts on replay, because failed calls are never journaled. Arm
// state-changing fault points (sched.*, pi.*, service.publish_delay)
// for chaos runs that must recover differentially.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "recover/durable_log.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "service/sharded_service.h"

namespace mqpi::storage {
class Catalog;
}  // namespace mqpi::storage

namespace mqpi::recover {

/// Wire-encodes `snapshot` as a SNAPSHOT_FULL frame via a fresh
/// per-subscriber encoder — the canonical byte image checkpoint
/// verification and the differential tests compare.
std::string EncodeSnapshotBytes(const service::SnapshotPtr& snapshot);

/// Cuts a checkpoint of `service`'s current state into `log`: journals
/// the verification probe, builds the unpublished snapshot, and writes
/// the consolidated image. Safe to call while the service runs.
Status Checkpoint(service::PiService* service, DurableLog* log);

struct RecoveredService {
  // Member order is destruction order in reverse, and it matters:
  // sessions close through the service, and the service journals into
  // the log — so sessions die first, the log last.
  /// The reopened log, already attached as the service's event sink.
  std::unique_ptr<DurableLog> log;
  std::unique_ptr<service::PiService> service;
  /// Open session handles, keyed by the ids the journal recorded (the
  /// same ids the engine re-assigned on replay).
  std::unordered_map<std::uint64_t, std::unique_ptr<service::Session>>
      sessions;
  std::uint64_t events_replayed = 0;
  bool had_checkpoint = false;
  /// True when the checkpoint's verification snapshot matched the
  /// replayed state byte-for-byte (false when there was no checkpoint
  /// to verify).
  bool verified = false;
  bool tail_truncated = false;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t corrupt_checkpoints = 0;
};

/// Recovers the service whose history lives in `dir`. A missing or
/// empty directory is a fresh start (no events; still succeeds). The
/// ticker is held off during replay regardless of
/// `options.start_ticker` and started afterwards when requested;
/// `options.event_sink` is ignored (the reopened log takes that role).
/// `options.fault` should be a FRESH injector with the pre-crash seed
/// — its evaluation streams are part of the replayed timeline.
Result<RecoveredService> Recover(const storage::Catalog* catalog,
                                 const std::string& dir,
                                 service::PiServiceOptions options,
                                 DurableLog::Options log_options = {});

// ---- sharded recovery -------------------------------------------------------

/// The journal layout a sharded deployment uses: shard i journals into
/// `<root>/shard-<i>`, so shards flush, checkpoint, and recover with
/// zero cross-shard coordination (one fault scope per directory).
std::string ShardJournalDir(const std::string& root, int shard);

struct RecoveredShardedService {
  /// Per-shard recovery results, in shard order. Declared before the
  /// coordinator so the coordinator (which borrows the services) is
  /// destroyed first.
  std::vector<RecoveredService> shards;
  std::unique_ptr<service::ShardedPiService> coordinator;
  std::uint64_t events_replayed = 0;  // sum over shards
  /// True when every recovered shard with a checkpoint verified.
  bool all_verified = false;
};

/// Recovers an N-shard deployment from `<root>/shard-<i>` directories
/// (each a missing-dir fresh start when absent, like Recover). Shards
/// recover independently; the returned coordinator adopts the
/// recovered services. Tickers are started per `options.start_ticker`
/// (after replay), exactly as in single-shard Recover. `per_shard`
/// (optional) customizes each shard's options copy — fresh same-seed
/// fault injectors per shard, matching how the pre-crash deployment
/// was scoped.
Result<RecoveredShardedService> RecoverSharded(
    const storage::Catalog* catalog, const std::string& root, int num_shards,
    service::PiServiceOptions options, DurableLog::Options log_options = {},
    std::function<void(int shard, service::PiServiceOptions*)> per_shard = {});

}  // namespace mqpi::recover
