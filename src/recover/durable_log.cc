#include "recover/durable_log.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <optional>

#include "fault/fault_injector.h"
#include "net/wire.h"
#include "service/metrics.h"

namespace mqpi::recover {

namespace {

Status Errno(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed for " + path + ": " +
                          std::strerror(errno));
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync", dir);
  return Status::OK();
}

/// "checkpoint-<K>.ckpt" / "journal-<K>.wal" -> K.
std::optional<std::uint64_t> ParseIndex(std::string_view name,
                                        std::string_view prefix,
                                        std::string_view suffix) {
  if (name.size() <= prefix.size() + suffix.size() ||
      name.substr(0, prefix.size()) != prefix ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return std::nullopt;
  }
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

struct DirListing {
  std::vector<std::uint64_t> checkpoints;  // ascending
  std::vector<std::uint64_t> journals;     // ascending
};

Result<DirListing> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no log directory " + dir);
    return Errno("opendir", dir);
  }
  DirListing out;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    if (auto k = ParseIndex(name, "checkpoint-", ".ckpt")) {
      out.checkpoints.push_back(*k);
    } else if (auto k = ParseIndex(name, "journal-", ".wal")) {
      out.journals.push_back(*k);
    }
  }
  ::closedir(d);
  std::sort(out.checkpoints.begin(), out.checkpoints.end());
  std::sort(out.journals.begin(), out.journals.end());
  return out;
}

struct CheckpointImage {
  std::vector<Event> events;
  std::string verification;
};

/// Strict validation: header index must match, the declared event
/// count must decode exactly, the verification trailer must be
/// present, and nothing may be torn. Anything less falls back to an
/// older checkpoint.
std::optional<CheckpointImage> ReadCheckpoint(const std::string& path,
                                              std::uint64_t expect_index) {
  auto log = ReadLog(path);
  if (!log.ok() || log->truncated_tail || log->records.size() < 2) {
    return std::nullopt;
  }
  const std::vector<Record>& records = log->records;
  if (records.front().type != RecordType::kCheckpointHeader ||
      records.back().type != RecordType::kVerification) {
    return std::nullopt;
  }
  net::WireReader header(records.front().payload.data(),
                         records.front().payload.size());
  std::uint64_t index = 0, count = 0;
  if (!header.U64(&index) || !header.U64(&count) || !header.Exhausted() ||
      index != expect_index || count != records.size() - 2) {
    return std::nullopt;
  }
  CheckpointImage image;
  image.events.reserve(count);
  for (std::size_t i = 1; i + 1 < records.size(); ++i) {
    if (records[i].type != RecordType::kEvent) return std::nullopt;
    Event event;
    if (!DecodeEvent(records[i].payload, &event).ok()) return std::nullopt;
    image.events.push_back(std::move(event));
  }
  image.verification = records.back().payload;
  return image;
}

}  // namespace

std::string DurableLog::CheckpointPath(const std::string& dir,
                                       std::uint64_t index) {
  return dir + "/checkpoint-" + std::to_string(index) + ".ckpt";
}

std::string DurableLog::JournalPath(const std::string& dir,
                                    std::uint64_t index) {
  return dir + "/journal-" + std::to_string(index) + ".wal";
}

// ---- Load -------------------------------------------------------------------

Result<LoadedState> DurableLog::Load(const std::string& dir) {
  auto listing = ListDir(dir);
  if (!listing.ok()) return listing.status();

  LoadedState state;

  // Newest checkpoint that validates wins; corrupt ones are counted
  // and skipped (their journal segments still replay, so falling back
  // loses nothing).
  for (auto it = listing->checkpoints.rbegin();
       it != listing->checkpoints.rend(); ++it) {
    auto image = ReadCheckpoint(CheckpointPath(dir, *it), *it);
    if (!image) {
      ++state.corrupt_checkpoints;
      continue;
    }
    state.had_checkpoint = true;
    state.checkpoint_index = *it;
    state.events = std::move(image->events);
    state.verification_prefix = state.events.size();
    state.verification = std::move(image->verification);
    break;
  }

  // Replay journal segments from the anchor upward. A gap (missing
  // segment) or a torn tail ends the recoverable history — events past
  // either cannot be applied without misordering the input stream.
  const std::uint64_t first = state.had_checkpoint ? state.checkpoint_index : 0;
  const std::uint64_t last =
      listing->journals.empty() ? first : listing->journals.back();
  state.active_index = first;
  state.active_valid_bytes = 0;
  for (std::uint64_t s = first; s <= last; ++s) {
    auto log = ReadLog(JournalPath(dir, s));
    if (!log.ok()) break;  // gap: segment missing or unreadable
    state.active_index = s;
    state.active_valid_bytes = log->valid_bytes;
    for (const Record& record : log->records) {
      if (record.type != RecordType::kEvent) {
        // Foreign record in a journal: treat like corruption from here.
        log->truncated_tail = true;
        break;
      }
      Event event;
      if (!DecodeEvent(record.payload, &event).ok()) {
        log->truncated_tail = true;
        break;
      }
      state.events.push_back(std::move(event));
    }
    if (log->truncated_tail) {
      state.tail_truncated = true;
      state.dropped_bytes += log->dropped_bytes;
      break;
    }
  }
  return state;
}

// ---- writer -----------------------------------------------------------------

DurableLog::~DurableLog() { Close(); }

Status DurableLog::Open(const std::string& dir, Options options,
                        const LoadedState* resume) {
  std::lock_guard<std::mutex> lock(mu_);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", dir);
  }
  dir_ = dir;
  options_ = options;
  poisoned_ = false;
  if (options_.metrics != nullptr) {
    journal_records_ = options_.metrics->counter("recover.journal_records");
    journal_write_fails_ =
        options_.metrics->counter("recover.journal_write_fails");
    checkpoints_written_ =
        options_.metrics->counter("recover.checkpoints_written");
  }
  if (resume != nullptr) {
    history_ = resume->events;
    active_index_ = resume->active_index;
    return OpenSegmentLocked(
        active_index_, static_cast<std::int64_t>(resume->active_valid_bytes));
  }
  history_.clear();
  active_index_ = 0;
  return OpenSegmentLocked(0, 0);
}

void DurableLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  journal_.Close();
}

Status DurableLog::OpenSegmentLocked(std::uint64_t index,
                                     std::int64_t truncate_to) {
  return journal_.Open(JournalPath(dir_, index), truncate_to);
}

void DurableLog::Append(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  history_.push_back(event);
  if (poisoned_) return;  // memory-only until the next checkpoint
  if (options_.fault != nullptr && options_.fault->enabled() &&
      options_.fault->ShouldFire(fault::kRecoverJournalWriteFail)) {
    poisoned_ = true;
    if (journal_write_fails_ != nullptr) journal_write_fails_->Increment();
    return;
  }
  const Status status = journal_.Append(RecordType::kEvent, EncodeEvent(event));
  if (!status.ok()) {
    // A dropped record makes every later journal record unreplayable
    // (the input stream would have a hole), so stop writing this
    // segment entirely; the in-memory history stays whole and the next
    // checkpoint restores durability.
    poisoned_ = true;
    if (journal_write_fails_ != nullptr) journal_write_fails_->Increment();
    return;
  }
  if (journal_records_ != nullptr) journal_records_->Increment();
  if (options_.sync_each_append) (void)journal_.Sync();
}

Status DurableLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) return Status::OK();  // nothing durable to sync
  return journal_.Sync();
}

Status DurableLog::WriteCheckpoint(std::string_view verification) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t next = active_index_ + 1;
  const std::string final_path = CheckpointPath(dir_, next);
  const std::string tmp_path = final_path + ".tmp";

  {
    RecordWriter writer;
    MQPI_RETURN_NOT_OK(writer.Open(tmp_path, /*truncate_to=*/0));
    net::WireWriter header;
    header.U64(next);
    header.U64(static_cast<std::uint64_t>(history_.size()));
    MQPI_RETURN_NOT_OK(
        writer.Append(RecordType::kCheckpointHeader, header.bytes()));
    for (const Event& event : history_) {
      MQPI_RETURN_NOT_OK(writer.Append(RecordType::kEvent, EncodeEvent(event)));
    }
    MQPI_RETURN_NOT_OK(writer.Append(RecordType::kVerification, verification));
    MQPI_RETURN_NOT_OK(writer.Sync());
  }

  if (options_.fault != nullptr && options_.fault->enabled() &&
      options_.fault->ShouldFire(fault::kRecoverCheckpointCorrupt)) {
    // Flip one byte in the middle of the image so validation rejects
    // it and recovery falls back to the previous checkpoint.
    const int fd = ::open(tmp_path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        const off_t at = st.st_size / 2;
        char byte = 0;
        if (::pread(fd, &byte, 1, at) == 1) {
          byte = static_cast<char>(byte ^ 0xFF);
          (void)::pwrite(fd, &byte, 1, at);
          (void)::fsync(fd);
        }
      }
      ::close(fd);
    }
  }

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("rename", final_path);
  }
  MQPI_RETURN_NOT_OK(SyncDir(dir_));

  // Rotate to a fresh segment; the checkpoint now carries the whole
  // history, so a poisoned journal is healed here.
  MQPI_RETURN_NOT_OK(OpenSegmentLocked(next, /*truncate_to=*/0));
  active_index_ = next;
  poisoned_ = false;
  if (checkpoints_written_ != nullptr) checkpoints_written_->Increment();

  // Retention: keep this checkpoint and the previous one, plus every
  // journal segment at or after the older kept checkpoint.
  if (next >= 2) {
    const std::uint64_t keep_from = next - 1;
    auto listing = ListDir(dir_);
    if (listing.ok()) {
      for (std::uint64_t k : listing->checkpoints) {
        if (k < keep_from) (void)::unlink(CheckpointPath(dir_, k).c_str());
      }
      for (std::uint64_t j : listing->journals) {
        if (j < keep_from) (void)::unlink(JournalPath(dir_, j).c_str());
      }
    }
  }
  return Status::OK();
}

bool DurableLog::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !poisoned_ && journal_.is_open();
}

std::uint64_t DurableLog::active_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_index_;
}

std::uint64_t DurableLog::history_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.size();
}

}  // namespace mqpi::recover
