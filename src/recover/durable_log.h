// DurableLog: the on-disk home of a PiService's input history.
//
// Directory layout (all files use the journal.h record framing):
//
//   journal-<S>.wal      events appended while segment S was active
//   checkpoint-<S>.ckpt  consolidated image written when segment S
//                        became active: one kCheckpointHeader record
//                        {index, event count}, then every event from
//                        genesis up to the cut, then one kVerification
//                        record holding the wire-encoded SNAPSHOT_FULL
//                        of the service state at the cut
//
// A fresh directory starts on segment 0 (journal-0.wal, no
// checkpoint). WriteCheckpoint(S -> S+1) writes checkpoint-(S+1).ckpt
// via tmp-file + fsync + rename, then rotates to a fresh
// journal-(S+1).wal. Journals are rotated, never truncated mid-life,
// so if checkpoint S+1 later proves corrupt, recovery falls back to
// checkpoint S and replays journal-S plus journal-(S+1) — nothing is
// lost. Retention keeps the last two checkpoints and every journal
// segment they need.
//
// A checkpoint is NOT a serialization of estimator internals: it is
// the event history itself, consolidated (see recover/event.h for why
// replay is the recovery mechanism). The verification trailer lets
// recovery prove, byte for byte, that replaying the checkpoint's
// events reproduces the state the checkpoint was cut from.
//
// Failure semantics (availability over durability): a journal write
// failure — real, or injected via the recover.journal_write_fail fault
// point — poisons the active segment; events keep accumulating in
// memory and the next successful checkpoint (written from the full
// in-memory history) makes the log whole again. Appends never fail the
// caller. The recover.checkpoint_corrupt fault point flips a byte in
// the checkpoint image before publication, exercising the fallback
// path end to end.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "recover/event.h"
#include "recover/journal.h"

namespace mqpi::fault {
class FaultInjector;
}  // namespace mqpi::fault
namespace mqpi::service {
class MetricsRegistry;
class Counter;
}  // namespace mqpi::service

namespace mqpi::recover {

/// Everything Load() could salvage from a log directory, ready for
/// replay.
struct LoadedState {
  /// The full recovered input history, in order: the newest valid
  /// checkpoint's events followed by every journaled event after the
  /// cut (up to the first gap or torn tail).
  std::vector<Event> events;
  /// True when a valid checkpoint anchored the history.
  bool had_checkpoint = false;
  /// Index of that checkpoint (meaningful when had_checkpoint).
  std::uint64_t checkpoint_index = 0;
  /// Number of leading `events` covered by the checkpoint — the replay
  /// position of the verification snapshot below.
  std::size_t verification_prefix = 0;
  /// The checkpoint's kVerification payload (wire-encoded
  /// SNAPSHOT_FULL at the cut); empty without a checkpoint.
  std::string verification;
  /// Segment appends should resume on, and the byte offset of its
  /// valid prefix (the truncation point for a torn tail).
  std::uint64_t active_index = 0;
  std::uint64_t active_valid_bytes = 0;
  /// True when any journal bytes were dropped (torn/corrupt tail).
  bool tail_truncated = false;
  std::uint64_t dropped_bytes = 0;
  /// Checkpoint files that existed but failed validation (corrupt,
  /// torn, or misindexed) and were skipped.
  std::uint64_t corrupt_checkpoints = 0;
};

class DurableLog : public EventSink {
 public:
  struct Options {
    /// Optional chaos wiring (recover.journal_write_fail,
    /// recover.checkpoint_corrupt).
    fault::FaultInjector* fault = nullptr;
    /// Optional counters: recover.journal_records,
    /// recover.journal_write_fails, recover.checkpoints_written.
    service::MetricsRegistry* metrics = nullptr;
    /// fsync after every append (tests and paranoid deployments; the
    /// default syncs on checkpoint + Drain only).
    bool sync_each_append = false;
  };

  DurableLog() = default;
  ~DurableLog() override;
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Reads a log directory without touching it. NotFound when the
  /// directory does not exist; corruption is salvaged, never an error.
  static Result<LoadedState> Load(const std::string& dir);

  /// Opens the log for writing. Pass the LoadedState from Load() to
  /// resume an existing directory (the torn tail, if any, is truncated
  /// here); omit it for a directory that should start empty. Creates
  /// the directory if missing.
  Status Open(const std::string& dir, Options options,
              const LoadedState* resume = nullptr);
  void Close();

  /// EventSink: appends to the in-memory history and the active
  /// journal segment. Never fails the caller — see header comment.
  void Append(const Event& event) override;

  /// fsync the active journal segment.
  Status Sync();

  /// Cuts checkpoint (active+1) carrying the full history plus
  /// `verification` (wire-encoded snapshot at the cut), rotates to a
  /// fresh journal segment, and applies retention. The caller must
  /// have journaled the probe event of the verification build *before*
  /// calling (recovery relies on the final checkpoint event being that
  /// kProbe).
  Status WriteCheckpoint(std::string_view verification);

  /// False while the active journal segment is poisoned by a write
  /// failure (a successful checkpoint heals it).
  bool healthy() const;

  const std::string& dir() const { return dir_; }
  std::uint64_t active_index() const;
  std::uint64_t history_size() const;

  static std::string CheckpointPath(const std::string& dir,
                                    std::uint64_t index);
  static std::string JournalPath(const std::string& dir,
                                 std::uint64_t index);

 private:
  Status OpenSegmentLocked(std::uint64_t index, std::int64_t truncate_to);

  mutable std::mutex mu_;
  std::string dir_;
  Options options_;
  RecordWriter journal_;
  std::uint64_t active_index_ = 0;
  bool poisoned_ = false;
  /// Authoritative input history from genesis (checkpoints are written
  /// from it, so a poisoned journal loses nothing once the next
  /// checkpoint lands).
  std::vector<Event> history_;

  service::Counter* journal_records_ = nullptr;
  service::Counter* journal_write_fails_ = nullptr;
  service::Counter* checkpoints_written_ = nullptr;
};

}  // namespace mqpi::recover
