#include "recover/recovery.h"

#include <utility>

#include "net/fanout.h"

namespace mqpi::recover {

std::string EncodeSnapshotBytes(const service::SnapshotPtr& snapshot) {
  net::DeltaEncoder encoder;  // fresh: first Encode is a full frame
  return encoder.Encode(snapshot);
}

Status Checkpoint(service::PiService* service, DurableLog* log) {
  // BuildUnpublishedSnapshot journals the kProbe first, so the probe
  // is part of the checkpoint image and replay rebuilds the snapshot
  // at exactly this point in the history.
  const std::string verification =
      EncodeSnapshotBytes(service->BuildUnpublishedSnapshot());
  MQPI_RETURN_NOT_OK(log->WriteCheckpoint(verification));
  return Status::OK();
}

namespace {

Status ReplayMismatch(std::size_t index, const Event& event,
                      const std::string& detail) {
  return Status::Internal(
      "replay diverged at event " + std::to_string(index) + " (" +
      std::string(EventKindName(event.kind)) + "): " + detail);
}

}  // namespace

Result<RecoveredService> Recover(const storage::Catalog* catalog,
                                 const std::string& dir,
                                 service::PiServiceOptions options,
                                 DurableLog::Options log_options) {
  LoadedState loaded;
  {
    auto load = DurableLog::Load(dir);
    if (load.ok()) {
      loaded = std::move(*load);
    } else if (!load.status().IsNotFound()) {
      return load.status();
    }
    // NotFound: fresh start — no history, an empty log directory will
    // be created below.
  }

  RecoveredService out;
  out.had_checkpoint = loaded.had_checkpoint;
  out.tail_truncated = loaded.tail_truncated;
  out.dropped_bytes = loaded.dropped_bytes;
  out.corrupt_checkpoints = loaded.corrupt_checkpoints;

  // Replay runs in manual mode with no sink attached; the caller's
  // ticker preference is honored only after the history is applied.
  const bool start_ticker = options.start_ticker;
  options.start_ticker = false;
  options.event_sink = nullptr;
  out.service = std::make_unique<service::PiService>(catalog, options);

  // The checkpoint verification snapshot was built at the last probe
  // before the cut (Checkpoint() journals kProbe, then cuts; appends
  // racing the cut may land between them).
  std::size_t verify_at = loaded.events.size();  // "never" by default
  if (loaded.had_checkpoint) {
    for (std::size_t i = loaded.verification_prefix; i-- > 0;) {
      if (loaded.events[i].kind == EventKind::kProbe) {
        verify_at = i;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < loaded.events.size(); ++i) {
    const Event& event = loaded.events[i];
    switch (event.kind) {
      case EventKind::kSessionOpen: {
        auto session = out.service->OpenSession(event.name);
        if (session->id() != event.session_id) {
          return ReplayMismatch(
              i, event,
              "engine assigned session id " + std::to_string(session->id()) +
                  ", journal recorded " + std::to_string(event.session_id));
        }
        out.sessions.emplace(event.session_id, std::move(session));
        break;
      }
      case EventKind::kSessionClose: {
        auto it = out.sessions.find(event.session_id);
        if (it == out.sessions.end()) {
          return ReplayMismatch(i, event, "session not open");
        }
        MQPI_RETURN_NOT_OK(it->second->Close());
        out.sessions.erase(it);
        break;
      }
      case EventKind::kSubmit: {
        auto it = out.sessions.find(event.session_id);
        if (it == out.sessions.end()) {
          return ReplayMismatch(i, event, "session not open");
        }
        auto id = it->second->Submit(event.spec, event.priority);
        if (!id.ok()) return ReplayMismatch(i, event, id.status().ToString());
        if (*id != event.query_id) {
          return ReplayMismatch(
              i, event,
              "engine assigned query id " + std::to_string(*id) +
                  ", journal recorded " + std::to_string(event.query_id));
        }
        break;
      }
      case EventKind::kSubmitAt: {
        auto it = out.sessions.find(event.session_id);
        if (it == out.sessions.end()) {
          return ReplayMismatch(i, event, "session not open");
        }
        MQPI_RETURN_NOT_OK(
            it->second->SubmitAt(event.time, event.spec, event.priority));
        break;
      }
      case EventKind::kControl: {
        auto it = out.sessions.find(event.session_id);
        if (it == out.sessions.end()) {
          return ReplayMismatch(i, event, "session not open");
        }
        Status status;
        switch (event.op) {
          case sched::QueryEventKind::kBlocked:
            status = it->second->Block(event.query_id);
            break;
          case sched::QueryEventKind::kResumed:
            status = it->second->Resume(event.query_id);
            break;
          case sched::QueryEventKind::kAborted:
            status = it->second->Abort(event.query_id);
            break;
          case sched::QueryEventKind::kPriorityChanged:
            status = it->second->SetPriority(event.query_id, event.priority);
            break;
          default:
            status = Status::InvalidArgument("unsupported journaled op");
            break;
        }
        // Journaled controls succeeded pre-crash; replay must agree.
        if (!status.ok()) return ReplayMismatch(i, event, status.ToString());
        break;
      }
      case EventKind::kAdmission:
        out.service->SetAdmissionOpen(event.flag);
        break;
      case EventKind::kStep:
        MQPI_RETURN_NOT_OK(out.service->Advance(event.time));
        break;
      case EventKind::kPublish:
        out.service->PublishNow();
        break;
      case EventKind::kProbe: {
        const service::SnapshotPtr probe =
            out.service->BuildUnpublishedSnapshot();
        if (i == verify_at) {
          out.verified = EncodeSnapshotBytes(probe) == loaded.verification;
        }
        break;
      }
      case EventKind::kDrain:
        break;  // audit marker only
    }
    ++out.events_replayed;
  }

  // History applied: reopen the log (truncating any torn tail) and
  // resume journaling where the pre-crash process left off.
  out.log = std::make_unique<DurableLog>();
  MQPI_RETURN_NOT_OK(out.log->Open(dir, log_options, &loaded));
  out.service->SetEventSink(out.log.get());
  if (start_ticker) out.service->Start();
  return out;
}

std::string ShardJournalDir(const std::string& root, int shard) {
  return root + "/shard-" + std::to_string(shard);
}

Result<RecoveredShardedService> RecoverSharded(
    const storage::Catalog* catalog, const std::string& root, int num_shards,
    service::PiServiceOptions options, DurableLog::Options log_options,
    std::function<void(int shard, service::PiServiceOptions*)> per_shard) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  RecoveredShardedService out;
  out.shards.reserve(static_cast<std::size_t>(num_shards));
  out.all_verified = true;
  // Shards recover independently — separate directories, separate
  // logs, separate replay timelines. A corrupt shard fails only its
  // own recovery (and therefore the whole call, loudly), never by
  // silently diverging a sibling.
  for (int i = 0; i < num_shards; ++i) {
    service::PiServiceOptions shard_options = options;
    if (per_shard) per_shard(i, &shard_options);
    auto recovered = Recover(catalog, ShardJournalDir(root, i),
                             std::move(shard_options), log_options);
    if (!recovered.ok()) return recovered.status();
    out.events_replayed += recovered.value().events_replayed;
    if (recovered.value().had_checkpoint && !recovered.value().verified) {
      out.all_verified = false;
    }
    out.shards.push_back(std::move(recovered).value());
  }
  std::vector<service::PiService*> services;
  services.reserve(out.shards.size());
  for (RecoveredService& shard : out.shards) {
    services.push_back(shard.service.get());
  }
  out.coordinator =
      std::make_unique<service::ShardedPiService>(std::move(services));
  return out;
}

}  // namespace mqpi::recover
