#include "recover/journal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "net/wire.h"

namespace mqpi::recover {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Errno(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed for " + path + ": " +
                          std::strerror(errno));
}

}  // namespace

std::uint32_t Crc32(const char* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<std::uint8_t>(data[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string EncodeRecord(RecordType type, std::string_view payload) {
  // CRC covers the type word + payload, so a record whose type byte
  // flips is rejected the same as one whose body did.
  net::WireWriter typed;
  typed.U32(static_cast<std::uint32_t>(type));
  std::uint32_t crc = Crc32(typed.bytes().data(), typed.bytes().size());
  crc = Crc32(payload.data(), payload.size(), crc);

  net::WireWriter out;
  out.U32(static_cast<std::uint32_t>(payload.size()));
  out.U32(crc);
  out.U32(static_cast<std::uint32_t>(type));
  std::string bytes = out.Take();
  bytes.append(payload.data(), payload.size());
  return bytes;
}

// ---- event payloads ---------------------------------------------------------

namespace {

void EncodeSpec(net::WireWriter* w, const engine::QuerySpec& spec) {
  w->U8(static_cast<std::uint8_t>(spec.kind));
  w->Str(spec.table);
  w->U8(static_cast<std::uint8_t>(spec.agg));
  w->Str(spec.agg_column);
  w->Str(spec.filter_column);
  w->F64(spec.filter_threshold);
  w->U8(spec.has_filter ? 1 : 0);
  w->Str(spec.group_column);
  w->Str(spec.order_column);
  w->U8(spec.descending ? 1 : 0);
  w->U64(static_cast<std::uint64_t>(spec.limit));
  w->F64(spec.synthetic_cost);
}

bool DecodeSpec(net::WireReader* r, engine::QuerySpec* spec) {
  std::uint8_t kind = 0, agg = 0, has_filter = 0, descending = 0;
  std::uint64_t limit = 0;
  if (!r->U8(&kind) || !r->Str(&spec->table) || !r->U8(&agg) ||
      !r->Str(&spec->agg_column) || !r->Str(&spec->filter_column) ||
      !r->F64(&spec->filter_threshold) || !r->U8(&has_filter) ||
      !r->Str(&spec->group_column) || !r->Str(&spec->order_column) ||
      !r->U8(&descending) || !r->U64(&limit) ||
      !r->F64(&spec->synthetic_cost)) {
    return false;
  }
  if (kind > static_cast<std::uint8_t>(engine::QuerySpec::Kind::kSynthetic) ||
      agg > static_cast<std::uint8_t>(engine::AggFunc::kMax)) {
    return false;
  }
  spec->kind = static_cast<engine::QuerySpec::Kind>(kind);
  spec->agg = static_cast<engine::AggFunc>(agg);
  spec->has_filter = has_filter != 0;
  spec->descending = descending != 0;
  spec->limit = static_cast<std::size_t>(limit);
  return true;
}

}  // namespace

std::string_view EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSessionOpen: return "SESSION_OPEN";
    case EventKind::kSessionClose: return "SESSION_CLOSE";
    case EventKind::kSubmit: return "SUBMIT";
    case EventKind::kSubmitAt: return "SUBMIT_AT";
    case EventKind::kControl: return "CONTROL";
    case EventKind::kAdmission: return "ADMISSION";
    case EventKind::kStep: return "STEP";
    case EventKind::kPublish: return "PUBLISH";
    case EventKind::kProbe: return "PROBE";
    case EventKind::kDrain: return "DRAIN";
  }
  return "UNKNOWN";
}

std::string EncodeEvent(const Event& event) {
  net::WireWriter w;
  w.U8(static_cast<std::uint8_t>(event.kind));
  w.U64(event.session_id);
  w.U64(event.query_id);
  w.F64(event.time);
  w.U8(static_cast<std::uint8_t>(event.priority));
  w.U8(static_cast<std::uint8_t>(event.op));
  w.U8(event.flag ? 1 : 0);
  EncodeSpec(&w, event.spec);
  w.Str(event.name);
  return w.Take();
}

Status DecodeEvent(std::string_view payload, Event* out) {
  net::WireReader r(payload.data(), payload.size());
  std::uint8_t kind = 0, priority = 0, op = 0, flag = 0;
  if (!r.U8(&kind) || !r.U64(&out->session_id) || !r.U64(&out->query_id) ||
      !r.F64(&out->time) || !r.U8(&priority) || !r.U8(&op) || !r.U8(&flag) ||
      !DecodeSpec(&r, &out->spec) || !r.Str(&out->name) || !r.Exhausted()) {
    return Status::InvalidArgument("event payload does not parse");
  }
  if (kind < static_cast<std::uint8_t>(EventKind::kSessionOpen) ||
      kind > static_cast<std::uint8_t>(EventKind::kDrain) ||
      priority > static_cast<std::uint8_t>(Priority::kCritical) ||
      op > static_cast<std::uint8_t>(
               sched::QueryEventKind::kPriorityChanged)) {
    return Status::InvalidArgument("event payload holds bad enum values");
  }
  out->kind = static_cast<EventKind>(kind);
  out->priority = static_cast<Priority>(priority);
  out->op = static_cast<sched::QueryEventKind>(op);
  out->flag = flag != 0;
  return Status::OK();
}

// ---- RecordWriter -----------------------------------------------------------

RecordWriter::~RecordWriter() { Close(); }

Status RecordWriter::Open(const std::string& path, std::int64_t truncate_to) {
  Close();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  if (truncate_to >= 0 && ::ftruncate(fd, truncate_to) != 0) {
    const Status status = Errno("ftruncate", path);
    ::close(fd);
    return status;
  }
  fd_ = fd;
  path_ = path;
  bytes_written_ = 0;
  return Status::OK();
}

void RecordWriter::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status RecordWriter::Append(RecordType type, std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("record log is not open");
  const std::string bytes = EncodeRecord(type, payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path_);
    }
    sent += static_cast<std::size_t>(n);
  }
  bytes_written_ += bytes.size();
  return Status::OK();
}

Status RecordWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("record log is not open");
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

// ---- ReadLog ----------------------------------------------------------------

Result<ReadLogResult> ReadLog(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no log at " + path);
    return Errno("open", path);
  }
  std::string data;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    data.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  ReadLogResult result;
  std::size_t pos = 0;
  while (data.size() - pos >= kRecordPrefixBytes) {
    net::WireReader prefix(data.data() + pos, kRecordPrefixBytes);
    std::uint32_t len = 0, crc = 0, type = 0;
    prefix.U32(&len);
    prefix.U32(&crc);
    prefix.U32(&type);
    if (len > kMaxRecordBytes ||
        data.size() - pos - kRecordPrefixBytes < len) {
      break;  // absurd length or torn tail
    }
    std::uint32_t actual =
        Crc32(data.data() + pos + 8, 4);  // the type word
    actual = Crc32(data.data() + pos + kRecordPrefixBytes, len, actual);
    if (actual != crc) break;  // corrupt record ends the valid prefix
    if (type < static_cast<std::uint32_t>(RecordType::kEvent) ||
        type > static_cast<std::uint32_t>(RecordType::kVerification)) {
      break;
    }
    Record record;
    record.type = static_cast<RecordType>(type);
    record.payload.assign(data.data() + pos + kRecordPrefixBytes, len);
    result.records.push_back(std::move(record));
    pos += kRecordPrefixBytes + len;
  }
  result.valid_bytes = pos;
  result.dropped_bytes = data.size() - pos;
  result.truncated_tail = result.dropped_bytes > 0;
  return result;
}

}  // namespace mqpi::recover
