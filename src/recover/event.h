// Lifecycle events: the durable input history of a PiService.
//
// The whole stack below the service is a deterministic simulator:
// given the same options, the same fault-injector seed, and the same
// ordered sequence of *inputs* — session opens/closes, submissions,
// control calls, admission flips, and clock advances — every estimator
// window, treap, EWMA, and published snapshot is reproduced bit for
// bit. That determinism is the recovery story's foundation: instead of
// serializing megabytes of internal estimator state (and chasing every
// new field forever), the journal records the input events and
// recovery *replays* them. See recover/durable_log.h for the on-disk
// format and recover/recovery.h for the replay driver.
//
// This header is intentionally dependency-light (engine spec + sched
// enums only) so service::PiService can append events through the
// EventSink interface without the service library depending on the
// recover library (which in turn links service + net for replay and
// wire-format encoding).
#pragma once

#include <cstdint>
#include <string>

#include "common/priority.h"
#include "common/units.h"
#include "engine/planner.h"
#include "sched/rdbms.h"

namespace mqpi::recover {

/// One durable input to the service. Field usage by kind:
///   kSessionOpen   session_id, name
///   kSessionClose  session_id
///   kSubmit        session_id, query_id (the id the service assigned,
///                  verified on replay), spec, priority
///   kSubmitAt      session_id, time (absolute arrival time), spec,
///                  priority
///   kControl       session_id, query_id, op, priority (op ==
///                  kPriorityChanged only)
///   kAdmission     flag (admission gate open?)
///   kStep          time (dt the service advanced by; one event per
///                  published quantum)
///   kPublish       — (an off-tick PublishNow)
///   kProbe         — (an unpublished snapshot build: checkpoint
///                  verification or any BuildUnpublishedSnapshot call;
///                  replayed because building a snapshot advances the
///                  last-credible-ETA carry state)
///   kDrain         — (audit marker: a graceful drain began)
enum class EventKind : std::uint8_t {
  kSessionOpen = 1,
  kSessionClose = 2,
  kSubmit = 3,
  kSubmitAt = 4,
  kControl = 5,
  kAdmission = 6,
  kStep = 7,
  kPublish = 8,
  kProbe = 9,
  kDrain = 10,
};

std::string_view EventKindName(EventKind kind);

struct Event {
  EventKind kind = EventKind::kStep;
  std::uint64_t session_id = 0;
  QueryId query_id = kInvalidQueryId;
  /// kSubmitAt: absolute arrival time. kStep: the dt advanced.
  SimTime time = 0.0;
  Priority priority = Priority::kNormal;
  sched::QueryEventKind op = sched::QueryEventKind::kSubmitted;
  bool flag = false;
  engine::QuerySpec spec;
  std::string name;
};

/// Where the service appends its input history. Append must be cheap
/// and must never throw or block recovery-critical paths: persistent-
/// layer failures are absorbed by the implementation (counted, the
/// sink turns unhealthy) so a full disk degrades durability, never
/// availability.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Append(const Event& event) = 0;
};

}  // namespace mqpi::recover
