// Length-prefixed, checksummed record log — the framing shared by the
// write-ahead journal and the checkpoint files.
//
// On-disk record format (all little-endian, same byte discipline as
// net/wire.h):
//
//   offset  size  field
//        0     4  payload length N (bytes after the 12-byte prefix)
//        4     4  CRC-32 (polynomial 0xEDB88320) of type byte + payload
//        8     4  record type (RecordType; u32 so the prefix is
//                 12 bytes and naturally aligned)
//       12     N  payload bytes (WireWriter-encoded)
//
// The reader walks records front to back and stops at the first
// record whose length runs past the file or whose checksum does not
// match: a torn or corrupt tail is *detected and truncated*, never
// fatal — the bytes before it are a valid prefix of the history, which
// is exactly what crash recovery wants. A corruption anywhere but the
// tail also just ends the readable prefix (and is reported so callers
// can count it); replaying a prefix of the input history always yields
// a consistent state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "recover/event.h"

namespace mqpi::recover {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the standard table
/// variant. Seed chaining: pass a previous return value as `seed` to
/// extend a running checksum.
std::uint32_t Crc32(const char* data, std::size_t size,
                    std::uint32_t seed = 0);

inline constexpr std::size_t kRecordPrefixBytes = 12;
/// Sanity ceiling on a single record payload (a spec + SQL-ish text is
/// tiny; anything bigger is corruption).
inline constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

enum class RecordType : std::uint32_t {
  /// A serialized recover::Event.
  kEvent = 1,
  /// Checkpoint file header (index, event count).
  kCheckpointHeader = 2,
  /// Checkpoint verification trailer: a wire-encoded SNAPSHOT_FULL
  /// frame of the state at the checkpoint cut.
  kVerification = 3,
};

struct Record {
  RecordType type = RecordType::kEvent;
  std::string payload;
};

/// Frames one record (prefix + payload) ready to append.
std::string EncodeRecord(RecordType type, std::string_view payload);

// ---- event payloads ---------------------------------------------------------

std::string EncodeEvent(const Event& event);
Status DecodeEvent(std::string_view payload, Event* out);

// ---- file-backed record log -------------------------------------------------

/// Append side. Not internally locked — DurableLog serializes access.
class RecordWriter {
 public:
  RecordWriter() = default;
  ~RecordWriter();
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Opens `path` for appending, creating it if missing. When
  /// `truncate_to` is non-negative the file is first truncated to that
  /// many bytes (recovery chops a torn tail before resuming appends).
  Status Open(const std::string& path, std::int64_t truncate_to = -1);
  void Close();
  bool is_open() const { return fd_ >= 0; }

  Status Append(RecordType type, std::string_view payload);
  /// fsync(2) the file.
  Status Sync();

  const std::string& path() const { return path_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_written_ = 0;
};

/// One whole-file read: every record of the valid prefix, plus where
/// and why the prefix ended.
struct ReadLogResult {
  std::vector<Record> records;
  /// Bytes of the valid prefix (the append-resume / truncate point).
  std::uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix (0 for a clean file).
  std::uint64_t dropped_bytes = 0;
  /// True when dropped_bytes > 0 (torn or corrupt tail detected).
  bool truncated_tail = false;
};

/// Reads `path` front to back per the framing contract. NotFound when
/// the file does not exist; corruption is never an error (see header
/// comment).
Result<ReadLogResult> ReadLog(const std::string& path);

}  // namespace mqpi::recover
