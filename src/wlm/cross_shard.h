// Cross-shard victim selection: §3.1 speed-up decisions lifted to a
// sharded fleet under one global rate budget.
//
// Within a shard the question is the paper's: which victim, when
// blocked, most shortens the shard's bottleneck query? Across shards
// the engines are independent — blocking a victim on shard A cannot
// speed anything on shard B — so the coordinator-side question
// decomposes cleanly: enumerate each shard's candidate (victim,
// benefit) pairs via that shard's own `EstimateWhatIf` (the O(log n)
// removal-benefit fast path), then choose greedily across the fleet
// under the global budget.
//
// The budget is expressed in processing rate (U/s): blocking victim v
// on shard s frees that victim's share of the shard's measured rate,
// rate_v = measured_rate_s * w_v / W_s. A workload manager that must
// not idle more than B U/s of fleet capacity at once passes that B;
// kInfiniteTime (the default) disables the constraint and the choice
// degenerates to the global argmax — exactly the per-shard enumeration
// the differential test re-derives.
//
// Everything here runs on coordinator threads against published
// snapshots and the services' locked `EstimateWhatIf` entry points; no
// shard ticker is ever blocked by a cross-shard decision.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "service/sharded_service.h"

namespace mqpi::wlm {

struct CrossShardOptions {
  /// Max victims to pick fleet-wide.
  int max_victims = 1;
  /// Global rate budget (U/s of capacity the picks may idle).
  /// Infinite = unconstrained.
  double rate_budget = kInfiniteTime;
};

struct CrossShardVictim {
  int shard = -1;
  /// Shard-local ids (what the shard's engine speaks)...
  QueryId victim = kInvalidQueryId;
  QueryId target = kInvalidQueryId;
  /// ...and their global encodings (what the wire speaks).
  std::uint64_t global_victim = kInvalidQueryId;
  std::uint64_t global_target = kInvalidQueryId;
  /// Predicted shortening of the shard bottleneck's remaining time.
  SimTime benefit = 0.0;
  /// Rate share blocking this victim frees (counts against the
  /// budget).
  double rate_share = 0.0;
};

struct CrossShardChoice {
  /// Picks in decreasing benefit order.
  std::vector<CrossShardVictim> victims;
  SimTime total_benefit = 0.0;
  double rate_spent = 0.0;
  /// Candidates evaluated fleet-wide (the differential test's
  /// enumeration size).
  int candidates = 0;
};

class CrossShardSpeedup {
 public:
  /// `coordinator` is borrowed and must outlive the selector.
  explicit CrossShardSpeedup(service::ShardedPiService* coordinator)
      : coordinator_(coordinator) {}

  /// Greedy fleet-wide selection: per shard, the bottleneck target is
  /// the running query with the largest finite multi-query ETA; every
  /// other running query on that shard is a candidate victim whose
  /// benefit is baseline − EstimateWhatIf({blocked: victim}). Fails
  /// only when no shard has two running queries to trade between.
  Result<CrossShardChoice> ChooseVictims(const CrossShardOptions& options);

  /// The single unconstrained best pick — by construction equal to the
  /// argmax over every shard's own EstimateWhatIf enumeration, which
  /// the differential test verifies independently.
  Result<CrossShardVictim> BestVictim();

 private:
  service::ShardedPiService* coordinator_;
};

}  // namespace mqpi::wlm
