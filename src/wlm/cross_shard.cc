#include "wlm/cross_shard.h"

#include <algorithm>
#include <cmath>

namespace mqpi::wlm {

namespace {

using service::ProgressSnapshot;
using service::QueryProgress;

bool Running(const QueryProgress& q) {
  return q.state == sched::QueryState::kRunning;
}

/// The shard's bottleneck: the running query with the largest finite
/// eta_multi (falling back to largest remaining cost when no finite
/// multi-query ETA exists yet, e.g. right after startup).
const QueryProgress* Bottleneck(const ProgressSnapshot& snap) {
  const QueryProgress* best = nullptr;
  bool best_finite = false;
  for (const QueryProgress& q : snap.queries) {
    if (!Running(q)) continue;
    const bool finite = q.eta_multi >= 0.0 && std::isfinite(q.eta_multi);
    if (best == nullptr) {
      best = &q;
      best_finite = finite;
      continue;
    }
    if (finite != best_finite) {
      if (finite) {
        best = &q;
        best_finite = true;
      }
      continue;
    }
    if (finite ? q.eta_multi > best->eta_multi
               : q.remaining_cost > best->remaining_cost) {
      best = &q;
    }
  }
  return best;
}

double TotalRunningWeight(const ProgressSnapshot& snap) {
  double total = 0.0;
  for (const QueryProgress& q : snap.queries) {
    if (Running(q)) total += q.weight;
  }
  return total;
}

}  // namespace

Result<CrossShardChoice> CrossShardSpeedup::ChooseVictims(
    const CrossShardOptions& options) {
  if (options.max_victims < 1) {
    return Status::InvalidArgument("max_victims must be >= 1");
  }
  std::vector<CrossShardVictim> candidates;
  for (int shard = 0; shard < coordinator_->num_shards(); ++shard) {
    service::PiService* svc = coordinator_->shard_service(shard);
    const service::SnapshotPtr snap = svc->snapshot();
    const QueryProgress* target = Bottleneck(*snap);
    if (target == nullptr) continue;
    // Baseline under the empty scenario: the live forecast's remaining
    // time for the bottleneck. Candidate benefits subtract from this,
    // so both ends come from the same forecast epoch.
    const Result<SimTime> baseline = svc->EstimateWhatIf({}, target->id);
    if (!baseline.ok()) continue;
    const double shard_weight = TotalRunningWeight(*snap);
    for (const QueryProgress& q : snap->queries) {
      if (!Running(q) || q.id == target->id) continue;
      pi::MultiQueryPi::WhatIf scenario;
      scenario.blocked.push_back(q.id);
      const Result<SimTime> hypothetical =
          svc->EstimateWhatIf(scenario, target->id);
      if (!hypothetical.ok()) continue;
      CrossShardVictim cand;
      cand.shard = shard;
      cand.victim = q.id;
      cand.target = target->id;
      cand.global_victim = service::GlobalId(shard, q.id);
      cand.global_target = service::GlobalId(shard, target->id);
      cand.benefit = baseline.value() - hypothetical.value();
      cand.rate_share = shard_weight > 0.0
                            ? snap->measured_rate * q.weight / shard_weight
                            : 0.0;
      candidates.push_back(cand);
    }
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no shard has a bottleneck with a blockable peer");
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CrossShardVictim& a, const CrossShardVictim& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              // Deterministic tiebreak so the choice is reproducible
              // across identical snapshots.
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.victim < b.victim;
            });

  CrossShardChoice choice;
  choice.candidates = static_cast<int>(candidates.size());
  for (const CrossShardVictim& cand : candidates) {
    if (static_cast<int>(choice.victims.size()) >= options.max_victims) break;
    if (cand.benefit <= 0.0) break;  // sorted: nothing better follows
    if (choice.rate_spent + cand.rate_share > options.rate_budget) continue;
    choice.victims.push_back(cand);
    choice.total_benefit += cand.benefit;
    choice.rate_spent += cand.rate_share;
  }
  if (choice.victims.empty()) {
    return Status::FailedPrecondition(
        "no candidate fits the rate budget with positive benefit");
  }
  return choice;
}

Result<CrossShardVictim> CrossShardSpeedup::BestVictim() {
  CrossShardOptions options;
  options.max_victims = 1;
  options.rate_budget = kInfiniteTime;
  Result<CrossShardChoice> choice = ChooseVictims(options);
  if (!choice.ok()) return choice.status();
  return choice.value().victims.front();
}

}  // namespace mqpi::wlm
