#include "wlm/maintenance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

namespace mqpi::wlm {

namespace {

Status Validate(const std::vector<MaintenanceQuery>& queries, SimTime deadline,
                double rate) {
  if (rate <= 0.0) {
    return Status::InvalidArgument("aggregate rate must be positive");
  }
  if (deadline < 0.0) {
    return Status::InvalidArgument("deadline must be >= 0");
  }
  for (const MaintenanceQuery& q : queries) {
    if (q.completed < 0.0 || q.remaining < 0.0) {
      return Status::InvalidArgument("query " + std::to_string(q.id) +
                                     " has negative work figures");
    }
  }
  return Status::OK();
}

}  // namespace

Result<MaintenancePlan> MaintenancePlanner::PlanGreedy(
    const std::vector<MaintenanceQuery>& queries, SimTime deadline,
    double rate, LossMetric metric) {
  MQPI_RETURN_NOT_OK(Validate(queries, deadline, rate));

  const WorkUnits budget = rate * deadline;
  WorkUnits total_remaining = 0.0;
  for (const MaintenanceQuery& q : queries) total_remaining += q.remaining;

  MaintenancePlan plan;
  if (total_remaining <= budget) {
    plan.quiescent_time = total_remaining / rate;
    return plan;  // everything fits; abort nothing
  }

  // Ascending loss / V == ascending loss / remaining (V_i = c_i / C).
  // Zero-remaining queries never help the deadline; skip them.
  std::vector<const MaintenanceQuery*> order;
  order.reserve(queries.size());
  for (const MaintenanceQuery& q : queries) {
    if (q.remaining > 0.0) order.push_back(&q);
  }
  std::sort(order.begin(), order.end(),
            [metric](const MaintenanceQuery* a, const MaintenanceQuery* b) {
              const double lhs = LossOf(*a, metric) * b->remaining;
              const double rhs = LossOf(*b, metric) * a->remaining;
              if (lhs != rhs) return lhs < rhs;
              return a->id < b->id;
            });

  for (const MaintenanceQuery* q : order) {
    if (total_remaining <= budget) break;
    plan.abort_now.push_back(q->id);
    plan.lost_work += LossOf(*q, metric);
    total_remaining -= q->remaining;
  }
  plan.quiescent_time = total_remaining / rate;
  return plan;
}

Result<MaintenancePlan> MaintenancePlanner::PlanOptimal(
    const std::vector<MaintenanceQuery>& queries, SimTime deadline,
    double rate, LossMetric metric, int buckets) {
  MQPI_RETURN_NOT_OK(Validate(queries, deadline, rate));
  if (buckets < 1) {
    return Status::InvalidArgument("buckets must be >= 1");
  }

  const WorkUnits budget = rate * deadline;
  const std::size_t n = queries.size();

  // Paper-scale instances (n <= 20) get exact subset enumeration: the
  // greedy routinely keeps sets that fit the budget by a hair, and any
  // cost quantization would spuriously reject them.
  if (n <= 20) {
    double best_loss = std::numeric_limits<double>::infinity();
    std::uint32_t best_mask = 0;  // bit set = kept
    const auto limit = static_cast<std::uint32_t>(1u << n);
    for (std::uint32_t mask = 0; mask < limit; ++mask) {
      double kept_cost = 0.0;
      double loss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          kept_cost += queries[i].remaining;
          if (kept_cost > budget) break;
        } else {
          loss += LossOf(queries[i], metric);
        }
      }
      if (kept_cost <= budget && loss < best_loss) {
        best_loss = loss;
        best_mask = mask;
      }
    }
    MaintenancePlan plan;
    WorkUnits kept_remaining = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (best_mask & (1u << i)) {
        kept_remaining += queries[i].remaining;
      } else {
        plan.abort_now.push_back(queries[i].id);
        plan.lost_work += LossOf(queries[i], metric);
      }
    }
    plan.quiescent_time = kept_remaining / rate;
    return plan;
  }

  // Larger instances: pseudo-polynomial knapsack on a quantized grid.
  // Quantize remaining costs onto an integer grid; round costs *up* so
  // a "kept" set in the DP is guaranteed feasible in real units.
  WorkUnits max_remaining = 0.0;
  for (const MaintenanceQuery& q : queries) {
    max_remaining = std::max(max_remaining, q.remaining);
  }
  const double unit = max_remaining > 0.0
                          ? max_remaining / static_cast<double>(buckets)
                          : 1.0;
  const auto cap = static_cast<std::size_t>(budget / unit);

  std::vector<std::size_t> qcost(n);
  std::vector<double> value(n);
  for (std::size_t i = 0; i < n; ++i) {
    qcost[i] = static_cast<std::size_t>(std::ceil(queries[i].remaining / unit));
    value[i] = LossOf(queries[i], metric);
  }

  // Full 2D table: dp[i][w] = max kept loss among the first i queries
  // within quantized capacity w. n and `buckets` are both small, so the
  // table stays in the hundreds of kilobytes.
  std::vector<std::vector<double>> dp(
      n + 1, std::vector<double>(cap + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t w = 0; w <= cap; ++w) {
      dp[i + 1][w] = dp[i][w];
      if (qcost[i] <= w) {
        dp[i + 1][w] =
            std::max(dp[i + 1][w], dp[i][w - qcost[i]] + value[i]);
      }
    }
  }

  // Reconstruct the kept set from the full-capacity cell.
  std::vector<bool> kept(n, false);
  std::size_t w = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (dp[i + 1][w] != dp[i][w]) {
      kept[i] = true;
      w -= qcost[i];
    }
  }

  MaintenancePlan plan;
  WorkUnits kept_remaining = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (kept[i]) {
      kept_remaining += queries[i].remaining;
    } else {
      plan.abort_now.push_back(queries[i].id);
      plan.lost_work += value[i];
    }
  }
  plan.quiescent_time = kept_remaining / rate;
  return plan;
}

}  // namespace mqpi::wlm
