// WlmAdvisor: applies the Section 3 algorithms to a live Rdbms using
// only progress-indicator observables, implementing the paper's three
// experimental methods for the scheduled-maintenance problem:
//
//   kNoPi     - operations O1 + O2: stop admissions, let queries run,
//               abort whatever is unfinished at the deadline.
//   kSinglePi - O1 + O2' + O3 with a single-query PI: abort every query
//               whose t = c/s estimate says it cannot finish by the
//               deadline (the PI has no model of the speed-up aborts
//               cause, which is why it over-aborts).
//   kMultiPi  - O1 + O2' + O3 with the multi-query PI: the Section 3.3
//               greedy knapsack on (e_i, c_i) observables.
//
// Speed-up operations (Sections 3.1 / 3.2) block their victims via
// Rdbms::Block.
#pragma once

#include <vector>

#include "common/status.h"
#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "wlm/maintenance.h"
#include "wlm/speedup.h"

namespace mqpi::wlm {

enum class MaintenanceMethod { kNoPi, kSinglePi, kMultiPi };

class WlmAdvisor {
 public:
  /// `db` must outlive the advisor.
  explicit WlmAdvisor(sched::Rdbms* db) : db_(db) {}

  /// Section 3.1: chooses h victims for `target` from current
  /// observables and blocks them. Uses the equal-priority O(n) fast
  /// path when every running query has the same weight and h == 1.
  Result<SpeedupChoice> SpeedUpQuery(QueryId target, int h = 1);

  /// Section 3.2: chooses and blocks the victim whose blocking most
  /// improves everyone else's total response time.
  Result<MultiSpeedupChoice> SpeedUpOthers();

  /// Section 3.1's first resort: raises `target` to `priority` and
  /// returns the predicted effect on its remaining time. Fails if the
  /// target is not running.
  Result<PriorityRaiseAdvice> SpeedUpByPriority(QueryId target,
                                                Priority priority);

  /// Section 3.3 decision at the current instant for maintenance
  /// `deadline` seconds ahead: closes admission (O1) and aborts the
  /// method's chosen victims (O2'). For kSinglePi, `pis` supplies the
  /// per-query single-PI estimates; it may be nullptr for other
  /// methods. Returns the plan that was applied.
  Result<MaintenancePlan> PrepareMaintenance(SimTime deadline,
                                             LossMetric metric,
                                             MaintenanceMethod method,
                                             const pi::PiManager* pis);

  /// Adaptive revision (Section 4): re-runs the kMultiPi decision with
  /// the remaining time and current (refreshed) estimates, aborting any
  /// queries that have become hopeless. Call periodically between the
  /// decision instant and the deadline.
  Result<MaintenancePlan> ReviseMaintenance(SimTime remaining_deadline,
                                            LossMetric metric);

  /// The deadline action of O2/O3: aborts every query that has not
  /// finished (running, blocked, or queued). Returns their infos as of
  /// the abort instant.
  std::vector<sched::QueryInfo> AbortAllUnfinished();

 private:
  std::vector<pi::QueryLoad> RunningLoads() const;

  sched::Rdbms* db_;
};

}  // namespace mqpi::wlm
