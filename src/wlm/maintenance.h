// Section 3.3: the scheduled maintenance problem.
//
// Maintenance starts at (relative) time t. Aborting query Q_i at time 0
// shortens the system quiescent time by V_i = c_i / C and loses
//   Case 1 (kCompletedWork): e_i       — work already done, or
//   Case 2 (kTotalCost):     e_i + c_i — the aborted query's total cost
//                                        (it must rerun later).
// Choosing which queries to abort so the rest quiesce by t with minimal
// loss is a knapsack problem. The paper's method is greedy: re-sort
// ascending loss_i / V_i and abort in that order until the quiescent
// time fits. We implement that greedy, plus an exact dynamic-program
// knapsack used as the "theoretical limitation" curve of Figure 11.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace mqpi::wlm {

struct MaintenanceQuery {
  QueryId id = kInvalidQueryId;
  /// e_i: work completed so far.
  WorkUnits completed = 0.0;
  /// c_i: remaining cost (an estimate for live planning; exact for the
  /// theoretical-limit oracle).
  WorkUnits remaining = 0.0;
};

enum class LossMetric {
  kCompletedWork,  // Case 1: lose what aborted queries had done
  kTotalCost,      // Case 2: unfinished work (aborted queries rerun)
};

struct MaintenancePlan {
  /// Queries to abort at time 0, in abort order.
  std::vector<QueryId> abort_now;
  /// Total loss of the aborted set under the chosen metric.
  double lost_work = 0.0;
  /// Predicted quiescent time of the surviving queries.
  SimTime quiescent_time = 0.0;
};

class MaintenancePlanner {
 public:
  /// The paper's greedy: abort in ascending loss/V order until the
  /// survivors' quiescent time (sum of remaining costs / C) fits within
  /// `deadline`. Never aborts more than necessary.
  static Result<MaintenancePlan> PlanGreedy(
      const std::vector<MaintenanceQuery>& queries, SimTime deadline,
      double rate, LossMetric metric);

  /// Exact 0/1 knapsack (dynamic program on a quantized cost grid):
  /// keeps the max-loss-value subset whose total remaining cost fits in
  /// C * deadline; everything else is aborted. `buckets` controls the
  /// quantization resolution.
  static Result<MaintenancePlan> PlanOptimal(
      const std::vector<MaintenanceQuery>& queries, SimTime deadline,
      double rate, LossMetric metric, int buckets = 4096);

  /// Loss of one query under a metric.
  static double LossOf(const MaintenanceQuery& q, LossMetric metric) {
    return metric == LossMetric::kCompletedWork ? q.completed
                                                : q.completed + q.remaining;
  }
};

}  // namespace mqpi::wlm
