// Section 3.1 / 3.2: victim selection for query speed-up.
//
// Single-query speed up (§3.1): block h victim queries to shorten the
// remaining execution time of a target query Q_i as much as possible.
// With queries sorted by c/w (the standard-case finish order) and the
// target at position i, blocking a later-finishing victim Q_m (m > i)
// saves T_m = w_m * sum_{j<=i} t_j / W_j, while blocking an
// earlier-finishing victim (m < i) saves T_m = c_m / C. The optimal
// victim maximizes T_m over both sets; benefits are additive, so the
// greedy choice for h > 1 is the h largest benefits. O(n log n).
//
// When all priorities are equal the solution degenerates (paper §3.1):
// any query finishing after the target is optimal; if the target
// finishes last, the victim is the query with the largest remaining
// cost. O(n), no sorting.
//
// Multiple-query speed up (§3.2): block one victim to maximize the
// total response-time improvement of the other n-1 queries,
// R_m = w_m * sum_{j<=m} (n-j) * t_j / W_j. O(n log n).
#pragma once

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pi/stage_profile.h"

namespace mqpi::wlm {

struct SpeedupChoice {
  /// Chosen victims, in decreasing benefit order.
  std::vector<QueryId> victims;
  /// Predicted total shortening of the target's remaining time.
  SimTime time_saved = 0.0;
};

/// Section 3.1's first resort: "A natural choice is to increase the
/// priority of Q_i." Predicted effect of re-weighting the target.
struct PriorityRaiseAdvice {
  /// Remaining time at the current weight.
  SimTime current_remaining = 0.0;
  /// Remaining time if the target runs at the new weight.
  SimTime new_remaining = 0.0;
  SimTime time_saved = 0.0;
};

class SingleQuerySpeedup {
 public:
  /// Chooses the optimal h victims to block so that `target` speeds up
  /// most. Fails if target is unknown or h asks for more victims than
  /// there are other queries.
  static Result<SpeedupChoice> ChooseVictims(
      const std::vector<pi::QueryLoad>& running, QueryId target, int h,
      double rate);

  /// The equal-priority O(n) special case: returns one victim without
  /// sorting. All weights must be equal (checked).
  static Result<QueryId> ChooseVictimEqualPriority(
      const std::vector<pi::QueryLoad>& running, QueryId target);

  /// Exact benefit of blocking `victim`, computed from first principles
  /// (two stage profiles). Used by tests and the brute-force oracle.
  static Result<SimTime> ExactBenefit(
      const std::vector<pi::QueryLoad>& running, QueryId target,
      QueryId victim, double rate);

  /// Predicts the effect of changing the target's weight (raising its
  /// priority) while everything else keeps running — the option the
  /// paper considers before blocking victims.
  static Result<PriorityRaiseAdvice> EvaluateWeightChange(
      const std::vector<pi::QueryLoad>& running, QueryId target,
      double new_weight, double rate);
};

struct MultiSpeedupChoice {
  QueryId victim = kInvalidQueryId;
  /// Predicted improvement in total response time of the other queries.
  SimTime total_response_improvement = 0.0;
};

class MultiQuerySpeedup {
 public:
  /// Chooses the victim whose blocking most improves the total response
  /// time of all other queries.
  static Result<MultiSpeedupChoice> ChooseVictim(
      const std::vector<pi::QueryLoad>& running, double rate);

  /// Exact improvement from blocking `victim` (two stage profiles).
  static Result<SimTime> ExactImprovement(
      const std::vector<pi::QueryLoad>& running, QueryId victim,
      double rate);
};

}  // namespace mqpi::wlm
