// Section 3.1 / 3.2: victim selection for query speed-up.
//
// Single-query speed up (§3.1): block h victim queries to shorten the
// remaining execution time of a target query Q_i as much as possible.
// With queries sorted by c/w (the standard-case finish order) and the
// target at position i, blocking a later-finishing victim Q_m (m > i)
// saves T_m = w_m * sum_{j<=i} t_j / W_j, while blocking an
// earlier-finishing victim (m < i) saves T_m = c_m / C. The optimal
// victim maximizes T_m over both sets; the greedy choice for h > 1 is
// the h largest benefits, and their sum is the exact combined
// benefit. O(n log n).
//
// On additivity: within the Section 2.2 model the per-victim benefits
// compose *exactly*, not approximately. Removing a victim never
// changes any survivor's finish threshold v_j = c_j / w_j, and the
// target's remaining time
//     r_i = (1/C) * [sum_{v_j <= v_i} c_j + v_i * sum_{v_j > v_i} w_j]
// is linear in the removed set, so blocking {Q_a, Q_b} saves exactly
// T_a + T_b (the telescoped K = sum_{j<=i} t_j / W_j equals v_i / C
// regardless of which other victims are gone; ExactBenefit-based
// cross-check in the tests). What IS an approximation is the model
// itself: `time_saved` assumes blocked victims stay blocked for the
// target's whole remaining run. A workload manager that later resumes
// a victim returns its weight to the pool early and recovers less
// than the predicted saving — the prediction is an upper bound under
// resumption, not an additivity artifact.
//
// When all priorities are equal the solution degenerates (paper §3.1):
// any query finishing after the target is optimal; if the target
// finishes last, the victim is the query with the largest remaining
// cost. O(n), no sorting.
//
// Multiple-query speed up (§3.2): block one victim to maximize the
// total response-time improvement of the other n-1 queries,
// R_m = w_m * sum_{j<=m} (n-j) * t_j / W_j. O(n log n).
#pragma once

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pi/incremental_forecast.h"
#include "pi/stage_profile.h"

namespace mqpi::wlm {

struct SpeedupChoice {
  /// Chosen victims, in decreasing benefit order.
  std::vector<QueryId> victims;
  /// Predicted total shortening of the target's remaining time.
  SimTime time_saved = 0.0;
};

/// Section 3.1's first resort: "A natural choice is to increase the
/// priority of Q_i." Predicted effect of re-weighting the target.
struct PriorityRaiseAdvice {
  /// Remaining time at the current weight.
  SimTime current_remaining = 0.0;
  /// Remaining time if the target runs at the new weight.
  SimTime new_remaining = 0.0;
  SimTime time_saved = 0.0;
};

class SingleQuerySpeedup {
 public:
  /// Chooses the optimal h victims to block so that `target` speeds up
  /// most. Fails if target is unknown or h asks for more victims than
  /// there are other queries.
  static Result<SpeedupChoice> ChooseVictims(
      const std::vector<pi::QueryLoad>& running, QueryId target, int h,
      double rate);

  /// Same selection served from a live incremental engine: each
  /// candidate's benefit is an O(1) point query (no stage profile is
  /// built at all), so a fan-out over n candidates costs O(n log n)
  /// where the ExactBenefit loop costs O(n^2 log n). Identical
  /// victims and time_saved as the vector overload (cross-checked).
  static Result<SpeedupChoice> ChooseVictims(
      const pi::IncrementalForecast& engine, QueryId target, int h,
      double rate);

  /// The equal-priority O(n) special case: returns one victim without
  /// sorting. All weights must be equal (checked).
  static Result<QueryId> ChooseVictimEqualPriority(
      const std::vector<pi::QueryLoad>& running, QueryId target);

  /// Exact benefit of blocking `victim`, computed from first principles
  /// (two stage profiles). Used by tests and the brute-force oracle.
  static Result<SimTime> ExactBenefit(
      const std::vector<pi::QueryLoad>& running, QueryId target,
      QueryId victim, double rate);

  /// Engine-backed ExactBenefit: the same value as the two-profile
  /// computation (additivity is exact in-model, see the header note)
  /// in O(log n) instead of O(n log n).
  static Result<SimTime> ExactBenefit(const pi::IncrementalForecast& engine,
                                      QueryId target, QueryId victim,
                                      double rate);

  /// Predicts the effect of changing the target's weight (raising its
  /// priority) while everything else keeps running — the option the
  /// paper considers before blocking victims.
  static Result<PriorityRaiseAdvice> EvaluateWeightChange(
      const std::vector<pi::QueryLoad>& running, QueryId target,
      double new_weight, double rate);
};

struct MultiSpeedupChoice {
  QueryId victim = kInvalidQueryId;
  /// Predicted improvement in total response time of the other queries.
  SimTime total_response_improvement = 0.0;
};

class MultiQuerySpeedup {
 public:
  /// Chooses the victim whose blocking most improves the total response
  /// time of all other queries.
  static Result<MultiSpeedupChoice> ChooseVictim(
      const std::vector<pi::QueryLoad>& running, double rate);

  /// Exact improvement from blocking `victim` (two stage profiles).
  static Result<SimTime> ExactImprovement(
      const std::vector<pi::QueryLoad>& running, QueryId victim,
      double rate);
};

}  // namespace mqpi::wlm
