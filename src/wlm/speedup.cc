#include "wlm/speedup.h"

#include <algorithm>
#include <string>

namespace mqpi::wlm {

using pi::QueryLoad;
using pi::StageProfile;

namespace {

Result<std::vector<QueryLoad>> Without(const std::vector<QueryLoad>& loads,
                                       QueryId victim) {
  std::vector<QueryLoad> out;
  out.reserve(loads.size());
  bool found = false;
  for (const QueryLoad& q : loads) {
    if (q.id == victim) {
      found = true;
    } else {
      out.push_back(q);
    }
  }
  if (!found) {
    return Status::NotFound("victim " + std::to_string(victim) +
                            " not among running queries");
  }
  return out;
}

}  // namespace

// ---- SingleQuerySpeedup ------------------------------------------------------

Result<SpeedupChoice> SingleQuerySpeedup::ChooseVictims(
    const std::vector<QueryLoad>& running, QueryId target, int h,
    double rate) {
  if (h < 1) return Status::InvalidArgument("h must be >= 1");
  if (static_cast<std::size_t>(h) >= running.size()) {
    return Status::InvalidArgument(
        "cannot block " + std::to_string(h) + " victims out of " +
        std::to_string(running.size()) + " queries (target must survive)");
  }
  auto profile = StageProfile::Compute(running, rate);
  if (!profile.ok()) return profile.status();
  auto pos = profile->FinishPosition(target);
  if (!pos.ok()) return pos.status();

  // K = sum_{j <= pos} t_j / W_j: the per-unit-weight shortening any
  // later-finishing victim contributes to the target's stages.
  double k_factor = 0.0;
  for (std::size_t j = 0; j <= *pos; ++j) {
    k_factor += profile->stage_durations()[j] / profile->suffix_weights()[j];
  }

  struct Candidate {
    QueryId id;
    SimTime benefit;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(running.size() - 1);
  const auto& order = profile->finish_order();
  for (std::size_t p = 0; p < order.size(); ++p) {
    if (p == *pos) continue;
    const QueryLoad& q = order[p];
    const SimTime benefit =
        p > *pos ? q.weight * k_factor : q.remaining_cost / rate;
    candidates.push_back(Candidate{q.id, benefit});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              return a.id < b.id;
            });

  SpeedupChoice choice;
  for (int i = 0; i < h; ++i) {
    choice.victims.push_back(candidates[static_cast<std::size_t>(i)].id);
    choice.time_saved += candidates[static_cast<std::size_t>(i)].benefit;
  }
  return choice;
}

Result<SpeedupChoice> SingleQuerySpeedup::ChooseVictims(
    const pi::IncrementalForecast& engine, QueryId target, int h,
    double rate) {
  if (h < 1) return Status::InvalidArgument("h must be >= 1");
  if (static_cast<std::size_t>(h) >= engine.size()) {
    return Status::InvalidArgument(
        "cannot block " + std::to_string(h) + " victims out of " +
        std::to_string(engine.size()) + " queries (target must survive)");
  }
  if (!engine.Contains(target)) {
    return Status::NotFound("target " + std::to_string(target) +
                            " not among running queries");
  }
  struct Candidate {
    QueryId id;
    SimTime benefit;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(engine.size() - 1);
  // One O(1) point query per candidate — no stage profile anywhere.
  for (const pi::QueryLoad& q : engine.Entries()) {
    if (q.id == target) continue;
    auto benefit = engine.RemovalBenefit(target, q.id, rate);
    if (!benefit.ok()) return benefit.status();
    candidates.push_back(Candidate{q.id, *benefit});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              return a.id < b.id;
            });

  SpeedupChoice choice;
  for (int i = 0; i < h; ++i) {
    choice.victims.push_back(candidates[static_cast<std::size_t>(i)].id);
    choice.time_saved += candidates[static_cast<std::size_t>(i)].benefit;
  }
  return choice;
}

Result<SimTime> SingleQuerySpeedup::ExactBenefit(
    const pi::IncrementalForecast& engine, QueryId target, QueryId victim,
    double rate) {
  return engine.RemovalBenefit(target, victim, rate);
}

Result<QueryId> SingleQuerySpeedup::ChooseVictimEqualPriority(
    const std::vector<QueryLoad>& running, QueryId target) {
  if (running.size() < 2) {
    return Status::InvalidArgument("need at least two running queries");
  }
  const QueryLoad* target_load = nullptr;
  for (const QueryLoad& q : running) {
    if (q.id == target) target_load = &q;
  }
  if (target_load == nullptr) {
    return Status::NotFound("target " + std::to_string(target) +
                            " not among running queries");
  }
  for (const QueryLoad& q : running) {
    if (q.weight != running.front().weight) {
      return Status::FailedPrecondition(
          "equal-priority fast path requires uniform weights");
    }
  }
  // Single scan: any query with remaining cost >= the target's finishes
  // no earlier than the target, so it is an optimal victim; otherwise
  // fall back to the largest remaining cost (paper §3.1, special case).
  const QueryLoad* best = nullptr;
  for (const QueryLoad& q : running) {
    if (q.id == target) continue;
    if (q.remaining_cost >= target_load->remaining_cost) return q.id;
    if (best == nullptr || q.remaining_cost > best->remaining_cost) {
      best = &q;
    }
  }
  return best->id;
}

Result<SimTime> SingleQuerySpeedup::ExactBenefit(
    const std::vector<QueryLoad>& running, QueryId target, QueryId victim,
    double rate) {
  if (target == victim) {
    return Status::InvalidArgument("target cannot be its own victim");
  }
  auto before = StageProfile::Compute(running, rate);
  if (!before.ok()) return before.status();
  auto r_before = before->RemainingTimeOf(target);
  if (!r_before.ok()) return r_before.status();

  auto reduced = Without(running, victim);
  if (!reduced.ok()) return reduced.status();
  auto after = StageProfile::Compute(std::move(*reduced), rate);
  if (!after.ok()) return after.status();
  auto r_after = after->RemainingTimeOf(target);
  if (!r_after.ok()) return r_after.status();
  return *r_before - *r_after;
}

Result<PriorityRaiseAdvice> SingleQuerySpeedup::EvaluateWeightChange(
    const std::vector<QueryLoad>& running, QueryId target, double new_weight,
    double rate) {
  if (new_weight <= 0.0) {
    return Status::InvalidArgument("new weight must be positive");
  }
  auto before = StageProfile::Compute(running, rate);
  if (!before.ok()) return before.status();
  auto r_before = before->RemainingTimeOf(target);
  if (!r_before.ok()) return r_before.status();

  std::vector<QueryLoad> reweighted = running;
  for (QueryLoad& q : reweighted) {
    if (q.id == target) q.weight = new_weight;
  }
  auto after = StageProfile::Compute(std::move(reweighted), rate);
  if (!after.ok()) return after.status();
  auto r_after = after->RemainingTimeOf(target);
  if (!r_after.ok()) return r_after.status();

  PriorityRaiseAdvice advice;
  advice.current_remaining = *r_before;
  advice.new_remaining = *r_after;
  advice.time_saved = *r_before - *r_after;
  return advice;
}

// ---- MultiQuerySpeedup -------------------------------------------------------

Result<MultiSpeedupChoice> MultiQuerySpeedup::ChooseVictim(
    const std::vector<QueryLoad>& running, double rate) {
  if (running.size() < 2) {
    return Status::InvalidArgument("need at least two running queries");
  }
  auto profile = StageProfile::Compute(running, rate);
  if (!profile.ok()) return profile.status();

  const std::size_t n = profile->num_queries();
  // Prefix P_p = sum_{j <= p} (n-1-j) * t_j / W_j; R_p = w_p * P_p.
  MultiSpeedupChoice best;
  double prefix = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    prefix += static_cast<double>(n - 1 - p) *
              profile->stage_durations()[p] / profile->suffix_weights()[p];
    const QueryLoad& q = profile->finish_order()[p];
    const SimTime improvement = q.weight * prefix;
    if (best.victim == kInvalidQueryId ||
        improvement > best.total_response_improvement) {
      best.victim = q.id;
      best.total_response_improvement = improvement;
    }
  }
  return best;
}

Result<SimTime> MultiQuerySpeedup::ExactImprovement(
    const std::vector<QueryLoad>& running, QueryId victim, double rate) {
  auto before = StageProfile::Compute(running, rate);
  if (!before.ok()) return before.status();
  auto pos = before->FinishPosition(victim);
  if (!pos.ok()) return pos.status();
  double total_before = 0.0;
  for (std::size_t i = 0; i < before->num_queries(); ++i) {
    if (i == *pos) continue;
    total_before += before->remaining_times()[i];
  }

  auto reduced = Without(running, victim);
  if (!reduced.ok()) return reduced.status();
  auto after = StageProfile::Compute(std::move(*reduced), rate);
  if (!after.ok()) return after.status();
  double total_after = 0.0;
  for (const SimTime r : after->remaining_times()) total_after += r;
  return total_before - total_after;
}

}  // namespace mqpi::wlm
