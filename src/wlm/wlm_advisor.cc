#include "wlm/wlm_advisor.h"

#include <algorithm>

#include "obs/tracer.h"

namespace mqpi::wlm {

std::vector<pi::QueryLoad> WlmAdvisor::RunningLoads() const {
  std::vector<pi::QueryLoad> loads;
  for (const auto& info : db_->RunningQueries()) {
    loads.push_back(
        pi::QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
  }
  return loads;
}

Result<SpeedupChoice> WlmAdvisor::SpeedUpQuery(QueryId target, int h) {
  obs::TraceSpan span(obs::GlobalTracer(), "wlm", "speed_up_query", target);
  span.arg("h", h);
  const auto loads = RunningLoads();
  SpeedupChoice choice;
  const bool uniform =
      !loads.empty() &&
      std::all_of(loads.begin(), loads.end(), [&](const pi::QueryLoad& q) {
        return q.weight == loads.front().weight;
      });
  if (h == 1 && uniform) {
    auto victim = SingleQuerySpeedup::ChooseVictimEqualPriority(loads, target);
    if (!victim.ok()) return victim.status();
    auto benefit = SingleQuerySpeedup::ExactBenefit(
        loads, target, *victim, db_->EffectiveRate());
    choice.victims.push_back(*victim);
    choice.time_saved = benefit.ok() ? *benefit : 0.0;
  } else {
    auto chosen = SingleQuerySpeedup::ChooseVictims(loads, target, h,
                                                    db_->EffectiveRate());
    if (!chosen.ok()) return chosen.status();
    choice = std::move(*chosen);
  }
  for (QueryId victim : choice.victims) {
    MQPI_RETURN_NOT_OK(db_->Block(victim));
  }
  return choice;
}

Result<MultiSpeedupChoice> WlmAdvisor::SpeedUpOthers() {
  obs::TraceSpan span(obs::GlobalTracer(), "wlm", "speed_up_others");
  auto choice =
      MultiQuerySpeedup::ChooseVictim(RunningLoads(), db_->EffectiveRate());
  if (!choice.ok()) return choice.status();
  MQPI_RETURN_NOT_OK(db_->Block(choice->victim));
  return choice;
}

Result<PriorityRaiseAdvice> WlmAdvisor::SpeedUpByPriority(QueryId target,
                                                          Priority priority) {
  auto info = db_->info(target);
  if (!info.ok()) return info.status();
  if (info->state != sched::QueryState::kRunning) {
    return Status::FailedPrecondition("target is not running");
  }
  const double new_weight = db_->options().weights.WeightOf(priority);
  auto advice = SingleQuerySpeedup::EvaluateWeightChange(
      RunningLoads(), target, new_weight, db_->EffectiveRate());
  if (!advice.ok()) return advice.status();
  MQPI_RETURN_NOT_OK(db_->SetPriority(target, priority));
  return advice;
}

Result<MaintenancePlan> WlmAdvisor::PrepareMaintenance(
    SimTime deadline, LossMetric metric, MaintenanceMethod method,
    const pi::PiManager* pis) {
  obs::TraceSpan span(obs::GlobalTracer(), "wlm", "prepare_maintenance");
  span.arg("deadline", deadline);
  span.arg("method", static_cast<double>(method));
  db_->SetAdmissionOpen(false);  // operation O1

  switch (method) {
    case MaintenanceMethod::kNoPi: {
      // O2: let everything run; the deadline abort happens later.
      return MaintenancePlan{};
    }

    case MaintenanceMethod::kSinglePi: {
      if (pis == nullptr) {
        return Status::InvalidArgument(
            "kSinglePi needs a PiManager for the per-query estimates");
      }
      // Abort, largest estimated remaining cost first, every query the
      // single-query PI predicts cannot finish by the deadline.
      struct Hopeless {
        QueryId id;
        WorkUnits remaining;
        double loss;
      };
      std::vector<Hopeless> hopeless;
      for (const auto& info : db_->RunningQueries()) {
        auto estimate = pis->EstimateSingle(info.id);
        if (!estimate.ok()) continue;  // untracked: leave it alone
        if (*estimate > deadline) {
          hopeless.push_back(Hopeless{
              info.id, info.estimated_remaining_cost,
              metric == LossMetric::kCompletedWork
                  ? info.completed_work
                  : info.completed_work + info.estimated_remaining_cost});
        }
      }
      std::sort(hopeless.begin(), hopeless.end(),
                [](const Hopeless& a, const Hopeless& b) {
                  return a.remaining > b.remaining;
                });
      MaintenancePlan plan;
      for (const Hopeless& h : hopeless) {
        MQPI_RETURN_NOT_OK(db_->Abort(h.id));
        plan.abort_now.push_back(h.id);
        plan.lost_work += h.loss;
      }
      WorkUnits surviving = 0.0;
      for (const auto& info : db_->RunningQueries()) {
        surviving += info.estimated_remaining_cost;
      }
      plan.quiescent_time = surviving / db_->EffectiveRate();
      return plan;
    }

    case MaintenanceMethod::kMultiPi: {
      std::vector<MaintenanceQuery> queries;
      for (const auto& info : db_->RunningQueries()) {
        queries.push_back(MaintenanceQuery{
            info.id, info.completed_work, info.estimated_remaining_cost});
      }
      auto plan = MaintenancePlanner::PlanGreedy(
          queries, deadline, db_->EffectiveRate(), metric);
      if (!plan.ok()) return plan.status();
      for (QueryId id : plan->abort_now) {
        MQPI_RETURN_NOT_OK(db_->Abort(id));
      }
      return plan;
    }
  }
  return Status::Internal("unreachable maintenance method");
}

Result<MaintenancePlan> WlmAdvisor::ReviseMaintenance(
    SimTime remaining_deadline, LossMetric metric) {
  return PrepareMaintenance(remaining_deadline, metric,
                            MaintenanceMethod::kMultiPi, nullptr);
}

std::vector<sched::QueryInfo> WlmAdvisor::AbortAllUnfinished() {
  obs::TraceSpan span(obs::GlobalTracer(), "wlm", "abort_all_unfinished");
  // Snapshot first: aborting a running query admits queued queries into
  // the freed slot, so sweeping live views would miss them.
  std::vector<sched::QueryInfo> victims;
  for (const auto& info : db_->AllQueries()) {
    if (info.state == sched::QueryState::kRunning ||
        info.state == sched::QueryState::kBlocked ||
        info.state == sched::QueryState::kQueued) {
      victims.push_back(info);
    }
  }
  std::vector<sched::QueryInfo> aborted;
  for (const auto& info : victims) {
    if (db_->Abort(info.id).ok()) aborted.push_back(info);
  }
  return aborted;
}

}  // namespace mqpi::wlm
