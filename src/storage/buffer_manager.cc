#include "storage/buffer_manager.h"

namespace mqpi::storage {

BufferManager::BufferManager(BufferOptions options)
    : options_(options) {}

BufferManager::AccessResult BufferManager::AccessDetailed(PageId page) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return AccessResult{options_.cost_per_hit, true};
  }
  ++stats_.misses;
  lru_.push_front(page);
  map_[page] = lru_.begin();
  if (lru_.size() > options_.capacity_pages) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  return AccessResult{options_.cost_per_miss, false};
}

void BufferManager::Reset() {
  stats_ = BufferStats{};
  lru_.clear();
  map_.clear();
}

}  // namespace mqpi::storage
