// BufferManager: the work-unit meter.
//
// The paper defines one work unit U as "the amount of work required to
// process one page of bytes". Every operator routes its page touches
// through a BufferAccount, which (a) charges exactly 1 U per page
// processed, and (b) maintains an LRU-simulated hit/miss statistic so
// experiments can report buffer behaviour. Charging is independent of
// hit/miss by default — U measures processing, not I/O — but a miss
// surcharge can be configured to model I/O-bound regimes (used by the
// assumption-violation ablation).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/units.h"
#include "storage/page.h"

namespace mqpi::storage {

struct BufferOptions {
  /// Pages the simulated buffer pool can hold.
  std::size_t capacity_pages = 8192;
  /// Work units charged for a page found in the pool.
  double cost_per_hit = 1.0;
  /// Work units charged for a page faulted in. Equal to cost_per_hit by
  /// default (U counts processing); raise it to emulate I/O pressure.
  double cost_per_miss = 1.0;
};

struct BufferStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Shared LRU page pool. Not thread-safe: the whole simulator is
/// single-threaded by design (deterministic simulated time).
class BufferManager {
 public:
  explicit BufferManager(BufferOptions options = {});

  struct AccessResult {
    WorkUnits charge = 0.0;
    bool hit = false;
  };

  /// Touches a page: updates LRU + stats, returns the work-unit charge.
  WorkUnits Access(PageId page) { return AccessDetailed(page).charge; }

  /// Same, also reporting whether the page was resident.
  AccessResult AccessDetailed(PageId page);

  const BufferOptions& options() const { return options_; }
  const BufferStats& stats() const { return stats_; }
  std::size_t resident_pages() const { return lru_.size(); }

  /// Drops all cached pages and zeroes statistics.
  void Reset();

 private:
  BufferOptions options_;
  BufferStats stats_;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> map_;
};

/// Per-query view over the shared BufferManager: accumulates the work
/// units this query has been charged. Operators hold a BufferAccount*.
class BufferAccount {
 public:
  explicit BufferAccount(BufferManager* manager) : manager_(manager) {}

  /// Touch one page and accumulate its charge.
  void Touch(PageId page) {
    const auto result = manager_->AccessDetailed(page);
    charged_ += result.charge;
    ++pages_;
    if (result.hit) ++hits_;
  }

  /// Charge abstract work without a concrete page (e.g. CPU-only work
  /// for expression-heavy operators or synthetic queries).
  void Charge(WorkUnits units) { charged_ += units; }

  WorkUnits charged() const { return charged_; }

  /// Pages this account touched (EXPLAIN ANALYZE-style statistics).
  std::uint64_t pages_accessed() const { return pages_; }
  std::uint64_t buffer_hits() const { return hits_; }
  double hit_rate() const {
    return pages_ ? static_cast<double>(hits_) /
                        static_cast<double>(pages_)
                  : 0.0;
  }

 private:
  BufferManager* manager_;
  WorkUnits charged_ = 0.0;
  std::uint64_t pages_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace mqpi::storage
