// Equi-width column histograms — the statistics a cost-based optimizer
// keeps for selectivity estimation. Analyze() builds one per numeric
// column; the planner uses them to estimate result cardinalities (e.g.
// what fraction of part tuples satisfy the paper's price predicate).
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace mqpi::storage {

class Histogram {
 public:
  /// Builds an equi-width histogram over a numeric (int64/double)
  /// column. Fails on string columns. `buckets` >= 1.
  static Result<Histogram> Build(const Table& table, std::size_t column,
                                 int buckets = 32);

  std::size_t num_rows() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }

  /// Estimated fraction of rows with value > v (linear interpolation
  /// within the containing bucket).
  double SelectivityGreaterThan(double v) const;

  /// Estimated fraction of rows with value <= v.
  double SelectivityAtMost(double v) const {
    return 1.0 - SelectivityGreaterThan(v);
  }

  /// Estimated mean of the column (bucket midpoints weighted by count).
  double EstimatedMean() const;

  /// Exact number of distinct values (computed at build time).
  std::size_t num_distinct() const { return num_distinct_; }

 private:
  Histogram() = default;

  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
  std::size_t num_distinct_ = 0;
  std::vector<std::size_t> counts_;
};

}  // namespace mqpi::storage
