// Page geometry constants and identifiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mqpi::storage {

/// Logical page size. 8 KiB, matching PostgreSQL (the paper's prototype
/// host). One page processed == one work unit U.
inline constexpr std::size_t kPageBytes = 8192;

/// Identifier of a table or index registered in the catalog.
using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObjectId = ~ObjectId{0};

/// Row position within a table's heap (dense, append-only).
using RowId = std::uint64_t;

/// A page within one storage object.
struct PageId {
  ObjectId object = kInvalidObjectId;
  std::uint64_t page_no = 0;

  bool operator==(const PageId& other) const = default;
};

struct PageIdHash {
  std::size_t operator()(const PageId& id) const {
    std::size_t h = std::hash<std::uint64_t>{}(id.page_no);
    h ^= std::hash<std::uint32_t>{}(id.object) + 0x9e3779b9 + (h << 6) +
         (h >> 2);
    return h;
  }
};

}  // namespace mqpi::storage
