#include "storage/index.h"

#include <algorithm>
#include <cassert>

namespace mqpi::storage {

namespace {
// Key (8) + RowId (8) + slot/line-pointer overhead (4).
constexpr std::size_t kEntryBytes = 20;
}  // namespace

Result<Index> Index::Build(ObjectId id, std::string name, const Table& table,
                           const std::string& column) {
  auto col = table.schema().ColumnIndex(column);
  if (!col.ok()) return col.status();
  if (table.schema().column(*col).type != ColumnType::kInt64) {
    return Status::InvalidArgument("index column '" + column +
                                   "' is not int64");
  }
  std::vector<Entry> entries;
  entries.reserve(table.num_tuples());
  for (RowId r = 0; r < table.num_tuples(); ++r) {
    entries.push_back(Entry{AsInt(table.Get(r).at(*col)), r});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.key != b.key ? a.key < b.key : a.row < b.row;
            });
  return Index(id, std::move(name), table.id(), *col, std::move(entries));
}

Index::Index(ObjectId id, std::string name, ObjectId table_id,
             std::size_t column_index, std::vector<Entry> entries)
    : id_(id),
      name_(std::move(name)),
      table_id_(table_id),
      column_index_(column_index),
      entries_(std::move(entries)) {
  leaf_fanout_ = std::max<std::size_t>(2, kPageBytes / kEntryBytes);
  std::uint64_t leaves =
      entries_.empty()
          ? 1
          : (entries_.size() + leaf_fanout_ - 1) / leaf_fanout_;
  // Inner fanout: separator key (8) + child pointer (8).
  const std::uint64_t inner_fanout = kPageBytes / 16;
  num_pages_ = leaves;
  height_ = 1;
  std::uint64_t level = leaves;
  while (level > 1) {
    level = (level + inner_fanout - 1) / inner_fanout;
    num_pages_ += level;
    ++height_;
  }
  num_distinct_ = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i == 0 || entries_[i].key != entries_[i - 1].key) ++num_distinct_;
  }
}

std::span<const Index::Entry> Index::Lookup(std::int64_t key) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::int64_t k) { return e.key < k; });
  auto hi = std::upper_bound(
      lo, entries_.end(), key,
      [](std::int64_t k, const Entry& e) { return k < e.key; });
  return {entries_.data() + (lo - entries_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::span<const Index::Entry> Index::LookupRange(std::int64_t lo,
                                                 std::int64_t hi) const {
  if (lo > hi) return {};
  auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const Entry& e, std::int64_t k) { return e.key < k; });
  auto end = std::upper_bound(
      begin, entries_.end(), hi,
      [](std::int64_t k, const Entry& e) { return k < e.key; });
  return {entries_.data() + (begin - entries_.begin()),
          static_cast<std::size_t>(end - begin)};
}

std::uint64_t Index::LeafPagesForMatches(std::size_t matches) const {
  if (matches == 0) return 1;  // the probe still reads one leaf
  return (matches + leaf_fanout_ - 1) / leaf_fanout_;
}

std::int64_t Index::min_key() const {
  assert(!entries_.empty());
  return entries_.front().key;
}

std::int64_t Index::max_key() const {
  assert(!entries_.empty());
  return entries_.back().key;
}

}  // namespace mqpi::storage
