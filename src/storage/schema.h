// Table schemas: ordered, typed, named columns. The row width derived
// from the column types determines how many tuples fit on one page,
// which in turn defines the work-unit cost of scanning a table (the
// paper's U = work to process one page of bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mqpi::storage {

enum class ColumnType : std::uint8_t { kInt64, kDouble, kString };

/// Nominal on-disk width in bytes, used for page-capacity accounting.
std::size_t ColumnWidth(ColumnType type);

struct Column {
  std::string name;
  ColumnType type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  std::size_t num_columns() const { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or NotFound.
  Result<std::size_t> ColumnIndex(const std::string& name) const;

  /// Sum of column widths plus a fixed per-tuple header.
  std::size_t RowWidthBytes() const { return row_width_; }

 private:
  std::vector<Column> columns_;
  std::size_t row_width_ = 0;
};

}  // namespace mqpi::storage
