#include "storage/catalog.h"

namespace mqpi::storage {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(next_id_++, name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Result<Index*> Catalog::CreateIndex(const std::string& index_name,
                                    const std::string& table_name,
                                    const std::string& column) {
  if (indexes_.count(index_name)) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  auto table = GetTable(table_name);
  if (!table.ok()) return table.status();
  auto built = Index::Build(next_id_++, index_name, **table, column);
  if (!built.ok()) return built.status();
  auto index = std::make_unique<Index>(std::move(built).value());
  Index* raw = index.get();
  indexes_.emplace(index_name, std::move(index));
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  const ObjectId table_id = it->second->id();
  // Cascade: indexes on this table.
  for (auto index_it = indexes_.begin(); index_it != indexes_.end();) {
    if (index_it->second->table_id() == table_id) {
      index_it = indexes_.erase(index_it);
    } else {
      ++index_it;
    }
  }
  // Statistics and histograms.
  stats_.erase(name);
  const std::string prefix = name + ".";
  for (auto hist_it = histograms_.begin(); hist_it != histograms_.end();) {
    if (hist_it->first.rfind(prefix, 0) == 0) {
      hist_it = histograms_.erase(hist_it);
    } else {
      ++hist_it;
    }
  }
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& name) {
  if (indexes_.erase(name) == 0) {
    return Status::NotFound("index '" + name + "' not found");
  }
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return static_cast<const Table*>(it->second.get());
}

Result<const Index*> Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + name + "' not found");
  }
  return static_cast<const Index*>(it->second.get());
}

Result<const Index*> Catalog::IndexOnTable(ObjectId table_id) const {
  for (const auto& [name, index] : indexes_) {
    if (index->table_id() == table_id) {
      return static_cast<const Index*>(index.get());
    }
  }
  return Status::NotFound("no index on table id " + std::to_string(table_id));
}

Status Catalog::Analyze(const std::string& table_name) {
  auto table = GetTable(table_name);
  if (!table.ok()) return table.status();
  TableStats stats;
  stats.num_tuples = (*table)->num_tuples();
  stats.num_pages = (*table)->num_pages();
  auto index = IndexOnTable((*table)->id());
  if (index.ok() && (*index)->num_entries() > 0) {
    stats.min_key = (*index)->min_key();
    stats.max_key = (*index)->max_key();
    stats.num_distinct_keys = (*index)->num_distinct_keys();
    stats.avg_matches_per_key =
        stats.num_distinct_keys
            ? static_cast<double>(stats.num_tuples) /
                  static_cast<double>(stats.num_distinct_keys)
            : 0.0;
  }
  stats_[table_name] = stats;

  // Column histograms for every numeric column.
  const Schema& schema = (*table)->schema();
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == ColumnType::kString) continue;
    auto histogram = Histogram::Build(**table, c);
    if (histogram.ok()) {
      histograms_.insert_or_assign(table_name + "." + schema.column(c).name,
                                   std::move(*histogram));
    }
  }
  return Status::OK();
}

Result<const Histogram*> Catalog::GetHistogram(
    const std::string& table_name, const std::string& column) const {
  auto it = histograms_.find(table_name + "." + column);
  if (it == histograms_.end()) {
    return Status::NotFound("no histogram for " + table_name + "." + column);
  }
  return &it->second;
}

Status Catalog::AnalyzeAll() {
  for (const auto& [name, table] : tables_) {
    MQPI_RETURN_NOT_OK(Analyze(name));
  }
  return Status::OK();
}

Result<TableStats> Catalog::GetStats(const std::string& table_name) const {
  auto it = stats_.find(table_name);
  if (it == stats_.end()) {
    return Status::NotFound("no statistics for table '" + table_name +
                            "' (run Analyze first)");
  }
  return it->second;
}

std::vector<const Table*> Catalog::tables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(table.get());
  return out;
}

std::vector<const Index*> Catalog::indexes() const {
  std::vector<const Index*> out;
  out.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) out.push_back(index.get());
  return out;
}

}  // namespace mqpi::storage
