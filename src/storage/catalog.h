// Catalog: owns tables and indexes, assigns object ids, and holds the
// optimizer statistics produced by Analyze() — the analogue of running
// PostgreSQL's statistics collector before the experiments (paper §5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/histogram.h"
#include "storage/index.h"
#include "storage/table.h"

namespace mqpi::storage {

/// Per-table statistics, as an optimizer would keep them.
struct TableStats {
  std::uint64_t num_tuples = 0;
  std::uint64_t num_pages = 0;
  /// For the indexed join column (if any): domain and density.
  std::int64_t min_key = 0;
  std::int64_t max_key = 0;
  std::uint64_t num_distinct_keys = 0;
  /// Average matching tuples per key (num_tuples / num_distinct_keys).
  double avg_matches_per_key = 0.0;
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; fails on duplicate name.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Builds an index over an existing table's int64 column.
  Result<Index*> CreateIndex(const std::string& index_name,
                             const std::string& table_name,
                             const std::string& column);

  /// Drops a table, its statistics, its histograms, and every index
  /// built on it. Fails if the table does not exist.
  Status DropTable(const std::string& name);

  /// Drops one index. Fails if it does not exist.
  Status DropIndex(const std::string& name);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  Result<const Index*> GetIndex(const std::string& name) const;

  /// First index on the given table (NotFound if none).
  Result<const Index*> IndexOnTable(ObjectId table_id) const;

  /// Recomputes TableStats for one table (exact; the planner adds its
  /// own noise to model imprecise statistics).
  Status Analyze(const std::string& table_name);

  /// Analyze every table.
  Status AnalyzeAll();

  Result<TableStats> GetStats(const std::string& table_name) const;

  /// Column histogram built by Analyze (NotFound before Analyze or for
  /// string columns).
  Result<const Histogram*> GetHistogram(const std::string& table_name,
                                        const std::string& column) const;

  std::vector<const Table*> tables() const;
  std::vector<const Index*> indexes() const;

 private:
  ObjectId next_id_ = 1;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<Index>> indexes_;
  std::unordered_map<std::string, TableStats> stats_;
  // Keyed "table.column".
  std::unordered_map<std::string, Histogram> histograms_;
};

}  // namespace mqpi::storage
