#include "storage/histogram.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace mqpi::storage {

Result<Histogram> Histogram::Build(const Table& table, std::size_t column,
                                   int buckets) {
  if (buckets < 1) {
    return Status::InvalidArgument("histogram needs >= 1 bucket");
  }
  if (column >= table.schema().num_columns()) {
    return Status::OutOfRange("column index " + std::to_string(column) +
                              " out of range");
  }
  if (table.schema().column(column).type == ColumnType::kString) {
    return Status::InvalidArgument("histograms require a numeric column");
  }

  Histogram h;
  h.count_ = table.num_tuples();
  h.counts_.assign(static_cast<std::size_t>(buckets), 0);
  if (h.count_ == 0) return h;

  h.min_ = h.max_ = AsDouble(table.Get(0).at(column));
  for (RowId r = 1; r < table.num_tuples(); ++r) {
    const double v = AsDouble(table.Get(r).at(column));
    h.min_ = std::min(h.min_, v);
    h.max_ = std::max(h.max_, v);
  }
  const double width =
      h.max_ > h.min_ ? (h.max_ - h.min_) / buckets : 1.0;
  std::unordered_set<double> distinct;
  for (RowId r = 0; r < table.num_tuples(); ++r) {
    const double v = AsDouble(table.Get(r).at(column));
    auto b = static_cast<std::size_t>((v - h.min_) / width);
    if (b >= h.counts_.size()) b = h.counts_.size() - 1;
    ++h.counts_[b];
    distinct.insert(v);
  }
  h.num_distinct_ = distinct.size();
  return h;
}

double Histogram::SelectivityGreaterThan(double v) const {
  if (count_ == 0) return 0.0;
  if (v < min_) return 1.0;
  if (v >= max_) return 0.0;
  const double width =
      max_ > min_ ? (max_ - min_) / static_cast<double>(counts_.size()) : 1.0;
  auto bucket = static_cast<std::size_t>((v - min_) / width);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;

  // Rows strictly above the containing bucket...
  std::size_t above = 0;
  for (std::size_t b = bucket + 1; b < counts_.size(); ++b) {
    above += counts_[b];
  }
  // ...plus the interpolated share of the containing bucket.
  const double bucket_lo = min_ + static_cast<double>(bucket) * width;
  const double frac_above = 1.0 - (v - bucket_lo) / width;
  const double est =
      static_cast<double>(above) +
      frac_above * static_cast<double>(counts_[bucket]);
  return est / static_cast<double>(count_);
}

double Histogram::EstimatedMean() const {
  if (count_ == 0) return 0.0;
  const double width =
      max_ > min_ ? (max_ - min_) / static_cast<double>(counts_.size()) : 0.0;
  double sum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double mid = min_ + (static_cast<double>(b) + 0.5) * width;
    sum += mid * static_cast<double>(counts_[b]);
  }
  return sum / static_cast<double>(count_);
}

}  // namespace mqpi::storage
