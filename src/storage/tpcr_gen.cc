#include "storage/tpcr_gen.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace mqpi::storage {

TpcrGenerator::TpcrGenerator(TpcrConfig config)
    : config_(config), rng_(config.seed) {}

std::string TpcrGenerator::PartTableName(int i) {
  return "part_" + std::to_string(i);
}

Status TpcrGenerator::BuildLineitem(Catalog* catalog) {
  Schema schema({{"orderkey", ColumnType::kInt64},
                 {"partkey", ColumnType::kInt64},
                 {"suppkey", ColumnType::kInt64},
                 {"quantity", ColumnType::kDouble},
                 {"extendedprice", ColumnType::kDouble}});
  auto table = catalog->CreateTable("lineitem", std::move(schema));
  if (!table.ok()) return table.status();

  // Per-key match counts: uniform in [m/2, 3m/2] so the mean is exactly
  // the configured matches_per_key while individual keys vary, as the
  // paper's "on average ... 30 lineitem tuples" implies.
  const int m = config_.matches_per_key;
  std::vector<std::int64_t> keys;
  for (std::int64_t key = 1; key <= config_.num_part_keys; ++key) {
    const int count =
        static_cast<int>(rng_.UniformInt(m - m / 2, m + m / 2));
    for (int j = 0; j < count; ++j) keys.push_back(key);
  }
  // Scatter matches across heap pages (random key placement).
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[static_cast<std::size_t>(
                               rng_.UniformInt(0, static_cast<std::int64_t>(
                                                      i - 1)))]);
  }

  std::int64_t orderkey = 1;
  for (std::int64_t key : keys) {
    const double quantity = static_cast<double>(rng_.UniformInt(1, 50));
    const double unit_price = rng_.Uniform(900.0, 1100.0);
    Tuple tuple({Value{orderkey++}, Value{key},
                 Value{rng_.UniformInt(1, 1000)}, Value{quantity},
                 Value{quantity * unit_price}});
    MQPI_RETURN_NOT_OK((*table)->Append(std::move(tuple)));
  }

  auto index =
      catalog->CreateIndex("lineitem_partkey_idx", "lineitem", "partkey");
  if (!index.ok()) return index.status();
  return catalog->Analyze("lineitem");
}

Status TpcrGenerator::BuildPartTable(Catalog* catalog,
                                     const std::string& name,
                                     std::int64_t n_i) {
  const std::int64_t num_tuples = 10 * n_i;
  if (num_tuples > config_.num_part_keys) {
    return Status::InvalidArgument(
        "part table " + name + " needs " + std::to_string(num_tuples) +
        " distinct keys but only " + std::to_string(config_.num_part_keys) +
        " exist; raise TpcrConfig::num_part_keys");
  }
  Schema schema({{"partkey", ColumnType::kInt64},
                 {"retailprice", ColumnType::kDouble}});
  auto table = catalog->CreateTable(name, std::move(schema));
  if (!table.ok()) return table.status();

  // Distinct random partkeys: partial Fisher-Yates over [1, K].
  std::vector<std::int64_t> universe(
      static_cast<std::size_t>(config_.num_part_keys));
  std::iota(universe.begin(), universe.end(), std::int64_t{1});
  for (std::int64_t i = 0; i < num_tuples; ++i) {
    const auto j = static_cast<std::size_t>(
        rng_.UniformInt(i, config_.num_part_keys - 1));
    std::swap(universe[static_cast<std::size_t>(i)], universe[j]);
  }

  // retailprice is centred on the lineitem unit-price range so that the
  // paper's predicate (25% below suggested retail) selects a nontrivial
  // fraction of parts.
  for (std::int64_t i = 0; i < num_tuples; ++i) {
    Tuple tuple({Value{universe[static_cast<std::size_t>(i)]},
                 Value{rng_.Uniform(900.0, 1700.0)}});
    MQPI_RETURN_NOT_OK((*table)->Append(std::move(tuple)));
  }
  return catalog->Analyze(name);
}

}  // namespace mqpi::storage
