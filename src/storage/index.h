// B-tree-style secondary index on an int64 column.
//
// Entries are (key, row) pairs kept sorted; the logical page structure
// (leaf and inner fanout derived from entry width) is modelled exactly,
// because the executor charges one work unit per index page touched on
// every probe — this is what gives the paper's correlated sub-query its
// per-outer-tuple cost.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/table.h"

namespace mqpi::storage {

class Index {
 public:
  struct Entry {
    std::int64_t key;
    RowId row;
  };

  /// Builds an index over `table` on the int64 column `column`.
  /// Fails if the column is missing or not kInt64.
  static Result<Index> Build(ObjectId id, std::string name,
                             const Table& table, const std::string& column);

  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }
  ObjectId table_id() const { return table_id_; }
  std::size_t column_index() const { return column_index_; }

  std::size_t num_entries() const { return entries_.size(); }

  /// Entries per leaf page (key + rowid + slot overhead on kPageBytes).
  std::size_t leaf_fanout() const { return leaf_fanout_; }

  /// Total logical pages: leaves plus inner levels.
  std::uint64_t num_pages() const { return num_pages_; }

  /// Tree height in pages touched per point probe (root..leaf, >= 1).
  std::uint32_t height() const { return height_; }

  /// All entries with the given key (empty span if none).
  std::span<const Entry> Lookup(std::int64_t key) const;

  /// All entries with lo <= key <= hi (empty span if none).
  std::span<const Entry> LookupRange(std::int64_t lo, std::int64_t hi) const;

  /// Leaf pages a probe returning `matches` entries must read (>= 1).
  std::uint64_t LeafPagesForMatches(std::size_t matches) const;

  std::int64_t min_key() const;
  std::int64_t max_key() const;

  /// Number of distinct keys present.
  std::size_t num_distinct_keys() const { return num_distinct_; }

 private:
  Index(ObjectId id, std::string name, ObjectId table_id,
        std::size_t column_index, std::vector<Entry> entries);

  ObjectId id_;
  std::string name_;
  ObjectId table_id_;
  std::size_t column_index_;
  std::vector<Entry> entries_;  // sorted by (key, row)
  std::size_t leaf_fanout_;
  std::uint64_t num_pages_;
  std::uint32_t height_;
  std::size_t num_distinct_;
};

}  // namespace mqpi::storage
