// Append-only heap table: tuples laid out densely on fixed-size pages.
// The page layout is what gives queries their work-unit cost; the
// in-memory representation is a plain vector for speed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mqpi::storage {

class Table {
 public:
  Table(ObjectId id, std::string name, Schema schema);

  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Appends a tuple; the tuple must match the schema arity.
  Status Append(Tuple tuple);

  std::size_t num_tuples() const { return tuples_.size(); }

  /// Tuples that fit on one kPageBytes page given the schema row width
  /// (at least 1).
  std::size_t tuples_per_page() const { return tuples_per_page_; }

  /// Number of heap pages (ceil division; 0 for an empty table).
  std::uint64_t num_pages() const;

  /// Nominal total size in bytes (pages * kPageBytes).
  std::uint64_t size_bytes() const { return num_pages() * kPageBytes; }

  /// The heap page holding `row`.
  std::uint64_t PageOfRow(RowId row) const {
    return row / tuples_per_page_;
  }

  /// First row on page `page_no`.
  RowId FirstRowOnPage(std::uint64_t page_no) const {
    return page_no * tuples_per_page_;
  }

  const Tuple& Get(RowId row) const { return tuples_[row]; }

 private:
  ObjectId id_;
  std::string name_;
  Schema schema_;
  std::size_t tuples_per_page_;
  std::vector<Tuple> tuples_;
};

}  // namespace mqpi::storage
