// Generator for the paper's test data set (Table 1):
//
//   lineitem (orderkey, partkey, suppkey, quantity, extendedprice)
//   part_i   (partkey, retailprice)            for i >= 1
//
// lineitem holds `matches_per_key` tuples (on average) for each of
// `num_part_keys` distinct partkey values, shuffled so that the matches
// for one key scatter across heap pages (as the paper's randomly
// distributed keys do). Each part_i table holds 10 * N_i tuples with
// distinct random partkeys, so on average each part tuple matches ~30
// lineitem tuples via the partkey index — exactly the paper's workload
// structure, at a configurable scale factor.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "storage/catalog.h"

namespace mqpi::storage {

struct TpcrConfig {
  /// Distinct partkey values appearing in lineitem. This bounds the
  /// largest possible part table (10 * N_i <= num_part_keys).
  std::int64_t num_part_keys = 5000;
  /// Average lineitem tuples matching one partkey (paper: 30).
  int matches_per_key = 30;
  /// Seed for all generated data.
  std::uint64_t seed = 42;
};

class TpcrGenerator {
 public:
  explicit TpcrGenerator(TpcrConfig config);

  const TpcrConfig& config() const { return config_; }

  /// Creates and populates `lineitem`, builds `lineitem_partkey_idx`,
  /// and analyzes the table. Fails if lineitem already exists.
  Status BuildLineitem(Catalog* catalog);

  /// Creates and populates a part table named `name` with 10 * n_i
  /// tuples (the paper's part_i sizing) and analyzes it.
  /// Requires 10 * n_i <= num_part_keys.
  Status BuildPartTable(Catalog* catalog, const std::string& name,
                        std::int64_t n_i);

  /// Convenience: "part_<i>".
  static std::string PartTableName(int i);

 private:
  TpcrConfig config_;
  Rng rng_;
};

}  // namespace mqpi::storage
