// Runtime values. The paper's workload (TPC-R lineitem / part_i with a
// correlated aggregate sub-query) only needs integers and doubles, but
// strings are supported for completeness of the storage layer.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace mqpi::storage {

using Value = std::variant<std::int64_t, double, std::string>;

inline std::int64_t AsInt(const Value& v) { return std::get<std::int64_t>(v); }
inline double AsDouble(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  return static_cast<double>(std::get<std::int64_t>(v));
}
inline const std::string& AsString(const Value& v) {
  return std::get<std::string>(v);
}

inline std::string ValueToString(const Value& v) {
  if (std::holds_alternative<std::int64_t>(v)) {
    return std::to_string(std::get<std::int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    return std::to_string(std::get<double>(v));
  }
  return std::get<std::string>(v);
}

}  // namespace mqpi::storage
