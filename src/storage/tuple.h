// A tuple is an ordered row of Values conforming to some Schema.
#pragma once

#include <utility>
#include <vector>

#include "storage/value.h"

namespace mqpi::storage {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  std::size_t size() const { return values_.size(); }
  const Value& at(std::size_t i) const { return values_[i]; }
  Value& at(std::size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace mqpi::storage
