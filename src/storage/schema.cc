#include "storage/schema.h"

namespace mqpi::storage {

namespace {
// Matches typical slotted-page tuple headers (e.g. PostgreSQL's ~23-byte
// HeapTupleHeader rounded up).
constexpr std::size_t kTupleHeaderBytes = 24;
}  // namespace

std::size_t ColumnWidth(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kString:
      return 32;  // nominal average varchar payload
  }
  return 8;
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  row_width_ = kTupleHeaderBytes;
  for (const auto& c : columns_) row_width_ += ColumnWidth(c.type);
}

Result<std::size_t> Schema::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

}  // namespace mqpi::storage
