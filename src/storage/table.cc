#include "storage/table.h"

#include <algorithm>

namespace mqpi::storage {

Table::Table(ObjectId id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {
  tuples_per_page_ =
      std::max<std::size_t>(1, kPageBytes / schema_.RowWidthBytes());
}

Status Table::Append(Tuple tuple) {
  if (tuple.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

std::uint64_t Table::num_pages() const {
  if (tuples_.empty()) return 0;
  return (tuples_.size() + tuples_per_page_ - 1) / tuples_per_page_;
}

}  // namespace mqpi::storage
