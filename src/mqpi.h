// Umbrella header: the public API of the mqpi library.
//
//   storage  - catalog, tables, indexes, histograms, TPC-R generator
//   engine   - query specs, SQL parser, planner, executions
//   sched    - the Rdbms facade (submit / step / block / abort)
//   pi       - single- and multi-query progress indicators
//   wlm      - speed-up and scheduled-maintenance algorithms
//   workload - Zipf query mixes and Poisson arrival schedules
//   sim      - simulation runner, traces, series reporting
//   fault    - deterministic fault injection: a seeded FaultInjector
//              with named fault points wired into the scheduler, the
//              PIs, and the service (spurious aborts, rate collapses,
//              ticker stalls, ...); per-point RNG streams make a chaos
//              run replayable from its seed alone
//   obs      - observability: lock-striped runtime tracer (Chrome
//              trace_event / JSONL export), the estimate-accuracy
//              auditor that scores PI trajectories against ground
//              truth, a scoped hot-path profiler (per-site count /
//              mean / EWMA / max ns, near-free while disabled), and a
//              flight recorder — a bounded ring of spans, fault
//              firings, and sequence gaps that auto-dumps JSONL when
//              the service degrades (watchdog restart, consumer shed,
//              degraded publish)
//   service  - concurrent multi-session frontend: PiService owns the
//              engine + PIs and drives them from a ticker thread;
//              Session is the per-client handle (submit / control own
//              queries); after every quantum the ticker publishes an
//              immutable ProgressSnapshot that any number of reader
//              threads consume without blocking the stepping thread
//              (shared_ptr swap under a pointer-only lock); a
//              MetricsRegistry exports (optionally labeled) counters/
//              gauges/histograms as a text dump or Prometheus text
//              exposition. Everything below `service` is single-threaded
//              and externally synchronized by PiService's state lock.
#pragma once

#include "common/priority.h"    // IWYU pragma: export
#include "common/random.h"      // IWYU pragma: export
#include "common/stats.h"       // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "common/units.h"       // IWYU pragma: export
#include "engine/planner.h"     // IWYU pragma: export
#include "engine/sql_parser.h"  // IWYU pragma: export
#include "fault/fault_injector.h"  // IWYU pragma: export
#include "obs/auditor.h"        // IWYU pragma: export
#include "obs/flight_recorder.h"  // IWYU pragma: export
#include "obs/profiler.h"       // IWYU pragma: export
#include "obs/tracer.h"         // IWYU pragma: export
#include "pi/analytic_simulator.h"  // IWYU pragma: export
#include "pi/multi_query_pi.h"  // IWYU pragma: export
#include "pi/pi_manager.h"      // IWYU pragma: export
#include "pi/single_query_pi.h" // IWYU pragma: export
#include "pi/stage_profile.h"   // IWYU pragma: export
#include "sched/rdbms.h"        // IWYU pragma: export
#include "service/metrics.h"    // IWYU pragma: export
#include "service/pi_service.h" // IWYU pragma: export
#include "service/session.h"    // IWYU pragma: export
#include "service/snapshot.h"   // IWYU pragma: export
#include "service/traffic.h"    // IWYU pragma: export
#include "sim/report.h"         // IWYU pragma: export
#include "sim/runner.h"         // IWYU pragma: export
#include "sim/trace.h"          // IWYU pragma: export
#include "storage/catalog.h"    // IWYU pragma: export
#include "storage/tpcr_gen.h"   // IWYU pragma: export
#include "wlm/maintenance.h"    // IWYU pragma: export
#include "wlm/speedup.h"        // IWYU pragma: export
#include "wlm/wlm_advisor.h"    // IWYU pragma: export
#include "workload/arrival_schedule.h"  // IWYU pragma: export
#include "workload/zipf_workload.h"     // IWYU pragma: export
