// MultiQueryPi: the paper's contribution.
//
// When estimating the remaining execution time of a query, the
// multi-query PI explicitly models
//   (1) every other running query — their remaining costs and priority
//       weights, via the staged execution model of Section 2.2,
//   (2) queries waiting in the admission queue — known future load
//       (Section 2.3), and
//   (3) predicted future arrivals — a virtual query of average cost and
//       priority every 1/lambda seconds (Section 2.4).
//
// The PI consumes only legal observables from the Rdbms: per-query
// refined remaining-cost estimates, priority weights, the admission
// queue contents, and the processing rate it measures itself from
// per-step consumption (so perturbations that violate Assumption 1 are
// felt through the measurement, exactly as a deployed PI would).
//
// Estimation cost: the paper computes all n remaining times in one
// O(n log n) simulation (Section 2.2). To keep per-query estimate
// calls at that aggregate cost, the PI memoizes the last full
// ForecastResult keyed on {Rdbms load epoch, measured rate,
// future-model estimate} and reuses it until the key changes — so the
// n per-query calls a sampler or dashboard issues within one quantum
// collapse to a single simulation, and the what-if forecaster builds
// its scenarios from the same cached base load snapshot. The cache is
// exact, never heuristic: any load-relevant transition bumps the epoch
// (see sched::Rdbms::load_epoch) and forces a fresh simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "pi/analytic_simulator.h"
#include "pi/batch_kernel.h"
#include "pi/future_model.h"
#include "pi/incremental_forecast.h"
#include "sched/rdbms.h"

namespace mqpi::obs {
class Tracer;
}  // namespace mqpi::obs

namespace mqpi::fault {
class FaultInjector;
}  // namespace mqpi::fault

namespace mqpi::pi {

struct MultiQueryPiOptions {
  /// Fold the admission queue into the forecast (Section 2.3). Off
  /// reproduces the "multi-query estimate without considering admission
  /// queue" curve of Figure 5.
  bool consider_admission_queue = true;
  /// EWMA weight for the measured aggregate rate.
  double rate_alpha = 0.2;
  /// Span of simulated seconds per aggregate-rate sample. Operator
  /// granularity makes per-quantum totals noisy (budget overshoot), so
  /// the rate is measured over whole windows before smoothing.
  SimTime rate_window = 5.0;
  /// Memoize the last full forecast (see the header comment). Disable
  /// only to cross-check cache coherence in tests and benches; the
  /// cached and uncached estimates are identical by construction.
  bool enable_forecast_cache = true;
  /// Serve steady-state estimates from the incremental virtual-time
  /// engine (O(log n) per estimate, no event replay) whenever the
  /// fast-path preconditions hold — see EstimateRemainingTime. The
  /// fallback is the analytic simulator above; both paths agree within
  /// float rounding (chaos-verified). Disable only to pin the
  /// simulator path in tests and benches.
  bool enable_incremental = true;
  /// Analytic-model safety limits (rate and virtual stream are filled
  /// in per forecast).
  SimTime horizon = 1e7;
  std::size_t max_events = 4'000'000;
  /// Rate guardrail: the effective estimation rate never drops below
  /// this fraction of the configured rate. A measured rate at/below
  /// the floor (a collapse, a corrupted window, a denormal EWMA tail)
  /// would otherwise divide estimates toward infinity; the floor keeps
  /// every forecast finite and counts the clamp in rate_floor_hits().
  double min_rate_fraction = 1e-3;
};

class MultiQueryPi {
 public:
  /// `db` must outlive the PI. `future` is optional (Section 2.4);
  /// nullptr means no arrival forecasting. The model is not owned.
  MultiQueryPi(const sched::Rdbms* db, MultiQueryPiOptions options = {},
               FutureWorkloadModel* future = nullptr);

  /// Subscribes the PI to `db`'s lifecycle event stream (must be the
  /// same Rdbms the PI was constructed over) so the incremental engine
  /// absorbs arrivals/finishes/aborts/reweights as O(log n) deltas
  /// instead of resynchronizing each quantum. Optional: without it the
  /// engine still resyncs from ObserveStep whenever the structural
  /// epoch moves. The PI must outlive any stepping of `db` once
  /// attached (same contract as PiManager's auto-track listener).
  void AttachLifecycleEvents(sched::Rdbms* db);

  /// Samples the system after each scheduler step: measures the
  /// aggregate processing rate and feeds observed arrivals to the
  /// future-workload model. Idle quanta reset the partially filled
  /// rate window (a pre-gap partial window must not be concatenated
  /// with post-gap samples), and an idle stretch of at least one full
  /// rate window flushes the smoothed rate entirely so post-idle
  /// forecasts restart from the configured rate instead of a stale
  /// pre-idle measurement.
  void ObserveStep();

  /// Predicted remaining execution time of `id` (0 if finished,
  /// kInfiniteTime if blocked or unbounded).
  Result<SimTime> EstimateRemainingTime(QueryId id) const;

  /// Same, for a caller that already holds the query's info — the
  /// batched path used by PiManager's report and sampling loops (no
  /// per-call Rdbms::info lookup). When the incremental fast path is
  /// available — engine synchronized with the Rdbms epochs, admission
  /// queue empty (or ignored), no virtual arrival due before the
  /// system quiesces, everything inside the horizon — a running
  /// query's estimate is an O(log n) closed-form point query with no
  /// simulation at all; otherwise it falls back to the (cached)
  /// analytic simulator. The split is observable via
  /// incremental_fast_path() / incremental_fallback().
  Result<SimTime> EstimateRemainingTime(const sched::QueryInfo& info) const;

  /// Estimated time until the system quiesces (last tracked query
  /// finishes; Section 3.3). O(1) on the fast path.
  Result<SimTime> QuiescentEta() const;

  /// Batch estimate: the remaining time of EVERY running query in one
  /// O(n) flat-SoA sweep (batch_kernel.h) instead of n O(log n) treap
  /// probes — the snapshot builder's per-quantum hot path. Available
  /// only when the incremental fast path is up (same preconditions as
  /// EstimateRemainingTime's engine route; FailedPrecondition
  /// otherwise, and the caller falls back to per-row estimates). The
  /// returned views are sorted by ascending id and remain valid until
  /// the next PI call — consume them under the same external lock.
  /// Counted per call in batch_kernel_hits()/batch_kernel_regens()
  /// and per row in incremental_fast_path().
  struct BatchEstimates {
    const QueryId* ids = nullptr;
    const SimTime* etas = nullptr;
    std::size_t size = 0;
  };
  Result<BatchEstimates> EstimateAllRunning() const;

  /// Full forecast for all running + queued queries.
  Result<ForecastResult> ForecastAll() const;

  /// ForecastAll without copying the result out: the cached (or
  /// freshly computed) forecast, shared. Snapshot builders that probe
  /// many ids against one forecast use this.
  Result<std::shared_ptr<const ForecastResult>> ForecastShared() const;

  /// What-if analysis: hypothetical workload-management actions applied
  /// to the forecast without touching the system. Queries in `blocked`
  /// or `aborted` are removed from the modelled load; `reweighted`
  /// entries (id -> new weight) model priority changes. The PI data
  /// this uses is identical to ForecastAll's: scenarios are built from
  /// the cached base load snapshot, so a WLM fan-out evaluating many
  /// scenarios walks the Rdbms query tables once per epoch, not once
  /// per scenario.
  struct WhatIf {
    std::vector<QueryId> blocked;
    std::vector<QueryId> aborted;
    std::vector<std::pair<QueryId, double>> reweighted;
  };
  Result<ForecastResult> ForecastWhatIf(const WhatIf& scenario) const;

  /// Point what-if: `target`'s remaining time under `scenario`,
  /// without materializing a full forecast. On the fast path a
  /// pure-removal scenario is answered from the engine's exactly
  /// additive O(log n) removal-benefit queries — a WLM fan-out over n
  /// candidate victims costs O(n log n) instead of n full simulations
  /// (O(n^2 log n)). Scenarios that reweight queries (or any
  /// fallback) run one simulator what-if. Ids absent from the
  /// modelled load are ignored, like ForecastWhatIf; NotFound if
  /// `target` itself is removed or absent.
  Result<SimTime> EstimateWhatIf(const WhatIf& scenario,
                                 QueryId target) const;

  /// The measured aggregate rate C (falls back to the configured rate
  /// until a measurement exists).
  double estimated_rate() const;

  const FutureWorkloadModel* future_model() const { return future_; }

  /// Forecast-cache statistics: a hit is an estimate served from the
  /// memoized forecast, a miss is a full analytic simulation (the
  /// steady state is <= 1 miss per quantum). What-if scenario
  /// simulations are counted separately.
  std::uint64_t forecast_cache_hits() const { return cache_hits_; }
  std::uint64_t forecast_cache_misses() const { return cache_misses_; }
  std::uint64_t whatif_forecasts() const { return whatif_forecasts_; }

  /// Incremental-engine statistics: estimates served by the O(log n)
  /// closed form,
  std::uint64_t incremental_fast_path() const {
    return incremental_fast_path_;
  }
  /// engine-eligible estimates that had to fall back to the analytic
  /// simulator (preconditions not met or engine out of sync),
  std::uint64_t incremental_fallback() const {
    return incremental_fallback_;
  }
  /// and full O(n log n) engine rebuilds (structural resyncs).
  std::uint64_t incremental_resyncs() const {
    return incremental_resyncs_;
  }

  /// Batch-kernel statistics: estimate-all sweeps served from a
  /// current SoA mirror (progress-only quanta),
  std::uint64_t batch_kernel_hits() const { return kernel_.hits(); }
  /// and mirror regenerations (structural epochs). In the steady
  /// state hits grow once per snapshot and regens not at all.
  std::uint64_t batch_kernel_regens() const { return kernel_.regens(); }

  /// Attaches a chaos harness (nullptr detaches; not owned). Armed
  /// `pi.*` points fire inside ObserveStep: forced cache invalidation
  /// and measurement-window corruption.
  void SetFaultInjector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// Degradation accounting, for the service's `pi.*` metrics:
  /// times the rate floor (min_rate_fraction) had to clamp the
  /// measured rate,
  std::uint64_t rate_floor_hits() const { return rate_floor_hits_; }
  /// rate-window samples rejected as non-finite or non-positive
  /// (injected corruption, stalled windows),
  std::uint64_t corrupt_rate_samples() const {
    return corrupt_rate_samples_;
  }
  /// and estimates that came back NaN/negative from the model and were
  /// degraded to kUnknown instead of being propagated.
  std::uint64_t degraded_estimates() const { return degraded_estimates_; }

 private:
  /// The base (no-scenario) load vectors, rebuilt only when the Rdbms
  /// load epoch moves.
  struct BaseLoad {
    std::vector<QueryLoad> running;
    std::vector<QueryLoad> queued;
  };

  /// Everything a cached forecast's validity depends on beyond the
  /// load vectors themselves.
  struct CacheKey {
    std::uint64_t load_epoch = 0;
    double rate = 0.0;
    FutureWorkloadEstimate future;

    bool operator==(const CacheKey& other) const {
      return load_epoch == other.load_epoch && rate == other.rate &&
             future.lambda == other.future.lambda &&
             future.avg_cost == other.future.avg_cost &&
             future.avg_weight == other.future.avg_weight;
    }
  };

  CacheKey CurrentKey() const;
  /// Lifecycle-event hook: absorbs one Rdbms event into the engine as
  /// an O(log n) delta when epoch continuity proves the engine was
  /// current up to this event; otherwise marks it for resync.
  void OnQueryEvent(const sched::QueryEvent& event);
  /// ObserveStep's engine maintenance: rebuilds on structural drift,
  /// else applies the quantum's progress as one O(1) virtual-time bump
  /// plus targeted drift repair against the authoritative infos.
  void SyncEngine(const std::vector<sched::QueryInfo>& running);
  /// Full O(n log n) rebuild from the running set.
  void RebuildEngine(const std::vector<sched::QueryInfo>& running);
  /// Whether a running query's estimate may be served from the engine
  /// right now (see EstimateRemainingTime).
  bool FastPathReady() const;
  /// Estimate guardrail: NaN or negative model output degrades to
  /// kUnknown (counted); finite non-negative values and the legitimate
  /// kInfiniteTime sentinel pass through.
  SimTime SanitizeEta(SimTime eta) const;
  /// Refreshes `base_` if the load epoch moved, then returns it.
  const BaseLoad& SnapshotBaseLoad() const;
  /// Model options with the measured rate and virtual stream filled in.
  AnalyticModelOptions ModelOptions() const;
  /// Runs one full simulation over the cached base load.
  Result<std::shared_ptr<const ForecastResult>> ComputeBaseForecast() const;

  const sched::Rdbms* db_;
  MultiQueryPiOptions options_;
  FutureWorkloadModel* future_;
  obs::Tracer* tracer_;  // the process-wide tracer, cached
  fault::FaultInjector* fault_ = nullptr;  // optional chaos harness
  Ewma rate_;
  WorkUnits window_consumed_ = 0.0;
  SimTime window_elapsed_ = 0.0;
  SimTime idle_elapsed_ = 0.0;  // consecutive idle time observed
  SimTime last_observed_now_ = 0.0;
  QueryId last_seen_id_ = 0;  // arrival detection watermark

  // Memoization state. Mutable: estimate entry points are logically
  // const reads. The PI shares the Rdbms's external-synchronization
  // contract (PiService serializes both under one lock), so no
  // internal locking is needed.
  mutable std::uint64_t base_epoch_ = 0;
  mutable bool base_valid_ = false;
  mutable BaseLoad base_;
  mutable bool cache_valid_ = false;
  mutable CacheKey cache_key_;
  mutable Status cache_status_;
  mutable std::shared_ptr<const ForecastResult> cache_forecast_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  mutable std::uint64_t whatif_forecasts_ = 0;
  mutable std::uint64_t rate_floor_hits_ = 0;
  mutable std::uint64_t degraded_estimates_ = 0;
  std::uint64_t corrupt_rate_samples_ = 0;

  // Incremental engine state. The engine mirrors the *running* set
  // (queued queries gate the fast path instead of being modelled);
  // engine_*_epoch_ record the Rdbms epochs the mirror reflects, and
  // engine_synced_ goes false whenever continuity is lost (repaired by
  // the next ObserveStep's rebuild). Mutable: estimates are logically
  // const reads; same external-synchronization contract as the cache.
  mutable IncrementalForecast engine_;
  // Flat SoA mirror of engine_ for estimate-all sweeps; keyed on the
  // engine's structure_version, regenerated lazily inside
  // EstimateAllRunning. Same synchronization contract as the engine.
  mutable BatchEstimateKernel kernel_;
  bool engine_synced_ = false;
  std::uint64_t engine_structural_epoch_ = 0;
  std::uint64_t engine_load_epoch_ = 0;
  mutable std::uint64_t incremental_fast_path_ = 0;
  mutable std::uint64_t incremental_fallback_ = 0;
  mutable std::uint64_t incremental_resyncs_ = 0;
};

}  // namespace mqpi::pi
