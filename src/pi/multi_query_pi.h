// MultiQueryPi: the paper's contribution.
//
// When estimating the remaining execution time of a query, the
// multi-query PI explicitly models
//   (1) every other running query — their remaining costs and priority
//       weights, via the staged execution model of Section 2.2,
//   (2) queries waiting in the admission queue — known future load
//       (Section 2.3), and
//   (3) predicted future arrivals — a virtual query of average cost and
//       priority every 1/lambda seconds (Section 2.4).
//
// The PI consumes only legal observables from the Rdbms: per-query
// refined remaining-cost estimates, priority weights, the admission
// queue contents, and the processing rate it measures itself from
// per-step consumption (so perturbations that violate Assumption 1 are
// felt through the measurement, exactly as a deployed PI would).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "pi/analytic_simulator.h"
#include "pi/future_model.h"
#include "sched/rdbms.h"

namespace mqpi::pi {

struct MultiQueryPiOptions {
  /// Fold the admission queue into the forecast (Section 2.3). Off
  /// reproduces the "multi-query estimate without considering admission
  /// queue" curve of Figure 5.
  bool consider_admission_queue = true;
  /// EWMA weight for the measured aggregate rate.
  double rate_alpha = 0.2;
  /// Span of simulated seconds per aggregate-rate sample. Operator
  /// granularity makes per-quantum totals noisy (budget overshoot), so
  /// the rate is measured over whole windows before smoothing.
  SimTime rate_window = 5.0;
  /// Analytic-model safety limits (rate and virtual stream are filled
  /// in per forecast).
  SimTime horizon = 1e7;
  std::size_t max_events = 4'000'000;
};

class MultiQueryPi {
 public:
  /// `db` must outlive the PI. `future` is optional (Section 2.4);
  /// nullptr means no arrival forecasting. The model is not owned.
  MultiQueryPi(const sched::Rdbms* db, MultiQueryPiOptions options = {},
               FutureWorkloadModel* future = nullptr);

  /// Samples the system after each scheduler step: measures the
  /// aggregate processing rate and feeds observed arrivals to the
  /// future-workload model.
  void ObserveStep();

  /// Predicted remaining execution time of `id` (0 if finished,
  /// kInfiniteTime if blocked or unbounded).
  Result<SimTime> EstimateRemainingTime(QueryId id) const;

  /// Full forecast for all running + queued queries.
  Result<ForecastResult> ForecastAll() const;

  /// What-if analysis: hypothetical workload-management actions applied
  /// to the forecast without touching the system. Queries in `blocked`
  /// or `aborted` are removed from the modelled load; `reweighted`
  /// entries (id -> new weight) model priority changes. The PI data
  /// this uses is identical to ForecastAll's.
  struct WhatIf {
    std::vector<QueryId> blocked;
    std::vector<QueryId> aborted;
    std::vector<std::pair<QueryId, double>> reweighted;
  };
  Result<ForecastResult> ForecastWhatIf(const WhatIf& scenario) const;

  /// The measured aggregate rate C (falls back to the configured rate
  /// until a measurement exists).
  double estimated_rate() const;

  const FutureWorkloadModel* future_model() const { return future_; }

 private:
  const sched::Rdbms* db_;
  MultiQueryPiOptions options_;
  FutureWorkloadModel* future_;
  Ewma rate_;
  WorkUnits window_consumed_ = 0.0;
  SimTime window_elapsed_ = 0.0;
  QueryId last_seen_id_ = 0;  // arrival detection watermark
};

}  // namespace mqpi::pi
