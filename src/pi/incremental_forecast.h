// IncrementalForecast: the paper's Section 2.2 stage decomposition
// maintained incrementally under a global virtual-time offset.
//
// Under weighted fair sharing every active query progresses equally per
// unit weight, so define virtual time X with dX/dt = C / W. A query
// inserted at offset X0 with remaining cost c and weight w finishes
// when X reaches v = X0 + c/w, independent of how the active set (and
// therefore W) changes afterwards. Normal execution progress is then a
// single O(1) offset bump — every query's remaining ratio g_i = v_i - X
// shrinks by the same delta, and the finish order never changes — while
// lifecycle events (arrival, finish, abort, reweight, cost
// re-estimate) are O(log n) insertions/removals in an order-statistic
// treap ranked by (v, id) with subtree aggregates over w and v*w.
//
// Per-query remaining time needs no event replay: with queries ordered
// by v, Abel-summing the stage formula t_i = (g_i - g_{i-1}) * W_i / C
// collapses the prefix sum r_i = t_1 + ... + t_i to the closed form
//
//     r_i = (1/C) * [ sum_{v_j <= v_i} c_j  +  g_i * sum_{v_j > v_i} w_j ]
//
// with c_j = (v_j - X) * w_j, answered in O(log n) from the treap's
// prefix aggregates. The system quiescent time (Section 3.3) is the
// O(1) total (sum v_j*w_j - X * sum w_j) / C, and the benefit of
// removing a victim on a target's remaining time (Section 3.1) is an
// O(log n) point query that is *exactly* additive across victims —
// removal never changes the survivors' thresholds v_j.
//
// Exactness contract: the engine computes the same values as
// StageProfile::Compute over the equivalent (cost, weight) set, up to
// floating-point rounding of the v = X + c/w round trip (relative
// error a few ULP; the chaos differential suite pins the tolerance).
// Callers must Remove a query before/when it finishes: Advance()ing X
// past a live entry's threshold would let its negative remainder bleed
// into other queries' prefix sums. The MultiQueryPi integration gets
// this for free from the Rdbms event stream. When |X| exceeds an
// internal threshold the engine renormalizes (rebases every v by -X,
// O(n log n), deterministic) so cancellation in v - X stays bounded.
//
// Determinism: treap priorities are a splitmix64 hash of the query id,
// so two engines fed the same operation sequence are structurally
// identical — no RNG state, reproducible across runs and processes.
//
// Thread-safety: none; externally synchronized like the rest of the PI
// stack (PiService serializes under its state lock).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pi/stage_profile.h"

namespace mqpi::pi {

class IncrementalForecast {
 public:
  IncrementalForecast() = default;

  /// Removes every query and resets the virtual-time offset.
  void Clear();

  /// Adds a query with remaining cost `cost` (>= 0) and weight
  /// `weight` (> 0) as of the current offset. O(log n).
  /// InvalidArgument on bad values or a duplicate id.
  Status Insert(QueryId id, WorkUnits cost, double weight);

  /// Removes a query (finish, abort, block). O(log n). NotFound if
  /// the id is not present.
  Status Remove(QueryId id);

  /// Re-anchors a query's remaining cost and weight as of the current
  /// offset (priority change, cost re-estimate, drift repair).
  /// O(log n).
  Status Update(QueryId id, WorkUnits cost, double weight);

  /// Advances virtual time by `delta_x` >= 0 — one quantum of
  /// execution progress for the whole active set. O(1) (amortized:
  /// a rare renormalization pass is O(n log n)). Must not advance
  /// past the smallest live threshold (remove finishers first).
  void Advance(double delta_x);

  bool Contains(QueryId id) const { return slot_.count(id) != 0; }
  std::size_t size() const { return slot_.size(); }
  bool empty() const { return slot_.empty(); }

  /// Total weight W of the active set. O(1).
  double total_weight() const;

  /// Current remaining cost (v - X) * w, clamped at 0. O(1).
  Result<WorkUnits> CostOf(QueryId id) const;

  Result<double> WeightOf(QueryId id) const;

  /// Closed-form remaining execution time of `id` at aggregate rate
  /// `rate`. O(log n).
  Result<SimTime> RemainingTime(QueryId id, double rate) const;

  /// When the last query finishes (0 if empty). O(1).
  SimTime QuiescentTime(double rate) const;

  /// Shortening of `target`'s remaining time if `victim` were removed
  /// from the active set: c_victim / C when the victim finishes no
  /// later than the target, g_target * w_victim / C otherwise (paper
  /// Section 3.1). Exactly additive across disjoint victims. O(1)
  /// beyond the id lookups.
  Result<SimTime> RemovalBenefit(QueryId target, QueryId victim,
                                 double rate) const;

  /// The active set in predicted finish order (ascending v, ties by
  /// id), with current clamped costs. O(n).
  std::vector<QueryLoad> Entries() const;

  /// Flat export of the active set in key order (ascending (v, id) —
  /// the finish order), writing `size()` entries into caller-provided
  /// arrays. `ids`/`v`/`w` may individually be null to skip that
  /// column. O(n), no allocation. This is the batch kernel's
  /// structure-of-arrays regeneration feed: `v` values are absolute
  /// thresholds, valid against offset() until the next structure
  /// version bump.
  void ExportSorted(QueryId* ids, double* v, double* w) const;

  /// Monotonic structure version: bumped by every mutation that
  /// changes membership, thresholds, weights, or the threshold basis
  /// (Insert/Remove/Update/Clear and the internal renormalization).
  /// Advance alone — pure progress — never bumps it, so a flat mirror
  /// keyed on this version stays valid across progress-only quanta
  /// and only the O(1) offset moves.
  std::uint64_t structure_version() const { return structure_version_; }

  /// The current virtual-time offset (diagnostics/tests).
  double offset() const { return x_; }

 private:
  struct Node {
    double v = 0.0;  // absolute finish threshold: X_insert + c/w
    double w = 0.0;
    QueryId id = kInvalidQueryId;
    std::uint64_t pri = 0;  // deterministic heap priority
    int left = -1;
    int right = -1;
    int count = 1;
    double sum_w = 0.0;   // subtree sum of w
    double sum_vw = 0.0;  // subtree sum of v * w
  };

  // (v, id) lexicographic key order == the paper's finish order with
  // the same id tie-break StageProfile uses.
  static bool KeyLess(double av, QueryId aid, double bv, QueryId bid) {
    if (av != bv) return av < bv;
    return aid < bid;
  }

  void Pull(int i);
  int Merge(int a, int b);
  /// Splits by key: `left` gets keys < (v, id), `right` the rest.
  void SplitLess(int root, double v, QueryId id, int* left, int* right);
  /// Splits by key: `left` gets keys <= (v, id), `right` the rest.
  void SplitLeq(int root, double v, QueryId id, int* left, int* right);
  int AllocNode(QueryId id, double v, double w);
  void FreeNode(int i);
  /// Inserts a node with an explicit absolute threshold (renorm path).
  void InsertNodeAt(QueryId id, double v, double w);
  /// Detaches `id`'s node from the tree and frees it; returns its
  /// (v, w). Caller guarantees presence.
  void Detach(QueryId id, double* v, double* w);
  /// Prefix aggregates over keys <= (v, id).
  void PrefixUpTo(double v, QueryId id, double* sum_w,
                  double* sum_vw) const;
  /// Rebases every threshold by -X and resets X to 0.
  void Renormalize();

  std::vector<Node> nodes_;
  std::vector<int> free_;
  std::unordered_map<QueryId, int> slot_;
  int root_ = -1;
  double x_ = 0.0;
  std::uint64_t structure_version_ = 0;
};

}  // namespace mqpi::pi
