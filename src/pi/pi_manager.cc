#include "pi/pi_manager.h"

#include "obs/profiler.h"
#include "obs/tracer.h"

namespace mqpi::pi {

namespace {
MultiQueryPiOptions QueueBlind(MultiQueryPiOptions options) {
  options.consider_admission_queue = false;
  return options;
}
}  // namespace

PiManager::PiManager(sched::Rdbms* db, PiManagerOptions options,
                     FutureWorkloadModel* future)
    : db_(db),
      options_(options),
      tracer_(obs::GlobalTracer()),
      multi_(db, options.multi, future) {
  if (options_.record_queue_blind_variant) {
    multi_blind_ =
        std::make_unique<MultiQueryPi>(db, QueueBlind(options.multi), future);
  }
  // Lifecycle subscription keeps the incremental engines in O(log n)
  // lockstep with the scheduler (the manager already demands it
  // outlives any stepping of `db`).
  multi_.AttachLifecycleEvents(db);
  if (multi_blind_) multi_blind_->AttachLifecycleEvents(db);
  if (options_.auto_track) {
    db->AddEventListener([this](const sched::QueryEvent& event) {
      if (event.kind == sched::QueryEventKind::kSubmitted) {
        Track(event.info.id);
      }
    });
  }
}

void PiManager::Track(QueryId id) {
  singles_.emplace(id, SingleQueryPi(id, options_.single_speed_alpha,
                                     options_.single_speed_window));
  traces_[id];  // create an empty trace
}

Result<SimTime> PiManager::EstimateSingle(QueryId id) const {
  auto it = singles_.find(id);
  if (it == singles_.end()) return kUnknown;  // never tracked: no history
  return it->second.EstimateRemainingTime();
}

double PiManager::SpeedOf(QueryId id) const {
  auto it = singles_.find(id);
  return it == singles_.end() ? 0.0 : it->second.speed();
}

const std::vector<EstimateSample>& PiManager::Trace(QueryId id) const {
  static const std::vector<EstimateSample> kEmpty;
  auto it = traces_.find(id);
  return it == traces_.end() ? kEmpty : it->second;
}

std::vector<PiManager::ProgressRow> PiManager::Report() const {
  std::vector<ProgressRow> rows;
  for (const auto& info : db_->AllQueries()) {
    if (info.state == sched::QueryState::kFinished ||
        info.state == sched::QueryState::kAborted) {
      continue;
    }
    ProgressRow row;
    row.id = info.id;
    row.label = info.label;
    row.state = info.state;
    const double total =
        info.completed_work + info.estimated_remaining_cost;
    row.fraction_done = total > 0.0 ? info.completed_work / total : 0.0;
    auto it = singles_.find(info.id);
    if (it != singles_.end()) {
      row.speed = it->second.speed();
      row.eta_single = it->second.EstimateRemainingTime();
    }
    // Batched path: all rows probe one shared (cached) forecast.
    auto multi_eta = multi_.EstimateRemainingTime(info);
    if (multi_eta.ok()) row.eta_multi = *multi_eta;
    rows.push_back(std::move(row));
  }
  return rows;
}

void PiManager::AfterStep() {
  MQPI_PROF_SITE(prof, "pi.after_step");
  obs::TraceSpan span(tracer_, "pi", "after_step");
  span.arg("t", db_->now());
  span.arg("tracked", static_cast<double>(singles_.size()));
  multi_.ObserveStep();
  if (multi_blind_) multi_blind_->ObserveStep();

  const SimTime now = db_->now();
  for (auto& [id, single] : singles_) {
    auto info = db_->info(id);
    if (info.ok()) single.Observe(*info, now);
  }

  if (now + kTimeEpsilon < next_sample_) return;
  // Advance from the *scheduled* time, not from `now`: a quantum that
  // overshoots the grid point would otherwise shift every later sample
  // by the overshoot, and the drift compounds for the whole run. If the
  // grid fell more than one interval behind (idle park, coarse quanta),
  // jump to the next grid point after `now` instead of replaying a
  // backlog of due samples.
  do {
    next_sample_ += options_.sample_interval;
  } while (next_sample_ <= now + kTimeEpsilon);

  for (auto& [id, trace] : traces_) {
    auto info = db_->info(id);
    if (!info.ok()) continue;
    if (info->state == sched::QueryState::kFinished ||
        info->state == sched::QueryState::kAborted) {
      continue;  // trace ends at completion
    }
    EstimateSample sample;
    sample.time = now;
    const auto& single = singles_.at(id);
    const SimTime s = single.EstimateRemainingTime();
    sample.single = s;
    sample.speed = single.speed();
    // Batched path: every tracked query probes the same cached
    // forecast, so the whole sampling loop costs one simulation.
    auto m = multi_.EstimateRemainingTime(*info);
    sample.multi = m.ok() ? *m : kUnknown;
    if (multi_blind_) {
      auto mb = multi_blind_->EstimateRemainingTime(*info);
      sample.multi_no_queue = mb.ok() ? *mb : kUnknown;
    }
    trace.push_back(sample);
  }
}

}  // namespace mqpi::pi
