// SingleQueryPi: the baseline progress indicator of Luo et al.
// [SIGMOD'04, ICDE'05], as characterized by this paper's Section 2:
//
//   "the PI refines the estimated remaining query cost c ... also
//    continuously monitors the current query execution speed s, and the
//    remaining query execution time is estimated as t = c / s."
//
// Speed is measured over a sliding window of simulated time (work done
// in the window / window length) and then EWMA-smoothed. Windowing
// matters because operator granularity makes single-quantum consumption
// lumpy — one correlated-sub-query probe can exceed a query's fair
// share for several quanta, so instantaneous speeds oscillate wildly
// even under a perfectly fair scheduler.
//
// The single-query PI implicitly feels other queries through the
// measured speed, but has no model of when they will finish or arrive —
// the weakness the multi-query PI fixes.
#pragma once

#include "common/stats.h"
#include "common/units.h"
#include "sched/rdbms.h"

namespace mqpi::pi {

class SingleQueryPi {
 public:
  /// `speed_alpha` is the EWMA weight; `window` the minimum span of
  /// simulated seconds over which one speed sample is measured.
  explicit SingleQueryPi(QueryId id, double speed_alpha = 0.3,
                         SimTime window = 2.0);

  QueryId id() const { return id_; }

  /// Feeds one observation of this query at simulated time `now`.
  void Observe(const sched::QueryInfo& info, SimTime now);

  /// t = c / s. Returns kInfiniteTime while no speed has been observed
  /// (e.g. the query is queued or blocked) and 0 once the query is done.
  SimTime EstimateRemainingTime() const;

  /// Latest smoothed speed (U/s); 0 if never observed running.
  double speed() const {
    return speed_.has_value() ? speed_.value() : 0.0;
  }

  /// Latest refined remaining-cost estimate c.
  WorkUnits remaining_cost() const { return remaining_cost_; }

  bool finished() const { return finished_; }

 private:
  QueryId id_;
  Ewma speed_;
  SimTime window_;
  SimTime window_start_ = kUnknown;
  WorkUnits window_start_work_ = 0.0;
  WorkUnits remaining_cost_ = 0.0;
  bool finished_ = false;
};

}  // namespace mqpi::pi
