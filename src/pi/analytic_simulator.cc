#include "pi/analytic_simulator.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <string>
#include <unordered_set>

namespace mqpi::pi {

Result<SimTime> ForecastResult::FinishTimeOf(QueryId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not in forecast");
  }
  return it->second;
}

void ForecastResult::Add(QueryId id, SimTime finish_time) {
  forecasts_.push_back(QueryForecast{id, finish_time});
  index_.emplace(id, finish_time);
}

namespace {

struct ActiveEntry {
  double finish_x;  // X threshold at which this query completes
  double weight;
  QueryId id;    // kInvalidQueryId for virtual queries
  bool real;

  bool operator>(const ActiveEntry& other) const {
    if (finish_x != other.finish_x) return finish_x > other.finish_x;
    return id > other.id;
  }
};

struct PendingEntry {
  WorkUnits cost;
  double weight;
  QueryId id;
  bool real;
};

Status ValidateLoad(const QueryLoad& q) {
  if (q.weight <= 0.0) {
    return Status::InvalidArgument("query " + std::to_string(q.id) +
                                   " has non-positive weight");
  }
  if (q.remaining_cost < 0.0) {
    return Status::InvalidArgument("query " + std::to_string(q.id) +
                                   " has negative remaining cost");
  }
  return Status::OK();
}

}  // namespace

Result<ForecastResult> AnalyticSimulator::Forecast(
    const std::vector<QueryLoad>& running,
    const std::vector<QueryLoad>& queued,
    std::vector<FutureArrival> arrivals,
    const AnalyticModelOptions& options) {
  if (options.rate <= 0.0) {
    return Status::InvalidArgument("aggregate rate must be positive");
  }
  if (options.max_concurrent < 1) {
    return Status::InvalidArgument("max_concurrent must be >= 1");
  }
  const bool has_virtual =
      options.virtual_interval > 0.0 && options.virtual_cost > 0.0;
  if (has_virtual && options.virtual_weight <= 0.0) {
    return Status::InvalidArgument("virtual weight must be positive");
  }
  // A duplicated id would silently skew the model: the id->finish
  // index keeps the first copy's time while the second still consumes
  // simulated capacity. Reject instead.
  std::unordered_set<QueryId> seen;
  seen.reserve(running.size() + queued.size() + arrivals.size());
  const auto check_unique = [&seen](QueryId id) {
    if (id != kInvalidQueryId && !seen.insert(id).second) {
      return Status::InvalidArgument("query " + std::to_string(id) +
                                     " appears more than once in the load");
    }
    return Status::OK();
  };
  for (const QueryLoad& q : running) {
    MQPI_RETURN_NOT_OK(ValidateLoad(q));
    MQPI_RETURN_NOT_OK(check_unique(q.id));
  }
  for (const QueryLoad& q : queued) {
    MQPI_RETURN_NOT_OK(ValidateLoad(q));
    MQPI_RETURN_NOT_OK(check_unique(q.id));
  }
  for (const FutureArrival& a : arrivals) {
    if (a.time < 0.0) {
      return Status::InvalidArgument("arrival time must be >= 0");
    }
    if (a.weight <= 0.0 || a.cost < 0.0) {
      return Status::InvalidArgument("arrival has invalid cost/weight");
    }
    MQPI_RETURN_NOT_OK(check_unique(a.id));
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const FutureArrival& a, const FutureArrival& b) {
              return a.time < b.time;
            });

  // --- state -----------------------------------------------------------------
  double x = 0.0;       // cumulative normalized progress
  SimTime t = 0.0;      // elapsed time
  double total_w = 0.0; // weight of active queries
  std::priority_queue<ActiveEntry, std::vector<ActiveEntry>,
                      std::greater<ActiveEntry>>
      active;
  std::deque<PendingEntry> queue;

  std::size_t real_total = running.size() + queued.size();
  for (const FutureArrival& a : arrivals) {
    if (a.id != kInvalidQueryId) ++real_total;
  }
  std::size_t real_finished = 0;

  ForecastResult result;
  result.forecasts_.reserve(real_total);
  result.index_.reserve(real_total);

  auto activate = [&](WorkUnits cost, double weight, QueryId id, bool real) {
    active.push(ActiveEntry{x + cost / weight, weight, id, real});
    total_w += weight;
  };
  auto admit = [&] {
    while (!queue.empty() &&
           static_cast<int>(active.size()) < options.max_concurrent) {
      const PendingEntry& p = queue.front();
      activate(p.cost, p.weight, p.id, p.real);
      queue.pop_front();
    }
  };

  for (const QueryLoad& q : running) {
    activate(q.remaining_cost, q.weight, q.id, /*real=*/true);
  }
  for (const QueryLoad& q : queued) {
    queue.push_back(PendingEntry{q.remaining_cost, q.weight, q.id, true});
  }
  admit();

  std::size_t arrival_pos = 0;
  SimTime next_virtual =
      has_virtual ? options.virtual_interval : kInfiniteTime;

  std::size_t events = 0;
  while (real_finished < real_total) {
    if (++events > options.max_events) break;

    // Next arrival (real stream vs virtual stream).
    SimTime arrival_t = kInfiniteTime;
    bool arrival_is_virtual = false;
    if (arrival_pos < arrivals.size()) arrival_t = arrivals[arrival_pos].time;
    if (next_virtual < arrival_t) {
      arrival_t = next_virtual;
      arrival_is_virtual = true;
    }

    // Next finish among active queries.
    SimTime finish_t = kInfiniteTime;
    if (!active.empty()) {
      finish_t = t + (active.top().finish_x - x) * total_w / options.rate;
    }

    if (finish_t == kInfiniteTime && arrival_t == kInfiniteTime) break;

    // Horizon contract (analytic_simulator.h): nothing past the horizon
    // is ever committed. The next event's time must be checked *before*
    // processing it — testing `t` at the top of the following iteration
    // would record the first beyond-horizon finish with its real time.
    // Events landing exactly on the horizon still count.
    if (std::min(arrival_t, finish_t) > options.horizon) break;

    if (arrival_t < finish_t) {
      // Advance progress to the arrival instant, then enqueue/admit.
      if (!active.empty()) {
        x += options.rate * (arrival_t - t) / total_w;
      }
      t = arrival_t;
      if (arrival_is_virtual) {
        queue.push_back(PendingEntry{options.virtual_cost,
                                     options.virtual_weight,
                                     kInvalidQueryId, false});
        next_virtual += options.virtual_interval;
      } else {
        const FutureArrival& a = arrivals[arrival_pos++];
        queue.push_back(
            PendingEntry{a.cost, a.weight, a.id, a.id != kInvalidQueryId});
      }
      admit();
    } else {
      // Advance to the finish instant and retire the query.
      const ActiveEntry top = active.top();
      active.pop();
      x = top.finish_x;
      t = finish_t;
      total_w -= top.weight;
      if (top.real) {
        result.Add(top.id, t);
        ++real_finished;
      }
      admit();
    }
  }

  // Anything not finished by the horizon is reported as unbounded.
  if (real_finished < real_total) {
    auto report_missing = [&](QueryId id) {
      if (id == kInvalidQueryId || result.Contains(id)) return;
      result.Add(id, kInfiniteTime);
    };
    for (const QueryLoad& q : running) report_missing(q.id);
    for (const QueryLoad& q : queued) report_missing(q.id);
    for (const FutureArrival& a : arrivals) report_missing(a.id);
    result.quiescent_ = kInfiniteTime;
  } else {
    result.quiescent_ =
        result.forecasts_.empty() ? 0.0 : result.forecasts_.back().finish_time;
  }
  return result;
}

}  // namespace mqpi::pi
