// AnalyticSimulator: event-driven generalization of StageProfile.
//
// StageProfile handles the paper's standard case (a fixed set of
// running queries). The full multi-query PI must also model:
//   * queries waiting in the admission queue (Section 2.3) — they are
//     known load that starts when a slot frees, and
//   * predicted future queries (Section 2.4) — every 1/lambda seconds a
//     virtual query with the average cost and priority arrives.
//
// Under weighted fair sharing all active queries progress equally per
// unit weight, so we track cumulative normalized progress X with
// dX/dt = C / W. A query joining at X0 with ratio rho = c/w finishes
// when X reaches X0 + rho, independent of how W fluctuates afterwards —
// which makes a finish-ordered min-heap on X thresholds exact. Events
// are query finishes and arrivals; each costs O(log n).
//
// With no arrivals and no admission limit this reproduces StageProfile
// exactly (property-tested).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pi/stage_profile.h"

namespace mqpi::pi {

/// A query known (or predicted) to arrive at a future instant.
struct FutureArrival {
  SimTime time = 0.0;  // relative to "now" (the forecast origin)
  WorkUnits cost = 0.0;
  double weight = 1.0;
  /// kInvalidQueryId marks a virtual (predicted) query.
  QueryId id = kInvalidQueryId;
};

struct AnalyticModelOptions {
  /// Aggregate processing rate C (work units / second).
  double rate = 1000.0;
  /// Admission limit: queries beyond this wait in FIFO order.
  int max_concurrent = 1 << 30;
  /// Virtual arrival stream (Section 2.4): every `virtual_interval`
  /// seconds a query of `virtual_cost` / `virtual_weight` arrives,
  /// first at time `virtual_interval`. <= 0 disables the stream.
  double virtual_interval = 0.0;
  WorkUnits virtual_cost = 0.0;
  double virtual_weight = 1.0;
  /// Safety stop: real queries not finished by this (relative) time are
  /// reported with finish time kInfiniteTime.
  SimTime horizon = 1e7;
  /// Safety stop on total processed events.
  std::size_t max_events = 4'000'000;
};

struct QueryForecast {
  QueryId id = kInvalidQueryId;
  /// Predicted remaining time until this query completes (relative to
  /// the forecast origin); kInfiniteTime if past the horizon.
  SimTime finish_time = kInfiniteTime;
};

class ForecastResult {
 public:
  /// Forecasts for all *real* queries, in predicted finish order.
  const std::vector<QueryForecast>& forecasts() const { return forecasts_; }

  /// Predicted remaining time of one query. O(1): an id -> finish-time
  /// index is maintained alongside the finish-ordered vector, so
  /// callers may probe every tracked query against one shared forecast.
  Result<SimTime> FinishTimeOf(QueryId id) const;

  /// Whether `id` appears in this forecast.
  bool Contains(QueryId id) const { return index_.count(id) != 0; }

  /// When the last real query finishes (the estimated system quiescent
  /// time of Section 3.3); kInfiniteTime if any query missed the horizon.
  SimTime quiescent_time() const { return quiescent_; }

 private:
  friend class AnalyticSimulator;
  /// Appends one real query's forecast, keeping the index in sync.
  void Add(QueryId id, SimTime finish_time);

  std::vector<QueryForecast> forecasts_;
  std::unordered_map<QueryId, SimTime> index_;
  SimTime quiescent_ = 0.0;
};

class AnalyticSimulator {
 public:
  /// Forecasts finish times for every real query.
  ///   running:  active now (each holds a slot),
  ///   queued:   in the admission queue, FIFO order,
  ///   arrivals: known/predicted future arrivals (any order; sorted
  ///             internally by time).
  /// Fails on non-positive rate/weights or negative costs/times.
  static Result<ForecastResult> Forecast(
      const std::vector<QueryLoad>& running,
      const std::vector<QueryLoad>& queued,
      std::vector<FutureArrival> arrivals,
      const AnalyticModelOptions& options);
};

}  // namespace mqpi::pi
