#include "pi/multi_query_pi.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "fault/fault_injector.h"
#include "obs/tracer.h"

namespace mqpi::pi {

MultiQueryPi::MultiQueryPi(const sched::Rdbms* db,
                           MultiQueryPiOptions options,
                           FutureWorkloadModel* future)
    : db_(db),
      options_(options),
      future_(future),
      tracer_(obs::GlobalTracer()),
      rate_(options.rate_alpha),
      last_observed_now_(db->now()) {
  // Queries already in the system are current load, not "arrivals";
  // only queries submitted after the PI attaches feed the future model.
  for (const auto& info : db_->AllQueries()) {
    last_seen_id_ = std::max(last_seen_id_, info.id);
  }
}

void MultiQueryPi::ObserveStep() {
  const SimTime now = db_->now();
  const SimTime since = std::max(0.0, now - last_observed_now_);
  last_observed_now_ = now;

  if (fault_ != nullptr && fault_->enabled()) {
    if (fault_->ShouldFire(fault::kPiCacheInvalidate)) {
      // Forced invalidation is a correctness no-op by construction:
      // the next estimate recomputes from the same inputs and must be
      // byte-identical (the chaos soak cross-checks this).
      cache_valid_ = false;
      base_valid_ = false;
      cache_forecast_.reset();
    }
    const auto corrupt = fault_->Evaluate(fault::kPiWindowCorrupt);
    if (corrupt.fired) window_consumed_ = corrupt.value;
  }

  // Accumulate consumption across running queries; emit one rate
  // sample per full window (per-quantum totals are too noisy because
  // operators overshoot their budget by up to one probe).
  const auto running = db_->RunningQueries();
  WorkUnits consumed = 0.0;
  SimTime dt = 0.0;
  for (const auto& info : running) {
    consumed += info.consumed_last_step;
    dt = std::max(dt, info.last_step_duration);
  }
  if (dt > 0.0 && !running.empty()) {
    idle_elapsed_ = 0.0;
    window_consumed_ += consumed;
    window_elapsed_ += dt;
    if (window_elapsed_ + kTimeEpsilon >= options_.rate_window) {
      const double sample = window_consumed_ / window_elapsed_;
      // Guardrail: a corrupted accumulator (NaN, negative) or a fully
      // stalled window (zero consumption while queries nominally ran)
      // must not poison the EWMA — division by a ~zero smoothed rate
      // is how inf estimates are born. Reject the sample and keep the
      // last credible measurement instead.
      if (std::isfinite(sample) && sample > 0.0) {
        rate_.Observe(sample);
      } else {
        ++corrupt_rate_samples_;
      }
      window_consumed_ = 0.0;
      window_elapsed_ = 0.0;
    }
  } else {
    // Idle (or blocked-only) quantum. Drop the partial window — the
    // pre-gap fragment would otherwise be silently concatenated with
    // post-gap consumption into one "window" spanning the gap — and
    // once the system has been idle for at least a full rate window,
    // flush the smoothed rate too: whatever speed was measured before
    // the gap describes a workload that no longer exists.
    window_consumed_ = 0.0;
    window_elapsed_ = 0.0;
    idle_elapsed_ += since;
    if (rate_.has_value() &&
        idle_elapsed_ + kTimeEpsilon >= options_.rate_window) {
      rate_.Reset();
    }
  }

  // Detect arrivals (ids above the watermark) for the future model.
  if (future_ != nullptr) {
    for (const auto& info : db_->AllQueries()) {
      if (info.id > last_seen_id_) {
        last_seen_id_ = info.id;
        future_->ObserveArrival(info.arrival_time, info.optimizer_cost,
                                info.weight);
      }
    }
    future_->ObserveElapsed(now);
  }
}

double MultiQueryPi::estimated_rate() const {
  const double configured = db_->options().processing_rate;
  // The floor keeps the estimation rate strictly positive and finite
  // even when the measured rate collapses to zero/denormal or the
  // configured rate itself is degenerate.
  const double floor =
      std::max(configured * options_.min_rate_fraction, 1e-12);
  const double rate = rate_.has_value() ? rate_.value() : configured;
  if (!std::isfinite(rate) || rate < floor) {
    ++rate_floor_hits_;
    return floor;
  }
  return rate;
}

SimTime MultiQueryPi::SanitizeEta(SimTime eta) const {
  if (std::isnan(eta) || (eta < 0.0 && eta != kUnknown)) {
    ++degraded_estimates_;
    return kUnknown;
  }
  return eta;
}

MultiQueryPi::CacheKey MultiQueryPi::CurrentKey() const {
  CacheKey key;
  key.load_epoch = db_->load_epoch();
  key.rate = estimated_rate();
  if (future_ != nullptr) key.future = future_->Current();
  return key;
}

const MultiQueryPi::BaseLoad& MultiQueryPi::SnapshotBaseLoad() const {
  const std::uint64_t epoch = db_->load_epoch();
  if (base_valid_ && base_epoch_ == epoch) return base_;
  base_.running.clear();
  base_.queued.clear();
  for (const auto& info : db_->RunningQueries()) {
    base_.running.push_back(
        QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
  }
  if (options_.consider_admission_queue) {
    for (const auto& info : db_->QueuedQueries()) {
      base_.queued.push_back(
          QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
    }
  }
  base_epoch_ = epoch;
  base_valid_ = true;
  return base_;
}

AnalyticModelOptions MultiQueryPi::ModelOptions() const {
  AnalyticModelOptions model;
  model.rate = estimated_rate();
  model.max_concurrent = db_->options().max_concurrent;
  model.horizon = options_.horizon;
  model.max_events = options_.max_events;
  if (future_ != nullptr) {
    const FutureWorkloadEstimate est = future_->Current();
    if (est.lambda > 0.0 && est.avg_cost > 0.0) {
      model.virtual_interval = 1.0 / est.lambda;
      model.virtual_cost = est.avg_cost;
      model.virtual_weight = est.avg_weight;
    }
  }
  return model;
}

Result<std::shared_ptr<const ForecastResult>>
MultiQueryPi::ComputeBaseForecast() const {
  const BaseLoad& base = SnapshotBaseLoad();
  ++cache_misses_;
  obs::TraceSpan span(tracer_, "pi", "forecast");
  span.arg("n", static_cast<double>(base.running.size() +
                                    base.queued.size()));
  span.arg("epoch", static_cast<double>(base_epoch_));
  auto forecast =
      AnalyticSimulator::Forecast(base.running, base.queued, {},
                                  ModelOptions());
  if (!forecast.ok()) return forecast.status();
  return std::make_shared<const ForecastResult>(*std::move(forecast));
}

Result<std::shared_ptr<const ForecastResult>> MultiQueryPi::ForecastShared()
    const {
  if (!options_.enable_forecast_cache) return ComputeBaseForecast();
  const CacheKey key = CurrentKey();
  if (cache_valid_ && key == cache_key_) {
    ++cache_hits_;
    if (!cache_status_.ok()) return cache_status_;
    return cache_forecast_;
  }
  auto forecast = ComputeBaseForecast();
  cache_key_ = key;
  cache_valid_ = true;
  if (forecast.ok()) {
    cache_status_ = Status::OK();
    cache_forecast_ = *forecast;
  } else {
    cache_status_ = forecast.status();
    cache_forecast_.reset();
  }
  return forecast;
}

Result<ForecastResult> MultiQueryPi::ForecastAll() const {
  auto forecast = ForecastShared();
  if (!forecast.ok()) return forecast.status();
  return **forecast;
}

Result<ForecastResult> MultiQueryPi::ForecastWhatIf(
    const WhatIf& scenario) const {
  if (scenario.blocked.empty() && scenario.aborted.empty() &&
      scenario.reweighted.empty()) {
    // The empty scenario IS the base forecast — share the cache.
    return ForecastAll();
  }

  // Lookup structures built once per scenario, not scanned per query.
  std::unordered_set<QueryId> removed;
  removed.reserve(scenario.blocked.size() + scenario.aborted.size());
  removed.insert(scenario.blocked.begin(), scenario.blocked.end());
  removed.insert(scenario.aborted.begin(), scenario.aborted.end());
  std::unordered_map<QueryId, double> reweighted(
      scenario.reweighted.begin(), scenario.reweighted.end());

  auto apply = [&](const std::vector<QueryLoad>& loads,
                   std::vector<QueryLoad>* out) {
    out->reserve(loads.size());
    for (const QueryLoad& load : loads) {
      if (removed.count(load.id) != 0) continue;
      auto weight = reweighted.find(load.id);
      out->push_back(weight == reweighted.end()
                         ? load
                         : QueryLoad{load.id, load.remaining_cost,
                                     weight->second});
    }
  };

  const BaseLoad& base = SnapshotBaseLoad();
  std::vector<QueryLoad> running;
  std::vector<QueryLoad> queued;
  apply(base.running, &running);
  apply(base.queued, &queued);

  ++whatif_forecasts_;
  obs::TraceSpan span(tracer_, "pi", "forecast_whatif");
  span.arg("n", static_cast<double>(running.size() + queued.size()));
  return AnalyticSimulator::Forecast(running, queued, {}, ModelOptions());
}

Result<SimTime> MultiQueryPi::EstimateRemainingTime(
    const sched::QueryInfo& info) const {
  switch (info.state) {
    case sched::QueryState::kFinished:
      return 0.0;
    case sched::QueryState::kAborted:
      return 0.0;
    case sched::QueryState::kBlocked:
      return kInfiniteTime;  // no progress while blocked
    case sched::QueryState::kQueued:
      if (!options_.consider_admission_queue) {
        // Without queue awareness the PI cannot see this query at all.
        return kInfiniteTime;
      }
      break;
    case sched::QueryState::kRunning:
      break;
  }
  auto forecast = ForecastShared();
  if (!forecast.ok()) return forecast.status();
  auto eta = (*forecast)->FinishTimeOf(info.id);
  if (!eta.ok()) return eta.status();
  return SanitizeEta(*eta);
}

Result<SimTime> MultiQueryPi::EstimateRemainingTime(QueryId id) const {
  auto info = db_->info(id);
  if (!info.ok()) return info.status();
  return EstimateRemainingTime(*info);
}

}  // namespace mqpi::pi
