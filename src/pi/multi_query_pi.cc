#include "pi/multi_query_pi.h"

#include <algorithm>

namespace mqpi::pi {

MultiQueryPi::MultiQueryPi(const sched::Rdbms* db,
                           MultiQueryPiOptions options,
                           FutureWorkloadModel* future)
    : db_(db), options_(options), future_(future), rate_(options.rate_alpha) {
  // Queries already in the system are current load, not "arrivals";
  // only queries submitted after the PI attaches feed the future model.
  for (const auto& info : db_->AllQueries()) {
    last_seen_id_ = std::max(last_seen_id_, info.id);
  }
}

void MultiQueryPi::ObserveStep() {
  // Accumulate consumption across running queries; emit one rate
  // sample per full window (per-quantum totals are too noisy because
  // operators overshoot their budget by up to one probe).
  const auto running = db_->RunningQueries();
  WorkUnits consumed = 0.0;
  SimTime dt = 0.0;
  for (const auto& info : running) {
    consumed += info.consumed_last_step;
    dt = std::max(dt, info.last_step_duration);
  }
  if (dt > 0.0 && !running.empty()) {
    window_consumed_ += consumed;
    window_elapsed_ += dt;
    if (window_elapsed_ + kTimeEpsilon >= options_.rate_window) {
      rate_.Observe(window_consumed_ / window_elapsed_);
      window_consumed_ = 0.0;
      window_elapsed_ = 0.0;
    }
  }

  // Detect arrivals (ids above the watermark) for the future model.
  if (future_ != nullptr) {
    for (const auto& info : db_->AllQueries()) {
      if (info.id > last_seen_id_) {
        last_seen_id_ = info.id;
        future_->ObserveArrival(info.arrival_time, info.optimizer_cost,
                                info.weight);
      }
    }
    future_->ObserveElapsed(db_->now());
  }
}

double MultiQueryPi::estimated_rate() const {
  return rate_.has_value() ? rate_.value()
                           : db_->options().processing_rate;
}

Result<ForecastResult> MultiQueryPi::ForecastAll() const {
  return ForecastWhatIf(WhatIf{});
}

Result<ForecastResult> MultiQueryPi::ForecastWhatIf(
    const WhatIf& scenario) const {
  auto removed = [&scenario](QueryId id) {
    for (QueryId b : scenario.blocked) {
      if (b == id) return true;
    }
    for (QueryId a : scenario.aborted) {
      if (a == id) return true;
    }
    return false;
  };
  auto weight_of = [&scenario](const sched::QueryInfo& info) {
    for (const auto& [id, weight] : scenario.reweighted) {
      if (id == info.id) return weight;
    }
    return info.weight;
  };

  std::vector<QueryLoad> running;
  for (const auto& info : db_->RunningQueries()) {
    if (removed(info.id)) continue;
    running.push_back(
        QueryLoad{info.id, info.estimated_remaining_cost, weight_of(info)});
  }
  std::vector<QueryLoad> queued;
  if (options_.consider_admission_queue) {
    for (const auto& info : db_->QueuedQueries()) {
      if (removed(info.id)) continue;
      queued.push_back(
          QueryLoad{info.id, info.estimated_remaining_cost, weight_of(info)});
    }
  }

  AnalyticModelOptions model;
  model.rate = estimated_rate();
  model.max_concurrent = db_->options().max_concurrent;
  model.horizon = options_.horizon;
  model.max_events = options_.max_events;
  if (future_ != nullptr) {
    const FutureWorkloadEstimate est = future_->Current();
    if (est.lambda > 0.0 && est.avg_cost > 0.0) {
      model.virtual_interval = 1.0 / est.lambda;
      model.virtual_cost = est.avg_cost;
      model.virtual_weight = est.avg_weight;
    }
  }
  return AnalyticSimulator::Forecast(running, queued, {}, model);
}

Result<SimTime> MultiQueryPi::EstimateRemainingTime(QueryId id) const {
  auto info = db_->info(id);
  if (!info.ok()) return info.status();
  switch (info->state) {
    case sched::QueryState::kFinished:
      return 0.0;
    case sched::QueryState::kAborted:
      return 0.0;
    case sched::QueryState::kBlocked:
      return kInfiniteTime;  // no progress while blocked
    case sched::QueryState::kQueued:
      if (!options_.consider_admission_queue) {
        // Without queue awareness the PI cannot see this query at all.
        return kInfiniteTime;
      }
      break;
    case sched::QueryState::kRunning:
      break;
  }
  auto forecast = ForecastAll();
  if (!forecast.ok()) return forecast.status();
  return forecast->FinishTimeOf(id);
}

}  // namespace mqpi::pi
