#include "pi/multi_query_pi.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/tracer.h"

namespace mqpi::pi {

namespace {
// Drift-repair tolerance: an engine-mirrored remaining cost may differ
// from the Rdbms's authoritative estimate by accumulated rounding of
// the proportional-progress bumps; anything beyond a few hundred ULP
// (operator-granularity overshoot, speed-multiplier perturbations,
// multi-quantum steps) is re-anchored with an O(log n) Update so fast-
// path estimates stay within float rounding of the simulator's.
constexpr double kDriftRelTolerance = 1e-9;
}  // namespace

MultiQueryPi::MultiQueryPi(const sched::Rdbms* db,
                           MultiQueryPiOptions options,
                           FutureWorkloadModel* future)
    : db_(db),
      options_(options),
      future_(future),
      tracer_(obs::GlobalTracer()),
      rate_(options.rate_alpha),
      last_observed_now_(db->now()) {
  // Queries already in the system are current load, not "arrivals";
  // only queries submitted after the PI attaches feed the future model.
  for (const auto& info : db_->AllQueries()) {
    last_seen_id_ = std::max(last_seen_id_, info.id);
  }
}

void MultiQueryPi::AttachLifecycleEvents(sched::Rdbms* db) {
  if (!MQPI_DCHECK(db == db_)) return;
  db->AddEventListener(
      [this](const sched::QueryEvent& event) { OnQueryEvent(event); });
}

void MultiQueryPi::OnQueryEvent(const sched::QueryEvent& event) {
  if (!options_.enable_incremental || !engine_synced_) return;
  const std::uint64_t db_structural = db_->structural_epoch();
  const std::uint64_t db_load = db_->load_epoch();
  // Continuity proof: this event's Emit bumped the structural epoch by
  // one, so the engine may absorb it as a delta only if it already
  // reflected everything before it. A gap means a masked structural
  // change (e.g. a surviving fast-forward, which re-anchors a cost
  // without emitting an event) — resync instead of guessing.
  if (engine_structural_epoch_ + 1 != db_structural) {
    engine_synced_ = false;
    return;
  }
  // The event also bumped the load epoch; if the engine was current on
  // that axis too, it stays current after the delta. Mid-quantum
  // events (a finish inside StepOnce, before ObserveStep applied the
  // quantum's progress bump) leave the load epoch stale on purpose so
  // estimates fall back until the bump lands.
  const bool was_current = engine_load_epoch_ + 1 == db_load;

  const sched::QueryInfo& info = event.info;
  Status applied = Status::OK();
  switch (event.kind) {
    case sched::QueryEventKind::kSubmitted:
      break;  // queued queries are not modelled; the gate handles them
    case sched::QueryEventKind::kStarted:
    case sched::QueryEventKind::kResumed:
      applied = engine_.Insert(info.id, info.estimated_remaining_cost,
                               info.weight);
      break;
    case sched::QueryEventKind::kBlocked:
    case sched::QueryEventKind::kFinished:
    case sched::QueryEventKind::kAborted:
      // Aborts/finishes can target queued queries the engine never
      // held; absence is not an error.
      if (engine_.Contains(info.id)) applied = engine_.Remove(info.id);
      break;
    case sched::QueryEventKind::kPriorityChanged:
      if (engine_.Contains(info.id)) {
        applied = engine_.Update(info.id, info.estimated_remaining_cost,
                                 info.weight);
      }
      break;
  }
  if (!applied.ok()) {
    engine_synced_ = false;  // impossible delta — let ObserveStep rebuild
    return;
  }
  engine_structural_epoch_ = db_structural;
  if (was_current) engine_load_epoch_ = db_load;
}

void MultiQueryPi::RebuildEngine(
    const std::vector<sched::QueryInfo>& running) {
  engine_.Clear();
  for (const auto& info : running) {
    const Status inserted = engine_.Insert(
        info.id, info.estimated_remaining_cost, info.weight);
    if (!inserted.ok()) {
      // Degenerate load (e.g. a non-positive weight) cannot be
      // mirrored; estimates stay on the simulator path, which reports
      // the condition properly.
      engine_.Clear();
      engine_synced_ = false;
      return;
    }
  }
  ++incremental_resyncs_;
  engine_synced_ = true;
  engine_structural_epoch_ = db_->structural_epoch();
  engine_load_epoch_ = db_->load_epoch();
}

void MultiQueryPi::SyncEngine(
    const std::vector<sched::QueryInfo>& running) {
  const std::uint64_t db_structural = db_->structural_epoch();
  const std::uint64_t db_load = db_->load_epoch();
  if (!engine_synced_ || engine_structural_epoch_ != db_structural ||
      engine_.size() != running.size()) {
    RebuildEngine(running);
    return;
  }
  if (engine_load_epoch_ == db_load) return;  // nothing moved

  // Progress-only epoch gap: every running query consumed w_i * dx of
  // work, so the whole quantum is one offset bump at
  // dx = total consumed / total weight.
  WorkUnits consumed = 0.0;
  double total_weight = 0.0;
  for (const auto& info : running) {
    consumed += info.consumed_last_step;
    total_weight += info.weight;
  }
  if (consumed > 0.0 && total_weight > 0.0) {
    engine_.Advance(consumed / total_weight);
  }

  // Drift repair: operator-granularity overshoot, perturbed per-query
  // speeds, or multi-quantum steps make the proportional bump inexact;
  // re-anchor any query whose mirrored cost left the tolerance band.
  // O(n) compares, O(log n) per repaired query.
  for (const auto& info : running) {
    auto mirrored = engine_.CostOf(info.id);
    if (!mirrored.ok()) {
      RebuildEngine(running);  // membership mismatch — stale mirror
      return;
    }
    const WorkUnits authoritative = info.estimated_remaining_cost;
    const double scale = std::max(1.0, std::abs(authoritative));
    if (std::abs(*mirrored - authoritative) >
        kDriftRelTolerance * scale) {
      const Status updated =
          engine_.Update(info.id, authoritative, info.weight);
      if (!updated.ok()) {
        engine_synced_ = false;
        return;
      }
    }
  }
  engine_load_epoch_ = db_load;
}

void MultiQueryPi::ObserveStep() {
  const SimTime now = db_->now();
  const SimTime since = std::max(0.0, now - last_observed_now_);
  last_observed_now_ = now;

  if (fault_ != nullptr && fault_->enabled()) {
    if (fault_->ShouldFire(fault::kPiCacheInvalidate)) {
      // Forced invalidation is a correctness no-op by construction:
      // the next estimate recomputes from the same inputs and must be
      // byte-identical (the chaos soak cross-checks this).
      cache_valid_ = false;
      base_valid_ = false;
      cache_forecast_.reset();
    }
    const auto corrupt = fault_->Evaluate(fault::kPiWindowCorrupt);
    if (corrupt.fired) window_consumed_ = corrupt.value;
  }

  // Accumulate consumption across running queries; emit one rate
  // sample per full window (per-quantum totals are too noisy because
  // operators overshoot their budget by up to one probe).
  const auto running = db_->RunningQueries();
  WorkUnits consumed = 0.0;
  SimTime dt = 0.0;
  for (const auto& info : running) {
    consumed += info.consumed_last_step;
    dt = std::max(dt, info.last_step_duration);
  }
  if (dt > 0.0 && !running.empty()) {
    idle_elapsed_ = 0.0;
    window_consumed_ += consumed;
    window_elapsed_ += dt;
    if (window_elapsed_ + kTimeEpsilon >= options_.rate_window) {
      const double sample = window_consumed_ / window_elapsed_;
      // Guardrail: a corrupted accumulator (NaN, negative) or a fully
      // stalled window (zero consumption while queries nominally ran)
      // must not poison the EWMA — division by a ~zero smoothed rate
      // is how inf estimates are born. Reject the sample and keep the
      // last credible measurement instead.
      if (std::isfinite(sample) && sample > 0.0) {
        rate_.Observe(sample);
      } else {
        ++corrupt_rate_samples_;
      }
      window_consumed_ = 0.0;
      window_elapsed_ = 0.0;
    }
  } else {
    // Idle (or blocked-only) quantum. Drop the partial window — the
    // pre-gap fragment would otherwise be silently concatenated with
    // post-gap consumption into one "window" spanning the gap — and
    // once the system has been idle for at least a full rate window,
    // flush the smoothed rate too: whatever speed was measured before
    // the gap describes a workload that no longer exists.
    window_consumed_ = 0.0;
    window_elapsed_ = 0.0;
    idle_elapsed_ += since;
    if (rate_.has_value() &&
        idle_elapsed_ + kTimeEpsilon >= options_.rate_window) {
      rate_.Reset();
    }
  }

  // Primary engine sync point: structural drift rebuilds, a plain
  // quantum is one O(1) virtual-time bump (+ drift repair). Reuses the
  // `running` infos already fetched for the rate measurement.
  if (options_.enable_incremental) SyncEngine(running);

  // Detect arrivals (ids above the watermark) for the future model.
  if (future_ != nullptr) {
    for (const auto& info : db_->AllQueries()) {
      if (info.id > last_seen_id_) {
        last_seen_id_ = info.id;
        future_->ObserveArrival(info.arrival_time, info.optimizer_cost,
                                info.weight);
      }
    }
    future_->ObserveElapsed(now);
  }
}

double MultiQueryPi::estimated_rate() const {
  const double configured = db_->options().processing_rate;
  // The floor keeps the estimation rate strictly positive and finite
  // even when the measured rate collapses to zero/denormal or the
  // configured rate itself is degenerate.
  const double floor =
      std::max(configured * options_.min_rate_fraction, 1e-12);
  const double rate = rate_.has_value() ? rate_.value() : configured;
  if (!std::isfinite(rate) || rate < floor) {
    ++rate_floor_hits_;
    return floor;
  }
  return rate;
}

SimTime MultiQueryPi::SanitizeEta(SimTime eta) const {
  if (std::isnan(eta) || (eta < 0.0 && eta != kUnknown)) {
    ++degraded_estimates_;
    return kUnknown;
  }
  return eta;
}

MultiQueryPi::CacheKey MultiQueryPi::CurrentKey() const {
  CacheKey key;
  key.load_epoch = db_->load_epoch();
  key.rate = estimated_rate();
  if (future_ != nullptr) key.future = future_->Current();
  return key;
}

const MultiQueryPi::BaseLoad& MultiQueryPi::SnapshotBaseLoad() const {
  const std::uint64_t epoch = db_->load_epoch();
  if (base_valid_ && base_epoch_ == epoch) return base_;
  base_.running.clear();
  base_.queued.clear();
  for (const auto& info : db_->RunningQueries()) {
    base_.running.push_back(
        QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
  }
  if (options_.consider_admission_queue) {
    for (const auto& info : db_->QueuedQueries()) {
      base_.queued.push_back(
          QueryLoad{info.id, info.estimated_remaining_cost, info.weight});
    }
  }
  base_epoch_ = epoch;
  base_valid_ = true;
  return base_;
}

AnalyticModelOptions MultiQueryPi::ModelOptions() const {
  AnalyticModelOptions model;
  model.rate = estimated_rate();
  model.max_concurrent = db_->options().max_concurrent;
  model.horizon = options_.horizon;
  model.max_events = options_.max_events;
  if (future_ != nullptr) {
    const FutureWorkloadEstimate est = future_->Current();
    if (est.lambda > 0.0 && est.avg_cost > 0.0) {
      model.virtual_interval = 1.0 / est.lambda;
      model.virtual_cost = est.avg_cost;
      model.virtual_weight = est.avg_weight;
    }
  }
  return model;
}

Result<std::shared_ptr<const ForecastResult>>
MultiQueryPi::ComputeBaseForecast() const {
  const BaseLoad& base = SnapshotBaseLoad();
  ++cache_misses_;
  obs::TraceSpan span(tracer_, "pi", "forecast");
  span.arg("n", static_cast<double>(base.running.size() +
                                    base.queued.size()));
  span.arg("epoch", static_cast<double>(base_epoch_));
  auto forecast =
      AnalyticSimulator::Forecast(base.running, base.queued, {},
                                  ModelOptions());
  if (!forecast.ok()) return forecast.status();
  return std::make_shared<const ForecastResult>(*std::move(forecast));
}

Result<std::shared_ptr<const ForecastResult>> MultiQueryPi::ForecastShared()
    const {
  if (!options_.enable_forecast_cache) return ComputeBaseForecast();
  const CacheKey key = CurrentKey();
  if (cache_valid_ && key == cache_key_) {
    ++cache_hits_;
    if (!cache_status_.ok()) return cache_status_;
    return cache_forecast_;
  }
  auto forecast = ComputeBaseForecast();
  cache_key_ = key;
  cache_valid_ = true;
  if (forecast.ok()) {
    cache_status_ = Status::OK();
    cache_forecast_ = *forecast;
  } else {
    cache_status_ = forecast.status();
    cache_forecast_.reset();
  }
  return forecast;
}

Result<ForecastResult> MultiQueryPi::ForecastAll() const {
  auto forecast = ForecastShared();
  if (!forecast.ok()) return forecast.status();
  return **forecast;
}

Result<ForecastResult> MultiQueryPi::ForecastWhatIf(
    const WhatIf& scenario) const {
  if (scenario.blocked.empty() && scenario.aborted.empty() &&
      scenario.reweighted.empty()) {
    // The empty scenario IS the base forecast — share the cache.
    return ForecastAll();
  }

  // Lookup structures built once per scenario, not scanned per query.
  std::unordered_set<QueryId> removed;
  removed.reserve(scenario.blocked.size() + scenario.aborted.size());
  removed.insert(scenario.blocked.begin(), scenario.blocked.end());
  removed.insert(scenario.aborted.begin(), scenario.aborted.end());
  std::unordered_map<QueryId, double> reweighted(
      scenario.reweighted.begin(), scenario.reweighted.end());

  auto apply = [&](const std::vector<QueryLoad>& loads,
                   std::vector<QueryLoad>* out) {
    out->reserve(loads.size());
    for (const QueryLoad& load : loads) {
      if (removed.count(load.id) != 0) continue;
      auto weight = reweighted.find(load.id);
      out->push_back(weight == reweighted.end()
                         ? load
                         : QueryLoad{load.id, load.remaining_cost,
                                     weight->second});
    }
  };

  const BaseLoad& base = SnapshotBaseLoad();
  std::vector<QueryLoad> running;
  std::vector<QueryLoad> queued;
  apply(base.running, &running);
  apply(base.queued, &queued);

  ++whatif_forecasts_;
  obs::TraceSpan span(tracer_, "pi", "forecast_whatif");
  span.arg("n", static_cast<double>(running.size() + queued.size()));
  return AnalyticSimulator::Forecast(running, queued, {}, ModelOptions());
}

bool MultiQueryPi::FastPathReady() const {
  if (!options_.enable_incremental || !engine_synced_) return false;
  // The engine must mirror the Rdbms exactly: structural epoch for the
  // membership/weights, load epoch for the quantum's progress bump.
  if (engine_structural_epoch_ != db_->structural_epoch() ||
      engine_load_epoch_ != db_->load_epoch()) {
    return false;
  }
  // A non-empty admission queue means future admissions the closed
  // form does not model (the simulator replays them instead).
  if (options_.consider_admission_queue && db_->num_queued() > 0) {
    return false;
  }
  // The simulator truncates at max_events / horizon; stay on its
  // exact regime so both paths agree bit-for-bit (modulo rounding).
  if (engine_.size() > options_.max_events) return false;
  const SimTime quiescent = engine_.QuiescentTime(estimated_rate());
  if (quiescent > options_.horizon) return false;
  // A virtual (Section 2.4) arrival due before the system quiesces
  // would join the modelled load mid-forecast — simulator territory.
  if (future_ != nullptr) {
    const FutureWorkloadEstimate est = future_->Current();
    if (est.lambda > 0.0 && est.avg_cost > 0.0 &&
        quiescent + kTimeEpsilon >= 1.0 / est.lambda) {
      return false;
    }
  }
  return true;
}

Result<SimTime> MultiQueryPi::EstimateRemainingTime(
    const sched::QueryInfo& info) const {
  switch (info.state) {
    case sched::QueryState::kFinished:
      return 0.0;
    case sched::QueryState::kAborted:
      return 0.0;
    case sched::QueryState::kBlocked:
      return kInfiniteTime;  // no progress while blocked
    case sched::QueryState::kQueued:
      if (!options_.consider_admission_queue) {
        // Without queue awareness the PI cannot see this query at all.
        return kInfiniteTime;
      }
      break;
    case sched::QueryState::kRunning:
      if (FastPathReady()) {
        auto eta = engine_.RemainingTime(info.id, estimated_rate());
        if (eta.ok()) {
          ++incremental_fast_path_;
          return SanitizeEta(*eta);
        }
        // Unknown to the mirror (shouldn't happen while synced) —
        // the simulator path below reports it authoritatively.
      }
      break;
  }
  if (options_.enable_incremental) ++incremental_fallback_;
  auto forecast = ForecastShared();
  if (!forecast.ok()) return forecast.status();
  auto eta = (*forecast)->FinishTimeOf(info.id);
  if (!eta.ok()) return eta.status();
  return SanitizeEta(*eta);
}

Result<MultiQueryPi::BatchEstimates> MultiQueryPi::EstimateAllRunning()
    const {
  if (!FastPathReady()) {
    return Status::FailedPrecondition(
        "incremental fast path not ready; estimate per row");
  }
  const BatchEstimateKernel::Batch batch =
      kernel_.EstimateAll(engine_, estimated_rate());
  // Every row is an engine-served estimate, same as n fast-path point
  // queries would have been. No per-row SanitizeEta pass: the sweep
  // clamps at zero and its inputs are finite (the engine validates
  // cost/weight, estimated_rate() is floored), so sanitization would
  // be a no-op on every row.
  incremental_fast_path_ += batch.size;
  return BatchEstimates{batch.ids, batch.etas, batch.size};
}

Result<SimTime> MultiQueryPi::QuiescentEta() const {
  if (FastPathReady()) {
    ++incremental_fast_path_;
    return SanitizeEta(engine_.QuiescentTime(estimated_rate()));
  }
  if (options_.enable_incremental) ++incremental_fallback_;
  auto forecast = ForecastShared();
  if (!forecast.ok()) return forecast.status();
  return SanitizeEta((*forecast)->quiescent_time());
}

Result<SimTime> MultiQueryPi::EstimateWhatIf(const WhatIf& scenario,
                                             QueryId target) const {
  // Pure-removal scenarios compose from exactly additive point
  // queries: removing victims never changes the survivors' finish
  // thresholds, so r' = r - sum of per-victim benefits (§3.1).
  // Reweights would reorder thresholds — those run the simulator.
  if (scenario.reweighted.empty() && FastPathReady()) {
    std::unordered_set<QueryId> removed;
    removed.reserve(scenario.blocked.size() + scenario.aborted.size());
    removed.insert(scenario.blocked.begin(), scenario.blocked.end());
    removed.insert(scenario.aborted.begin(), scenario.aborted.end());
    if (removed.count(target) == 0) {
      const double rate = estimated_rate();
      auto eta = engine_.RemainingTime(target, rate);
      if (eta.ok()) {
        SimTime remaining = *eta;
        bool composed = true;
        for (QueryId victim : removed) {
          if (!engine_.Contains(victim)) continue;  // like ForecastWhatIf
          auto benefit = engine_.RemovalBenefit(target, victim, rate);
          if (!benefit.ok()) {
            composed = false;
            break;
          }
          remaining -= *benefit;
        }
        if (composed) {
          ++incremental_fast_path_;
          return SanitizeEta(std::max(0.0, remaining));
        }
      }
      // Target or a victim eluded the mirror — simulate instead.
    } else {
      return Status::NotFound("query " + std::to_string(target) +
                              " not in forecast");
    }
  }
  if (options_.enable_incremental) ++incremental_fallback_;
  auto forecast = ForecastWhatIf(scenario);
  if (!forecast.ok()) return forecast.status();
  auto eta = forecast->FinishTimeOf(target);
  if (!eta.ok()) return eta.status();
  return SanitizeEta(*eta);
}

Result<SimTime> MultiQueryPi::EstimateRemainingTime(QueryId id) const {
  auto info = db_->info(id);
  if (!info.ok()) return info.status();
  return EstimateRemainingTime(*info);
}

}  // namespace mqpi::pi
