#include "pi/stage_profile.h"

#include <algorithm>
#include <string>

namespace mqpi::pi {

Result<StageProfile> StageProfile::Compute(std::vector<QueryLoad> queries,
                                           double rate) {
  if (rate <= 0.0) {
    return Status::InvalidArgument("aggregate rate must be positive, got " +
                                   std::to_string(rate));
  }
  for (const QueryLoad& q : queries) {
    if (q.weight <= 0.0) {
      return Status::InvalidArgument(
          "query " + std::to_string(q.id) + " has non-positive weight " +
          std::to_string(q.weight));
    }
    if (q.remaining_cost < 0.0) {
      return Status::InvalidArgument(
          "query " + std::to_string(q.id) + " has negative remaining cost " +
          std::to_string(q.remaining_cost));
    }
  }

  StageProfile profile;
  profile.rate_ = rate;
  profile.sorted_ = std::move(queries);
  // Ascending c/w; compare cross-multiplied to avoid division.
  std::sort(profile.sorted_.begin(), profile.sorted_.end(),
            [](const QueryLoad& a, const QueryLoad& b) {
              const double lhs = a.remaining_cost * b.weight;
              const double rhs = b.remaining_cost * a.weight;
              if (lhs != rhs) return lhs < rhs;
              return a.id < b.id;  // deterministic tie-break
            });

  const std::size_t n = profile.sorted_.size();
  profile.durations_.resize(n);
  profile.remaining_.resize(n);
  profile.suffix_weights_.resize(n);

  double suffix = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    suffix += profile.sorted_[i].weight;
    profile.suffix_weights_[i] = suffix;
  }

  double prev_ratio = 0.0;
  SimTime elapsed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const QueryLoad& q = profile.sorted_[i];
    const double ratio = q.remaining_cost / q.weight;
    const SimTime duration =
        (ratio - prev_ratio) * profile.suffix_weights_[i] / rate;
    profile.durations_[i] = duration < 0.0 ? 0.0 : duration;
    elapsed += profile.durations_[i];
    profile.remaining_[i] = elapsed;
    prev_ratio = ratio;
  }
  return profile;
}

Result<SimTime> StageProfile::RemainingTimeOf(QueryId id) const {
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (sorted_[i].id == id) return remaining_[i];
  }
  return Status::NotFound("query " + std::to_string(id) +
                          " not in stage profile");
}

Result<std::size_t> StageProfile::FinishPosition(QueryId id) const {
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (sorted_[i].id == id) return i;
  }
  return Status::NotFound("query " + std::to_string(id) +
                          " not in stage profile");
}

}  // namespace mqpi::pi
