// StageProfile: the paper's Section 2.2 "standard case" algorithm.
//
// Given n queries with remaining costs c_i and priority weights w_i
// executing under weighted fair sharing at aggregate rate C
// (s_i = C * w_i / W), their joint execution decomposes into n stages;
// at the end of stage i the query with the i-th smallest c/w ratio
// finishes. Stage durations have the closed form
//
//     t_i = (c_i/w_i - c_{i-1}/w_{i-1}) * W_i / C,     W_i = sum_{j>=i} w_j
//
// (with c_0/w_0 = 0), and the remaining execution time of the i-th
// finisher is r_i = t_1 + ... + t_i. Sorting dominates: O(n log n) time,
// O(n) space — the complexity the paper claims.
//
// This is the analytic core reused by the multi-query progress
// indicator and by all three workload-management algorithms.
#pragma once

#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace mqpi::pi {

/// One query as seen by the analytic model: the PI-observable pair
/// (remaining cost, weight).
struct QueryLoad {
  QueryId id = kInvalidQueryId;
  WorkUnits remaining_cost = 0.0;  // c_i >= 0
  double weight = 1.0;             // w_i > 0
};

class StageProfile {
 public:
  /// Computes the staged execution of `queries` at aggregate rate
  /// `rate` (C, work units/sec). Fails on non-positive rate or weights
  /// or negative costs.
  static Result<StageProfile> Compute(std::vector<QueryLoad> queries,
                                      double rate);

  std::size_t num_queries() const { return sorted_.size(); }

  /// Queries in predicted finish order (ascending c/w).
  const std::vector<QueryLoad>& finish_order() const { return sorted_; }

  /// t_i: duration of stage i (0-indexed), aligned with finish_order().
  const std::vector<SimTime>& stage_durations() const { return durations_; }

  /// r_i: remaining execution time of the i-th finisher (0-indexed).
  const std::vector<SimTime>& remaining_times() const { return remaining_; }

  /// Remaining execution time of a specific query.
  Result<SimTime> RemainingTimeOf(QueryId id) const;

  /// System quiescent time: when the last query finishes (0 if empty).
  SimTime quiescent_time() const {
    return remaining_.empty() ? 0.0 : remaining_.back();
  }

  /// Position of `id` in the finish order (0-indexed).
  Result<std::size_t> FinishPosition(QueryId id) const;

  /// Suffix weight sums W_i = sum_{j >= i} w_j, aligned with
  /// finish_order(); used by the speed-up algorithms of Section 3.
  const std::vector<double>& suffix_weights() const {
    return suffix_weights_;
  }

  double rate() const { return rate_; }

 private:
  StageProfile() = default;

  std::vector<QueryLoad> sorted_;
  std::vector<SimTime> durations_;
  std::vector<SimTime> remaining_;
  std::vector<double> suffix_weights_;
  double rate_ = 0.0;
};

}  // namespace mqpi::pi
