// PiManager: attaches progress indicators to an Rdbms and records
// estimate traces over time — the instrumentation behind Figures 3-5
// and 10 (estimated remaining time / observed speed as functions of
// time for selected queries).
//
// Call AfterStep() once after every Rdbms::Step quantum; it feeds all
// attached PIs and appends samples at the configured interval.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "pi/multi_query_pi.h"
#include "pi/single_query_pi.h"
#include "sched/rdbms.h"

namespace mqpi::obs {
class Tracer;
}  // namespace mqpi::obs

namespace mqpi::pi {

struct EstimateSample {
  SimTime time = 0.0;
  /// Single-query PI estimate (t = c/s).
  SimTime single = kUnknown;
  /// Multi-query PI estimate (queue-aware if configured).
  SimTime multi = kUnknown;
  /// Multi-query estimate ignoring the admission queue (Figure 5's
  /// middle curve); kUnknown unless the variant is enabled.
  SimTime multi_no_queue = kUnknown;
  /// Smoothed observed execution speed of the query (U/s) — Figure 4.
  double speed = 0.0;
};

struct PiManagerOptions {
  /// Gap between recorded samples (simulated seconds).
  SimTime sample_interval = 1.0;
  /// Also maintain a queue-blind multi-query PI for comparison.
  bool record_queue_blind_variant = false;
  /// Configuration of the primary multi-query PI.
  MultiQueryPiOptions multi;
  /// Speed-EWMA weight of the single-query PIs.
  double single_speed_alpha = 0.3;
  /// Sliding-window span for single-query speed samples (seconds).
  SimTime single_speed_window = 2.0;
  /// Automatically Track() every query submitted after the manager
  /// attaches (uses the Rdbms event stream).
  bool auto_track = false;
};

class PiManager {
 public:
  /// `db` and `future` (optional) must outlive the manager. The
  /// manager registers an event listener on `db` when auto_track is
  /// set, so it must also outlive any stepping of `db`.
  PiManager(sched::Rdbms* db, PiManagerOptions options = {},
            FutureWorkloadModel* future = nullptr);

  /// Starts tracing a query. Idempotent; re-tracking an already
  /// tracked query keeps its observation history. Samples recorded
  /// before the first Track() call are simply absent from the trace.
  void Track(QueryId id);

  /// Feeds PIs and appends due samples; call after every Step quantum.
  void AfterStep();

  /// The recorded trace of a tracked query (empty if never sampled).
  const std::vector<EstimateSample>& Trace(QueryId id) const;

  /// Current single-query estimate. Untracked or finished ids are not
  /// an error: they report kUnknown (no observation history), so
  /// concurrent callers — e.g. service sessions polling arbitrary
  /// ids — need no Track()-before-sample ordering.
  Result<SimTime> EstimateSingle(QueryId id) const;

  /// Smoothed observed speed of a tracked query (U/s); 0 if untracked
  /// or not yet observed.
  double SpeedOf(QueryId id) const;

  /// Current multi-query estimate.
  Result<SimTime> EstimateMulti(QueryId id) const {
    return multi_.EstimateRemainingTime(id);
  }

  MultiQueryPi* multi() { return &multi_; }
  const MultiQueryPi* multi() const { return &multi_; }

  /// Forwards a chaos harness to the primary multi-query PI. The
  /// queue-blind comparison variant stays un-faulted: a second PI
  /// drawing from the same fault-point streams would entangle both
  /// PIs' fire sequences with their evaluation interleaving.
  void SetFaultInjector(fault::FaultInjector* injector) {
    multi_.SetFaultInjector(injector);
  }

  /// One dashboard row per live query — the classic progress-indicator
  /// GUI payload (percent done + ETA), with both estimators side by
  /// side. Covers every non-terminal query in the system, tracked or
  /// not (untracked queries report kUnknown for the single-query ETA,
  /// which needs an observation history).
  struct ProgressRow {
    QueryId id = kInvalidQueryId;
    std::string label;
    sched::QueryState state = sched::QueryState::kQueued;
    /// completed / (completed + estimated remaining), in [0, 1].
    double fraction_done = 0.0;
    double speed = 0.0;            // smoothed U/s (tracked queries)
    SimTime eta_single = kUnknown;
    SimTime eta_multi = kUnknown;
  };
  std::vector<ProgressRow> Report() const;

 private:
  const sched::Rdbms* db_;
  PiManagerOptions options_;
  obs::Tracer* tracer_;  // the process-wide tracer, cached
  MultiQueryPi multi_;
  std::unique_ptr<MultiQueryPi> multi_blind_;
  std::map<QueryId, SingleQueryPi> singles_;
  std::map<QueryId, std::vector<EstimateSample>> traces_;
  SimTime next_sample_ = 0.0;
};

}  // namespace mqpi::pi
