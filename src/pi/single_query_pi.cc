#include "pi/single_query_pi.h"

namespace mqpi::pi {

SingleQueryPi::SingleQueryPi(QueryId id, double speed_alpha, SimTime window)
    : id_(id), speed_(speed_alpha), window_(window) {}

void SingleQueryPi::Observe(const sched::QueryInfo& info, SimTime now) {
  remaining_cost_ = info.estimated_remaining_cost;
  if (info.state == sched::QueryState::kFinished) {
    finished_ = true;
    remaining_cost_ = 0.0;
    return;
  }
  if (info.state != sched::QueryState::kRunning) {
    // Not executing: restart the measurement window so queued/blocked
    // stretches don't pollute the next sample.
    window_start_ = kUnknown;
    return;
  }
  if (window_start_ == kUnknown) {
    window_start_ = now;
    window_start_work_ = info.completed_work;
    return;
  }
  const SimTime span = now - window_start_;
  if (span + kTimeEpsilon < window_) return;  // window not full yet
  speed_.Observe((info.completed_work - window_start_work_) / span);
  window_start_ = now;
  window_start_work_ = info.completed_work;
}

SimTime SingleQueryPi::EstimateRemainingTime() const {
  if (finished_) return 0.0;
  if (!speed_.has_value() || speed_.value() <= 0.0) return kInfiniteTime;
  return remaining_cost_ / speed_.value();
}

}  // namespace mqpi::pi
