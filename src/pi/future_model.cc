#include "pi/future_model.h"

#include <algorithm>

namespace mqpi::pi {

FutureWorkloadModel::FutureWorkloadModel(FutureWorkloadEstimate prior)
    : prior_(prior) {}

FutureWorkloadModel::FutureWorkloadModel(FutureWorkloadEstimate prior,
                                         double prior_strength)
    : prior_(prior), adaptive_(true), prior_strength_(prior_strength) {}

void FutureWorkloadModel::ObserveArrival(SimTime now, WorkUnits cost,
                                         double weight) {
  if (!adaptive_) return;
  window_end_ = std::max(window_end_, now);
  observed_count_ += 1.0;
  observed_cost_sum_ += cost;
  observed_weight_sum_ += weight;
}

void FutureWorkloadModel::ObserveElapsed(SimTime now) {
  if (!adaptive_) return;
  window_end_ = std::max(window_end_, now);
}

FutureWorkloadEstimate FutureWorkloadModel::Current() const {
  if (!adaptive_) return prior_;
  FutureWorkloadEstimate out;
  const double elapsed = std::max(0.0, window_end_ - window_start_);
  // Gamma-style blend: the prior acts as prior_strength_ arrivals over
  // prior_strength_ / lambda seconds (guarding lambda == 0).
  const double prior_time =
      prior_.lambda > 0.0 ? prior_strength_ / prior_.lambda : 0.0;
  const double total_count = prior_strength_ + observed_count_;
  const double total_time = prior_time + elapsed;
  out.lambda = total_time > 0.0 ? total_count / total_time : prior_.lambda;
  out.avg_cost =
      total_count > 0.0
          ? (prior_strength_ * prior_.avg_cost + observed_cost_sum_) /
                total_count
          : prior_.avg_cost;
  out.avg_weight =
      total_count > 0.0
          ? (prior_strength_ * prior_.avg_weight + observed_weight_sum_) /
                total_count
          : prior_.avg_weight;
  return out;
}

}  // namespace mqpi::pi
