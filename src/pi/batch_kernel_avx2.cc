// AVX2+FMA variant of the batch estimate sweep. This translation unit
// is compiled with -mavx2 -mfma (see src/pi/CMakeLists.txt) and is
// only reachable through batch_kernel.cc's runtime dispatcher after a
// __builtin_cpu_supports("avx2")/"fma" check, so building it on any
// x86-64 toolchain is safe even when the deployment CPU lacks AVX2.
// Non-x86 or AVX2-incapable toolchains skip the file entirely and the
// dispatcher falls back to NEON/scalar.
#include "pi/batch_kernel.h"

#if defined(MQPI_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace mqpi::pi::detail {

void SweepAvx2(const double* v, const double* prefix_w,
               const double* prefix_vw, std::size_t n, double x,
               double total_w, double inv_rate, double* eta) {
  const __m256d vx = _mm256_set1_pd(x);
  const __m256d vtw = _mm256_set1_pd(total_w);
  const __m256d vinv = _mm256_set1_pd(inv_rate);
  const __m256d vzero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vv = _mm256_loadu_pd(v + i);
    const __m256d vpw = _mm256_loadu_pd(prefix_w + i);
    const __m256d vpvw = _mm256_loadu_pd(prefix_vw + i);
    // r = pvw - x*pw + (v - x) * (W - pw)
    __m256d r = _mm256_fnmadd_pd(vx, vpw, vpvw);
    r = _mm256_fmadd_pd(_mm256_sub_pd(vv, vx), _mm256_sub_pd(vtw, vpw), r);
    r = _mm256_mul_pd(_mm256_max_pd(r, vzero), vinv);
    _mm256_storeu_pd(eta + i, r);
  }
  for (; i < n; ++i) {
    const double r = prefix_vw[i] - x * prefix_w[i] +
                     (v[i] - x) * (total_w - prefix_w[i]);
    eta[i] = std::max(0.0, r) * inv_rate;
  }
}

}  // namespace mqpi::pi::detail

#endif  // MQPI_HAVE_AVX2
