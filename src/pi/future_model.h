// FutureWorkloadModel: the Section 2.4 prediction of queries that have
// not yet arrived — "we assume that we know the average query priority
// p-bar, the average cost c-bar, and the average arrival rate lambda".
//
// The model holds those three numbers as a prior and, when adaptive
// mode is on, blends them with arrivals actually observed since the
// model started — this is the adaptivity that lets a multi-query PI
// recover from a wrong lambda' (Figures 8-10). The blend treats the
// prior as `prior_strength` pseudo-arrivals spread over
// prior_strength / lambda seconds, so observation gradually outweighs
// a bad prior.
#pragma once

#include "common/units.h"

namespace mqpi::pi {

struct FutureWorkloadEstimate {
  /// Average arrival rate lambda (queries/sec). 0 disables forecasting.
  double lambda = 0.0;
  /// Average query cost c-bar (work units).
  WorkUnits avg_cost = 0.0;
  /// Weight of the average priority p-bar.
  double avg_weight = 1.0;
};

class FutureWorkloadModel {
 public:
  /// Static model: always reports `prior`.
  explicit FutureWorkloadModel(FutureWorkloadEstimate prior);

  /// Adaptive model: blends `prior` (worth `prior_strength`
  /// pseudo-arrivals) with observed arrivals.
  FutureWorkloadModel(FutureWorkloadEstimate prior, double prior_strength);

  /// Records one observed arrival at absolute time `now`.
  void ObserveArrival(SimTime now, WorkUnits cost, double weight);

  /// Advances the observation window without an arrival (lambda decays
  /// when the system goes quiet). No-op for static models.
  void ObserveElapsed(SimTime now);

  /// Current best estimate.
  FutureWorkloadEstimate Current() const;

  bool adaptive() const { return adaptive_; }
  const FutureWorkloadEstimate& prior() const { return prior_; }

 private:
  FutureWorkloadEstimate prior_;
  bool adaptive_ = false;
  double prior_strength_ = 0.0;
  SimTime window_start_ = 0.0;
  SimTime window_end_ = 0.0;
  double observed_count_ = 0.0;
  WorkUnits observed_cost_sum_ = 0.0;
  double observed_weight_sum_ = 0.0;
};

}  // namespace mqpi::pi
