// BatchEstimateKernel: the estimate-all hot path on a flat
// structure-of-arrays mirror of the incremental engine.
//
// The treap (incremental_forecast.h) wins the asymptotics: one
// RemainingTime probe is an O(log n) closed-form prefix query. But a
// snapshot wants all n running estimates every quantum, and n pointer-
// chasing tree walks lose the constants — cache misses, branches, and
// per-query call overhead dominate. This kernel wins them back with a
// flat mirror in predicted finish order (ascending (v, id), exactly
// the treap's key order):
//
//   v[i]          absolute finish threshold X0 + c/w
//   prefix_w[i]   sum of w[j], j <= i
//   prefix_vw[i]  sum of v[j]*w[j], j <= i
//
// against which the paper's Section 2.2 stage formula collapses to a
// pure elementwise sweep — for every i in one O(n) pass:
//
//   eta[i] = max(0, prefix_vw[i] - X*prefix_w[i]
//                   + (v[i] - X) * (W - prefix_w[i])) / C
//
// with no data dependence between lanes, so the sweep vectorizes
// (AVX2 on x86-64, NEON on aarch64, portable scalar everywhere else;
// the implementation is picked once at runtime from CPU features and
// can be pinned to scalar for differential tests).
//
// Epoch discipline: the mirror is regenerated — one O(n) in-order
// export from the treap plus one O(n) prefix pass and one O(n log n)
// id-order sort — only when the engine's structure_version() moves
// (insert/remove/update/renormalize). Pure progress never invalidates
// it: Advance() only moves the global offset X, which enters the sweep
// as a scalar read each call. In the steady state (progress-only
// quanta) an estimate-all is therefore exactly one sweep over three
// flat arrays: single-digit ns per query at n = 5000.
//
// Memory discipline: every array lives in one grow-only 64-byte-
// aligned arena owned by the kernel. A regeneration carves the arena
// afresh; a steady-state call allocates nothing at all, and no code
// path allocates per query.
//
// Exactness contract: the sweep computes the same expression as
// IncrementalForecast::RemainingTime over the same (v, w, X) state.
// The flat prefix sums accumulate left-to-right while the treap
// aggregates subtree-wise (and SIMD lanes may contract multiply-adds),
// so answers agree to a few ULP, not bit-for-bit — the three-way
// differential suite (simulator vs treap vs kernel) pins the
// tolerance.
//
// Thread-safety: none; externally synchronized like the rest of the PI
// stack (PiService serializes under its state lock). The ForceScalar
// toggle is process-global and intended for tests/benches only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/units.h"
#include "pi/incremental_forecast.h"

namespace mqpi::pi {

namespace detail {

/// The elementwise stage sweep all ISA variants implement:
/// eta[i] = max(0, prefix_vw[i] - x*prefix_w[i]
///              + (v[i] - x) * (total_w - prefix_w[i])) * inv_rate.
using BatchSweepFn = void (*)(const double* v, const double* prefix_w,
                              const double* prefix_vw, std::size_t n,
                              double x, double total_w, double inv_rate,
                              double* eta);

void SweepScalar(const double* v, const double* prefix_w,
                 const double* prefix_vw, std::size_t n, double x,
                 double total_w, double inv_rate, double* eta);
#if defined(MQPI_HAVE_AVX2)
/// Compiled with -mavx2 -mfma in batch_kernel_avx2.cc; only ever
/// dispatched to after a runtime __builtin_cpu_supports check.
void SweepAvx2(const double* v, const double* prefix_w,
               const double* prefix_vw, std::size_t n, double x,
               double total_w, double inv_rate, double* eta);
#endif
#if defined(__aarch64__)
void SweepNeon(const double* v, const double* prefix_w,
               const double* prefix_vw, std::size_t n, double x,
               double total_w, double inv_rate, double* eta);
#endif

}  // namespace detail

class BatchEstimateKernel {
 public:
  /// One estimate-all result. The arrays are views into the kernel's
  /// arena, parallel and sorted by ascending query id (so a snapshot
  /// builder walking ids in order merge-joins in O(n) with no hashing).
  /// Valid until the next EstimateAll call or kernel destruction —
  /// consume before releasing the external lock.
  struct Batch {
    const QueryId* ids = nullptr;
    const SimTime* etas = nullptr;
    std::size_t size = 0;
  };

  BatchEstimateKernel() = default;
  BatchEstimateKernel(const BatchEstimateKernel&) = delete;
  BatchEstimateKernel& operator=(const BatchEstimateKernel&) = delete;

  /// Estimates the remaining time of every query in `engine` at
  /// aggregate rate `rate` (> 0) in one pass. Regenerates the SoA
  /// mirror first if the engine's structure_version() moved; otherwise
  /// the call is pure sweep + gather with zero allocation.
  Batch EstimateAll(const IncrementalForecast& engine, double rate);

  /// Sweeps served from an already-current mirror, and mirror
  /// regenerations. hits + regens == EstimateAll calls.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t regens() const { return regens_; }

  /// The sweep implementation runtime dispatch resolves to right now
  /// ("avx2", "neon", or "scalar"), honoring ForceScalar.
  static const char* ActiveIsaName();

  /// Test/bench hook: true pins every kernel in the process to the
  /// portable scalar sweep; false restores CPU-feature dispatch.
  static void ForceScalar(bool force);

 private:
  /// Grow-only 64-byte-aligned bump allocator: one buffer, carved into
  /// the SoA columns at regeneration, reused forever after.
  class Arena {
   public:
    /// Ensures capacity for `bytes` and resets the carve cursor.
    /// Invalidates previously carved pointers.
    void Reset(std::size_t bytes);
    template <typename T>
    T* Carve(std::size_t count) {
      used_ = (used_ + kAlign - 1) & ~(kAlign - 1);
      T* p = reinterpret_cast<T*>(base_ + used_);
      used_ += count * sizeof(T);
      return p;
    }

   private:
    static constexpr std::size_t kAlign = 64;
    struct Deleter {
      void operator()(unsigned char* p) const {
        ::operator delete[](p, std::align_val_t{kAlign});
      }
    };
    std::unique_ptr<unsigned char[], Deleter> buf_;
    unsigned char* base_ = nullptr;
    std::size_t capacity_ = 0;
    std::size_t used_ = 0;
  };

  void Regenerate(const IncrementalForecast& engine);

  Arena arena_;
  // SoA columns, all arena-carved, all length n_. The *_v arrays are
  // in finish order (the treap's key order); ids_by_id_/etas_by_id_
  // are the id-sorted output view, connected by perm_ (finish-order
  // index of the k-th smallest id).
  double* v_ = nullptr;
  double* prefix_w_ = nullptr;
  double* prefix_vw_ = nullptr;
  double* etas_v_ = nullptr;
  QueryId* ids_v_ = nullptr;
  QueryId* ids_by_id_ = nullptr;
  double* etas_by_id_ = nullptr;
  std::uint32_t* perm_ = nullptr;
  std::size_t n_ = 0;
  double total_w_ = 0.0;

  bool mirror_valid_ = false;
  std::uint64_t mirror_version_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t regens_ = 0;
};

}  // namespace mqpi::pi
