#include "pi/incremental_forecast.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace mqpi::pi {

namespace {

// Cancellation guard: past this offset the v - X subtraction has lost
// ~10 decimal digits against unit-scale ratios, so rebase. Crossing is
// deterministic in the operation history (reproducibility).
constexpr double kRenormThreshold = 1e6;

// splitmix64: deterministic, well-mixed treap priority per query id.
std::uint64_t MixId(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void IncrementalForecast::Clear() {
  nodes_.clear();
  free_.clear();
  slot_.clear();
  root_ = -1;
  x_ = 0.0;
  ++structure_version_;
}

void IncrementalForecast::Pull(int i) {
  Node& n = nodes_[static_cast<std::size_t>(i)];
  n.count = 1;
  n.sum_w = n.w;
  n.sum_vw = n.v * n.w;
  if (n.left >= 0) {
    const Node& l = nodes_[static_cast<std::size_t>(n.left)];
    n.count += l.count;
    n.sum_w += l.sum_w;
    n.sum_vw += l.sum_vw;
  }
  if (n.right >= 0) {
    const Node& r = nodes_[static_cast<std::size_t>(n.right)];
    n.count += r.count;
    n.sum_w += r.sum_w;
    n.sum_vw += r.sum_vw;
  }
}

int IncrementalForecast::Merge(int a, int b) {
  if (a < 0) return b;
  if (b < 0) return a;
  if (nodes_[static_cast<std::size_t>(a)].pri >
      nodes_[static_cast<std::size_t>(b)].pri) {
    nodes_[static_cast<std::size_t>(a)].right =
        Merge(nodes_[static_cast<std::size_t>(a)].right, b);
    Pull(a);
    return a;
  }
  nodes_[static_cast<std::size_t>(b)].left =
      Merge(a, nodes_[static_cast<std::size_t>(b)].left);
  Pull(b);
  return b;
}

void IncrementalForecast::SplitLess(int root, double v, QueryId id,
                                    int* left, int* right) {
  if (root < 0) {
    *left = -1;
    *right = -1;
    return;
  }
  Node& n = nodes_[static_cast<std::size_t>(root)];
  if (KeyLess(n.v, n.id, v, id)) {
    SplitLess(n.right, v, id, &n.right, right);
    *left = root;
  } else {
    SplitLess(n.left, v, id, left, &n.left);
    *right = root;
  }
  Pull(root);
}

void IncrementalForecast::SplitLeq(int root, double v, QueryId id,
                                   int* left, int* right) {
  if (root < 0) {
    *left = -1;
    *right = -1;
    return;
  }
  Node& n = nodes_[static_cast<std::size_t>(root)];
  if (!KeyLess(v, id, n.v, n.id)) {  // n <= key
    SplitLeq(n.right, v, id, &n.right, right);
    *left = root;
  } else {
    SplitLeq(n.left, v, id, left, &n.left);
    *right = root;
  }
  Pull(root);
}

int IncrementalForecast::AllocNode(QueryId id, double v, double w) {
  int i;
  if (!free_.empty()) {
    i = free_.back();
    free_.pop_back();
  } else {
    i = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& n = nodes_[static_cast<std::size_t>(i)];
  n.v = v;
  n.w = w;
  n.id = id;
  n.pri = MixId(id);
  n.left = -1;
  n.right = -1;
  Pull(i);
  return i;
}

void IncrementalForecast::FreeNode(int i) { free_.push_back(i); }

void IncrementalForecast::InsertNodeAt(QueryId id, double v, double w) {
  const int node = AllocNode(id, v, w);
  slot_[id] = node;
  int left = -1;
  int right = -1;
  SplitLess(root_, v, id, &left, &right);
  root_ = Merge(Merge(left, node), right);
}

Status IncrementalForecast::Insert(QueryId id, WorkUnits cost,
                                   double weight) {
  if (weight <= 0.0) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " has non-positive weight");
  }
  if (cost < 0.0) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " has negative remaining cost");
  }
  if (slot_.count(id) != 0) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " already active");
  }
  InsertNodeAt(id, x_ + cost / weight, weight);
  ++structure_version_;
  return Status::OK();
}

void IncrementalForecast::Detach(QueryId id, double* v, double* w) {
  auto it = slot_.find(id);
  const Node& n = nodes_[static_cast<std::size_t>(it->second)];
  *v = n.v;
  *w = n.w;
  int left = -1;
  int mid = -1;
  int right = -1;
  SplitLess(root_, *v, id, &left, &mid);
  SplitLeq(mid, *v, id, &mid, &right);
  // `mid` is exactly the node with key (v, id).
  FreeNode(mid);
  slot_.erase(it);
  root_ = Merge(left, right);
}

Status IncrementalForecast::Remove(QueryId id) {
  if (slot_.count(id) == 0) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not active");
  }
  double v;
  double w;
  Detach(id, &v, &w);
  if (slot_.empty()) x_ = 0.0;  // free exactness: rebase when drained
  ++structure_version_;
  return Status::OK();
}

Status IncrementalForecast::Update(QueryId id, WorkUnits cost,
                                   double weight) {
  if (weight <= 0.0) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " has non-positive weight");
  }
  if (cost < 0.0) {
    return Status::InvalidArgument("query " + std::to_string(id) +
                                   " has negative remaining cost");
  }
  if (slot_.count(id) == 0) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not active");
  }
  double v;
  double w;
  Detach(id, &v, &w);
  InsertNodeAt(id, x_ + cost / weight, weight);
  ++structure_version_;
  return Status::OK();
}

void IncrementalForecast::Advance(double delta_x) {
  if (!MQPI_DCHECK(delta_x >= 0.0)) return;
  x_ += delta_x;
  if (x_ > kRenormThreshold && !slot_.empty()) Renormalize();
  if (slot_.empty()) x_ = 0.0;
}

void IncrementalForecast::Renormalize() {
  // Rebasing can collapse distinct thresholds onto one double, which
  // reshuffles (v, id) ties — so rebuild rather than patch in place.
  struct Saved {
    QueryId id;
    double v;
    double w;
  };
  std::vector<Saved> saved;
  saved.reserve(slot_.size());
  for (const auto& [id, index] : slot_) {
    const Node& n = nodes_[static_cast<std::size_t>(index)];
    saved.push_back(Saved{id, n.v - x_, n.w});
  }
  nodes_.clear();
  free_.clear();
  slot_.clear();
  root_ = -1;
  x_ = 0.0;
  for (const Saved& s : saved) InsertNodeAt(s.id, s.v, s.w);
  // The threshold basis moved: flat mirrors of the absolute v's are
  // stale even though the modelled load is unchanged.
  ++structure_version_;
}

double IncrementalForecast::total_weight() const {
  return root_ < 0 ? 0.0
                   : nodes_[static_cast<std::size_t>(root_)].sum_w;
}

Result<WorkUnits> IncrementalForecast::CostOf(QueryId id) const {
  auto it = slot_.find(id);
  if (it == slot_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not active");
  }
  const Node& n = nodes_[static_cast<std::size_t>(it->second)];
  return std::max(0.0, (n.v - x_) * n.w);
}

Result<double> IncrementalForecast::WeightOf(QueryId id) const {
  auto it = slot_.find(id);
  if (it == slot_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not active");
  }
  return nodes_[static_cast<std::size_t>(it->second)].w;
}

void IncrementalForecast::PrefixUpTo(double v, QueryId id, double* sum_w,
                                     double* sum_vw) const {
  double sw = 0.0;
  double svw = 0.0;
  int cur = root_;
  while (cur >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (!KeyLess(v, id, n.v, n.id)) {  // n <= key: take left + node
      if (n.left >= 0) {
        const Node& l = nodes_[static_cast<std::size_t>(n.left)];
        sw += l.sum_w;
        svw += l.sum_vw;
      }
      sw += n.w;
      svw += n.v * n.w;
      cur = n.right;
    } else {
      cur = n.left;
    }
  }
  *sum_w = sw;
  *sum_vw = svw;
}

Result<SimTime> IncrementalForecast::RemainingTime(QueryId id,
                                                   double rate) const {
  if (rate <= 0.0) {
    return Status::InvalidArgument("aggregate rate must be positive");
  }
  auto it = slot_.find(id);
  if (it == slot_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " not active");
  }
  const Node& t = nodes_[static_cast<std::size_t>(it->second)];
  double prefix_w = 0.0;
  double prefix_vw = 0.0;
  PrefixUpTo(t.v, t.id, &prefix_w, &prefix_vw);
  const Node& all = nodes_[static_cast<std::size_t>(root_)];
  const double g = t.v - x_;
  // r = [ sum_{<=} (v_j - X) w_j + g * sum_{>} w_j ] / C
  const double r =
      (prefix_vw - x_ * prefix_w + g * (all.sum_w - prefix_w)) / rate;
  return std::max(0.0, r);
}

SimTime IncrementalForecast::QuiescentTime(double rate) const {
  if (root_ < 0) return 0.0;
  if (rate <= 0.0) return kInfiniteTime;
  const Node& all = nodes_[static_cast<std::size_t>(root_)];
  return std::max(0.0, (all.sum_vw - x_ * all.sum_w) / rate);
}

Result<SimTime> IncrementalForecast::RemovalBenefit(QueryId target,
                                                    QueryId victim,
                                                    double rate) const {
  if (rate <= 0.0) {
    return Status::InvalidArgument("aggregate rate must be positive");
  }
  if (target == victim) {
    return Status::InvalidArgument("target cannot be its own victim");
  }
  auto t_it = slot_.find(target);
  if (t_it == slot_.end()) {
    return Status::NotFound("target " + std::to_string(target) +
                            " not active");
  }
  auto v_it = slot_.find(victim);
  if (v_it == slot_.end()) {
    return Status::NotFound("victim " + std::to_string(victim) +
                            " not active");
  }
  const Node& t = nodes_[static_cast<std::size_t>(t_it->second)];
  const Node& m = nodes_[static_cast<std::size_t>(v_it->second)];
  // Earlier-finishing victim shortens every stage up to its own finish
  // by its full cost; a later one shortens the target's stages by w_m
  // per unit of shared weight (the telescoped K = g_target / C). On a
  // threshold tie the two expressions coincide.
  if (KeyLess(m.v, m.id, t.v, t.id)) {
    return std::max(0.0, (m.v - x_) * m.w) / rate;
  }
  return std::max(0.0, (t.v - x_)) * m.w / rate;
}

void IncrementalForecast::ExportSorted(QueryId* ids, double* v,
                                       double* w) const {
  std::size_t out = 0;
  std::vector<int> stack;
  int cur = root_;
  while (cur >= 0 || !stack.empty()) {
    while (cur >= 0) {
      stack.push_back(cur);
      cur = nodes_[static_cast<std::size_t>(cur)].left;
    }
    cur = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (ids != nullptr) ids[out] = n.id;
    if (v != nullptr) v[out] = n.v;
    if (w != nullptr) w[out] = n.w;
    ++out;
    cur = n.right;
  }
}

std::vector<QueryLoad> IncrementalForecast::Entries() const {
  std::vector<QueryLoad> out;
  out.reserve(slot_.size());
  // Iterative in-order walk: finish order, no recursion depth risk.
  std::vector<int> stack;
  int cur = root_;
  while (cur >= 0 || !stack.empty()) {
    while (cur >= 0) {
      stack.push_back(cur);
      cur = nodes_[static_cast<std::size_t>(cur)].left;
    }
    cur = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    out.push_back(
        QueryLoad{n.id, std::max(0.0, (n.v - x_) * n.w), n.w});
    cur = n.right;
  }
  return out;
}

}  // namespace mqpi::pi
