#include "pi/batch_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <new>

#include "common/logging.h"
#include "obs/profiler.h"

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace mqpi::pi {

namespace detail {

void SweepScalar(const double* v, const double* prefix_w,
                 const double* prefix_vw, std::size_t n, double x,
                 double total_w, double inv_rate, double* eta) {
  for (std::size_t i = 0; i < n; ++i) {
    const double r = prefix_vw[i] - x * prefix_w[i] +
                     (v[i] - x) * (total_w - prefix_w[i]);
    eta[i] = std::max(0.0, r) * inv_rate;
  }
}

#if defined(__aarch64__)
void SweepNeon(const double* v, const double* prefix_w,
               const double* prefix_vw, std::size_t n, double x,
               double total_w, double inv_rate, double* eta) {
  const float64x2_t vx = vdupq_n_f64(x);
  const float64x2_t vtw = vdupq_n_f64(total_w);
  const float64x2_t vinv = vdupq_n_f64(inv_rate);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vv = vld1q_f64(v + i);
    const float64x2_t vpw = vld1q_f64(prefix_w + i);
    const float64x2_t vpvw = vld1q_f64(prefix_vw + i);
    // r = pvw - x*pw + (v - x) * (W - pw)
    float64x2_t r = vfmsq_f64(vpvw, vx, vpw);
    r = vfmaq_f64(r, vsubq_f64(vv, vx), vsubq_f64(vtw, vpw));
    r = vmulq_f64(vmaxq_f64(r, vzero), vinv);
    vst1q_f64(eta + i, r);
  }
  for (; i < n; ++i) {
    const double r = prefix_vw[i] - x * prefix_w[i] +
                     (v[i] - x) * (total_w - prefix_w[i]);
    eta[i] = std::max(0.0, r) * inv_rate;
  }
}
#endif  // __aarch64__

}  // namespace detail

namespace {

std::atomic<bool> g_force_scalar{false};

detail::BatchSweepFn ResolveSweep() {
  if (g_force_scalar.load(std::memory_order_relaxed)) {
    return &detail::SweepScalar;
  }
#if defined(MQPI_HAVE_AVX2) && defined(__x86_64__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &detail::SweepAvx2;
  }
#endif
#if defined(__aarch64__)
  return &detail::SweepNeon;
#endif
  return &detail::SweepScalar;
}

}  // namespace

const char* BatchEstimateKernel::ActiveIsaName() {
  const detail::BatchSweepFn sweep = ResolveSweep();
#if defined(MQPI_HAVE_AVX2) && defined(__x86_64__)
  if (sweep == &detail::SweepAvx2) return "avx2";
#endif
#if defined(__aarch64__)
  if (sweep == &detail::SweepNeon) return "neon";
#endif
  (void)sweep;
  return "scalar";
}

void BatchEstimateKernel::ForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

void BatchEstimateKernel::Arena::Reset(std::size_t bytes) {
  if (bytes > capacity_) {
    // Grow-only with headroom: repopulation churn (a few queries in or
    // out per epoch) must not reallocate every regeneration.
    const std::size_t grown = std::max(bytes + bytes / 2, kAlign);
    buf_.reset(static_cast<unsigned char*>(
        ::operator new[](grown, std::align_val_t{kAlign})));
    base_ = buf_.get();
    capacity_ = grown;
  }
  used_ = 0;
}

void BatchEstimateKernel::Regenerate(const IncrementalForecast& engine) {
  MQPI_PROF_SITE(prof, "pi.batch_regen");
  const std::size_t n = engine.size();
  // One carve plan for every column; Reset guarantees the whole plan
  // fits before any pointer is handed out (Carve never grows).
  const std::size_t doubles = 5 * n;           // v, pw, pvw, eta_v, eta_id
  const std::size_t ids = 2 * n;               // ids_v, ids_by_id
  const std::size_t bytes = doubles * sizeof(double) +
                            ids * sizeof(QueryId) +
                            n * sizeof(std::uint32_t) + 8 * 64;
  arena_.Reset(bytes);
  v_ = arena_.Carve<double>(n);
  prefix_w_ = arena_.Carve<double>(n);
  prefix_vw_ = arena_.Carve<double>(n);
  etas_v_ = arena_.Carve<double>(n);
  etas_by_id_ = arena_.Carve<double>(n);
  ids_v_ = arena_.Carve<QueryId>(n);
  ids_by_id_ = arena_.Carve<QueryId>(n);
  perm_ = arena_.Carve<std::uint32_t>(n);
  n_ = n;

  // In-order export: finish order, absolute thresholds. Weights land
  // in prefix_w_ and are folded into running sums in place.
  engine.ExportSorted(ids_v_, v_, prefix_w_);
  double sum_w = 0.0;
  double sum_vw = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = prefix_w_[i];
    sum_w += w;
    sum_vw += v_[i] * w;
    prefix_w_[i] = sum_w;
    prefix_vw_[i] = sum_vw;
  }
  total_w_ = sum_w;

  // Id-order view: ids never change between regenerations, so the
  // permutation is computed here once and each sweep only gathers.
  for (std::size_t i = 0; i < n; ++i) {
    perm_[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(perm_, perm_ + n, [this](std::uint32_t a, std::uint32_t b) {
    return ids_v_[a] < ids_v_[b];
  });
  for (std::size_t k = 0; k < n; ++k) {
    ids_by_id_[k] = ids_v_[perm_[k]];
  }

  mirror_version_ = engine.structure_version();
  mirror_valid_ = true;
  ++regens_;
}

BatchEstimateKernel::Batch BatchEstimateKernel::EstimateAll(
    const IncrementalForecast& engine, double rate) {
  MQPI_PROF_SITE(prof, "pi.batch_estimate");
  if (!MQPI_DCHECK(rate > 0.0)) return Batch{};
  if (!mirror_valid_ || mirror_version_ != engine.structure_version()) {
    Regenerate(engine);
  } else {
    ++hits_;
  }
  const std::size_t n = n_;
  if (n == 0) return Batch{ids_by_id_, etas_by_id_, 0};

  const double x = engine.offset();
  const detail::BatchSweepFn sweep = ResolveSweep();
  sweep(v_, prefix_w_, prefix_vw_, n, x, total_w_, 1.0 / rate, etas_v_);
  for (std::size_t k = 0; k < n; ++k) {
    etas_by_id_[k] = etas_v_[perm_[k]];
  }
  return Batch{ids_by_id_, etas_by_id_, n};
}

}  // namespace mqpi::pi
