// A small SQL front end for the query shapes the engine executes.
//
// Supported grammar (case-insensitive keywords):
//
//   scan aggregate:
//     SELECT COUNT(*) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
//     FROM table [WHERE col > number]
//
//   join aggregate (the build side must be a part table, the probe side
//   lineitem, equi-joined on partkey — the shape the planner supports):
//     SELECT <agg> FROM part_x [p] JOIN lineitem [l]
//     ON [p.]partkey = [l.]partkey
//
//   the paper's correlated-sub-query template, recognized structurally:
//     SELECT * FROM part_x p
//     WHERE p.retailprice * 0.75 >
//           (SELECT SUM(l.extendedprice) / SUM(l.quantity)
//            FROM lineitem l WHERE l.partkey = p.partkey)
//
// The parser produces a QuerySpec; planning/validation against the
// catalog happens later in Planner::Prepare. Errors carry the offending
// token position.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/planner.h"

namespace mqpi::engine {

/// Parses one SQL statement into a QuerySpec.
Result<QuerySpec> ParseSql(std::string_view sql);

namespace internal {

enum class TokenKind {
  kIdentifier,  // table / column names and keywords
  kNumber,
  kStar,
  kComma,
  kLParen,
  kRParen,
  kDot,
  kGt,
  kEq,
  kMul,
  kDiv,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // lower-cased for identifiers
  double number = 0.0;
  std::size_t position = 0;  // byte offset in the input
};

/// Exposed for tests: tokenizes the whole input.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace internal

}  // namespace mqpi::engine
