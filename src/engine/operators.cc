#include "engine/operators.h"

#include <algorithm>
#include <cmath>

namespace mqpi::engine {

using storage::PageId;
using storage::Tuple;
using storage::Value;

// ---- SeqScanOperator -------------------------------------------------------

SeqScanOperator::SeqScanOperator(const storage::Table* table)
    : table_(table) {}

Result<OpResult> SeqScanOperator::Next(ExecContext* ctx, Tuple* out) {
  if (row_ >= table_->num_tuples()) return OpResult::kDone;
  const std::uint64_t page = table_->PageOfRow(row_);
  if (page != last_page_) {
    ctx->account->Touch(PageId{table_->id(), page});
    last_page_ = page;
  }
  *out = table_->Get(row_++);
  return OpResult::kRow;
}

std::string SeqScanOperator::name() const {
  return "SeqScan(" + table_->name() + ")";
}

// ---- IndexScanOperator -----------------------------------------------------

IndexScanOperator::IndexScanOperator(const storage::Index* index,
                                     const storage::Table* table,
                                     std::int64_t key)
    : index_(index), table_(table), key_(key) {}

Result<OpResult> IndexScanOperator::Next(ExecContext* ctx, Tuple* out) {
  if (!probed_) {
    probed_ = true;
    // Root-to-leaf descent.
    for (std::uint32_t level = 0; level < index_->height(); ++level) {
      ctx->account->Touch(PageId{index_->id(), level});
    }
    matches_ = index_->Lookup(key_);
    // Extra leaf pages when the match list spills over one leaf.
    const std::uint64_t leaves = index_->LeafPagesForMatches(matches_.size());
    for (std::uint64_t extra = 1; extra < leaves; ++extra) {
      ctx->account->Touch(PageId{index_->id(), index_->height() + extra});
    }
  }
  if (pos_ >= matches_.size()) return OpResult::kDone;
  const storage::RowId row = matches_[pos_++].row;
  ctx->account->Touch(PageId{table_->id(), table_->PageOfRow(row)});
  *out = table_->Get(row);
  return OpResult::kRow;
}

std::string IndexScanOperator::name() const {
  return "IndexScan(" + index_->name() + ")";
}

// ---- IndexRangeScanOperator --------------------------------------------------

IndexRangeScanOperator::IndexRangeScanOperator(const storage::Index* index,
                                               const storage::Table* table,
                                               std::int64_t lo,
                                               std::int64_t hi)
    : index_(index), table_(table), lo_(lo), hi_(hi) {}

Result<OpResult> IndexRangeScanOperator::Next(ExecContext* ctx, Tuple* out) {
  if (!probed_) {
    probed_ = true;
    for (std::uint32_t level = 0; level < index_->height(); ++level) {
      ctx->account->Touch(PageId{index_->id(), level});
    }
    const auto matches = index_->LookupRange(lo_, hi_);
    const std::uint64_t leaves = index_->LeafPagesForMatches(matches.size());
    for (std::uint64_t extra = 1; extra < leaves; ++extra) {
      ctx->account->Touch(PageId{index_->id(), index_->height() + extra});
    }
    rows_.reserve(matches.size());
    for (const auto& entry : matches) rows_.push_back(entry.row);
    std::sort(rows_.begin(), rows_.end());  // bitmap: physical order
  }
  if (pos_ >= rows_.size()) return OpResult::kDone;
  const storage::RowId row = rows_[pos_++];
  const std::uint64_t page = table_->PageOfRow(row);
  if (page != last_heap_page_) {
    ctx->account->Touch(PageId{table_->id(), page});
    last_heap_page_ = page;
  }
  *out = table_->Get(row);
  return OpResult::kRow;
}

std::string IndexRangeScanOperator::name() const {
  return "IndexRangeScan(" + index_->name() + ", [" + std::to_string(lo_) +
         ", " + std::to_string(hi_) + "])";
}

// ---- FilterOperator --------------------------------------------------------

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Result<OpResult> FilterOperator::Next(ExecContext* ctx, Tuple* out) {
  while (true) {
    auto step = child_->Next(ctx, out);
    if (!step.ok()) return step.status();
    if (*step != OpResult::kRow) return *step;  // done or yield
    if (predicate_->Eval(*out) != 0.0) return OpResult::kRow;
    if (ctx->ShouldYield()) return OpResult::kYield;
  }
}

std::string FilterOperator::name() const {
  return "Filter(" + predicate_->ToString() + ")";
}

// ---- ScalarAggregateOperator -----------------------------------------------

namespace {
std::string_view AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}
}  // namespace

ScalarAggregateOperator::ScalarAggregateOperator(OperatorPtr child,
                                                 AggFunc func, ExprPtr arg)
    : child_(std::move(child)),
      func_(func),
      arg_(std::move(arg)),
      output_schema_({{std::string(AggFuncName(func)),
                       storage::ColumnType::kDouble}}) {}

Result<OpResult> ScalarAggregateOperator::Next(ExecContext* ctx, Tuple* out) {
  if (done_) return OpResult::kDone;
  Tuple row;
  while (true) {
    auto step = child_->Next(ctx, &row);
    if (!step.ok()) return step.status();
    if (*step == OpResult::kYield) return OpResult::kYield;
    if (*step == OpResult::kDone) break;
    ++count_rows_;
    if (func_ != AggFunc::kCount) {
      const double v = arg_->Eval(row);
      sum_ += v;
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    if (ctx->ShouldYield()) return OpResult::kYield;
  }
  done_ = true;
  const double count = static_cast<double>(count_rows_);
  double result = 0.0;
  switch (func_) {
    case AggFunc::kCount:
      result = count;
      break;
    case AggFunc::kSum:
      result = sum_;
      break;
    case AggFunc::kAvg:
      result = count > 0.0 ? sum_ / count
                           : std::numeric_limits<double>::quiet_NaN();
      break;
    case AggFunc::kMin:
      result = count > 0.0 ? min_
                           : std::numeric_limits<double>::quiet_NaN();
      break;
    case AggFunc::kMax:
      result = count > 0.0 ? max_
                           : std::numeric_limits<double>::quiet_NaN();
      break;
  }
  *out = Tuple({Value{result}});
  return OpResult::kRow;
}

std::string ScalarAggregateOperator::name() const {
  return std::string(AggFuncName(func_)) + "(" +
         (func_ == AggFunc::kCount ? "*" : arg_->ToString()) + ")";
}

// ---- TopNOperator ------------------------------------------------------------

TopNOperator::TopNOperator(OperatorPtr child, ExprPtr key, bool descending,
                           std::size_t limit)
    : child_(std::move(child)),
      key_(std::move(key)),
      descending_(descending),
      limit_(limit) {}

bool TopNOperator::Before(const Item& a, const Item& b) const {
  if (a.key != b.key) return descending_ ? a.key > b.key : a.key < b.key;
  return a.seq < b.seq;  // stable: earlier rows win ties
}

Result<OpResult> TopNOperator::Next(ExecContext* ctx, Tuple* out) {
  // The heap keeps the current *worst* retained row at the front, so a
  // new row replaces it cheaply when it sorts earlier.
  auto worse_first = [this](const Item& a, const Item& b) {
    return Before(a, b);  // make_heap: "less" puts the worst at front
  };
  while (!input_done_) {
    Tuple row;
    auto step = child_->Next(ctx, &row);
    if (!step.ok()) return step.status();
    if (*step == OpResult::kYield) return OpResult::kYield;
    if (*step == OpResult::kDone) {
      input_done_ = true;
      sorted_ = std::move(heap_);
      std::sort(sorted_.begin(), sorted_.end(),
                [this](const Item& a, const Item& b) { return Before(a, b); });
      break;
    }
    ++rows_consumed_;
    Item item{key_->Eval(row), rows_consumed_, std::move(row)};
    if (limit_ > 0) {
      if (heap_.size() < limit_) {
        heap_.push_back(std::move(item));
        std::push_heap(heap_.begin(), heap_.end(), worse_first);
      } else if (Before(item, heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), worse_first);
        heap_.back() = std::move(item);
        std::push_heap(heap_.begin(), heap_.end(), worse_first);
      }
    }
    pending_rows_ += 1.0;
    if (pending_rows_ >= HashJoinOperator::kRowsPerUnit) {
      ctx->account->Charge(pending_rows_ / HashJoinOperator::kRowsPerUnit);
      pending_rows_ = 0.0;
    }
    if (ctx->ShouldYield()) return OpResult::kYield;
  }
  if (emit_pos_ >= sorted_.size()) return OpResult::kDone;
  *out = sorted_[emit_pos_++].tuple;
  return OpResult::kRow;
}

std::string TopNOperator::name() const {
  return "TopN(" + key_->ToString() + (descending_ ? " desc" : " asc") +
         ", limit " + std::to_string(limit_) + ")";
}

// ---- HashGroupByOperator -----------------------------------------------------

HashGroupByOperator::HashGroupByOperator(OperatorPtr child,
                                         std::size_t group_column,
                                         AggFunc func, ExprPtr arg)
    : child_(std::move(child)),
      group_column_(group_column),
      func_(func),
      arg_(std::move(arg)),
      output_schema_(
          {{child_->output_schema().column(group_column).name,
            storage::ColumnType::kInt64},
           {std::string(AggFuncName(func)), storage::ColumnType::kDouble}}) {}

double HashGroupByOperator::Finalize(const Cell& cell) const {
  switch (func_) {
    case AggFunc::kCount:
      return cell.count;
    case AggFunc::kSum:
      return cell.sum;
    case AggFunc::kAvg:
      return cell.count > 0.0
                 ? cell.sum / cell.count
                 : std::numeric_limits<double>::quiet_NaN();
    case AggFunc::kMin:
      return cell.min;
    case AggFunc::kMax:
      return cell.max;
  }
  return 0.0;
}

Result<OpResult> HashGroupByOperator::Next(ExecContext* ctx, Tuple* out) {
  while (!input_done_) {
    Tuple row;
    auto step = child_->Next(ctx, &row);
    if (!step.ok()) return step.status();
    if (*step == OpResult::kYield) return OpResult::kYield;
    if (*step == OpResult::kDone) {
      input_done_ = true;
      emit_order_.reserve(groups_.size());
      for (const auto& [key, cell] : groups_) emit_order_.push_back(key);
      std::sort(emit_order_.begin(), emit_order_.end());
      break;
    }
    ++rows_consumed_;
    Cell& cell = groups_[storage::AsInt(row.at(group_column_))];
    cell.count += 1.0;
    if (func_ != AggFunc::kCount) {
      const double v = arg_->Eval(row);
      cell.sum += v;
      cell.min = std::min(cell.min, v);
      cell.max = std::max(cell.max, v);
    }
    pending_hash_rows_ += 1.0;
    if (pending_hash_rows_ >= HashJoinOperator::kRowsPerUnit) {
      ctx->account->Charge(pending_hash_rows_ /
                           HashJoinOperator::kRowsPerUnit);
      pending_hash_rows_ = 0.0;
    }
    if (ctx->ShouldYield()) return OpResult::kYield;
  }
  if (emit_pos_ >= emit_order_.size()) return OpResult::kDone;
  const std::int64_t key = emit_order_[emit_pos_++];
  *out = Tuple({Value{key}, Value{Finalize(groups_.at(key))}});
  return OpResult::kRow;
}

std::string HashGroupByOperator::name() const {
  return "HashGroupBy(" +
         child_->output_schema().column(group_column_).name + ", " +
         std::string(AggFuncName(func_)) + ")";
}

// ---- HashJoinOperator --------------------------------------------------------

HashJoinOperator::HashJoinOperator(OperatorPtr build,
                                   std::size_t build_key_column,
                                   OperatorPtr probe,
                                   std::size_t probe_key_column)
    : build_(std::move(build)),
      build_key_(build_key_column),
      probe_(std::move(probe)),
      probe_key_(probe_key_column) {
  std::vector<storage::Column> cols = probe_->output_schema().columns();
  for (const auto& c : build_->output_schema().columns()) {
    cols.push_back({"build_" + c.name, c.type});
  }
  output_schema_ = storage::Schema(std::move(cols));
}

void HashJoinOperator::ChargeHashWork(ExecContext* ctx, double rows) {
  pending_hash_rows_ += rows;
  if (pending_hash_rows_ >= kRowsPerUnit) {
    const double units = pending_hash_rows_ / kRowsPerUnit;
    ctx->account->Charge(units);
    pending_hash_rows_ = 0.0;
  }
}

Result<OpResult> HashJoinOperator::Next(ExecContext* ctx,
                                        storage::Tuple* out) {
  // Phase 1: drain the build side into the hash table.
  while (!build_done_) {
    Tuple row;
    auto step = build_->Next(ctx, &row);
    if (!step.ok()) return step.status();
    if (*step == OpResult::kYield) return OpResult::kYield;
    if (*step == OpResult::kDone) {
      build_done_ = true;
      break;
    }
    table_[storage::AsInt(row.at(build_key_))].push_back(std::move(row));
    ChargeHashWork(ctx, 1.0);
    if (ctx->ShouldYield()) return OpResult::kYield;
  }

  // Phase 2: stream the probe side.
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      std::vector<Value> values = current_probe_.values();
      const Tuple& build_row = (*matches_)[match_pos_++];
      for (const Value& v : build_row.values()) values.push_back(v);
      *out = Tuple(std::move(values));
      return OpResult::kRow;
    }
    matches_ = nullptr;
    if (ctx->ShouldYield()) return OpResult::kYield;
    auto step = probe_->Next(ctx, &current_probe_);
    if (!step.ok()) return step.status();
    if (*step != OpResult::kRow) return *step;  // done or yield
    ++probe_rows_;
    ChargeHashWork(ctx, 1.0);
    auto it = table_.find(storage::AsInt(current_probe_.at(probe_key_)));
    if (it != table_.end()) {
      matches_ = &it->second;
      match_pos_ = 0;
    }
  }
}

std::string HashJoinOperator::name() const {
  return "HashJoin(" + build_->name() + " x " + probe_->name() + ")";
}

// ---- CorrelatedSubqueryFilter ----------------------------------------------

CorrelatedSubqueryFilter::CorrelatedSubqueryFilter(
    OperatorPtr outer, std::size_t outer_key_column,
    const storage::Index* inner_index, const storage::Table* inner_table,
    std::size_t agg_numerator_column, std::size_t agg_denominator_column,
    ExprPtr predicate)
    : outer_(std::move(outer)),
      outer_key_column_(outer_key_column),
      inner_index_(inner_index),
      inner_table_(inner_table),
      num_column_(agg_numerator_column),
      den_column_(agg_denominator_column),
      predicate_(std::move(predicate)) {
  std::vector<storage::Column> cols = outer_->output_schema().columns();
  cols.push_back({"subquery", storage::ColumnType::kDouble});
  output_schema_ = storage::Schema(std::move(cols));
}

Result<OpResult> CorrelatedSubqueryFilter::Next(ExecContext* ctx, Tuple* out) {
  Tuple outer_row;
  while (true) {
    if (ctx->ShouldYield()) return OpResult::kYield;
    auto step = outer_->Next(ctx, &outer_row);
    if (!step.ok()) return step.status();
    if (*step != OpResult::kRow) return *step;  // done or yield
    ++outer_processed_;

    const std::int64_t key = storage::AsInt(outer_row.at(outer_key_column_));

    // Index descent: root-to-leaf pages.
    for (std::uint32_t level = 0; level < inner_index_->height(); ++level) {
      ctx->account->Touch(PageId{inner_index_->id(), level});
    }
    const auto matches = inner_index_->Lookup(key);
    const std::uint64_t leaves =
        inner_index_->LeafPagesForMatches(matches.size());
    for (std::uint64_t extra = 1; extra < leaves; ++extra) {
      ctx->account->Touch(
          PageId{inner_index_->id(), inner_index_->height() + extra});
    }

    // Visit the distinct heap pages of the matching rows and aggregate.
    probe_pages_.clear();
    double num_sum = 0.0;
    double den_sum = 0.0;
    for (const auto& entry : matches) {
      const std::uint64_t page = inner_table_->PageOfRow(entry.row);
      if (std::find(probe_pages_.begin(), probe_pages_.end(), page) ==
          probe_pages_.end()) {
        probe_pages_.push_back(page);
        ctx->account->Touch(PageId{inner_table_->id(), page});
      }
      const Tuple& inner_row = inner_table_->Get(entry.row);
      num_sum += storage::AsDouble(inner_row.at(num_column_));
      den_sum += storage::AsDouble(inner_row.at(den_column_));
    }
    const double sub =
        (matches.empty() || den_sum == 0.0)
            ? std::numeric_limits<double>::quiet_NaN()
            : num_sum / den_sum;

    std::vector<Value> values = outer_row.values();
    values.emplace_back(sub);
    Tuple candidate(std::move(values));
    if (predicate_->Eval(candidate) != 0.0) {
      *out = std::move(candidate);
      return OpResult::kRow;
    }
  }
}

std::string CorrelatedSubqueryFilter::name() const {
  return "CorrelatedSubqueryFilter(" + inner_index_->name() + ")";
}

}  // namespace mqpi::engine
