// Planner: turns a QuerySpec into an executable operator tree plus an
// optimizer-style cost estimate measured in work units U.
//
// The analytic cost comes from catalog statistics (page counts, index
// height, match density); a log-normal noise factor is then applied to
// model the imprecise statistics the paper blames for residual PI error
// ("the estimates provided by multi-query PIs have errors, mainly due
// to the imprecise statistics collected by PostgreSQL").
#pragma once

#include <memory>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/units.h"
#include "engine/query_execution.h"
#include "storage/catalog.h"

namespace mqpi::engine {

struct CostModelOptions {
  /// Sigma of the log-normal multiplicative error on optimizer cost
  /// estimates. 0 = perfect statistics (paper Assumption 2).
  double noise_sigma = 0.25;
  /// Seed for the noise stream.
  std::uint64_t noise_seed = 7;
};

/// Declarative description of a query to run.
struct QuerySpec {
  enum class Kind {
    kTpcrPartPrice,
    kScanAggregate,
    kJoinAggregate,
    kGroupByAggregate,
    kTopN,
    kSynthetic,
  };

  Kind kind = Kind::kSynthetic;
  /// kTpcrPartPrice: the part_i table. kScanAggregate: the scanned table.
  std::string table;
  /// kScanAggregate only.
  AggFunc agg = AggFunc::kCount;
  std::string agg_column;          // ignored for kCount
  std::string filter_column;       // optional WHERE column
  double filter_threshold = 0.0;   // WHERE filter_column > threshold
  bool has_filter = false;
  /// kGroupByAggregate only: int64 grouping column.
  std::string group_column;
  /// kTopN only: sort column, direction, and row limit.
  std::string order_column;
  bool descending = true;
  std::size_t limit = 0;
  /// kSynthetic only: exact cost in work units.
  WorkUnits synthetic_cost = 0.0;

  /// SQL-ish rendering for logs and examples.
  std::string ToString() const;

  /// The paper's Q_i: select * from <part_table> p where
  /// p.retailprice*0.75 > (select sum(l.extendedprice)/sum(l.quantity)
  /// from lineitem l where l.partkey = p.partkey).
  static QuerySpec TpcrPartPrice(std::string part_table);

  /// select AGG(agg_column) from <table> [where filter_column > t].
  static QuerySpec ScanAggregate(std::string table, AggFunc agg,
                                 std::string agg_column);
  QuerySpec& WithFilter(std::string column, double threshold);

  /// select AGG(l.agg_column) from <part_table> p join lineitem l on
  /// p.partkey = l.partkey — a hash join with the part table as build
  /// side, aggregated to one row. The "other kinds of queries" class
  /// the paper reports testing alongside the correlated-sub-query
  /// template.
  static QuerySpec JoinAggregate(std::string part_table, AggFunc agg,
                                 std::string agg_column);

  /// select group_column, AGG(agg_column) from <table>
  /// [where filter_column > t] group by group_column.
  static QuerySpec GroupByAggregate(std::string table,
                                    std::string group_column, AggFunc agg,
                                    std::string agg_column);

  /// select * from <table> [where filter_column > t]
  /// order by order_column [desc] limit N.
  static QuerySpec TopN(std::string table, std::string order_column,
                        bool descending, std::size_t limit);

  /// A cost-only query of exactly `cost` work units.
  static QuerySpec Synthetic(WorkUnits cost);
};

struct PreparedQuery {
  std::unique_ptr<QueryExecution> execution;
  /// Optimizer's (noisy) total cost estimate.
  WorkUnits optimizer_cost = 0.0;
  /// Noise-free analytic cost, for tests and calibration.
  WorkUnits analytic_cost = 0.0;
  /// Histogram-based estimate of result rows (0 for synthetic queries).
  double estimated_result_rows = 0.0;
  /// Estimated rows flowing into the top operator (after filters/joins).
  double estimated_input_rows = 0.0;
  /// EXPLAIN-style plan rendering.
  std::string plan_text;
};

class Planner {
 public:
  /// `catalog` and `buffers` must outlive the planner and all queries
  /// it prepares.
  Planner(const storage::Catalog* catalog, storage::BufferManager* buffers,
          CostModelOptions options = {});

  /// Plans against the shared buffer pool.
  Result<PreparedQuery> Prepare(const QuerySpec& spec);

  /// Plans against a caller-supplied pool (used for dry runs).
  Result<PreparedQuery> PrepareWithBuffers(const QuerySpec& spec,
                                           storage::BufferManager* buffers);

  /// Executes a fresh instance of `spec` to completion against a
  /// private buffer pool and returns the exact total cost in U's.
  /// Used by experiments that need ground truth; the PIs never call it.
  Result<WorkUnits> MeasureTrueCost(const QuerySpec& spec);

  /// EXPLAIN-style report: the plan shape, cost estimates, and
  /// cardinality estimates, without running the query. (Consumes one
  /// draw from the noise stream, like Prepare.)
  Result<std::string> Explain(const QuerySpec& spec);

  const CostModelOptions& options() const { return options_; }

 private:
  const storage::Catalog* catalog_;
  storage::BufferManager* buffers_;
  CostModelOptions options_;
  Rng rng_;
};

}  // namespace mqpi::engine
