#include "engine/expr.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace mqpi::engine {

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

std::string ConstExpr::ToString() const {
  std::ostringstream os;
  os << value_;
  return os.str();
}

double BinaryExpr::Eval(const storage::Tuple& tuple) const {
  const double l = left_->Eval(tuple);
  // Short-circuit logical operators.
  if (op_ == BinaryOp::kAnd) {
    return (l != 0.0 && right_->Eval(tuple) != 0.0) ? 1.0 : 0.0;
  }
  if (op_ == BinaryOp::kOr) {
    return (l != 0.0 || right_->Eval(tuple) != 0.0) ? 1.0 : 0.0;
  }
  const double r = right_->Eval(tuple);
  switch (op_) {
    case BinaryOp::kAdd:
      return l + r;
    case BinaryOp::kSub:
      return l - r;
    case BinaryOp::kMul:
      return l * r;
    case BinaryOp::kDiv:
      return r == 0.0 ? std::numeric_limits<double>::quiet_NaN() : l / r;
    case BinaryOp::kGt:
      return l > r ? 1.0 : 0.0;
    case BinaryOp::kGe:
      return l >= r ? 1.0 : 0.0;
    case BinaryOp::kLt:
      return l < r ? 1.0 : 0.0;
    case BinaryOp::kLe:
      return l <= r ? 1.0 : 0.0;
    case BinaryOp::kEq:
      return l == r ? 1.0 : 0.0;
    case BinaryOp::kNe:
      return l != r ? 1.0 : 0.0;
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // handled above
  }
  return 0.0;
}

std::string BinaryExpr::ToString() const {
  std::string s = "(";
  s += left_->ToString();
  s += " ";
  s += BinaryOpName(op_);
  s += " ";
  s += right_->ToString();
  s += ")";
  return s;
}

ExprPtr Const(double v) { return std::make_unique<ConstExpr>(v); }

Result<ExprPtr> Col(const storage::Schema& schema, const std::string& column) {
  auto idx = schema.ColumnIndex(column);
  if (!idx.ok()) return idx.status();
  return ExprPtr(std::make_unique<ColumnExpr>(*idx, column));
}

ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}

}  // namespace mqpi::engine
