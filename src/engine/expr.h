// Scalar expressions over tuples. Numeric-only: the paper's workload
// (price/quantity arithmetic and comparisons) needs nothing more, and a
// double-valued evaluator keeps the executor's inner loop cheap.
// Booleans are represented as 0.0 / 1.0.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace mqpi::engine {

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kGt,
  kGe,
  kLt,
  kLe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

std::string_view BinaryOpName(BinaryOp op);

class Expr {
 public:
  virtual ~Expr() = default;
  /// Evaluates against one tuple. Column references index into it.
  virtual double Eval(const storage::Tuple& tuple) const = 0;
  /// Human-readable rendering, e.g. "(retailprice * 0.75)".
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(double value) : value_(value) {}
  double Eval(const storage::Tuple&) const override { return value_; }
  std::string ToString() const override;

 private:
  double value_;
};

class ColumnExpr final : public Expr {
 public:
  ColumnExpr(std::size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}
  double Eval(const storage::Tuple& tuple) const override {
    return storage::AsDouble(tuple.at(index_));
  }
  std::string ToString() const override { return name_; }
  std::size_t index() const { return index_; }

 private:
  std::size_t index_;
  std::string name_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  double Eval(const storage::Tuple& tuple) const override;
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

// ---- convenience builders -------------------------------------------------

ExprPtr Const(double v);
/// Resolves `column` against `schema`; fails if absent.
Result<ExprPtr> Col(const storage::Schema& schema, const std::string& column);
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r);

}  // namespace mqpi::engine
