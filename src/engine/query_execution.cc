#include "engine/query_execution.h"

#include <algorithm>
#include <sstream>

namespace mqpi::engine {

// ---- OperatorQueryExecution ------------------------------------------------

OperatorQueryExecution::OperatorQueryExecution(
    OperatorPtr root, storage::BufferManager* buffers, DriverModel driver,
    WorkUnits initial_cost_estimate)
    : root_(std::move(root)),
      account_(buffers),
      driver_(std::move(driver)),
      initial_estimate_(initial_cost_estimate) {
  ctx_.account = &account_;
}

WorkUnits OperatorQueryExecution::Advance(WorkUnits budget) {
  if (done_) return 0.0;
  const WorkUnits start = account_.charged();
  ctx_.yield_at = start + budget;
  storage::Tuple row;
  while (account_.charged() - start < budget) {
    auto step = root_->Next(&ctx_, &row);
    if (!step.ok()) {
      status_ = step.status();
      done_ = true;
      break;
    }
    if (*step == OpResult::kDone) {
      done_ = true;
      break;
    }
    if (*step == OpResult::kYield) break;
    ++rows_;
  }
  return account_.charged() - start;
}

WorkUnits OperatorQueryExecution::EstimateRemainingCost() const {
  if (done_) return 0.0;
  const std::uint64_t k = driver_.processed ? driver_.processed() : 0;
  const std::uint64_t total = driver_.total_rows;
  if (total == 0) {
    return std::max(0.0, initial_estimate_ - completed_work());
  }
  const std::uint64_t remaining_rows = total > k ? total - k : 0;
  if (k == 0) {
    return static_cast<double>(remaining_rows) * driver_.prior_cost_per_row;
  }
  // Blend the optimizer's per-row prior with the observed per-row cost;
  // the prior's weight decays as more of the query has been watched.
  const double observed_per_row =
      completed_work() / static_cast<double>(k);
  const double f = static_cast<double>(k) / static_cast<double>(total);
  const double per_row =
      (1.0 - f) * driver_.prior_cost_per_row + f * observed_per_row;
  // Observed statistics dominate once a meaningful prefix has run: cap
  // the prior's influence using the observed value as anchor.
  const double anchored =
      k >= 16 ? 0.5 * per_row + 0.5 * observed_per_row : per_row;
  return static_cast<double>(remaining_rows) * anchored;
}

std::string OperatorQueryExecution::DebugString() const {
  std::ostringstream os;
  os << "OperatorQueryExecution{root=" << root_->name()
     << ", completed=" << completed_work()
     << ", est_remaining=" << EstimateRemainingCost()
     << ", rows=" << rows_ << (done_ ? ", done" : "") << "}";
  return os.str();
}

// ---- SyntheticQueryExecution -----------------------------------------------

SyntheticQueryExecution::SyntheticQueryExecution(WorkUnits true_cost,
                                                 WorkUnits estimated_cost)
    : true_cost_(std::max(0.0, true_cost)),
      estimate_(std::max(0.0, estimated_cost)) {}

WorkUnits SyntheticQueryExecution::Advance(WorkUnits budget) {
  const WorkUnits step = std::min(budget, true_cost_ - completed_);
  completed_ += std::max(0.0, step);
  return std::max(0.0, step);
}

WorkUnits SyntheticQueryExecution::EstimateRemainingCost() const {
  if (done()) return 0.0;
  // Total-cost belief converges linearly from the optimizer estimate to
  // the true cost as execution proceeds (statistics sharpen over time).
  const double f = true_cost_ > 0.0 ? completed_ / true_cost_ : 1.0;
  const double believed_total = (1.0 - f) * estimate_ + f * true_cost_;
  return std::max(0.0, believed_total - completed_);
}

std::string SyntheticQueryExecution::DebugString() const {
  std::ostringstream os;
  os << "SyntheticQueryExecution{true=" << true_cost_
     << ", est=" << estimate_ << ", completed=" << completed_ << "}";
  return os.str();
}

}  // namespace mqpi::engine
