// Physical operators: pull-based iterators that charge every page they
// touch to the query's BufferAccount, and that cooperatively yield when
// the scheduler's work-unit budget for the current quantum is used up.
//
// Next() is tri-state:
//   kRow   - *out holds the next output tuple
//   kDone  - stream exhausted
//   kYield - budget exhausted mid-stream; call again later to resume
//
// Blocking operators (ScalarAggregate) keep their partial state across
// yields, so a long aggregation is spread over many scheduler quanta —
// exactly how a real engine's progress accrues.
//
// Operators implemented:
//   SeqScanOperator             - heap scan, 1 U per heap page
//   IndexScanOperator           - point lookup, height + leaf + heap U's
//   FilterOperator              - predicate on child output (CPU-only)
//   ScalarAggregateOperator     - COUNT/SUM/AVG/MIN/MAX over child
//   CorrelatedSubqueryFilter    - the paper's Q_i shape: for each outer
//                                 tuple run an index-aggregate sub-query
//                                 and keep the tuple iff the predicate
//                                 over (outer columns, sub-query result)
//                                 holds
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "engine/expr.h"
#include "storage/buffer_manager.h"
#include "storage/index.h"
#include "storage/table.h"

namespace mqpi::engine {

enum class OpResult { kRow, kDone, kYield };

/// Shared execution state for one query.
struct ExecContext {
  storage::BufferAccount* account = nullptr;
  /// Operators yield once account->charged() reaches this threshold.
  WorkUnits yield_at = std::numeric_limits<double>::infinity();

  bool ShouldYield() const { return account->charged() >= yield_at; }
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Advances the stream; see OpResult above. Page work is charged to
  /// ctx->account as a side effect.
  virtual Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) = 0;

  /// Operator name for EXPLAIN-style rendering.
  virtual std::string name() const = 0;

  /// Output schema.
  virtual const storage::Schema& output_schema() const = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

class SeqScanOperator final : public Operator {
 public:
  explicit SeqScanOperator(const storage::Table* table);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return table_->schema();
  }

  /// Rows produced so far (drives cost refinement).
  std::uint64_t rows_emitted() const { return row_; }

 private:
  const storage::Table* table_;
  storage::RowId row_ = 0;
  std::uint64_t last_page_ = ~std::uint64_t{0};
};

class IndexScanOperator final : public Operator {
 public:
  /// Emits all heap tuples of `table` whose indexed key equals `key`.
  IndexScanOperator(const storage::Index* index, const storage::Table* table,
                    std::int64_t key);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return table_->schema();
  }

 private:
  const storage::Index* index_;
  const storage::Table* table_;
  std::int64_t key_;
  bool probed_ = false;
  std::span<const storage::Index::Entry> matches_;
  std::size_t pos_ = 0;
};

/// Bitmap-style range scan through the index: collects the row ids of
/// all entries with key in [lo, hi], sorts them into physical (heap)
/// order, and emits tuples page by page — so each heap page is touched
/// exactly once, like PostgreSQL's bitmap heap scan. Charges the index
/// descent, the leaf pages the range spans, and each distinct heap
/// page. Output order is physical, not key, order.
class IndexRangeScanOperator final : public Operator {
 public:
  IndexRangeScanOperator(const storage::Index* index,
                         const storage::Table* table, std::int64_t lo,
                         std::int64_t hi);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return table_->schema();
  }

  std::uint64_t rows_emitted() const { return pos_; }

 private:
  const storage::Index* index_;
  const storage::Table* table_;
  std::int64_t lo_;
  std::int64_t hi_;
  bool probed_ = false;
  std::vector<storage::RowId> rows_;  // physical order
  std::size_t pos_ = 0;
  std::uint64_t last_heap_page_ = ~std::uint64_t{0};
};

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

class ScalarAggregateOperator final : public Operator {
 public:
  /// Aggregates `arg` (ignored for kCount) over all child tuples and
  /// emits exactly one single-column tuple. Yields cooperatively, so
  /// partial aggregation state survives across scheduler quanta.
  ScalarAggregateOperator(OperatorPtr child, AggFunc func, ExprPtr arg);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }

  /// Input rows consumed so far (drives cost refinement).
  std::uint64_t rows_consumed() const { return count_rows_; }

 private:
  OperatorPtr child_;
  AggFunc func_;
  ExprPtr arg_;
  storage::Schema output_schema_;
  bool done_ = false;
  std::uint64_t count_rows_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Top-N: keeps the `limit` child rows with the largest (descending) or
/// smallest (ascending) sort-key values in a bounded heap while the
/// child drains (cooperatively), then emits them in sort order.
/// Heap maintenance charges one CPU work unit per
/// HashJoinOperator::kRowsPerUnit input rows.
class TopNOperator final : public Operator {
 public:
  TopNOperator(OperatorPtr child, ExprPtr key, bool descending,
               std::size_t limit);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return child_->output_schema();
  }

  std::uint64_t rows_consumed() const { return rows_consumed_; }

 private:
  struct Item {
    double key;
    std::uint64_t seq;  // stable tie-break (arrival order)
    storage::Tuple tuple;
  };
  bool Before(const Item& a, const Item& b) const;  // a sorts before b

  OperatorPtr child_;
  ExprPtr key_;
  bool descending_;
  std::size_t limit_;
  bool input_done_ = false;
  std::uint64_t rows_consumed_ = 0;
  double pending_rows_ = 0.0;
  std::vector<Item> heap_;     // worst-at-front heap while draining
  std::vector<Item> sorted_;   // final emission order
  std::size_t emit_pos_ = 0;
};

/// Hash GROUP BY over an int64 grouping column: accumulates one
/// (count, sum, min, max) cell per group while draining the child
/// (cooperatively), then emits one row per group in ascending key order
/// — output schema is (group column, aggregate). Hashing charges one
/// CPU work unit per HashJoinOperator::kRowsPerUnit input rows.
class HashGroupByOperator final : public Operator {
 public:
  HashGroupByOperator(OperatorPtr child, std::size_t group_column,
                      AggFunc func, ExprPtr arg);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }

  /// Input rows consumed so far (drives cost refinement).
  std::uint64_t rows_consumed() const { return rows_consumed_; }
  std::size_t num_groups() const { return groups_.size(); }

 private:
  struct Cell {
    double count = 0.0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  double Finalize(const Cell& cell) const;

  OperatorPtr child_;
  std::size_t group_column_;
  AggFunc func_;
  ExprPtr arg_;
  storage::Schema output_schema_;
  bool input_done_ = false;
  std::uint64_t rows_consumed_ = 0;
  double pending_hash_rows_ = 0.0;
  std::unordered_map<std::int64_t, Cell> groups_;
  std::vector<std::int64_t> emit_order_;  // filled when input completes
  std::size_t emit_pos_ = 0;
};

/// Hash equi-join on int64 keys. The build side is drained into an
/// in-memory hash table first (cooperatively, so a large build spreads
/// over many quanta), then the probe side streams and emits one output
/// tuple per match (probe columns followed by build columns). Build
/// rows are charged through the child's own page touches; the hash
/// table itself charges one CPU work unit per `rows_per_unit` rows
/// inserted or probed, approximating hashing cost at page granularity.
class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr build, std::size_t build_key_column,
                   OperatorPtr probe, std::size_t probe_key_column);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }

  /// Probe-side rows consumed so far (drives cost refinement).
  std::uint64_t probe_rows_processed() const { return probe_rows_; }
  bool build_done() const { return build_done_; }

  /// Rows hashed/probed per charged CPU work unit.
  static constexpr double kRowsPerUnit = 64.0;

 private:
  void ChargeHashWork(ExecContext* ctx, double rows);

  OperatorPtr build_;
  std::size_t build_key_;
  OperatorPtr probe_;
  std::size_t probe_key_;
  storage::Schema output_schema_;
  bool build_done_ = false;
  std::unordered_map<std::int64_t, std::vector<storage::Tuple>> table_;
  std::uint64_t probe_rows_ = 0;
  double pending_hash_rows_ = 0.0;
  // Current probe row's remaining matches.
  storage::Tuple current_probe_;
  const std::vector<storage::Tuple>* matches_ = nullptr;
  std::size_t match_pos_ = 0;
};

/// The paper's query template:
///
///   select * from part_i p
///   where p.retailprice * 0.75 >
///         (select sum(l.extendedprice) / sum(l.quantity)
///          from lineitem l where l.partkey = p.partkey)
///
/// For each outer tuple: probe the index (height + leaf pages), visit
/// the distinct heap pages holding the matches, aggregate, then apply
/// `predicate` to the outer tuple extended with one extra column
/// "subquery" holding the aggregate result (NaN when no matches, which
/// fails every comparison, matching SQL's NULL semantics here).
class CorrelatedSubqueryFilter final : public Operator {
 public:
  CorrelatedSubqueryFilter(OperatorPtr outer, std::size_t outer_key_column,
                           const storage::Index* inner_index,
                           const storage::Table* inner_table,
                           std::size_t agg_numerator_column,
                           std::size_t agg_denominator_column,
                           ExprPtr predicate);
  Result<OpResult> Next(ExecContext* ctx, storage::Tuple* out) override;
  std::string name() const override;
  const storage::Schema& output_schema() const override {
    return output_schema_;
  }

  /// Outer tuples consumed so far (drives cost refinement).
  std::uint64_t outer_rows_processed() const { return outer_processed_; }

 private:
  OperatorPtr outer_;
  std::size_t outer_key_column_;
  const storage::Index* inner_index_;
  const storage::Table* inner_table_;
  std::size_t num_column_;
  std::size_t den_column_;
  ExprPtr predicate_;
  storage::Schema output_schema_;
  std::uint64_t outer_processed_ = 0;
  // Scratch set of heap pages per probe, kept across calls to avoid
  // reallocating in the inner loop.
  std::vector<std::uint64_t> probe_pages_;
};

}  // namespace mqpi::engine
