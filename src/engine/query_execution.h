// QueryExecution: an in-flight query that can be advanced in work-unit
// budgets by the scheduler, and that exposes exactly the observables a
// progress indicator is allowed to see:
//
//   * completed_work()          - e_i, work units done so far
//   * EstimateRemainingCost()   - c_i, the *refined* remaining-cost
//                                 estimate (optimizer prior blended with
//                                 statistics collected during execution,
//                                 as in Luo et al. [11, 12])
//   * initial_cost_estimate()   - the optimizer's (noisy) total cost
//
// Ground truth is never exposed here; experiments obtain actual
// remaining times from the simulation run itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "engine/operators.h"
#include "storage/buffer_manager.h"

namespace mqpi::engine {

class QueryExecution {
 public:
  virtual ~QueryExecution() = default;

  /// Runs until at least `budget` additional work units are consumed or
  /// the query completes. Returns the units actually consumed (operator
  /// granularity may overshoot slightly; the scheduler charges actuals).
  virtual WorkUnits Advance(WorkUnits budget) = 0;

  virtual bool done() const = 0;

  /// Non-OK if the query failed during execution.
  virtual const Status& status() const = 0;

  /// e_i: work units completed so far.
  virtual WorkUnits completed_work() const = 0;

  /// c_i: current best estimate of the remaining cost (0 when done).
  virtual WorkUnits EstimateRemainingCost() const = 0;

  /// The optimizer's total-cost estimate at plan time.
  virtual WorkUnits initial_cost_estimate() const = 0;

  /// Result rows produced so far (0 for synthetic queries).
  virtual std::uint64_t rows_produced() const = 0;

  /// The page-access account, or nullptr for cost-only executions.
  virtual const storage::BufferAccount* account() const { return nullptr; }

  virtual std::string DebugString() const = 0;
};

/// Describes the "driver" of an operator tree: the outer row stream
/// whose processed count anchors cost refinement. For the paper's Q_i
/// the driver is the part_i scan feeding the correlated filter.
struct DriverModel {
  /// Polls how many driver rows have been consumed.
  std::function<std::uint64_t()> processed;
  /// Exact total driver rows (catalog tuple counts are exact).
  std::uint64_t total_rows = 0;
  /// Optimizer's estimated cost per driver row (may be off).
  double prior_cost_per_row = 0.0;
};

/// Runs an operator tree, charging pages through a private
/// BufferAccount on a shared BufferManager, and refines its
/// remaining-cost estimate from observed per-driver-row work.
class OperatorQueryExecution final : public QueryExecution {
 public:
  OperatorQueryExecution(OperatorPtr root, storage::BufferManager* buffers,
                         DriverModel driver, WorkUnits initial_cost_estimate);

  WorkUnits Advance(WorkUnits budget) override;
  bool done() const override { return done_; }
  const Status& status() const override { return status_; }
  WorkUnits completed_work() const override { return account_.charged(); }
  WorkUnits EstimateRemainingCost() const override;
  WorkUnits initial_cost_estimate() const override {
    return initial_estimate_;
  }
  std::uint64_t rows_produced() const override { return rows_; }
  const storage::BufferAccount* account() const override {
    return &account_;
  }
  std::string DebugString() const override;

 private:
  OperatorPtr root_;
  storage::BufferAccount account_;
  DriverModel driver_;
  WorkUnits initial_estimate_;
  ExecContext ctx_;
  bool done_ = false;
  Status status_;
  std::uint64_t rows_ = 0;
};

/// A cost-only query: consumes exactly `true_cost` work units and
/// reports a remaining-cost estimate whose error decays linearly as the
/// query progresses (modelling statistics that sharpen with execution).
/// Used for large parameter sweeps and algorithm-scaling benchmarks.
class SyntheticQueryExecution final : public QueryExecution {
 public:
  SyntheticQueryExecution(WorkUnits true_cost, WorkUnits estimated_cost);

  WorkUnits Advance(WorkUnits budget) override;
  bool done() const override { return completed_ >= true_cost_; }
  const Status& status() const override { return status_; }
  WorkUnits completed_work() const override { return completed_; }
  WorkUnits EstimateRemainingCost() const override;
  WorkUnits initial_cost_estimate() const override { return estimate_; }
  std::uint64_t rows_produced() const override { return 0; }
  std::string DebugString() const override;

  WorkUnits true_cost() const { return true_cost_; }

 private:
  WorkUnits true_cost_;
  WorkUnits estimate_;
  WorkUnits completed_ = 0.0;
  Status status_;
};

}  // namespace mqpi::engine
