#include "engine/planner.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace mqpi::engine {

// ---- QuerySpec -------------------------------------------------------------

QuerySpec QuerySpec::TpcrPartPrice(std::string part_table) {
  QuerySpec spec;
  spec.kind = Kind::kTpcrPartPrice;
  spec.table = std::move(part_table);
  return spec;
}

QuerySpec QuerySpec::ScanAggregate(std::string table, AggFunc agg,
                                   std::string agg_column) {
  QuerySpec spec;
  spec.kind = Kind::kScanAggregate;
  spec.table = std::move(table);
  spec.agg = agg;
  spec.agg_column = std::move(agg_column);
  return spec;
}

QuerySpec& QuerySpec::WithFilter(std::string column, double threshold) {
  filter_column = std::move(column);
  filter_threshold = threshold;
  has_filter = true;
  return *this;
}

QuerySpec QuerySpec::GroupByAggregate(std::string table,
                                      std::string group_column, AggFunc agg,
                                      std::string agg_column) {
  QuerySpec spec;
  spec.kind = Kind::kGroupByAggregate;
  spec.table = std::move(table);
  spec.group_column = std::move(group_column);
  spec.agg = agg;
  spec.agg_column = std::move(agg_column);
  return spec;
}

QuerySpec QuerySpec::JoinAggregate(std::string part_table, AggFunc agg,
                                   std::string agg_column) {
  QuerySpec spec;
  spec.kind = Kind::kJoinAggregate;
  spec.table = std::move(part_table);
  spec.agg = agg;
  spec.agg_column = std::move(agg_column);
  return spec;
}

QuerySpec QuerySpec::TopN(std::string table, std::string order_column,
                          bool descending, std::size_t limit) {
  QuerySpec spec;
  spec.kind = Kind::kTopN;
  spec.table = std::move(table);
  spec.order_column = std::move(order_column);
  spec.descending = descending;
  spec.limit = limit;
  return spec;
}

QuerySpec QuerySpec::Synthetic(WorkUnits cost) {
  QuerySpec spec;
  spec.kind = Kind::kSynthetic;
  spec.synthetic_cost = cost;
  return spec;
}

std::string QuerySpec::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kTpcrPartPrice:
      os << "select * from " << table << " p where p.retailprice*0.75 > "
         << "(select sum(l.extendedprice)/sum(l.quantity) from lineitem l "
         << "where l.partkey = p.partkey)";
      break;
    case Kind::kScanAggregate:
      os << "select agg(" << (agg == AggFunc::kCount ? "*" : agg_column)
         << ") from " << table;
      if (has_filter) {
        os << " where " << filter_column << " > " << filter_threshold;
      }
      break;
    case Kind::kGroupByAggregate:
      os << "select " << group_column << ", agg("
         << (agg == AggFunc::kCount ? "*" : agg_column) << ") from " << table;
      if (has_filter) {
        os << " where " << filter_column << " > " << filter_threshold;
      }
      os << " group by " << group_column;
      break;
    case Kind::kJoinAggregate:
      os << "select agg(" << (agg == AggFunc::kCount ? "*" : "l." + agg_column)
         << ") from " << table
         << " p join lineitem l on p.partkey = l.partkey";
      break;
    case Kind::kTopN:
      os << "select * from " << table;
      if (has_filter) {
        os << " where " << filter_column << " > " << filter_threshold;
      }
      os << " order by " << order_column << (descending ? " desc" : "")
         << " limit " << limit;
      break;
    case Kind::kSynthetic:
      os << "synthetic(" << synthetic_cost << " U)";
      break;
  }
  return os.str();
}

// ---- Planner ---------------------------------------------------------------

Planner::Planner(const storage::Catalog* catalog,
                 storage::BufferManager* buffers, CostModelOptions options)
    : catalog_(catalog),
      buffers_(buffers),
      options_(options),
      rng_(options.noise_seed) {}

Result<PreparedQuery> Planner::Prepare(const QuerySpec& spec) {
  return PrepareWithBuffers(spec, buffers_);
}

namespace {

/// Expected distinct heap pages touched when fetching `matches` rows
/// scattered uniformly over `pages` heap pages (coupon-collector form).
double ExpectedDistinctPages(double matches, double pages) {
  if (pages <= 0.0) return 0.0;
  return pages * (1.0 - std::pow(1.0 - 1.0 / pages, matches));
}

}  // namespace

Result<PreparedQuery> Planner::PrepareWithBuffers(
    const QuerySpec& spec, storage::BufferManager* buffers) {
  PreparedQuery out;

  switch (spec.kind) {
    case QuerySpec::Kind::kSynthetic: {
      if (spec.synthetic_cost < 0.0) {
        return Status::InvalidArgument("synthetic cost must be >= 0");
      }
      out.analytic_cost = spec.synthetic_cost;
      out.optimizer_cost =
          spec.synthetic_cost * rng_.LogNormalFactor(options_.noise_sigma);
      out.plan_text = "Synthetic(cost=" + std::to_string(spec.synthetic_cost) +
                      " U)";
      out.execution = std::make_unique<SyntheticQueryExecution>(
          spec.synthetic_cost, out.optimizer_cost);
      return out;
    }

    case QuerySpec::Kind::kScanAggregate: {
      auto table = catalog_->GetTable(spec.table);
      if (!table.ok()) return table.status();
      const storage::Schema& schema = (*table)->schema();

      // Cardinality: filter selectivity from the column histogram
      // (fallback 1/3, the classic default for range predicates).
      double selectivity = 1.0;
      if (spec.has_filter) {
        auto histogram = catalog_->GetHistogram(spec.table,
                                                spec.filter_column);
        selectivity =
            histogram.ok()
                ? (*histogram)->SelectivityGreaterThan(spec.filter_threshold)
                : 1.0 / 3.0;
      }
      const double n = static_cast<double>((*table)->num_tuples());
      out.estimated_input_rows = selectivity * n;
      out.estimated_result_rows = 1.0;

      // Access-path choice: a selective predicate on the indexed int64
      // column pays for an index range scan instead of the full heap
      // scan (a > predicate on integer keys needs no residual filter).
      const storage::Index* range_index = nullptr;
      auto index = catalog_->IndexOnTable((*table)->id());
      if (spec.has_filter && index.ok() && (*index)->num_entries() > 0) {
        const auto& indexed_column =
            schema.column((*index)->column_index());
        if (indexed_column.name == spec.filter_column &&
            indexed_column.type == storage::ColumnType::kInt64) {
          const double matches = selectivity * n;
          const double index_cost =
              static_cast<double>((*index)->height()) +
              static_cast<double>((*index)->LeafPagesForMatches(
                  static_cast<std::size_t>(matches))) -
              1.0 +
              ExpectedDistinctPages(
                  matches, static_cast<double>((*table)->num_pages()));
          if (index_cost <
              static_cast<double>((*table)->num_pages())) {
            range_index = *index;
            out.analytic_cost = index_cost;
          }
        }
      }

      OperatorPtr input;
      SeqScanOperator* seq_raw = nullptr;
      IndexRangeScanOperator* range_raw = nullptr;
      if (range_index != nullptr) {
        const auto lo = static_cast<std::int64_t>(
                            std::floor(spec.filter_threshold)) +
                        1;
        auto range = std::make_unique<IndexRangeScanOperator>(
            range_index, *table, lo, range_index->max_key());
        range_raw = range.get();
        input = std::move(range);
        out.plan_text = "ScalarAggregate <- IndexRangeScan(" + spec.table +
                        "." + spec.filter_column + ")";
      } else {
        auto scan = std::make_unique<SeqScanOperator>(*table);
        seq_raw = scan.get();
        input = std::move(scan);
        if (spec.has_filter) {
          auto col = Col(schema, spec.filter_column);
          if (!col.ok()) return col.status();
          input = std::make_unique<FilterOperator>(
              std::move(input),
              Bin(BinaryOp::kGt, std::move(*col),
                  Const(spec.filter_threshold)));
        }
        out.analytic_cost = static_cast<double>((*table)->num_pages());
        out.plan_text = "ScalarAggregate <- " +
                        std::string(spec.has_filter ? "Filter <- " : "") +
                        "SeqScan(" + spec.table + ")";
      }
      ExprPtr arg;
      if (spec.agg != AggFunc::kCount) {
        auto col = Col(schema, spec.agg_column);
        if (!col.ok()) return col.status();
        arg = std::move(*col);
      } else {
        arg = Const(1.0);
      }
      auto root = std::make_unique<ScalarAggregateOperator>(
          std::move(input), spec.agg, std::move(arg));

      out.optimizer_cost =
          out.analytic_cost * rng_.LogNormalFactor(options_.noise_sigma);
      DriverModel driver;
      if (range_raw != nullptr) {
        driver.processed = [range_raw] { return range_raw->rows_emitted(); };
        // Estimated matches, not exact: the refiner treats this as the
        // driver total, so a misestimate shows up as residual cost
        // error — exactly how a real optimizer's row estimate behaves.
        driver.total_rows = static_cast<std::uint64_t>(
            std::max(1.0, out.estimated_input_rows));
      } else {
        driver.processed = [seq_raw] { return seq_raw->rows_emitted(); };
        driver.total_rows = (*table)->num_tuples();
      }
      driver.prior_cost_per_row =
          driver.total_rows
              ? out.optimizer_cost / static_cast<double>(driver.total_rows)
              : 0.0;
      out.execution = std::make_unique<OperatorQueryExecution>(
          std::move(root), buffers, std::move(driver), out.optimizer_cost);
      return out;
    }

    case QuerySpec::Kind::kGroupByAggregate: {
      auto table = catalog_->GetTable(spec.table);
      if (!table.ok()) return table.status();
      const storage::Schema& schema = (*table)->schema();
      auto group_col = schema.ColumnIndex(spec.group_column);
      if (!group_col.ok()) return group_col.status();
      if (schema.column(*group_col).type != storage::ColumnType::kInt64) {
        return Status::InvalidArgument("group column '" + spec.group_column +
                                       "' must be int64");
      }

      OperatorPtr input = std::make_unique<SeqScanOperator>(*table);
      auto* scan_raw = static_cast<SeqScanOperator*>(input.get());
      if (spec.has_filter) {
        auto col = Col(schema, spec.filter_column);
        if (!col.ok()) return col.status();
        input = std::make_unique<FilterOperator>(
            std::move(input),
            Bin(BinaryOp::kGt, std::move(*col), Const(spec.filter_threshold)));
      }
      ExprPtr arg;
      if (spec.agg != AggFunc::kCount) {
        auto col = Col(schema, spec.agg_column);
        if (!col.ok()) return col.status();
        arg = std::move(*col);
      } else {
        arg = Const(1.0);
      }
      auto root = std::make_unique<HashGroupByOperator>(
          std::move(input), *group_col, spec.agg, std::move(arg));

      const double n = static_cast<double>((*table)->num_tuples());
      out.analytic_cost = static_cast<double>((*table)->num_pages()) +
                          n / HashJoinOperator::kRowsPerUnit;
      out.optimizer_cost =
          out.analytic_cost * rng_.LogNormalFactor(options_.noise_sigma);
      out.plan_text = "HashGroupBy <- " +
                      std::string(spec.has_filter ? "Filter <- " : "") +
                      "SeqScan(" + spec.table + ")";
      // Cardinalities: input after the filter; result = distinct groups.
      double selectivity = 1.0;
      if (spec.has_filter) {
        auto histogram =
            catalog_->GetHistogram(spec.table, spec.filter_column);
        selectivity =
            histogram.ok()
                ? (*histogram)->SelectivityGreaterThan(spec.filter_threshold)
                : 1.0 / 3.0;
      }
      out.estimated_input_rows = selectivity * n;
      auto group_histogram =
          catalog_->GetHistogram(spec.table, spec.group_column);
      out.estimated_result_rows =
          group_histogram.ok()
              ? static_cast<double>((*group_histogram)->num_distinct())
              : out.estimated_input_rows;

      DriverModel driver;
      driver.processed = [scan_raw] { return scan_raw->rows_emitted(); };
      driver.total_rows = (*table)->num_tuples();
      driver.prior_cost_per_row =
          driver.total_rows
              ? out.optimizer_cost / static_cast<double>(driver.total_rows)
              : 0.0;
      out.execution = std::make_unique<OperatorQueryExecution>(
          std::move(root), buffers, std::move(driver), out.optimizer_cost);
      return out;
    }

    case QuerySpec::Kind::kTopN: {
      auto table = catalog_->GetTable(spec.table);
      if (!table.ok()) return table.status();
      const storage::Schema& schema = (*table)->schema();
      auto order_col = Col(schema, spec.order_column);
      if (!order_col.ok()) return order_col.status();

      OperatorPtr input = std::make_unique<SeqScanOperator>(*table);
      auto* scan_raw = static_cast<SeqScanOperator*>(input.get());
      if (spec.has_filter) {
        auto col = Col(schema, spec.filter_column);
        if (!col.ok()) return col.status();
        input = std::make_unique<FilterOperator>(
            std::move(input),
            Bin(BinaryOp::kGt, std::move(*col), Const(spec.filter_threshold)));
      }
      auto root = std::make_unique<TopNOperator>(
          std::move(input), std::move(*order_col), spec.descending,
          spec.limit);

      const double n = static_cast<double>((*table)->num_tuples());
      out.analytic_cost = static_cast<double>((*table)->num_pages()) +
                          n / HashJoinOperator::kRowsPerUnit;
      out.optimizer_cost =
          out.analytic_cost * rng_.LogNormalFactor(options_.noise_sigma);
      out.plan_text = "TopN <- " +
                      std::string(spec.has_filter ? "Filter <- " : "") +
                      "SeqScan(" + spec.table + ")";
      double selectivity = 1.0;
      if (spec.has_filter) {
        auto histogram =
            catalog_->GetHistogram(spec.table, spec.filter_column);
        selectivity =
            histogram.ok()
                ? (*histogram)->SelectivityGreaterThan(spec.filter_threshold)
                : 1.0 / 3.0;
      }
      out.estimated_input_rows = selectivity * n;
      out.estimated_result_rows = std::min(
          out.estimated_input_rows, static_cast<double>(spec.limit));

      DriverModel driver;
      driver.processed = [scan_raw] { return scan_raw->rows_emitted(); };
      driver.total_rows = (*table)->num_tuples();
      driver.prior_cost_per_row =
          driver.total_rows
              ? out.optimizer_cost / static_cast<double>(driver.total_rows)
              : 0.0;
      out.execution = std::make_unique<OperatorQueryExecution>(
          std::move(root), buffers, std::move(driver), out.optimizer_cost);
      return out;
    }

    case QuerySpec::Kind::kJoinAggregate: {
      auto part = catalog_->GetTable(spec.table);
      if (!part.ok()) return part.status();
      auto lineitem = catalog_->GetTable("lineitem");
      if (!lineitem.ok()) return lineitem.status();
      auto build_key = (*part)->schema().ColumnIndex("partkey");
      if (!build_key.ok()) return build_key.status();
      auto probe_key = (*lineitem)->schema().ColumnIndex("partkey");
      if (!probe_key.ok()) return probe_key.status();

      auto join = std::make_unique<HashJoinOperator>(
          std::make_unique<SeqScanOperator>(*part), *build_key,
          std::make_unique<SeqScanOperator>(*lineitem), *probe_key);
      auto* join_raw = join.get();
      ExprPtr arg;
      if (spec.agg != AggFunc::kCount) {
        // Probe (lineitem) columns lead the join output schema.
        auto col = Col(join->output_schema(), spec.agg_column);
        if (!col.ok()) return col.status();
        arg = std::move(*col);
      } else {
        arg = Const(1.0);
      }
      auto root = std::make_unique<ScalarAggregateOperator>(
          std::move(join), spec.agg, std::move(arg));

      const double build_rows = static_cast<double>((*part)->num_tuples());
      const double probe_rows =
          static_cast<double>((*lineitem)->num_tuples());
      out.analytic_cost =
          static_cast<double>((*part)->num_pages()) +
          static_cast<double>((*lineitem)->num_pages()) +
          (build_rows + probe_rows) / HashJoinOperator::kRowsPerUnit;
      out.optimizer_cost =
          out.analytic_cost * rng_.LogNormalFactor(options_.noise_sigma);
      out.plan_text = "ScalarAggregate <- HashJoin(SeqScan(" + spec.table +
                      ") x SeqScan(lineitem))";
      // Join cardinality: each lineitem row matches iff its partkey is
      // in the part table: |part| / distinct lineitem keys.
      auto li_stats = catalog_->GetStats("lineitem");
      const double match_fraction =
          li_stats.ok() && li_stats->num_distinct_keys > 0
              ? build_rows /
                    static_cast<double>(li_stats->num_distinct_keys)
              : 1.0;
      out.estimated_input_rows = probe_rows * std::min(1.0, match_fraction);
      out.estimated_result_rows = 1.0;

      DriverModel driver;
      driver.processed = [join_raw] {
        return join_raw->probe_rows_processed();
      };
      driver.total_rows = (*lineitem)->num_tuples();
      driver.prior_cost_per_row =
          driver.total_rows
              ? out.optimizer_cost / static_cast<double>(driver.total_rows)
              : 0.0;
      out.execution = std::make_unique<OperatorQueryExecution>(
          std::move(root), buffers, std::move(driver), out.optimizer_cost);
      return out;
    }

    case QuerySpec::Kind::kTpcrPartPrice: {
      auto part = catalog_->GetTable(spec.table);
      if (!part.ok()) return part.status();
      auto lineitem = catalog_->GetTable("lineitem");
      if (!lineitem.ok()) return lineitem.status();
      auto index = catalog_->IndexOnTable((*lineitem)->id());
      if (!index.ok()) return index.status();
      auto li_stats = catalog_->GetStats("lineitem");
      if (!li_stats.ok()) return li_stats.status();

      const storage::Schema& part_schema = (*part)->schema();
      auto key_col = part_schema.ColumnIndex("partkey");
      if (!key_col.ok()) return key_col.status();
      auto price_col = part_schema.ColumnIndex("retailprice");
      if (!price_col.ok()) return price_col.status();
      const storage::Schema& li_schema = (*lineitem)->schema();
      auto num_col = li_schema.ColumnIndex("extendedprice");
      if (!num_col.ok()) return num_col.status();
      auto den_col = li_schema.ColumnIndex("quantity");
      if (!den_col.ok()) return den_col.status();

      OperatorPtr scan = std::make_unique<SeqScanOperator>(*part);
      // Predicate over (part columns..., subquery): retailprice * 0.75 >
      // subquery. The subquery column is appended last.
      const std::size_t subquery_index = part_schema.num_columns();
      ExprPtr predicate =
          Bin(BinaryOp::kGt,
              Bin(BinaryOp::kMul,
                  std::make_unique<ColumnExpr>(*price_col, "retailprice"),
                  Const(0.75)),
              std::make_unique<ColumnExpr>(subquery_index, "subquery"));
      auto root = std::make_unique<CorrelatedSubqueryFilter>(
          std::move(scan), *key_col, *index, *lineitem, *num_col, *den_col,
          std::move(predicate));
      auto* root_raw = root.get();

      // Analytic cost: outer scan pages + per-outer-tuple probe cost
      // (index descent + expected extra leaves + distinct heap pages).
      const double outer_rows =
          static_cast<double>((*part)->num_tuples());
      const double matches = li_stats->avg_matches_per_key;
      const double heap_pages =
          ExpectedDistinctPages(matches,
                                static_cast<double>(li_stats->num_pages));
      const double extra_leaves =
          static_cast<double>((*index)->LeafPagesForMatches(
              static_cast<std::size_t>(matches))) -
          1.0;
      const double probe_cost =
          static_cast<double>((*index)->height()) + extra_leaves + heap_pages;
      out.analytic_cost =
          static_cast<double>((*part)->num_pages()) + outer_rows * probe_cost;
      out.optimizer_cost =
          out.analytic_cost * rng_.LogNormalFactor(options_.noise_sigma);
      out.plan_text = "CorrelatedSubqueryFilter(lineitem_partkey_idx) <- "
                      "SeqScan(" +
                      spec.table + ")";
      // Cardinality: a part row qualifies when retailprice * 0.75
      // exceeds its average unit price; estimate the global average
      // unit price from the lineitem histograms and read the qualifying
      // fraction off the retailprice histogram.
      out.estimated_input_rows = outer_rows;
      out.estimated_result_rows = outer_rows;
      auto h_price = catalog_->GetHistogram("lineitem", "extendedprice");
      auto h_quantity = catalog_->GetHistogram("lineitem", "quantity");
      auto h_retail = catalog_->GetHistogram(spec.table, "retailprice");
      if (h_price.ok() && h_quantity.ok() && h_retail.ok() &&
          (*h_quantity)->EstimatedMean() > 0.0) {
        const double avg_unit_price = (*h_price)->EstimatedMean() /
                                      (*h_quantity)->EstimatedMean();
        out.estimated_result_rows =
            outer_rows *
            (*h_retail)->SelectivityGreaterThan(avg_unit_price / 0.75);
      }

      DriverModel driver;
      driver.processed = [root_raw] {
        return root_raw->outer_rows_processed();
      };
      driver.total_rows = (*part)->num_tuples();
      driver.prior_cost_per_row =
          driver.total_rows
              ? out.optimizer_cost / static_cast<double>(driver.total_rows)
              : 0.0;
      out.execution = std::make_unique<OperatorQueryExecution>(
          std::move(root), buffers, std::move(driver), out.optimizer_cost);
      return out;
    }
  }
  return Status::Internal("unreachable: unknown QuerySpec kind");
}

Result<std::string> Planner::Explain(const QuerySpec& spec) {
  auto prepared = Prepare(spec);
  if (!prepared.ok()) return prepared.status();
  std::ostringstream os;
  os << "Query:    " << spec.ToString() << "\n";
  os << "Plan:     " << prepared->plan_text << "\n";
  os << "Cost:     " << prepared->optimizer_cost << " U (analytic "
     << prepared->analytic_cost << " U)\n";
  os << "Rows in:  " << prepared->estimated_input_rows << "\n";
  os << "Rows out: " << prepared->estimated_result_rows << "\n";
  return os.str();
}

Result<WorkUnits> Planner::MeasureTrueCost(const QuerySpec& spec) {
  if (spec.kind == QuerySpec::Kind::kSynthetic) return spec.synthetic_cost;
  storage::BufferManager private_pool(buffers_->options());
  auto prepared = PrepareWithBuffers(spec, &private_pool);
  if (!prepared.ok()) return prepared.status();
  QueryExecution* exec = prepared->execution.get();
  while (!exec->done()) {
    exec->Advance(std::numeric_limits<double>::infinity());
  }
  if (!exec->status().ok()) return exec->status();
  return exec->completed_work();
}

}  // namespace mqpi::engine
