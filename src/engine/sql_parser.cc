#include "engine/sql_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace mqpi::engine {

namespace internal {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < sql.size() && IsIdentChar(sql[j])) ++j;
      token.kind = TokenKind::kIdentifier;
      token.text.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        token.text.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(sql[k]))));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t j = i;
      bool seen_dot = false;
      while (j < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[j])) ||
              (sql[j] == '.' && !seen_dot))) {
        if (sql[j] == '.') seen_dot = true;
        ++j;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(sql.substr(i, j - i));
      token.number = std::strtod(token.text.c_str(), nullptr);
      i = j;
    } else {
      switch (c) {
        case '*':
          token.kind = TokenKind::kStar;
          break;
        case ',':
          token.kind = TokenKind::kComma;
          break;
        case '(':
          token.kind = TokenKind::kLParen;
          break;
        case ')':
          token.kind = TokenKind::kRParen;
          break;
        case '.':
          token.kind = TokenKind::kDot;
          break;
        case '>':
          token.kind = TokenKind::kGt;
          break;
        case '=':
          token.kind = TokenKind::kEq;
          break;
        case '/':
          token.kind = TokenKind::kDiv;
          break;
        default:
          return Status::InvalidArgument(
              "unexpected character '" + std::string(1, c) + "' at offset " +
              std::to_string(i));
      }
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = sql.size();
  tokens.push_back(end);
  // '*' doubles as multiplication; disambiguate later by context.
  return tokens;
}

}  // namespace internal

namespace {

using internal::Token;
using internal::TokenKind;

/// Recursive-descent cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QuerySpec> ParseStatement() {
    MQPI_RETURN_NOT_OK(ExpectKeyword("select"));
    if (Peek().kind == TokenKind::kStar) {
      // SELECT * is either the paper's correlated template or a
      // TopN (ORDER BY ... LIMIT) query; ParseSelectStar decides.
      Advance();
      return ParseSelectStar();
    }
    return ParseAggregateQuery();
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().position));
  }

  bool PeekKeyword(std::string_view word, std::size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdentifier && t.text == word;
  }

  Status ExpectKeyword(std::string_view word) {
    if (!PeekKeyword(word)) {
      return Error("expected '" + std::string(word) + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  /// Parses `[alias .] column`, returning the column name.
  Result<std::string> ParseColumnRef() {
    auto first = ExpectIdentifier("column name");
    if (!first.ok()) return first.status();
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      return ExpectIdentifier("column name after '.'");
    }
    return first;
  }

  Result<std::pair<AggFunc, std::string>> ParseAggregate() {
    auto name = ExpectIdentifier("aggregate function");
    if (!name.ok()) return name.status();
    AggFunc func;
    if (*name == "count") {
      func = AggFunc::kCount;
    } else if (*name == "sum") {
      func = AggFunc::kSum;
    } else if (*name == "avg") {
      func = AggFunc::kAvg;
    } else if (*name == "min") {
      func = AggFunc::kMin;
    } else if (*name == "max") {
      func = AggFunc::kMax;
    } else {
      return Error("unknown aggregate '" + *name + "'");
    }
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    std::string column;
    if (func == AggFunc::kCount && Peek().kind == TokenKind::kStar) {
      Advance();
    } else {
      auto col = ParseColumnRef();
      if (!col.ok()) return col.status();
      column = *col;
    }
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return std::make_pair(func, column);
  }

  Result<QuerySpec> ParseAggregateQuery() {
    // "SELECT col, AGG(...) ... GROUP BY col" — a leading identifier
    // followed by a comma marks the group-by form.
    std::string group_column;
    const bool plain_group = Peek().kind == TokenKind::kIdentifier &&
                             Peek(1).kind == TokenKind::kComma;
    const bool qualified_group = Peek().kind == TokenKind::kIdentifier &&
                                 Peek(1).kind == TokenKind::kDot &&
                                 Peek(2).kind == TokenKind::kIdentifier &&
                                 Peek(3).kind == TokenKind::kComma;
    if (plain_group || qualified_group) {
      auto col = ParseColumnRef();
      if (!col.ok()) return col.status();
      group_column = *col;
      MQPI_RETURN_NOT_OK(Expect(TokenKind::kComma, "','"));
    }
    auto agg = ParseAggregate();
    if (!agg.ok()) return agg.status();
    MQPI_RETURN_NOT_OK(ExpectKeyword("from"));
    auto table = ExpectIdentifier("table name");
    if (!table.ok()) return table.status();
    // Optional alias (not a keyword that can follow the table).
    if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("join") &&
        !PeekKeyword("where") && !PeekKeyword("group")) {
      Advance();
    }

    if (PeekKeyword("join")) {
      Advance();
      auto probe = ExpectIdentifier("probe table");
      if (!probe.ok()) return probe.status();
      if (*probe != "lineitem") {
        return Error("the probe side of a join must be lineitem");
      }
      if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("on")) {
        Advance();  // alias
      }
      MQPI_RETURN_NOT_OK(ExpectKeyword("on"));
      auto left = ParseColumnRef();
      if (!left.ok()) return left.status();
      MQPI_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
      auto right = ParseColumnRef();
      if (!right.ok()) return right.status();
      if (*left != "partkey" || *right != "partkey") {
        return Error("joins must be on partkey = partkey");
      }
      if (!AtEnd()) return Error("unexpected trailing input");
      return QuerySpec::JoinAggregate(*table, agg->first, agg->second);
    }

    QuerySpec spec =
        group_column.empty()
            ? QuerySpec::ScanAggregate(*table, agg->first, agg->second)
            : QuerySpec::GroupByAggregate(*table, group_column, agg->first,
                                          agg->second);
    if (PeekKeyword("where")) {
      Advance();
      auto column = ParseColumnRef();
      if (!column.ok()) return column.status();
      MQPI_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
      if (Peek().kind != TokenKind::kNumber) return Error("expected number");
      spec.WithFilter(*column, Advance().number);
    }
    if (!group_column.empty()) {
      MQPI_RETURN_NOT_OK(ExpectKeyword("group"));
      MQPI_RETURN_NOT_OK(ExpectKeyword("by"));
      auto by = ParseColumnRef();
      if (!by.ok()) return by.status();
      if (*by != group_column) {
        return Error("GROUP BY column must match the selected column '" +
                     group_column + "'");
      }
    } else if (PeekKeyword("group")) {
      return Error("GROUP BY requires the grouping column in the select "
                   "list (select col, agg(...) ...)");
    }
    if (!AtEnd()) return Error("unexpected trailing input");
    return spec;
  }

  /// Shared head for SELECT *: FROM table [alias], then dispatch on
  /// what follows — ORDER BY (TopN), WHERE col > num [ORDER BY] (TopN
  /// with filter), or the paper's correlated-template predicate.
  Result<QuerySpec> ParseSelectStar() {
    MQPI_RETURN_NOT_OK(ExpectKeyword("from"));
    auto table = ExpectIdentifier("table name");
    if (!table.ok()) return table.status();
    if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("where") &&
        !PeekKeyword("order")) {
      Advance();  // alias
    }
    if (PeekKeyword("order")) {
      return ParseTopNTail(*table, /*filter_column=*/"",
                           /*filter_threshold=*/0.0, /*has_filter=*/false);
    }
    MQPI_RETURN_NOT_OK(ExpectKeyword("where"));
    auto column = ParseColumnRef();
    if (!column.ok()) return column.status();
    if (Peek().kind == TokenKind::kGt) {
      // TopN filter: WHERE col > number ORDER BY ... LIMIT n.
      Advance();
      if (Peek().kind != TokenKind::kNumber) return Error("expected number");
      const double threshold = Advance().number;
      return ParseTopNTail(*table, *column, threshold, /*has_filter=*/true);
    }
    return ParseTpcrTemplate(*table, *column);
  }

  /// ORDER BY col [DESC|ASC] LIMIT n.
  Result<QuerySpec> ParseTopNTail(const std::string& table,
                                  const std::string& filter_column,
                                  double filter_threshold, bool has_filter) {
    MQPI_RETURN_NOT_OK(ExpectKeyword("order"));
    MQPI_RETURN_NOT_OK(ExpectKeyword("by"));
    auto column = ParseColumnRef();
    if (!column.ok()) return column.status();
    bool descending = false;
    if (PeekKeyword("desc")) {
      descending = true;
      Advance();
    } else if (PeekKeyword("asc")) {
      Advance();
    }
    MQPI_RETURN_NOT_OK(ExpectKeyword("limit"));
    if (Peek().kind != TokenKind::kNumber) return Error("expected limit");
    const double limit = Advance().number;
    if (limit < 1.0 || limit != std::floor(limit)) {
      return Error("limit must be a positive integer");
    }
    if (!AtEnd()) return Error("unexpected trailing input");
    QuerySpec spec = QuerySpec::TopN(table, *column, descending,
                                     static_cast<std::size_t>(limit));
    if (has_filter) spec.WithFilter(filter_column, filter_threshold);
    return spec;
  }

  /// ... WHERE p.retailprice * 0.75 >
  ///   (SELECT SUM(l.extendedprice) / SUM(l.quantity) FROM lineitem l
  ///    WHERE l.partkey = p.partkey)
  /// The caller already consumed FROM <table> [alias] WHERE <column>.
  Result<QuerySpec> ParseTpcrTemplate(const std::string& table,
                                      const std::string& price_column) {
    if (price_column != "retailprice") {
      return Error("the template predicate must use retailprice");
    }
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kStar, "'*'"));
    if (Peek().kind != TokenKind::kNumber || Peek().number != 0.75) {
      return Error("the template multiplier must be 0.75");
    }
    Advance();
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kGt, "'>'"));
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    MQPI_RETURN_NOT_OK(ExpectKeyword("select"));
    auto num = ParseAggregate();
    if (!num.ok()) return num.status();
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kDiv, "'/'"));
    auto den = ParseAggregate();
    if (!den.ok()) return den.status();
    if (num->first != AggFunc::kSum || den->first != AggFunc::kSum ||
        num->second != "extendedprice" || den->second != "quantity") {
      return Error(
          "the sub-query must be sum(extendedprice) / sum(quantity)");
    }
    MQPI_RETURN_NOT_OK(ExpectKeyword("from"));
    auto inner = ExpectIdentifier("inner table");
    if (!inner.ok()) return inner.status();
    if (*inner != "lineitem") {
      return Error("the sub-query must scan lineitem");
    }
    if (Peek().kind == TokenKind::kIdentifier && !PeekKeyword("where")) {
      Advance();  // alias
    }
    MQPI_RETURN_NOT_OK(ExpectKeyword("where"));
    auto left = ParseColumnRef();
    if (!left.ok()) return left.status();
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kEq, "'='"));
    auto right = ParseColumnRef();
    if (!right.ok()) return right.status();
    if (*left != "partkey" || *right != "partkey") {
      return Error("the correlation must be partkey = partkey");
    }
    MQPI_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    if (!AtEnd()) return Error("unexpected trailing input");
    return QuerySpec::TpcrPartPrice(table);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<QuerySpec> ParseSql(std::string_view sql) {
  auto tokens = internal::Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseStatement();
}

}  // namespace mqpi::engine
