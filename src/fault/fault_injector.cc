#include "fault/fault_injector.h"

#include <algorithm>
#include <utility>

#include "obs/tracer.h"

namespace mqpi::fault {

namespace {

/// FNV-1a over the point name: combined with the injector seed it
/// forks one independent RNG stream per point, so the fire sequence of
/// a point never depends on which other points are armed.
std::uint64_t HashName(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed)
    : seed_(seed), tracer_(obs::GlobalTracer()) {}

FaultInjector::Point* FaultInjector::FindOrCreate(const char* literal_name,
                                                  std::string_view point) {
  auto it = points_.find(point);
  if (it != points_.end()) return &it->second;
  Point p;
  p.name = literal_name;
  p.rng = Rng(seed_ ^ HashName(point));
  auto [inserted, _] = points_.emplace(std::string(point), std::move(p));
  return &inserted->second;
}

void FaultInjector::Arm(const char* point, FaultSpec spec) {
  std::sort(spec.schedule.begin(), spec.schedule.end());
  std::lock_guard<std::mutex> lock(mu_);
  Point* p = FindOrCreate(point, point);
  const bool was_armed = p->armed;
  p->spec = std::move(spec);
  p->armed = true;
  // Re-arming restarts the point's deterministic life: counters, the
  // schedule cursor, and the RNG stream all reset to the seeded state.
  p->evaluations = 0;
  p->fires = 0;
  p->next_scheduled = 0;
  p->rng = Rng(seed_ ^ HashName(point));
  if (!was_armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::ArmProbability(const char* point, double probability,
                                   double value) {
  FaultSpec spec;
  spec.probability = probability;
  spec.value = value;
  Arm(point, std::move(spec));
}

void FaultInjector::ArmSchedule(const char* point,
                                std::vector<std::uint64_t> schedule,
                                double value) {
  FaultSpec spec;
  spec.schedule = std::move(schedule);
  spec.value = value;
  Arm(point, std::move(spec));
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) p.armed = false;
  armed_points_.store(0, std::memory_order_relaxed);
}

FaultInjector::Fire FaultInjector::Evaluate(std::string_view point) {
  Fire fire;
  const char* trace_name = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return fire;
    Point& p = it->second;
    const std::uint64_t index = p.evaluations++;
    if (p.fires >= p.spec.max_fires) return fire;
    bool fired = false;
    if (p.next_scheduled < p.spec.schedule.size() &&
        p.spec.schedule[p.next_scheduled] == index) {
      ++p.next_scheduled;
      fired = true;
    }
    // The probability draw happens on every evaluation (not only when
    // the schedule missed), so the stream position depends only on the
    // evaluation count — schedule entries don't shift later draws.
    const bool chance =
        p.spec.probability > 0.0 && p.rng.NextDouble() < p.spec.probability;
    fired = fired || chance;
    if (!fired) return fire;
    ++p.fires;
    fire.fired = true;
    fire.value = p.spec.value;
    trace_name = p.name;
  }
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_->enabled()) {
    tracer_->Instant("fault", trace_name, kInvalidQueryId, "value",
                     fire.value);
  }
  return fire;
}

double FaultInjector::ScaleOr(std::string_view point, double fallback) {
  const Fire fire = Evaluate(point);
  return fire.fired ? fire.value : fallback;
}

std::uint64_t FaultInjector::PickIndex(std::string_view point,
                                       std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || n == 0) return 0;
  return it->second.rng.Next() % n;
}

std::vector<FaultInjector::PointStats> FaultInjector::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PointStats> out;
  out.reserve(points_.size());
  for (const auto& [name, p] : points_) {
    PointStats stats;
    stats.point = p.name;
    stats.evaluations = p.evaluations;
    stats.fires = p.fires;
    out.push_back(stats);
  }
  return out;
}

}  // namespace mqpi::fault
