// FaultInjector: a seeded, deterministic chaos harness for the whole
// PI stack.
//
// The injector owns a catalog of *named fault points* — places in
// sched::Rdbms, pi::MultiQueryPi, service::PiService, and the network
// layer (net::PiServer + the snapshot fan-out) that ask
// "should this fault fire now?" once per opportunity (per quantum, per
// control call, per tick). A point fires either
//   - probability-driven: with probability p per evaluation, drawn from
//     a per-point RNG stream, or
//   - schedule-driven: exactly on the listed 0-based evaluation
//     indices (e.g. "stall the ticker on its 3rd tick"),
// optionally capped at `max_fires` total fires, and optionally carrying
// a numeric payload (`value`) — a rate multiplier for collapse/spike
// faults, a stall duration in wall seconds, a corruption value.
//
// Determinism contract: every point forks its own RNG stream from
// {injector seed, point name}, so the fire sequence of one point
// depends only on the seed and on how many times *that point* was
// evaluated — never on which other points are armed or on the
// interleaving of evaluations across points. A single-threaded run
// (manual-mode PiService, bare Rdbms) therefore replays exactly from
// the seed; in ticker mode the decisions are still seed-deterministic
// per point, only their wall-clock placement varies.
//
// Thread-safety: all methods are internally locked (evaluations are
// rare and cheap — one map lookup + one RNG draw). The hot-path gate
// is `enabled()`, a single relaxed atomic load that is false while no
// point is armed, so a wired-but-quiet injector costs a branch.
//
// Fault-point names must be string literals (static storage): the
// injector records a trace instant per fire through the process
// tracer, which stores name pointers only.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"

namespace mqpi::obs {
class Tracer;
}  // namespace mqpi::obs

namespace mqpi::fault {

// ---- fault-point catalog ----------------------------------------------------
// Every point wired into the stack, in one place. Arms use these
// constants; the strings double as the `point` label on the
// `fault.injected` counter.

/// Rdbms: abort one running query, chosen by the point's RNG.
inline constexpr const char* kSchedSpuriousAbort = "sched.spurious_abort";
/// Rdbms: toggle the admission gate (open<->closed).
inline constexpr const char* kSchedAdmissionFlap = "sched.admission_flap";
/// Rdbms: multiply this quantum's aggregate rate by `value` (< 1).
inline constexpr const char* kSchedRateCollapse = "sched.rate_collapse";
/// Rdbms: multiply this quantum's aggregate rate by `value` (> 1).
inline constexpr const char* kSchedRateSpike = "sched.rate_spike";
/// Rdbms: the quantum serves no work at all (clock still advances).
inline constexpr const char* kSchedQuantumStall = "sched.quantum_stall";
/// Rdbms: the quantum serves `value`x its nominal capacity.
inline constexpr const char* kSchedQuantumOvershoot =
    "sched.quantum_overshoot";
/// PiService ticker: park for `value` wall seconds, ignoring work
/// notifications (the watchdog's prey).
inline constexpr const char* kServiceTickerStall = "service.ticker_stall";
/// PiService: suppress this quantum's fresh snapshot; readers keep the
/// previous one, re-published with staleness tags.
inline constexpr const char* kServicePublishDelay = "service.publish_delay";
/// PiService: fail the session control call (Block/Resume/Abort/
/// SetPriority) with an Internal error.
inline constexpr const char* kServiceSessionControlFail =
    "service.session_control_fail";
/// PiServer: a freshly accepted connection is torn down immediately
/// (as if the accept syscall failed / the handshake died).
inline constexpr const char* kNetAcceptFail = "net.accept_fail";
/// PiServer: the next socket write moves at most `value` bytes
/// (default 1) — exercises the partial-write resume path.
inline constexpr const char* kNetPartialWrite = "net.partial_write";
/// Fan-out: one subscriber's consumer goes deaf (stops draining /
/// stops being writable), driving the bounded write queue into the
/// shedding path.
inline constexpr const char* kNetSlowConsumer = "net.slow_consumer";
/// Fan-out / server: one live connection or subscription is dropped
/// outright.
inline constexpr const char* kNetConnDrop = "net.conn_drop";
/// net::ResilientClient: the next connect attempt fails before the
/// socket is even tried (exercises backoff + retry scheduling).
inline constexpr const char* kNetClientConnectFail = "net.client.connect_fail";
/// recover::DurableLog: the next journal append is dropped on the
/// floor, poisoning the active segment until the next checkpoint.
inline constexpr const char* kRecoverJournalWriteFail =
    "recover.journal_write_fail";
/// recover::DurableLog: the checkpoint image being written has one
/// byte flipped before publication — recovery must fall back to the
/// previous checkpoint.
inline constexpr const char* kRecoverCheckpointCorrupt =
    "recover.checkpoint_corrupt";
/// MultiQueryPi: drop the memoized forecast and base-load snapshot
/// (correctness no-op by construction; costs a recomputation).
inline constexpr const char* kPiCacheInvalidate = "pi.cache_invalidate";
/// MultiQueryPi: overwrite the rate-measurement window accumulator
/// with `value` (NaN, negative, garbage) — exercises the rate guards.
inline constexpr const char* kPiWindowCorrupt = "pi.window_corrupt";

/// How one fault point fires. Probability and schedule compose: the
/// point fires when either says so (arm only one for the usual cases).
struct FaultSpec {
  /// Chance of firing per evaluation, in [0, 1].
  double probability = 0.0;
  /// Explicit 0-based evaluation indices to fire on (schedule-driven).
  std::vector<std::uint64_t> schedule;
  /// Stop firing after this many fires (the point stays armed and
  /// keeps counting evaluations).
  std::uint64_t max_fires = ~std::uint64_t{0};
  /// Payload delivered on fire (rate factor, stall seconds, ...).
  double value = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xC4A05u);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // ---- arming ---------------------------------------------------------------

  /// Arms (or re-arms, resetting counters) a fault point. `point` must
  /// be a string literal (see header comment).
  void Arm(const char* point, FaultSpec spec);
  void ArmProbability(const char* point, double probability,
                      double value = 0.0);
  void ArmSchedule(const char* point, std::vector<std::uint64_t> schedule,
                   double value = 0.0);
  void Disarm(std::string_view point);
  void DisarmAll();

  /// True while at least one point is armed — the wiring's hot-path
  /// gate (one relaxed atomic load).
  bool enabled() const {
    return armed_points_.load(std::memory_order_relaxed) != 0;
  }

  // ---- evaluation (called from the wired fault points) ----------------------

  struct Fire {
    bool fired = false;
    double value = 0.0;
  };

  /// One evaluation of `point`: returns whether it fires now and the
  /// armed payload. Unarmed points never fire (and are not counted).
  Fire Evaluate(std::string_view point);

  bool ShouldFire(std::string_view point) { return Evaluate(point).fired; }

  /// Evaluates `point` and returns its payload when it fires,
  /// `fallback` otherwise — the rate-multiplier idiom.
  double ScaleOr(std::string_view point, double fallback);

  /// Deterministic victim selection in [0, n): drawn from the point's
  /// own RNG stream (call only after a fire; requires n > 0).
  std::uint64_t PickIndex(std::string_view point, std::uint64_t n);

  // ---- accounting -----------------------------------------------------------

  struct PointStats {
    const char* point = nullptr;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
  };

  /// Stats for every point ever armed (alive through Disarm, so chaos
  /// runs can audit what actually fired). Sorted by point name.
  std::vector<PointStats> Stats() const;

  /// Total fires across all points.
  std::uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  std::uint64_t seed() const { return seed_; }

 private:
  struct Point {
    const char* name = nullptr;  // literal, stable for tracing
    FaultSpec spec;
    bool armed = false;
    Rng rng{0};
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
    std::size_t next_scheduled = 0;  // cursor into spec.schedule
  };

  /// Requires mu_. Creates the point on first touch with its forked
  /// RNG stream.
  Point* FindOrCreate(const char* literal_name, std::string_view point);

  const std::uint64_t seed_;
  obs::Tracer* tracer_;  // the process-wide tracer, cached
  mutable std::mutex mu_;
  /// Keyed by point name; node-based so Point addresses are stable.
  std::map<std::string, Point, std::less<>> points_;
  std::atomic<std::uint64_t> armed_points_{0};
  std::atomic<std::uint64_t> total_fires_{0};
};

}  // namespace mqpi::fault
