// SeriesTable: uniform text/CSV rendering for every figure and table
// the benches regenerate, so bench output lines up with the paper's
// series (one x column, one y column per curve).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"

namespace mqpi::sim {

class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_name,
              std::vector<std::string> y_names);

  /// Appends one row; ys.size() must equal the number of y columns
  /// (missing values may be kUnknown and print as "-").
  void AddRow(double x, std::vector<double> ys);

  /// Column-aligned human-readable rendering.
  void PrintText(std::ostream& os) const;
  /// Same, to stdout.
  void PrintText() const;

  /// Machine-readable CSV (header + rows).
  void PrintCsv(std::ostream& os) const;
  /// Same, to stdout.
  void PrintCsv() const;

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    double x;
    std::vector<double> ys;
  };
  std::string title_;
  std::string x_name_;
  std::vector<std::string> y_names_;
  std::vector<Row> rows_;
};

}  // namespace mqpi::sim
