#include "sim/report.h"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace mqpi::sim {

namespace {
std::string FormatCell(double v) {
  if (v == kUnknown) return "-";
  if (std::isinf(v)) return "inf";
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << v;
  std::string s = os.str();
  // Trim trailing zeros (keep at least one decimal digit).
  while (s.size() > 1 && s.back() == '0' &&
         s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}
}  // namespace

SeriesTable::SeriesTable(std::string title, std::string x_name,
                         std::vector<std::string> y_names)
    : title_(std::move(title)),
      x_name_(std::move(x_name)),
      y_names_(std::move(y_names)) {}

void SeriesTable::AddRow(double x, std::vector<double> ys) {
  assert(ys.size() == y_names_.size());
  rows_.push_back(Row{x, std::move(ys)});
}

void SeriesTable::PrintText(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  // Column widths.
  std::vector<std::size_t> widths;
  widths.push_back(x_name_.size());
  for (const auto& name : y_names_) widths.push_back(name.size());
  for (const Row& row : rows_) {
    widths[0] = std::max(widths[0], FormatCell(row.x).size());
    for (std::size_t i = 0; i < row.ys.size(); ++i) {
      widths[i + 1] = std::max(widths[i + 1], FormatCell(row.ys[i]).size());
    }
  }
  auto pad = [&os](const std::string& s, std::size_t w) {
    os << std::setw(static_cast<int>(w) + 2) << s;
  };
  pad(x_name_, widths[0]);
  for (std::size_t i = 0; i < y_names_.size(); ++i) {
    pad(y_names_[i], widths[i + 1]);
  }
  os << "\n";
  for (const Row& row : rows_) {
    pad(FormatCell(row.x), widths[0]);
    for (std::size_t i = 0; i < row.ys.size(); ++i) {
      pad(FormatCell(row.ys[i]), widths[i + 1]);
    }
    os << "\n";
  }
}

void SeriesTable::PrintText() const { PrintText(std::cout); }

void SeriesTable::PrintCsv() const { PrintCsv(std::cout); }

void SeriesTable::PrintCsv(std::ostream& os) const {
  os << x_name_;
  for (const auto& name : y_names_) os << "," << name;
  os << "\n";
  for (const Row& row : rows_) {
    os << FormatCell(row.x);
    for (const double y : row.ys) os << "," << FormatCell(y);
    os << "\n";
  }
}

}  // namespace mqpi::sim
