#include "sim/runner.h"

#include <algorithm>

namespace mqpi::sim {

SimulationRunner::SimulationRunner(sched::Rdbms* db, pi::PiManager* pis)
    : db_(db), pis_(pis) {}

void SimulationRunner::ScheduleArrival(SimTime time, engine::QuerySpec spec,
                                       Priority priority) {
  PendingArrival arrival{time, std::move(spec), priority};
  // Insert keeping [next_arrival_, end) sorted by time.
  auto it = std::lower_bound(
      schedule_.begin() + static_cast<std::ptrdiff_t>(next_arrival_),
      schedule_.end(), arrival.time,
      [](const PendingArrival& a, SimTime t) { return a.time < t; });
  schedule_.insert(it, std::move(arrival));
}

Result<QueryId> SimulationRunner::SubmitNow(const engine::QuerySpec& spec,
                                            Priority priority) {
  auto id = db_->Submit(spec, priority);
  if (id.ok()) submitted_.push_back(*id);
  return id;
}

void SimulationRunner::SubmitDueArrivals() {
  while (next_arrival_ < schedule_.size() &&
         schedule_[next_arrival_].time <= db_->now() + kTimeEpsilon) {
    const PendingArrival& arrival = schedule_[next_arrival_++];
    auto id = db_->Submit(arrival.spec, arrival.priority);
    if (id.ok()) submitted_.push_back(*id);
  }
}

void SimulationRunner::StepFor(SimTime dt) {
  const SimTime quantum = db_->options().quantum;
  SimTime remaining = dt;
  while (remaining > kTimeEpsilon) {
    SubmitDueArrivals();
    const SimTime step = std::min(remaining, quantum);
    db_->Step(step);
    if (pis_ != nullptr) pis_->AfterStep();
    remaining -= step;
  }
  SubmitDueArrivals();
}

bool SimulationRunner::AllTerminal(const std::vector<QueryId>& ids) const {
  for (QueryId id : ids) {
    auto info = db_->info(id);
    if (!info.ok()) return false;
    if (info->state != sched::QueryState::kFinished &&
        info->state != sched::QueryState::kAborted) {
      return false;
    }
  }
  return true;
}

SimTime SimulationRunner::RunUntilFinished(const std::vector<QueryId>& watch,
                                           SimTime deadline) {
  while (!AllTerminal(watch) && db_->now() < deadline - kTimeEpsilon) {
    StepFor(db_->options().quantum);
  }
  return db_->now();
}

SimTime SimulationRunner::RunUntilIdle(SimTime deadline) {
  while ((!db_->Idle() || next_arrival_ < schedule_.size()) &&
         db_->now() < deadline - kTimeEpsilon) {
    StepFor(db_->options().quantum);
  }
  return db_->now();
}

SimTime SimulationRunner::FinishTimeOf(QueryId id) const {
  auto info = db_->info(id);
  if (!info.ok()) return kUnknown;
  return info->finish_time;
}

}  // namespace mqpi::sim
