// EventTrace: records every query lifecycle event from an Rdbms for
// post-hoc analysis and CSV export — the experiment-side complement of
// the Rdbms event-listener hook.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "sched/rdbms.h"

namespace mqpi::sim {

class EventTrace {
 public:
  /// Subscribes to `db`; the trace must outlive the Rdbms's stepping.
  explicit EventTrace(sched::Rdbms* db);

  const std::vector<sched::QueryEvent>& events() const { return events_; }

  /// Events of one kind, in order.
  std::vector<sched::QueryEvent> Filter(sched::QueryEventKind kind) const;

  /// Events of one query, in order.
  std::vector<sched::QueryEvent> ForQuery(QueryId id) const;

  /// Wall-clock span a query spent in the admission queue (submit ->
  /// start); kUnknown if it never started.
  SimTime QueueingDelayOf(QueryId id) const;

  /// CSV: time,kind,query,state,completed,remaining.
  void PrintCsv(std::ostream& os) const;

  /// PrintCsv into a file; error when the file cannot be written.
  Status WriteFile(const std::string& path) const;

  void Clear() { events_.clear(); }

 private:
  std::vector<sched::QueryEvent> events_;
};

}  // namespace mqpi::sim
