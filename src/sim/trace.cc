#include "sim/trace.h"

#include <fstream>
#include <ostream>

namespace mqpi::sim {

EventTrace::EventTrace(sched::Rdbms* db) {
  db->AddEventListener(
      [this](const sched::QueryEvent& event) { events_.push_back(event); });
}

std::vector<sched::QueryEvent> EventTrace::Filter(
    sched::QueryEventKind kind) const {
  std::vector<sched::QueryEvent> out;
  for (const auto& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

std::vector<sched::QueryEvent> EventTrace::ForQuery(QueryId id) const {
  std::vector<sched::QueryEvent> out;
  for (const auto& event : events_) {
    if (event.info.id == id) out.push_back(event);
  }
  return out;
}

SimTime EventTrace::QueueingDelayOf(QueryId id) const {
  SimTime submitted = kUnknown;
  for (const auto& event : events_) {
    if (event.info.id != id) continue;
    if (event.kind == sched::QueryEventKind::kSubmitted) {
      submitted = event.time;
    } else if (event.kind == sched::QueryEventKind::kStarted &&
               submitted != kUnknown) {
      return event.time - submitted;
    }
  }
  return kUnknown;
}

void EventTrace::PrintCsv(std::ostream& os) const {
  os << "time,kind,query,state,completed,remaining\n";
  for (const auto& event : events_) {
    os << event.time << "," << sched::QueryEventKindName(event.kind) << ","
       << event.info.id << "," << sched::QueryStateName(event.info.state)
       << "," << event.info.completed_work << ","
       << event.info.estimated_remaining_cost << "\n";
  }
}

Status EventTrace::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for write");
  }
  PrintCsv(file);
  file.flush();
  if (!file) return Status::InvalidArgument("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace mqpi::sim
