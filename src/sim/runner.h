// SimulationRunner: drives one Rdbms scenario — submits scheduled
// arrivals on time, steps the clock quantum by quantum, feeds an
// optional PiManager after every quantum, and records when each query
// finishes. Ground-truth remaining times for accuracy experiments come
// from these recorded finish times.
#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "engine/planner.h"
#include "pi/pi_manager.h"
#include "sched/rdbms.h"
#include "workload/zipf_workload.h"

namespace mqpi::sim {

struct PendingArrival {
  SimTime time = 0.0;
  engine::QuerySpec spec;
  Priority priority = Priority::kNormal;
};

class SimulationRunner {
 public:
  /// `db` required; `pis` optional (may be nullptr). Both must outlive
  /// the runner.
  SimulationRunner(sched::Rdbms* db, pi::PiManager* pis = nullptr);

  /// Registers a future arrival; must not be in the past.
  void ScheduleArrival(SimTime time, engine::QuerySpec spec,
                       Priority priority = Priority::kNormal);

  /// Submits a query right now (bypassing the schedule).
  Result<QueryId> SubmitNow(const engine::QuerySpec& spec,
                            Priority priority = Priority::kNormal);

  /// Steps for `dt` simulated seconds (quantum granularity), submitting
  /// due arrivals and feeding the PiManager.
  void StepFor(SimTime dt);

  /// Steps until every query in `watch` reaches a terminal state or
  /// `deadline` passes. Returns the final simulated time.
  SimTime RunUntilFinished(const std::vector<QueryId>& watch,
                           SimTime deadline = kInfiniteTime);

  /// Steps until the whole system is idle (no running or queued work
  /// and no pending scheduled arrivals), or `deadline`.
  SimTime RunUntilIdle(SimTime deadline = kInfiniteTime);

  /// Finish (or abort) time of a query, kUnknown if still live.
  SimTime FinishTimeOf(QueryId id) const;

  /// All ids submitted through this runner, in submission order.
  const std::vector<QueryId>& submitted() const { return submitted_; }

  sched::Rdbms* db() { return db_; }

 private:
  void SubmitDueArrivals();
  bool AllTerminal(const std::vector<QueryId>& ids) const;

  sched::Rdbms* db_;
  pi::PiManager* pis_;
  std::vector<PendingArrival> schedule_;  // kept sorted by time
  std::size_t next_arrival_ = 0;
  std::vector<QueryId> submitted_;
};

}  // namespace mqpi::sim
