#include "net/http_export.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "net/fanout.h"
#include "obs/profiler.h"
#include "service/pi_service.h"
#include "service/sharded_service.h"

namespace mqpi::net {
namespace {

constexpr std::size_t kReadChunk = 2048;

std::string StatusLine(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK\r\n";
    case 400: return "HTTP/1.1 400 Bad Request\r\n";
    case 404: return "HTTP/1.1 404 Not Found\r\n";
    case 405: return "HTTP/1.1 405 Method Not Allowed\r\n";
    case 503: return "HTTP/1.1 503 Service Unavailable\r\n";
  }
  return "HTTP/1.1 500 Internal Server Error\r\n";
}

std::string MakeResponse(int code, std::string_view content_type,
                         const std::string& body) {
  std::string out = StatusLine(code);
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(service::PiService* service,
                           NetMetrics* net_metrics, Options options)
    : service_(service),
      coordinator_(nullptr),
      net_metrics_(net_metrics),
      options_(std::move(options)) {}

HttpExporter::HttpExporter(service::ShardedPiService* coordinator,
                           NetMetrics* net_metrics, Options options)
    : service_(coordinator->shard_service(0)),
      coordinator_(coordinator),
      net_metrics_(net_metrics),
      options_(std::move(options)) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start(int epoll_fd) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("http exporter already started");
  }
  epoll_fd_ = epoll_fd;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Internal("http socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad http listen address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("http bind/listen failed: ") +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  return Status::OK();
}

void HttpExporter::Stop() {
  for (auto& [fd, scrape] : scrapes_) {
    if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
  }
  scrapes_.clear();
  if (listen_fd_ >= 0) {
    if (epoll_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  epoll_fd_ = -1;
}

bool HttpExporter::Owns(int fd) const {
  return fd == listen_fd_ || scrapes_.count(fd) > 0;
}

void HttpExporter::OnEvent(int fd, std::uint32_t events) {
  if (fd == listen_fd_) {
    AcceptPending();
    return;
  }
  auto it = scrapes_.find(fd);
  if (it == scrapes_.end()) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseScrape(fd);
    return;
  }
  if ((events & EPOLLIN) != 0 && !it->second.responding) {
    HandleReadable(fd, &it->second);
    it = scrapes_.find(fd);  // HandleReadable may close on error
    if (it == scrapes_.end()) return;
  }
  if ((events & EPOLLOUT) != 0 && it->second.responding) {
    FlushScrape(fd, &it->second);
  }
}

void HttpExporter::AcceptPending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: nothing to do
    }
    if (scrapes_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (rc == 0) {
      const int pending =
          inject_epoll_add_failures_.load(std::memory_order_relaxed);
      if (pending > 0) {
        inject_epoll_add_failures_.store(pending - 1,
                                         std::memory_order_relaxed);
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        rc = -1;
      }
    }
    if (rc != 0) {
      // An fd that never made it onto the epoll can never become
      // readable: it would sit in scrapes_ forever, permanently
      // counting toward max_connections until the cap starves
      // /metrics//healthz. Refuse the connection instead of tracking
      // an unpollable socket. Count before close so a peer observing
      // the resulting EOF sees the error already tallied.
      ++requests_error_;
      ::close(fd);
      continue;
    }
    scrapes_.emplace(fd, Scrape{});
  }
}

void HttpExporter::HandleReadable(int fd, Scrape* scrape) {
  for (;;) {
    char buf[kReadChunk];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      scrape->in.append(buf, static_cast<std::size_t>(n));
      if (scrape->in.size() > options_.max_request_bytes) {
        scrape->out = MakeResponse(400, "text/plain", "request too large\n");
        ++requests_error_;
        scrape->responding = true;
        FlushScrape(fd, scrape);
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseScrape(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseScrape(fd);
    return;
  }

  // One request per connection: wait for the header terminator, then
  // parse only the request line.
  if (scrape->in.find("\r\n\r\n") == std::string::npos &&
      scrape->in.find("\n\n") == std::string::npos) {
    return;  // headers still incomplete
  }
  const std::size_t line_end = scrape->in.find_first_of("\r\n");
  const std::string line = scrape->in.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  const std::size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    scrape->out = MakeResponse(400, "text/plain", "malformed request line\n");
    ++requests_error_;
  } else {
    const std::string method = line.substr(0, method_end);
    std::string path = line.substr(method_end + 1, path_end - method_end - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    scrape->out = RespondTo(method, path);
  }
  scrape->responding = true;
  FlushScrape(fd, scrape);
}

std::string HttpExporter::RespondTo(const std::string& method,
                                    const std::string& path) {
  if (method != "GET") {
    ++requests_error_;
    return MakeResponse(405, "text/plain", "only GET is served here\n");
  }
  if (path == "/metrics") {
    ++requests_ok_;
    return MakeResponse(200, "text/plain; version=0.0.4", MetricsBody());
  }
  if (path == "/healthz") {
    bool healthy = true;
    const std::string body = HealthBody(&healthy);
    ++requests_ok_;
    return MakeResponse(healthy ? 200 : 503, "text/plain", body);
  }
  if (path == "/statusz") {
    ++requests_ok_;
    return MakeResponse(200, "text/plain", StatusBody());
  }
  ++requests_error_;
  return MakeResponse(404, "text/plain",
                      "try /metrics, /healthz, or /statusz\n");
}

std::string HttpExporter::MetricsBody() const {
  if (coordinator_ == nullptr) {
    return service_->metrics()->PrometheusDump();
  }
  // Coordinator series first (coord.* plus the server's net.*), then
  // every shard's registry with a shard="i" label distinguishing the
  // otherwise-identical service.* names.
  std::string body = coordinator_->metrics()->PrometheusDump();
  for (int i = 0; i < coordinator_->num_shards(); ++i) {
    body += coordinator_->shard_service(i)->metrics()->PrometheusDump(
        {{"shard", std::to_string(i)}});
  }
  return body;
}

std::string HttpExporter::HealthBody(bool* healthy) const {
  if (coordinator_ != nullptr) {
    const service::ShardedPiService::GlobalLiveness fleet =
        coordinator_->CheckLiveness();
    *healthy = !fleet.any_stalled;
    std::string body = *healthy ? "ok\n" : "stalled\n";
    body += "shards " + std::to_string(coordinator_->num_shards()) + "\n";
    body += "busy_shards " + std::to_string(fleet.busy_shards) + "\n";
    for (std::size_t i = 0; i < fleet.shards.size(); ++i) {
      const service::PiService::Liveness& live = fleet.shards[i];
      body += "shard " + std::to_string(i) + " " +
              (live.stalled() ? "stalled" : "ok") + " uptime_quanta " +
              std::to_string(live.uptime_quanta) + " age_quanta " +
              std::to_string(live.age_quanta) + " watchdog_restarts " +
              std::to_string(coordinator_->shard_service(static_cast<int>(i))
                                 ->metrics()
                                 ->counter("service.watchdog_restarts")
                                 ->value()) +
              "\n";
    }
    if (net_metrics_ != nullptr) {
      body += "slow_consumers_shed " +
              std::to_string(net_metrics_->slow_consumers_shed->value()) +
              "\n";
    }
    return body;
  }
  const service::PiService::Liveness live = service_->CheckLiveness();
  *healthy = !live.stalled();
  std::string body = *healthy ? "ok\n" : "stalled\n";
  body += "busy " + std::to_string(live.busy ? 1 : 0) + "\n";
  body += "uptime_quanta " + std::to_string(live.uptime_quanta) + "\n";
  body += "since_publish_s " + std::to_string(live.since_publish_s) + "\n";
  body += "age_quanta " + std::to_string(live.age_quanta) + "\n";
  body +=
      "stall_threshold_s " + std::to_string(live.stall_threshold_s) + "\n";
  body += "watchdog_restarts " +
          std::to_string(
              service_->metrics()->counter("service.watchdog_restarts")
                  ->value()) +
          "\n";
  if (net_metrics_ != nullptr) {
    body += "slow_consumers_shed " +
            std::to_string(net_metrics_->slow_consumers_shed->value()) + "\n";
  }
  return body;
}

std::string HttpExporter::StatusBody() const {
  bool healthy = true;
  std::string body = "== health ==\n";
  body += HealthBody(&healthy);
  if (net_metrics_ != nullptr) {
    body += "connections " +
            std::to_string(net_metrics_->connection_count.load(
                std::memory_order_relaxed)) +
            "\n";
    body += "subscriptions " +
            std::to_string(net_metrics_->subscription_count.load(
                std::memory_order_relaxed)) +
            "\n";
    body += "http_requests_ok " + std::to_string(requests_ok()) + "\n";
    body += "http_requests_error " + std::to_string(requests_error()) + "\n";
  }
  // The profiler is process-wide (obs::GlobalProfiler is a singleton):
  // one table covers every shard's ticker, keyed by site name.
  body += "\n== profiler ==\n";
  body += obs::GlobalProfiler()->Summary();
  if (coordinator_ != nullptr) {
    for (int i = 0; i < coordinator_->num_shards(); ++i) {
      body += "\n== flight recorder (shard " + std::to_string(i) + ") ==\n";
      body += coordinator_->shard_service(i)->flight_recorder()->Summary();
    }
  } else {
    body += "\n== flight recorder ==\n";
    body += service_->flight_recorder()->Summary();
  }
  return body;
}

void HttpExporter::FlushScrape(int fd, Scrape* scrape) {
  while (scrape->sent < scrape->out.size()) {
    const ssize_t n =
        ::send(fd, scrape->out.data() + scrape->sent,
               scrape->out.size() - scrape->sent, MSG_NOSIGNAL);
    if (n >= 0) {
      scrape->sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      epoll_event ev{};
      ev.events = EPOLLOUT;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
      return;  // finish on the next EPOLLOUT round
    }
    if (errno == EINTR) continue;
    break;  // fatal write error: just close
  }
  CloseScrape(fd);
}

void HttpExporter::CloseScrape(int fd) {
  if (scrapes_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
}

}  // namespace mqpi::net
