// Connection: one accepted TCP socket's state, owned entirely by the
// server's epoll loop thread (no internal locking — the loop is the
// only toucher).
//
// Read side: a growing buffer fed by nonblocking reads; complete
// frames are peeled off with wire::TryDecodeFrame and handed to the
// server's dispatcher. A stream-level decode error (bad version,
// oversized length, garbage) earns a final ERROR frame and a close —
// semantic errors inside well-formed frames are answered per-request
// and the connection lives on.
//
// Write side: a bounded queue of encoded frames with a byte budget and
// a partial-write cursor (a frame can take several EPOLLOUT rounds to
// drain — kNetPartialWrite exercises exactly that). Overflow is the
// slow-consumer shedding path: the queue is dropped, one
// kResourceExhausted ERROR frame is queued as the goodbye, and the
// connection closes once it drains (or immediately if even that can't
// be written).
//
// Subscription state: a subscribed connection carries its own
// DeltaEncoder; the epoll loop encodes per-connection deltas on each
// fan-out wakeup (all per-subscriber work stays on the loop thread,
// never the ticker).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/fanout.h"
#include "net/wire.h"
#include "service/session.h"

namespace mqpi::net {

class Connection {
 public:
  struct Options {
    std::size_t max_frame_bytes = std::size_t{1} << 20;
    std::size_t write_queue_max_frames = 256;
    std::size_t write_queue_max_bytes = std::size_t{4} << 20;
  };

  /// Takes ownership of `fd` (closed on destruction).
  Connection(int fd, std::uint64_t id, Options options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  std::uint64_t id() const { return id_; }

  /// Drains the socket and peels complete frames into `*frames`.
  /// Returns false when the connection should close (EOF, fatal read
  /// error, or an unrecoverable stream decode error — in the latter
  /// case a final ERROR frame has been queued and `closing()` is set
  /// so the loop flushes it first).
  bool ReadFrames(std::vector<Frame>* frames);

  /// Queues an encoded frame. Returns false when this call overflowed
  /// the bounded queue and shed the connection (goodbye ERROR frame
  /// queued, closing() set).
  bool QueueFrame(std::string bytes);

  /// Flushes as much of the write queue as the socket accepts.
  /// `max_write_bytes` > 0 caps this round's total written bytes (the
  /// kNetPartialWrite lever). Returns false on a fatal write error.
  bool FlushWrites(std::size_t max_write_bytes = 0);

  bool wants_write() const { return !write_queue_.empty(); }
  /// Close once the write queue drains (stream error / shed goodbye).
  bool closing() const { return closing_; }
  void set_closing() { closing_ = true; }
  bool was_shed() const { return shed_; }

  // Per-connection protocol state, managed by the server.
  std::unique_ptr<service::Session> session;
  /// Sharded servers: which shard this connection's session routed to
  /// (global-id translation for replies). 0 on unsharded servers.
  int session_shard = 0;
  bool subscribed = false;
  /// Stream scope: -1 = the merged/global stream, >= 0 = that shard's
  /// own publication (see SubscribeRequest::shard).
  int subscribe_shard = -1;
  DeltaEncoder delta;
  /// Chaos (kNetSlowConsumer): skip this many flush opportunities so
  /// the bounded write queue backs up and sheds.
  int stall_flushes = 0;
  /// Sequence of the last snapshot pushed (coalescing cursor: spurious
  /// fan-out wakeups never re-send an already-delivered sequence).
  std::uint64_t pushed_sequence = 0;

  /// Lifetime transfer stats, maintained here (frames/bytes/high-water
  /// by the queue and flush paths) and by the server (full vs delta
  /// push split). Loop-thread-owned like everything else; the STATS
  /// handler snapshots them into the reply.
  struct TransferStats {
    std::uint64_t frames_sent = 0;  // frames fully drained to the socket
    std::uint64_t bytes_sent = 0;
    std::uint64_t full_frames = 0;   // SNAPSHOT_FULL pushes
    std::uint64_t delta_frames = 0;  // SNAPSHOT_DELTA pushes
    std::uint64_t queue_hw_frames = 0;  // write-queue high-water marks
    std::uint64_t queue_hw_bytes = 0;
  };
  TransferStats stats;

 private:
  const int fd_;
  const std::uint64_t id_;
  const Options options_;

  std::string read_buf_;
  std::size_t read_pos_ = 0;  // consumed prefix of read_buf_

  std::deque<std::string> write_queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t write_offset_ = 0;  // partial-write cursor, front frame
  bool closing_ = false;
  bool shed_ = false;
};

}  // namespace mqpi::net
