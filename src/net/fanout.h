// Snapshot fan-out: one published ProgressSnapshot reaching any number
// of subscribers with O(1) work on the publishing (ticker) thread.
//
// The pieces, bottom-up:
//
//   SnapshotFanout — the publication hub. `Publish(snapshot)` swaps a
//   shared_ptr (snapshots are already immutable and ref-counted — the
//   service's PR 1 invariant), bumps an epoch, stamps the sequence's
//   wall-clock time into a lock-free ring (latency measurement), and
//   signals the registered *wakers*. A waker is one per event loop /
//   worker pool — never one per subscriber — so the publish path costs
//   1 pointer swap + #wakers signals regardless of how many clients
//   are subscribed. Subscriber churn never touches the publish path at
//   all: subscriptions live in the pools and epoll loops downstream.
//   `publish_ops()` counts the exact work per publish so the perfsmoke
//   gate can assert O(1)-in-subscribers by measurement.
//
//   DeltaEncoder — per-subscriber differ. Remembers the last snapshot
//   it encoded for its subscriber and emits either a SNAPSHOT_FULL
//   frame (first contact) or a SNAPSHOT_DELTA containing only rows
//   that changed (state/priority/weight/degraded/queue position, or
//   any estimate field, compared bitwise). Snapshots are append-only
//   by query id and sorted, so the diff is one linear merge-walk.
//   Coalescing falls out naturally: encoding against "latest" after
//   missing k intermediate snapshots produces one delta with the net
//   change.
//
//   Subscription — one in-process subscriber endpoint: a DeltaEncoder
//   plus a bounded frame queue (frames × bytes caps). The producer
//   side (a SubscriberPool worker) encodes and enqueues; the consumer
//   side pops encoded wire frames. Overflow = slow consumer: the
//   queue is cleared, a Status-coded ERROR frame (kResourceExhausted)
//   is left as the final message, and the subscription is shed —
//   exactly the PR 4 bounded-queue shedding discipline at the network
//   edge.
//
//   SubscriberPool — worker threads fanning published snapshots out to
//   sharded Subscription sets. Registers ONE waker with the fanout;
//   each worker wakes on publish, reads `Latest()` once, and walks its
//   shards encoding per-subscriber deltas. All per-subscriber work
//   happens here, off the ticker thread.
//
// TCP connections use the same SnapshotFanout + DeltaEncoder but skip
// Subscription/SubscriberPool: their per-connection writer state lives
// in the epoll loop (see net/conn.h / net/server.h).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.h"
#include "service/snapshot.h"

namespace mqpi::fault {
class FaultInjector;
}  // namespace mqpi::fault
namespace mqpi::obs {
class Tracer;
}  // namespace mqpi::obs

namespace mqpi::net {

class SnapshotFanout;

/// The net layer's instruments, resolved once against the service's
/// MetricsRegistry (all names pass the `lint` label check). Shared by
/// the TCP server, the subscriber pools, and the connections.
struct NetMetrics {
  service::Counter* frames_sent = nullptr;
  service::Counter* bytes_sent = nullptr;
  service::Counter* frames_received = nullptr;
  service::Counter* bytes_received = nullptr;
  service::Counter* delta_frames = nullptr;
  service::Counter* full_frames = nullptr;
  service::Counter* delta_rows_sent = nullptr;
  service::Counter* delta_rows_skipped = nullptr;
  service::Counter* slow_consumers_shed = nullptr;
  service::Counter* requests = nullptr;
  service::Counter* request_errors = nullptr;
  service::Counter* accepts = nullptr;
  service::Counter* accept_failures = nullptr;
  service::Counter* conns_dropped = nullptr;
  service::Counter* publish_wakeups = nullptr;
  service::Gauge* connections = nullptr;
  service::Gauge* subscriptions = nullptr;
  /// Publish -> socket/queue write latency per subscriber delivery,
  /// in nanoseconds (publish stamp from SnapshotFanout::PublishWallNs).
  service::Histogram* publish_to_write_ns = nullptr;

  /// Observes one delivery of `sequence` happening now against its
  /// publish stamp; no-op when the stamp was evicted from the ring.
  void ObservePublishToWrite(const SnapshotFanout& fanout,
                             std::uint64_t sequence);

  /// Live tallies behind the two gauges (gauges are last-write-wins;
  /// these atomics make concurrent add/remove safe).
  std::atomic<std::int64_t> connection_count{0};
  std::atomic<std::int64_t> subscription_count{0};

  explicit NetMetrics(service::MetricsRegistry* registry);

  void AddConnections(std::int64_t delta) {
    connections->Set(static_cast<double>(
        connection_count.fetch_add(delta, std::memory_order_relaxed) +
        delta));
  }
  void AddSubscriptions(std::int64_t delta) {
    subscriptions->Set(static_cast<double>(
        subscription_count.fetch_add(delta, std::memory_order_relaxed) +
        delta));
  }
};

// ---- fan-out hub ------------------------------------------------------------

class SnapshotFanout {
 public:
  /// One signal target per event loop / worker pool. Signal() must be
  /// cheap and non-blocking (eventfd write, cv notify).
  class Waker {
   public:
    virtual ~Waker() = default;
    virtual void Signal() = 0;
  };

  SnapshotFanout();

  /// O(1) in subscribers: pointer swap + epoch bump + one Signal per
  /// registered waker. Safe from any thread; called by the service's
  /// publish hook on the ticker thread.
  void Publish(service::SnapshotPtr snapshot);

  /// Latest published snapshot (may be null before the first publish)
  /// and, optionally, the current epoch.
  service::SnapshotPtr Latest(std::uint64_t* epoch = nullptr) const;

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Wakers are per-loop, not per-subscriber; registration is rare.
  void RegisterWaker(Waker* waker);
  void UnregisterWaker(Waker* waker);

  /// Wall-clock stamp (steady_clock ns) recorded when `sequence` was
  /// published; 0 when the sequence has been evicted from the ring.
  /// Lock-free; used by subscribers to measure publish->read latency.
  std::int64_t PublishWallNs(std::uint64_t sequence) const;

  /// Publishes ever made, and total unit ops spent inside Publish
  /// (1 + wakers signaled per call). publish_ops()/publishes() is the
  /// perfsmoke invariant: constant in the subscriber count.
  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  std::uint64_t publish_ops() const {
    return publish_ops_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStampRing = 4096;

  mutable std::mutex mu_;  // guards latest_ + wakers_, pointer ops only
  service::SnapshotPtr latest_;
  std::vector<Waker*> wakers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> publish_ops_{0};
  // seq -> wall ns, indexed seq % kStampRing; readers validate the seq.
  std::array<std::atomic<std::uint64_t>, kStampRing> stamp_seq_;
  std::array<std::atomic<std::int64_t>, kStampRing> stamp_ns_;
};

// ---- per-subscriber delta encoding ------------------------------------------

class DeltaEncoder {
 public:
  struct Stats {
    std::uint64_t fulls = 0;
    std::uint64_t deltas = 0;
    std::uint64_t rows_sent = 0;
    std::uint64_t rows_skipped = 0;  // unchanged rows elided from deltas
  };

  /// Encodes `next` as a wire frame for this subscriber: SNAPSHOT_FULL
  /// on first contact (or after Reset), SNAPSHOT_DELTA with only the
  /// changed rows afterwards. Returns the encoded frame; `*is_full`
  /// (optional) reports which. Never returns an empty string: an
  /// unchanged-rows publish still yields a header-only delta so the
  /// subscriber's sequence stays fresh.
  std::string Encode(const service::SnapshotPtr& next,
                     bool* is_full = nullptr);

  /// Forget the last-sent state; the next Encode emits a full frame.
  void Reset() { last_.reset(); }

  const Stats& stats() const { return stats_; }

  /// True when any delta-relevant field differs (bitwise on doubles, so
  /// inf/NaN compare sanely and "changed" means changed bits on the
  /// wire).
  static bool RowChanged(const service::QueryProgress& a,
                         const service::QueryProgress& b);

 private:
  service::SnapshotPtr last_;
  Stats stats_;
};

// ---- in-process subscriber endpoint -----------------------------------------

class Subscription {
 public:
  struct Options {
    std::size_t max_queued_frames = 64;
    std::size_t max_queued_bytes = std::size_t{4} << 20;
  };

  explicit Subscription(Options options) : options_(options) {}

  /// Producer side (pool worker): encode `snapshot` and enqueue the
  /// frame. Returns false when this call shed the subscription
  /// (bounded-queue overflow); the queue then holds a single ERROR
  /// frame and the subscription is dead.
  bool Deliver(const service::SnapshotPtr& snapshot, NetMetrics* metrics);

  /// Consumer side: pops the next encoded wire frame; false when the
  /// queue is empty.
  bool TryPop(std::string* frame);

  bool shed() const { return shed_.load(std::memory_order_acquire); }
  /// Marks the subscription dead without an error frame (unsubscribe,
  /// connection drop). Idempotent.
  void Cancel();
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Chaos hook (kNetSlowConsumer): the next `n` TryPop calls return
  /// empty, simulating a consumer that stopped draining; deliveries
  /// keep landing, so the bounded queue sheds the subscription.
  void StallPops(int n);
  /// Queue fully drained (shed subscriptions linger until their final
  /// error frame has been consumed).
  bool Drained() const;

  /// Epoch of the last snapshot delivered (coalescing cursor).
  std::uint64_t delivered_sequence() const {
    return delivered_sequence_.load(std::memory_order_relaxed);
  }

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::deque<std::string> queue_;
  std::size_t queued_bytes_ = 0;
  DeltaEncoder encoder_;  // producer-side only (one pool worker)
  std::atomic<std::uint64_t> delivered_sequence_{0};
  std::atomic<bool> shed_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<int> stalled_pops_{0};
};

// ---- worker pool ------------------------------------------------------------

class SubscriberPool {
 public:
  struct Options {
    int threads = 2;
    Subscription::Options subscription;
    /// Optional chaos harness: kNetSlowConsumer / kNetConnDrop fire in
    /// the sweep loop. Not owned; must outlive the pool.
    fault::FaultInjector* fault = nullptr;
  };

  /// `fanout` and `metrics` must outlive the pool. Registers one waker
  /// with the fanout; Start() spawns the workers. (Two overloads
  /// because a nested aggregate's NSDMIs cannot feed a default
  /// argument inside the enclosing class.)
  SubscriberPool(SnapshotFanout* fanout, NetMetrics* metrics);
  SubscriberPool(SnapshotFanout* fanout, NetMetrics* metrics,
                 Options options);
  ~SubscriberPool();

  SubscriberPool(const SubscriberPool&) = delete;
  SubscriberPool& operator=(const SubscriberPool&) = delete;

  void Start();
  void Stop();

  /// Registers a subscriber; sharded round-robin across workers. The
  /// returned handle is the consumer endpoint; release it with
  /// Unsubscribe (or just Cancel() it — dead subscriptions are swept
  /// out lazily).
  std::shared_ptr<Subscription> Subscribe();
  void Unsubscribe(const std::shared_ptr<Subscription>& subscription);

  std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::vector<std::shared_ptr<Subscription>> subs;
  };

  class PoolWaker : public SnapshotFanout::Waker {
   public:
    explicit PoolWaker(SubscriberPool* pool) : pool_(pool) {}
    void Signal() override;

   private:
    SubscriberPool* pool_;
  };

  void WorkerLoop(int worker_index);
  /// One pass over this worker's shard: deliver the latest snapshot to
  /// every live subscription that has not seen it yet.
  void SweepShard(Shard* shard, const service::SnapshotPtr& snapshot);

  SnapshotFanout* const fanout_;
  NetMetrics* const metrics_;
  obs::Tracer* const tracer_;
  const Options options_;
  PoolWaker waker_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::uint64_t wake_epoch_ = 0;  // guarded by wake_mu_
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> next_shard_{0};

  std::vector<std::unique_ptr<Shard>> shards_;  // one per worker
  std::vector<std::thread> workers_;
};

}  // namespace mqpi::net
