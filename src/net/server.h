// PiServer: the network-facing front end over PiService — a TCP/epoll
// event loop speaking the net/wire.h binary protocol, plus the
// in-process loopback transport the massive-subscriber bench rides.
//
// Threading model:
//   - ONE event-loop thread owns every accepted Connection (sockets,
//     buffers, delta encoders). Requests are decoded, dispatched
//     against the service, and answered on that thread; no per-
//     connection locks exist.
//   - Snapshot pushes: the service's publish hook lands in the
//     SnapshotFanout (O(1) on the ticker thread — a pointer swap plus
//     one eventfd write for the loop and one waker per subscriber
//     pool). The loop thread wakes, reads Latest() once, and encodes
//     a per-connection delta for each subscribed connection.
//   - In-process subscribers (net::LocalClient / the bench) attach to
//     the server's SubscriberPool and never touch the loop thread.
//
// Error discipline: semantic failures (unknown query, shed submit,
// bad request) are answered with Status-coded ERROR frames and the
// connection lives; stream-level corruption (bad version, oversized
// length) gets one final ERROR frame and a close; slow consumers are
// shed per the bounded write-queue policy in net/conn.h.
//
// Fault points (deterministic, see src/fault/fault_injector.h):
// kNetAcceptFail tears down fresh accepts, kNetPartialWrite throttles
// socket writes to `value` bytes, kNetSlowConsumer freezes a random
// subscribed connection's flushes (driving the shed path), and
// kNetConnDrop closes a random live connection outright.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/conn.h"
#include "net/fanout.h"
#include "net/http_export.h"
#include "net/wire.h"
#include "service/pi_service.h"
#include "service/session.h"
#include "service/sharded_service.h"

namespace mqpi::net {

struct PiServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  std::uint16_t port = 0;
  int listen_backlog = 128;
  /// Largest request payload a client may send.
  std::size_t max_frame_bytes = std::size_t{1} << 20;
  /// Per-connection bounded write queue (the shedding bound).
  std::size_t write_queue_max_frames = 256;
  std::size_t write_queue_max_bytes = std::size_t{4} << 20;
  /// Accepts beyond this are refused (closed immediately). 0 = no cap.
  std::size_t max_connections = 4096;
  /// Worker threads for in-process (LocalClient) subscribers.
  int pool_threads = 2;
  /// Queue bounds for in-process subscriptions.
  Subscription::Options subscription;
  /// Optional chaos harness (not owned; must outlive the server).
  fault::FaultInjector* fault = nullptr;
  /// HTTP telemetry listener on the same epoll loop (/metrics,
  /// /healthz, /statusz): -1 disables it, 0 binds an ephemeral port
  /// (read back with http_port()), otherwise the given port.
  int http_port = -1;
  std::string http_host = "127.0.0.1";
};

class PiServer {
 public:
  /// `service` must outlive the server. Metrics land in the service's
  /// registry under `net.*`.
  explicit PiServer(service::PiService* service, PiServerOptions options = {});
  /// Sharded mode: front an N-shard coordinator. Each shard publishes
  /// into its own per-shard fanout (the O(1)-publish invariant holds
  /// per shard); the loop thread assembles the merged global stream
  /// once per wake from the coordinator's cached merge. Connections
  /// subscribe to the global stream or a single shard's
  /// (SubscribeRequest::shard); sessions hash-route by connection
  /// name; query ids on the wire are global ((shard << 48) | local).
  /// `net.*` metrics land in the coordinator's registry.
  explicit PiServer(service::ShardedPiService* coordinator,
                    PiServerOptions options = {});
  /// Stops (see Stop()) if still running.
  ~PiServer();

  PiServer(const PiServer&) = delete;
  PiServer& operator=(const PiServer&) = delete;

  /// Binds + listens, installs the service publish hook, spawns the
  /// event loop and the subscriber pool. Internal on socket errors;
  /// FailedPrecondition if already started.
  Status Start();
  /// Detaches the publish hook, closes every connection, joins the
  /// loop and pool. Idempotent. Must be called (or the destructor
  /// reached) before the PiService dies.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful-drain hook (PiService::DrainHooks::goodbye): asks the
  /// loop thread to send every subscribed connection one final ERROR
  /// frame (kUnavailable, "server draining") and mark it closing, so
  /// it reaps as soon as the goodbye flushes. Blocks until the loop
  /// has done so or `timeout_s` expires. The server keeps running —
  /// call Stop() afterwards. FailedPrecondition when not running.
  Status Drain(double timeout_s = 2.0);

  /// The bound TCP port (valid after Start()).
  std::uint16_t port() const { return bound_port_; }
  /// The HTTP telemetry port (0 when disabled; valid after Start()).
  std::uint16_t http_port() const {
    return http_ != nullptr ? http_->port() : 0;
  }
  HttpExporter* http() { return http_.get(); }

  /// The merged/global stream's fanout (the only stream when
  /// unsharded).
  SnapshotFanout* fanout() { return &fanout_; }
  /// Sharded mode: shard i's own fanout; null when unsharded.
  SnapshotFanout* shard_fanout(int shard) {
    return coordinator_ != nullptr &&
                   shard >= 0 &&
                   shard < static_cast<int>(shard_fanouts_.size())
               ? shard_fanouts_[static_cast<std::size_t>(shard)].get()
               : nullptr;
  }
  SubscriberPool* pool() { return pool_.get(); }
  NetMetrics* metrics() { return metrics_.get(); }
  /// Unsharded: the one service. Sharded: shard 0's service (tracer
  /// and flight-recorder hookups are shard-0-scoped; see the .cc).
  service::PiService* service() { return service_; }
  /// Null when unsharded.
  service::ShardedPiService* coordinator() { return coordinator_; }

  /// The request dispatcher shared by the TCP loop and LocalClient:
  /// executes `request` against `session` and returns the reply body
  /// (a reply struct or ErrorReply). `session_shard` is the shard the
  /// session lives on (0 when unsharded) — sharded dispatch translates
  /// ids between the wire's global space and the shard's local space.
  /// SUBSCRIBE/UNSUBSCRIBE are transport-level and rejected here with
  /// FailedPrecondition — each transport implements them against its
  /// own push machinery.
  FrameBody Dispatch(service::Session* session, const Frame& request,
                     int session_shard = 0);

  /// Server-wide STATS fields (service liveness + net totals). The
  /// per-connection fields stay zero; the TCP loop overlays them.
  StatsReply BuildStats();

  /// Total connections the loop ever accepted (tests).
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  class LoopWaker : public SnapshotFanout::Waker {
   public:
    void Signal() override;
    int event_fd = -1;
  };

  void LoopThread();
  void AcceptPending();
  /// Read + dispatch + reply for one ready connection; false = close.
  bool ServiceConnection(Connection* conn);
  /// Encode and queue the latest snapshot for every subscribed conn.
  void PushSnapshots();
  void FlushConnection(Connection* conn);
  /// QueueFrame + frames/bytes accounting; false when the queue shed.
  bool QueueOnConn(Connection* conn, std::string frame);
  void UpdateEpollInterest(Connection* conn);
  void CloseConnection(std::uint64_t conn_id, bool count_dropped);
  void EvaluateConnFaults();
  /// Loop-thread half of Drain(): goodbye + closing for subscribers.
  void DrainOnLoop();
  /// Sharded only: publish the coordinator's merged view into the
  /// global fanout when any shard published since the last wake (the
  /// coordinator quantum — one merge per loop wake, not per shard
  /// publish).
  void MaybePublishMerged();
  /// Any stream (global or shard) with publishes the loop hasn't
  /// pushed yet?
  bool PushPending() const;
  /// SUBSCRIBE handling for the TCP transport (scope validation +
  /// immediate full frame).
  void HandleSubscribe(Connection* conn, const Frame& frame);

  service::PiService* const service_;
  service::ShardedPiService* const coordinator_;  // null when unsharded
  const PiServerOptions options_;
  fault::FaultInjector* const fault_;
  obs::Tracer* const tracer_;

  std::unique_ptr<NetMetrics> metrics_;
  SnapshotFanout fanout_;
  /// Sharded only: one fanout per shard, index-aligned with the
  /// coordinator's shards. Each shard's publish hook lands here —
  /// pointer swap + waker signal, nothing global.
  std::vector<std::unique_ptr<SnapshotFanout>> shard_fanouts_;
  std::unique_ptr<SubscriberPool> pool_;
  std::unique_ptr<HttpExporter> http_;  // null when http_port < 0
  LoopWaker waker_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: publish wakeups + stop
  std::uint16_t bound_port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::uint64_t> drains_done_{0};
  std::thread loop_;

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<int, std::uint64_t> conn_by_fd_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t pushed_epoch_ = 0;
  std::vector<std::uint64_t> pushed_shard_epochs_;
  /// Last merged snapshot the loop published into fanout_ (pointer
  /// compare against the coordinator's cache).
  service::SnapshotPtr last_merged_;
  std::atomic<std::uint64_t> accepted_{0};
};

}  // namespace mqpi::net
