#include "net/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "fault/fault_injector.h"
#include "service/metrics.h"

namespace mqpi::net {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ResilientClient::ResilientClient(std::string host, std::uint16_t port,
                                 Options options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.seed) {
  if (options_.metrics != nullptr) {
    reconnects_counter_ = options_.metrics->counter("net.client.reconnects");
    resubscribes_counter_ =
        options_.metrics->counter("net.client.resubscribes");
    connect_fails_counter_ =
        options_.metrics->counter("net.client.connect_fails");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

ResilientClient::~ResilientClient() { Stop(); }

void ResilientClient::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

SnapshotView ResilientClient::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mirror_;
}

std::uint64_t ResilientClient::sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mirror_.sequence();
}

bool ResilientClient::WaitForSequence(std::uint64_t min_sequence,
                                      double timeout_s) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [&] {
    return mirror_.sequence() >= min_sequence ||
           stop_.load(std::memory_order_acquire);
  }) && mirror_.sequence() >= min_sequence;
}

void ResilientClient::PublishMirror(const SnapshotView& view) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    mirror_ = view;
  }
  cv_.notify_all();
}

bool ResilientClient::SleepBackoff(double* backoff_s) {
  // Jittered delay, then grow toward the cap for the next round.
  const double jitter =
      rng_.Uniform(-options_.backoff_jitter, options_.backoff_jitter);
  const double delay = std::max(0.0, *backoff_s * (1.0 + jitter));
  *backoff_s = std::min(*backoff_s * 2.0, options_.backoff_max_s);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(delay),
               [&] { return stop_.load(std::memory_order_acquire); });
  return !stop_.load(std::memory_order_acquire);
}

void ResilientClient::WorkerLoop() {
  double backoff_s = options_.backoff_initial_s;
  while (!stop_.load(std::memory_order_acquire)) {
    // Chaos hook: a fired net.client.connect_fail counts as a failed
    // dial without ever touching the socket.
    if (options_.fault != nullptr &&
        options_.fault->ShouldFire(fault::kNetClientConnectFail)) {
      if (connect_fails_counter_ != nullptr) {
        connect_fails_counter_->Increment();
      }
      if (!SleepBackoff(&backoff_s)) break;
      continue;
    }
    auto client = Client::Connect(host_, port_, options_.connect_timeout_s);
    if (!client.ok()) {
      if (connect_fails_counter_ != nullptr) {
        connect_fails_counter_->Increment();
      }
      if (!SleepBackoff(&backoff_s)) break;
      continue;
    }
    ++connects_total_;
    if (connects_total_ > 1) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (reconnects_counter_ != nullptr) reconnects_counter_->Increment();
    }
    backoff_s = options_.backoff_initial_s;
    connected_.store(true, std::memory_order_release);
    ServeConnection(client->get());
    connected_.store(false, std::memory_order_release);
    if (stop_.load(std::memory_order_acquire)) break;
    if (!SleepBackoff(&backoff_s)) break;
  }
  connected_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void ResilientClient::ServeConnection(Client* client) {
  const auto subscribe = [&]() -> bool {
    ++subscribes_total_;
    if (subscribes_total_ > 1) {
      resubscribes_.fetch_add(1, std::memory_order_relaxed);
      if (resubscribes_counter_ != nullptr) resubscribes_counter_->Increment();
    }
    return client->Subscribe(options_.subscribe_shard).ok();
  };
  std::uint64_t published = 0;
  const auto publish = [&] {
    published = client->view().sequence();
    PublishMirror(client->view());
  };
  if (!subscribe()) return;
  // Subscribe()'s round trip may already have applied the greeting
  // SNAPSHOT_FULL to the view.
  if (client->view().sequence() > 0) publish();

  double last_frame = NowSeconds();
  while (!stop_.load(std::memory_order_acquire)) {
    auto pushed = client->PumpOne(
        std::min(0.05, std::max(0.001, options_.ping_interval_s / 4.0)));
    if (!pushed.ok()) {
      if (pushed.status().code() == StatusCode::kFailedPrecondition) {
        // Stream gap: frames were lost between deltas. Drop the stale
        // rows and resubscribe on the same connection; the server
        // answers with a fresh SNAPSHOT_FULL.
        gaps_healed_.fetch_add(1, std::memory_order_relaxed);
        client->mutable_view()->Reset();
        if (!subscribe()) return;
        if (client->view().sequence() > 0) publish();
        last_frame = NowSeconds();
        continue;
      }
      return;  // connection is dead; reconnect
    }
    if (*pushed) {
      publish();
      last_frame = NowSeconds();
      continue;
    }
    // Quiet stream: liveness-ping once the interval elapses. A pong
    // proves the path end to end; a timeout means the connection is
    // dead even though TCP has not said so.
    if (NowSeconds() - last_frame >= options_.ping_interval_s) {
      if (!client->Ping().ok()) return;
      // Call() folds any interleaved pushes into the view.
      if (client->view().sequence() > published) publish();
      last_frame = NowSeconds();
    }
  }
}

}  // namespace mqpi::net
