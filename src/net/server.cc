#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "engine/sql_parser.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/tracer.h"

namespace mqpi::net {
namespace {

constexpr int kEpollBatch = 64;

}  // namespace

void PiServer::LoopWaker::Signal() {
  if (event_fd < 0) return;
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore EAGAIN.
  [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof(one));
}

PiServer::PiServer(service::PiService* service, PiServerOptions options)
    : service_(service),
      coordinator_(nullptr),
      options_(std::move(options)),
      fault_(options_.fault),
      tracer_(service->tracer()),
      metrics_(std::make_unique<NetMetrics>(service->metrics())) {
  SubscriberPool::Options pool_options;
  pool_options.threads = options_.pool_threads;
  pool_options.subscription = options_.subscription;
  pool_options.fault = fault_;
  pool_ = std::make_unique<SubscriberPool>(&fanout_, metrics_.get(),
                                           pool_options);
}

PiServer::PiServer(service::ShardedPiService* coordinator,
                   PiServerOptions options)
    : service_(coordinator->shard_service(0)),
      coordinator_(coordinator),
      options_(std::move(options)),
      fault_(options_.fault),
      // The tracer is process-wide by design (one trace stream per
      // process); reaching it through shard 0 is just the access path.
      tracer_(service_->tracer()),
      // Server-wide net.* metrics belong to the coordinator's
      // registry, not any one shard's.
      metrics_(std::make_unique<NetMetrics>(coordinator->metrics())) {
  shard_fanouts_.reserve(
      static_cast<std::size_t>(coordinator_->num_shards()));
  for (int i = 0; i < coordinator_->num_shards(); ++i) {
    shard_fanouts_.push_back(std::make_unique<SnapshotFanout>());
  }
  pushed_shard_epochs_.assign(shard_fanouts_.size(), 0);
  SubscriberPool::Options pool_options;
  pool_options.threads = options_.pool_threads;
  pool_options.subscription = options_.subscription;
  pool_options.fault = fault_;
  // In-process subscribers ride the merged/global stream.
  pool_ = std::make_unique<SubscriberPool>(&fanout_, metrics_.get(),
                                           pool_options);
}

PiServer::~PiServer() { Stop(); }

Status PiServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind/listen failed: ") +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::Internal("epoll/eventfd setup failed");
  }

  // The telemetry listener rides this same epoll loop: its fds are
  // routed to the exporter in LoopThread via Owns()/OnEvent().
  if (options_.http_port >= 0) {
    HttpExporter::Options http_options;
    http_options.host = options_.http_host;
    http_options.port = static_cast<std::uint16_t>(options_.http_port);
    http_ = coordinator_ != nullptr
                ? std::make_unique<HttpExporter>(coordinator_, metrics_.get(),
                                                 http_options)
                : std::make_unique<HttpExporter>(service_, metrics_.get(),
                                                 http_options);
    const Status started = http_->Start(epoll_fd_);
    if (!started.ok()) {
      http_.reset();
      Stop();
      return started;
    }
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  // Publish path: ticker -> fanout (pointer swap) -> one eventfd write
  // for the TCP loop + one cv notify per pool. O(1) in subscribers.
  waker_.event_fd = wake_fd_;
  fanout_.RegisterWaker(&waker_);
  pool_->Start();
  if (coordinator_ == nullptr) {
    service_->SetPublishHook(
        [this](const service::SnapshotPtr& snapshot) {
          fanout_.Publish(snapshot);
        });
    // Seed the fanout so subscribers joining before the next tick see
    // the current state immediately.
    fanout_.Publish(service_->snapshot());
  } else {
    // Sharded publish path: each shard's ticker lands in its OWN
    // fanout (pointer swap + the shared loop waker — still O(1), and
    // no shard ever waits on another shard's publish or on the merge).
    // The loop thread folds shard publishes into the merged/global
    // fanout_ once per wake in MaybePublishMerged().
    for (int i = 0; i < coordinator_->num_shards(); ++i) {
      SnapshotFanout* shard_fanout = shard_fanouts_[std::size_t(i)].get();
      shard_fanout->RegisterWaker(&waker_);
      coordinator_->shard_service(i)->SetPublishHook(
          [shard_fanout](const service::SnapshotPtr& snapshot) {
            shard_fanout->Publish(snapshot);
          });
      shard_fanout->Publish(coordinator_->shard_service(i)->snapshot());
    }
    last_merged_ = coordinator_->GlobalSnapshot();
    fanout_.Publish(last_merged_);
  }

  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void PiServer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    // Detach from the service(s) first: after this returns no new
    // publishes enter any fanout, so tearing down wakers is safe.
    if (coordinator_ == nullptr) {
      service_->SetPublishHook(nullptr);
    } else {
      for (int i = 0; i < coordinator_->num_shards(); ++i) {
        coordinator_->shard_service(i)->SetPublishHook(nullptr);
      }
    }
    stop_.store(true, std::memory_order_release);
    waker_.Signal();
    if (loop_.joinable()) loop_.join();
    pool_->Stop();
    fanout_.UnregisterWaker(&waker_);
    for (auto& shard_fanout : shard_fanouts_) {
      shard_fanout->UnregisterWaker(&waker_);
    }
    waker_.event_fd = -1;
  }
  // Loop thread is gone; its state is ours to reap.
  for (auto& [id, conn] : conns_) {
    if (conn->session) conn->session->Close();
    metrics_->AddConnections(-1);
    if (conn->subscribed) metrics_->AddSubscriptions(-1);
  }
  conns_.clear();
  conn_by_fd_.clear();
  if (http_ != nullptr) {
    http_->Stop();
    http_.reset();
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
}

// ---- event loop -------------------------------------------------------------

void PiServer::LoopThread() {
  std::vector<epoll_event> events(kEpollBatch);
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (stop_.load(std::memory_order_acquire)) break;
    bool snapshot_wake = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        snapshot_wake = true;
        continue;
      }
      if (http_ != nullptr && http_->Owns(fd)) {
        http_->OnEvent(fd, events[i].events);
        continue;
      }
      auto it = conn_by_fd_.find(fd);
      if (it == conn_by_fd_.end()) continue;
      const std::uint64_t conn_id = it->second;
      Connection* conn = conns_.at(conn_id).get();
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        alive = false;
      } else {
        if ((events[i].events & EPOLLIN) != 0) {
          alive = ServiceConnection(conn);
        }
        if (alive && (events[i].events & EPOLLOUT) != 0) {
          FlushConnection(conn);
          alive = conn->fd() >= 0;
        }
      }
      if (!alive) {
        CloseConnection(conn_id, /*count_dropped=*/false);
      } else if (conn->closing() && !conn->wants_write()) {
        CloseConnection(conn_id, /*count_dropped=*/false);
      } else {
        UpdateEpollInterest(conn);
      }
    }
    if (drain_requested_.exchange(false, std::memory_order_acq_rel)) {
      DrainOnLoop();
    }
    // Coalesced push: however many publishes landed, merge once (the
    // coordinator quantum — sharded only) and encode once per stream
    // against its latest snapshot.
    if (snapshot_wake || PushPending()) {
      MaybePublishMerged();
      PushSnapshots();
    }
    if (fault_ != nullptr && fault_->enabled()) EvaluateConnFaults();
  }
}

void PiServer::AcceptPending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      metrics_->accept_failures->Increment();
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (fault_ != nullptr && fault_->enabled() &&
        fault_->ShouldFire(fault::kNetAcceptFail)) {
      metrics_->accept_failures->Increment();
      ::close(fd);
      continue;
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      metrics_->accept_failures->Increment();
      ::close(fd);
      continue;
    }
    metrics_->accepts->Increment();

    Connection::Options conn_options;
    conn_options.max_frame_bytes = options_.max_frame_bytes;
    conn_options.write_queue_max_frames = options_.write_queue_max_frames;
    conn_options.write_queue_max_bytes = options_.write_queue_max_bytes;
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(fd, id, conn_options);
    if (coordinator_ != nullptr) {
      int shard = 0;
      conn->session = coordinator_->OpenSession(
          "tcp-conn-" + std::to_string(id), &shard);
      conn->session_shard = shard;
    } else {
      conn->session =
          service_->OpenSession("tcp-conn-" + std::to_string(id));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conn_by_fd_[fd] = id;
    conns_[id] = std::move(conn);
    metrics_->AddConnections(1);
  }
}

bool PiServer::ServiceConnection(Connection* conn) {
  std::vector<Frame> frames;
  const bool keep = conn->ReadFrames(&frames);
  for (Frame& frame : frames) {
    metrics_->requests->Increment();
    metrics_->frames_received->Increment();
    metrics_->bytes_received->Increment(kFrameHeaderBytes +
                                        frame.header.payload_len);

    // Transport-level verbs first: they touch connection push state.
    if (frame.header.type == FrameType::kSubscribe) {
      HandleSubscribe(conn, frame);
      continue;
    }
    if (frame.header.type == FrameType::kUnsubscribe) {
      if (conn->subscribed) {
        conn->subscribed = false;
        metrics_->AddSubscriptions(-1);
      }
      QueueOnConn(conn, EncodeFrame(frame.header.request_id,
                                    FrameBody{UnsubscribeReply{}}));
      continue;
    }

    FrameBody reply = Dispatch(conn->session.get(), frame,
                               conn->session_shard);
    if (std::holds_alternative<ErrorReply>(reply)) {
      metrics_->request_errors->Increment();
    }
    if (auto* stats = std::get_if<StatsReply>(&reply)) {
      stats->conn_frames_sent = conn->stats.frames_sent;
      stats->conn_bytes_sent = conn->stats.bytes_sent;
      stats->conn_full_frames = conn->stats.full_frames;
      stats->conn_delta_frames = conn->stats.delta_frames;
      stats->conn_queue_hw_frames = conn->stats.queue_hw_frames;
      stats->conn_queue_hw_bytes = conn->stats.queue_hw_bytes;
    }
    QueueOnConn(conn, EncodeFrame(frame.header.request_id, reply));
  }
  FlushConnection(conn);
  return keep && !(conn->closing() && !conn->wants_write());
}

namespace {

// Request dispatcher body: local classes cannot hold member templates,
// so the visitor lives at namespace scope.
struct DispatchVisitor {
  PiServer* server;
  service::Session* session;
  /// Which shard `session` lives on; 0 on unsharded servers. Sharded
  /// dispatch speaks global ids on the wire ((shard << 48) | local)
  /// and the shard's local ids inward.
  int shard;

    bool sharded() const { return server->coordinator() != nullptr; }
    /// Wire id -> this session's shard-local id. False when the id
    /// names a different shard (the caller answers NotFound: ids are
    /// session-scoped, and a session lives on exactly one shard).
    bool ToLocal(QueryId wire_id, QueryId* local) const {
      if (!sharded()) {
        *local = wire_id;
        return true;
      }
      if (service::ShardOfGlobalId(wire_id) != shard) return false;
      *local = service::LocalIdOf(wire_id);
      return true;
    }
    QueryId ToWire(QueryId local) const {
      return sharded() ? service::GlobalId(shard, local) : local;
    }

    FrameBody operator()(const SubmitRequest& req) {
      engine::QuerySpec spec;
      if (req.is_sql) {
        auto parsed = engine::ParseSql(req.sql);
        if (!parsed.ok()) return ErrorReply::From(parsed.status());
        spec = std::move(parsed).value();
      } else {
        spec = engine::QuerySpec::Synthetic(req.synthetic_cost);
      }
      auto id = session->Submit(spec, req.priority);
      if (!id.ok()) return ErrorReply::From(id.status());
      return SubmitReply{ToWire(id.value())};
    }
    FrameBody operator()(const CancelRequest& req) {
      QueryId local = kInvalidQueryId;
      if (!ToLocal(req.id, &local)) {
        return ErrorReply{StatusCode::kNotFound,
                          "query is not on this session's shard"};
      }
      Status status = session->Abort(local);
      if (!status.ok()) return ErrorReply::From(status);
      return CancelReply{};
    }
    FrameBody operator()(const ProgressRequest& req) {
      QueryId local = kInvalidQueryId;
      if (!ToLocal(req.id, &local)) {
        return ErrorReply{StatusCode::kNotFound,
                          "query is not on this session's shard"};
      }
      auto row = session->Progress(local);
      if (!row.ok()) return ErrorReply::From(row.status());
      const service::SnapshotPtr snapshot = session->snapshot();
      ProgressReply reply;
      reply.sequence = snapshot ? snapshot->sequence : 0;
      reply.sim_time = snapshot ? snapshot->sim_time : 0.0;
      reply.row = std::move(row).value();
      reply.row.id = ToWire(reply.row.id);
      if (sharded() && reply.row.session_id != 0) {
        // Session ids get the same global encoding the merged snapshot
        // uses, so a Progress row matches the stream's rows verbatim.
        reply.row.session_id = service::GlobalId(shard, reply.row.session_id);
      }
      return reply;
    }
    FrameBody operator()(const WhatIfRequest& req) {
      pi::MultiQueryPi::WhatIf scenario;
      scenario.blocked = req.blocked;
      scenario.aborted = req.aborted;
      scenario.reweighted = req.reweighted;
      if (sharded()) {
        // Global-id scenario straight to the coordinator: it validates
        // shard consistency and translates to the target's shard.
        auto eta =
            server->coordinator()->EstimateWhatIf(scenario, req.target);
        if (!eta.ok()) return ErrorReply::From(eta.status());
        return WhatIfReply{eta.value()};
      }
      auto eta = server->service()->EstimateWhatIf(scenario, req.target);
      if (!eta.ok()) return ErrorReply::From(eta.status());
      return WhatIfReply{eta.value()};
    }
    FrameBody operator()(const PingRequest& req) {
      return PongReply{req.nonce};
    }
    FrameBody operator()(const StatsRequest&) {
      // Server-wide fields only; the TCP loop overlays the conn_*
      // fields for socket clients (LocalClient sees them as zero).
      return server->BuildStats();
    }
    FrameBody operator()(const SubscribeRequest&) {
      return ErrorReply{StatusCode::kFailedPrecondition,
                        "SUBSCRIBE is transport-level"};
    }
    FrameBody operator()(const UnsubscribeRequest&) {
      return ErrorReply{StatusCode::kFailedPrecondition,
                        "UNSUBSCRIBE is transport-level"};
    }
    // Reply/push types arriving as requests are client bugs.
    template <typename T>
    FrameBody operator()(const T&) {
      return ErrorReply{StatusCode::kInvalidArgument,
                        "frame type is not a request"};
    }
};

}  // namespace

FrameBody PiServer::Dispatch(service::Session* session, const Frame& request,
                             int session_shard) {
  obs::TraceSpan span(tracer_, "net", "dispatch");
  return std::visit(DispatchVisitor{this, session, session_shard},
                    request.body);
}

StatsReply PiServer::BuildStats() {
  StatsReply stats;
  if (coordinator_ == nullptr) {
    const service::PiService::Liveness live = service_->CheckLiveness();
    stats.uptime_quanta = live.uptime_quanta;
    stats.ticker_age_quanta = live.age_quanta;
    stats.watchdog_restarts =
        service_->metrics()->counter("service.watchdog_restarts")->value();
  } else {
    // Aggregate liveness across shards: uptime/age are the worst case
    // (max), restarts sum, and per-shard detail rides stats.shards.
    for (int i = 0; i < coordinator_->num_shards(); ++i) {
      service::PiService* shard = coordinator_->shard_service(i);
      const service::PiService::Liveness live = shard->CheckLiveness();
      stats.uptime_quanta = std::max(stats.uptime_quanta, live.uptime_quanta);
      stats.ticker_age_quanta =
          std::max(stats.ticker_age_quanta, live.age_quanta);
      stats.watchdog_restarts +=
          shard->metrics()->counter("service.watchdog_restarts")->value();

      ShardStatsRow row;
      row.shard = i;
      row.uptime_quanta = live.uptime_quanta;
      row.ticker_age_quanta = live.age_quanta;
      row.watchdog_restarts =
          shard->metrics()->counter("service.watchdog_restarts")->value();
      const service::SnapshotPtr shard_latest =
          shard_fanouts_[std::size_t(i)]->Latest();
      if (shard_latest != nullptr) {
        row.snapshots_published = shard_latest->sequence;
        row.degraded = shard_latest->degraded;
        row.num_running = shard_latest->num_running;
        row.num_queued = shard_latest->num_queued;
      }
      stats.shards.push_back(row);
    }
  }
  const service::SnapshotPtr latest = fanout_.Latest();
  if (latest != nullptr) {
    stats.snapshots_published = latest->sequence;
    stats.degraded = latest->degraded;
  }
  stats.connections = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, metrics_->connection_count.load(std::memory_order_relaxed)));
  stats.subscriptions = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, metrics_->subscription_count.load(std::memory_order_relaxed)));
  stats.frames_sent = metrics_->frames_sent->value();
  stats.bytes_sent = metrics_->bytes_sent->value();
  stats.consumers_shed = metrics_->slow_consumers_shed->value();
  return stats;
}

void PiServer::MaybePublishMerged() {
  if (coordinator_ == nullptr) return;
  // One merge per loop wake, not per shard publish: GlobalSnapshot()
  // returns the coordinator's cached pointer when no shard published,
  // so the idle case is a handful of pointer compares.
  service::SnapshotPtr merged = coordinator_->GlobalSnapshot();
  if (merged != last_merged_) {
    last_merged_ = merged;
    fanout_.Publish(std::move(merged));
  }
}

bool PiServer::PushPending() const {
  if (fanout_.epoch() != pushed_epoch_) return true;
  for (std::size_t i = 0; i < shard_fanouts_.size(); ++i) {
    if (shard_fanouts_[i]->epoch() != pushed_shard_epochs_[i]) return true;
  }
  return false;
}

void PiServer::HandleSubscribe(Connection* conn, const Frame& frame) {
  const auto* req = std::get_if<SubscribeRequest>(&frame.body);
  int scope = req != nullptr ? req->shard : -1;
  // Unsharded servers have exactly one stream; shard 0 is a synonym
  // for it so single-shard tools work unchanged against either server.
  const int num_shards =
      coordinator_ != nullptr ? coordinator_->num_shards() : 1;
  if (scope >= num_shards) {
    QueueOnConn(conn,
                EncodeFrame(frame.header.request_id,
                            FrameBody{ErrorReply{
                                StatusCode::kInvalidArgument,
                                "subscribe shard out of range"}}));
    return;
  }
  if (scope < 0 || coordinator_ == nullptr) scope = -1;
  if (!conn->subscribed) {
    conn->subscribed = true;
    conn->delta.Reset();
    conn->pushed_sequence = 0;
    metrics_->AddSubscriptions(1);
  } else if (conn->subscribe_shard != scope) {
    // Re-scoping resets the stream: the delta chain restarts from a
    // full frame of the new scope.
    conn->delta.Reset();
    conn->pushed_sequence = 0;
  }
  conn->subscribe_shard = scope;

  SnapshotFanout* source =
      scope >= 0 ? shard_fanouts_[std::size_t(scope)].get() : &fanout_;
  SubscribeReply reply;
  const service::SnapshotPtr latest = source->Latest();
  reply.sequence = latest ? latest->sequence : 0;
  QueueOnConn(conn, EncodeFrame(frame.header.request_id, FrameBody{reply}));
  // Immediate full frame so the subscriber has a base to patch.
  if (latest != nullptr) {
    std::string push = conn->delta.Encode(latest);
    metrics_->full_frames->Increment();
    ++conn->stats.full_frames;
    conn->pushed_sequence = latest->sequence;
    QueueOnConn(conn, std::move(push));
  }
}

void PiServer::PushSnapshots() {
  MQPI_PROF_SITE(prof, "net.push_snapshots");
  std::uint64_t epoch = 0;
  const service::SnapshotPtr global = fanout_.Latest(&epoch);
  pushed_epoch_ = epoch;
  // Mark every shard stream caught up front: the push below reads the
  // same latests, so nothing published before this point is missed.
  std::vector<service::SnapshotPtr> shard_latests(shard_fanouts_.size());
  for (std::size_t i = 0; i < shard_fanouts_.size(); ++i) {
    std::uint64_t shard_epoch = 0;
    shard_latests[i] = shard_fanouts_[i]->Latest(&shard_epoch);
    pushed_shard_epochs_[i] = shard_epoch;
  }
  // Push-gap/shed evidence lands in shard 0's recorder when sharded
  // (service_ is shard 0): the loop is one thread and one recorder
  // keeps its story in one place, rather than duplicating it N ways.
  obs::FlightRecorder* flight = service_->flight_recorder();
  std::vector<std::uint64_t> done;
  for (auto& [id, conn] : conns_) {
    if (!conn->subscribed || conn->closing()) continue;
    const bool shard_scoped =
        conn->subscribe_shard >= 0 &&
        conn->subscribe_shard < static_cast<int>(shard_latests.size());
    SnapshotFanout* source =
        shard_scoped ? shard_fanouts_[std::size_t(conn->subscribe_shard)].get()
                     : &fanout_;
    const service::SnapshotPtr& latest =
        shard_scoped ? shard_latests[std::size_t(conn->subscribe_shard)]
                     : global;
    if (latest == nullptr) continue;
    if (conn->pushed_sequence >= latest->sequence) continue;
    // Publishes the loop slept through surface as sequence gaps: the
    // delta encoder folds them into one patch, but the recorder keeps
    // the evidence that this consumer skipped snapshots.
    if (conn->pushed_sequence != 0) {
      flight->ObserveGap("net", "conn_push", conn->pushed_sequence + 1,
                         latest->sequence);
    }
    bool is_full = false;
    std::string frame = conn->delta.Encode(latest, &is_full);
    conn->pushed_sequence = latest->sequence;
    (is_full ? metrics_->full_frames : metrics_->delta_frames)->Increment();
    ++(is_full ? conn->stats.full_frames : conn->stats.delta_frames);
    if (!QueueOnConn(conn.get(), std::move(frame))) {
      metrics_->slow_consumers_shed->Increment();
      flight->Record(obs::FlightEventKind::kShed, "net", "consumer_shed",
                     static_cast<double>(id), latest->sequence);
      flight->Trigger("consumer_shed");
    }
    metrics_->ObservePublishToWrite(*source, latest->sequence);
    FlushConnection(conn.get());
    if (conn->closing() && !conn->wants_write()) {
      done.push_back(id);
    } else {
      UpdateEpollInterest(conn.get());
    }
  }
  for (std::uint64_t id : done) {
    CloseConnection(id, /*count_dropped=*/false);
  }
}

bool PiServer::QueueOnConn(Connection* conn, std::string frame) {
  metrics_->frames_sent->Increment();
  metrics_->bytes_sent->Increment(frame.size());
  return conn->QueueFrame(std::move(frame));
}

void PiServer::FlushConnection(Connection* conn) {
  MQPI_PROF_SITE(prof, "net.socket_write");
  if (conn->stall_flushes > 0) {
    --conn->stall_flushes;
    return;
  }
  std::size_t cap = 0;
  if (fault_ != nullptr && fault_->enabled()) {
    const auto fire = fault_->Evaluate(fault::kNetPartialWrite);
    if (fire.fired) {
      cap = fire.value >= 1.0 ? static_cast<std::size_t>(fire.value) : 1;
    }
  }
  if (!conn->FlushWrites(cap)) {
    // Fatal write error; reap on the next loop pass via EPOLLERR or
    // directly here by marking closing with an empty queue.
    conn->set_closing();
  }
}

void PiServer::UpdateEpollInterest(Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->wants_write() ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
}

void PiServer::CloseConnection(std::uint64_t conn_id, bool count_dropped) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->was_shed()) {
    // Best-effort goodbye for sheds torn down before draining.
    conn->FlushWrites();
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
  conn_by_fd_.erase(conn->fd());
  if (conn->subscribed) metrics_->AddSubscriptions(-1);
  if (conn->session) conn->session->Close();
  metrics_->AddConnections(-1);
  if (count_dropped) metrics_->conns_dropped->Increment();
  conns_.erase(it);
}

Status PiServer::Drain(double timeout_s) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server not running");
  }
  const std::uint64_t target =
      drains_done_.load(std::memory_order_acquire) + 1;
  drain_requested_.store(true, std::memory_order_release);
  waker_.Signal();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (drains_done_.load(std::memory_order_acquire) < target) {
    if (!running_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("server stopped during drain");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Internal("drain timed out waiting for the event loop");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::OK();
}

void PiServer::DrainOnLoop() {
  ErrorReply goodbye;
  goodbye.code = StatusCode::kUnavailable;
  goodbye.message = "server draining; stream closed";
  const std::string frame = EncodeFrame(0, FrameBody{goodbye});
  std::vector<std::uint64_t> done;
  for (auto& [id, conn] : conns_) {
    if (!conn->subscribed || conn->closing()) continue;
    // Queue the goodbye BEFORE set_closing (a closing connection drops
    // queued frames silently), then let the normal flush/reap path
    // retire the connection once the frame is on the wire.
    QueueOnConn(conn.get(), frame);
    conn->set_closing();
    FlushConnection(conn.get());
    if (!conn->wants_write()) {
      done.push_back(id);
    } else {
      UpdateEpollInterest(conn.get());
    }
  }
  for (std::uint64_t id : done) {
    CloseConnection(id, /*count_dropped=*/false);
  }
  drains_done_.fetch_add(1, std::memory_order_acq_rel);
}

void PiServer::EvaluateConnFaults() {
  if (conns_.empty()) return;
  const auto drop = fault_->Evaluate(fault::kNetConnDrop);
  if (drop.fired) {
    const std::uint64_t victim_index =
        fault_->PickIndex(fault::kNetConnDrop, conns_.size());
    auto it = conns_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(victim_index));
    CloseConnection(it->first, /*count_dropped=*/true);
  }
  if (conns_.empty()) return;
  const auto stall = fault_->Evaluate(fault::kNetSlowConsumer);
  if (stall.fired) {
    const std::uint64_t victim_index =
        fault_->PickIndex(fault::kNetSlowConsumer, conns_.size());
    auto it = conns_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(victim_index));
    // Freeze enough flushes that the write queue overflows and sheds.
    it->second->stall_flushes =
        static_cast<int>(options_.write_queue_max_frames) + 8;
  }
}

}  // namespace mqpi::net
