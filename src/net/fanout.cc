#include "net/fanout.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "fault/fault_injector.h"
#include "net/wire.h"
#include "obs/profiler.h"
#include "obs/tracer.h"

namespace mqpi::net {

namespace {

std::int64_t NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

bool BitsDiffer(double a, double b) {
  std::uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua != ub;
}

}  // namespace

NetMetrics::NetMetrics(service::MetricsRegistry* registry) {
  frames_sent = registry->counter("net.frames_sent");
  bytes_sent = registry->counter("net.bytes_sent");
  frames_received = registry->counter("net.frames_received");
  bytes_received = registry->counter("net.bytes_received");
  delta_frames = registry->counter("net.delta_frames");
  full_frames = registry->counter("net.full_frames");
  delta_rows_sent = registry->counter("net.delta_rows_sent");
  delta_rows_skipped = registry->counter("net.delta_rows_skipped");
  slow_consumers_shed = registry->counter("net.slow_consumers_shed");
  requests = registry->counter("net.requests");
  request_errors = registry->counter("net.request_errors");
  accepts = registry->counter("net.accepts");
  accept_failures = registry->counter("net.accept_failures");
  conns_dropped = registry->counter("net.conns_dropped");
  publish_wakeups = registry->counter("net.publish_wakeups");
  connections = registry->gauge("net.connections");
  subscriptions = registry->gauge("net.subscriptions");
  // Latency lives in nanoseconds (1us .. 1s); the default ms-oriented
  // bounds would collapse every fast delivery into the first bucket.
  publish_to_write_ns =
      registry->histogram("net.publish_to_write_ns", {},
                          {1e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7,
                           1e8, 1e9});
}

void NetMetrics::ObservePublishToWrite(const SnapshotFanout& fanout,
                                       std::uint64_t sequence) {
  if (sequence == 0) return;
  const std::int64_t stamp = fanout.PublishWallNs(sequence);
  if (stamp == 0) return;
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  if (now >= stamp) {
    publish_to_write_ns->Observe(static_cast<double>(now - stamp));
  }
}

// ---- SnapshotFanout ---------------------------------------------------------

SnapshotFanout::SnapshotFanout() {
  for (auto& seq : stamp_seq_) seq.store(0, std::memory_order_relaxed);
  for (auto& ns : stamp_ns_) ns.store(0, std::memory_order_relaxed);
}

void SnapshotFanout::Publish(service::SnapshotPtr snapshot) {
  if (snapshot == nullptr) return;
  const std::uint64_t sequence = snapshot->sequence;
  // Stamp before the epoch moves so a subscriber that reads the frame
  // immediately still finds the stamp.
  const std::size_t slot = sequence % kStampRing;
  stamp_ns_[slot].store(NowNs(), std::memory_order_relaxed);
  stamp_seq_[slot].store(sequence, std::memory_order_release);

  std::uint64_t ops = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = std::move(snapshot);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    // Signal under mu_: UnregisterWaker serializes on the same mutex,
    // so a waker is never signaled after unregistration returns. The
    // wakers must not take locks that are held while calling into the
    // fanout (they don't: eventfd write / leaf cv).
    for (Waker* waker : wakers_) {
      waker->Signal();
      ++ops;
    }
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  publish_ops_.fetch_add(ops, std::memory_order_relaxed);
}

service::SnapshotPtr SnapshotFanout::Latest(std::uint64_t* epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != nullptr) *epoch = epoch_.load(std::memory_order_acquire);
  return latest_;
}

void SnapshotFanout::RegisterWaker(Waker* waker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(wakers_.begin(), wakers_.end(), waker) == wakers_.end()) {
    wakers_.push_back(waker);
  }
}

void SnapshotFanout::UnregisterWaker(Waker* waker) {
  std::lock_guard<std::mutex> lock(mu_);
  wakers_.erase(std::remove(wakers_.begin(), wakers_.end(), waker),
                wakers_.end());
}

std::int64_t SnapshotFanout::PublishWallNs(std::uint64_t sequence) const {
  const std::size_t slot = sequence % kStampRing;
  if (stamp_seq_[slot].load(std::memory_order_acquire) != sequence) return 0;
  const std::int64_t ns = stamp_ns_[slot].load(std::memory_order_relaxed);
  // Re-check: a concurrent publish may have reused the slot.
  if (stamp_seq_[slot].load(std::memory_order_acquire) != sequence) return 0;
  return ns;
}

// ---- DeltaEncoder -----------------------------------------------------------

bool DeltaEncoder::RowChanged(const service::QueryProgress& a,
                              const service::QueryProgress& b) {
  return a.state != b.state || a.priority != b.priority ||
         a.degraded != b.degraded || a.queue_position != b.queue_position ||
         BitsDiffer(a.weight, b.weight) ||
         BitsDiffer(a.fraction_done, b.fraction_done) ||
         BitsDiffer(a.speed, b.speed) ||
         BitsDiffer(a.eta_single, b.eta_single) ||
         BitsDiffer(a.eta_multi, b.eta_multi) ||
         BitsDiffer(a.completed_work, b.completed_work) ||
         BitsDiffer(a.remaining_cost, b.remaining_cost) ||
         BitsDiffer(a.start_time, b.start_time) ||
         BitsDiffer(a.finish_time, b.finish_time);
}

std::string DeltaEncoder::Encode(const service::SnapshotPtr& next,
                                 bool* is_full) {
  MQPI_PROF_SITE(prof, "net.delta_encode");
  SnapshotFrame frame;
  frame.sequence = next->sequence;
  frame.sim_time = next->sim_time;
  frame.num_running = next->num_running;
  frame.num_queued = next->num_queued;
  frame.num_blocked = next->num_blocked;
  frame.measured_rate = next->measured_rate;
  frame.quiescent_eta = next->quiescent_eta;
  frame.age_quanta = next->age_quanta;
  frame.degraded = next->degraded;
  frame.total_rows = static_cast<std::uint32_t>(next->queries.size());
  // Shard loads ride every frame whole: N entries is noise next to the
  // row set, and deltas stay self-contained.
  frame.shard_loads = next->shard_loads;

  bool full = last_ == nullptr;
  if (!full) {
    // Snapshots are append-only by id and sorted: the previous rows
    // must be a (changed-in-place) prefix-by-id subset of the next.
    // Merge-walk both; any id that vanished means the stream restarted
    // — fall back to a full frame.
    const auto& old_rows = last_->queries;
    const auto& new_rows = next->queries;
    std::size_t oi = 0;
    for (const auto& row : new_rows) {
      if (oi < old_rows.size() && old_rows[oi].id == row.id) {
        if (RowChanged(old_rows[oi], row)) {
          frame.rows.push_back(row);
        } else {
          ++stats_.rows_skipped;
        }
        ++oi;
      } else if (oi < old_rows.size() && old_rows[oi].id < row.id) {
        full = true;  // a previously-known id disappeared
        break;
      } else {
        frame.rows.push_back(row);  // new query
      }
    }
    if (oi < old_rows.size() && !full) full = true;
    frame.base_sequence = last_->sequence;
  }
  if (full) {
    frame.rows = next->queries;
    frame.base_sequence = 0;
    ++stats_.fulls;
  } else {
    ++stats_.deltas;
  }
  stats_.rows_sent += frame.rows.size();
  last_ = next;
  if (is_full != nullptr) *is_full = full;
  return EncodeFrame(/*request_id=*/0, FrameBody(std::move(frame)), full);
}

// ---- Subscription -----------------------------------------------------------

bool Subscription::Deliver(const service::SnapshotPtr& snapshot,
                           NetMetrics* metrics) {
  if (shed() || cancelled()) return false;
  bool full = false;
  // The encoder is only ever touched by this subscription's one pool
  // worker; no lock needed around it.
  std::string frame = encoder_.Encode(snapshot, &full);
  const std::size_t bytes = frame.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() + 1 > options_.max_queued_frames ||
        queued_bytes_ + bytes > options_.max_queued_bytes) {
      // Slow consumer: shed rather than buffer without bound. The
      // queue is replaced by one final Status-coded error frame.
      queue_.clear();
      queued_bytes_ = 0;
      ErrorReply error;
      error.code = StatusCode::kResourceExhausted;
      error.message = "subscription shed: write queue overflow "
                      "(slow consumer)";
      queue_.push_back(EncodeFrame(0, FrameBody(std::move(error))));
      shed_.store(true, std::memory_order_release);
      if (metrics != nullptr) metrics->slow_consumers_shed->Increment();
      return false;
    }
    queued_bytes_ += bytes;
    queue_.push_back(std::move(frame));
  }
  delivered_sequence_.store(snapshot->sequence, std::memory_order_relaxed);
  if (metrics != nullptr) {
    metrics->frames_sent->Increment();
    metrics->bytes_sent->Increment(bytes);
    (full ? metrics->full_frames : metrics->delta_frames)->Increment();
  }
  return true;
}

bool Subscription::TryPop(std::string* frame) {
  int stalled = stalled_pops_.load(std::memory_order_relaxed);
  while (stalled > 0) {
    if (stalled_pops_.compare_exchange_weak(stalled, stalled - 1,
                                            std::memory_order_relaxed)) {
      return false;  // injected slow consumer: refuse to drain
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *frame = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= frame->size();
  return true;
}

void Subscription::Cancel() {
  cancelled_.store(true, std::memory_order_release);
}

void Subscription::StallPops(int n) {
  stalled_pops_.store(n, std::memory_order_relaxed);
}

bool Subscription::Drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty();
}

// ---- SubscriberPool ---------------------------------------------------------

void SubscriberPool::PoolWaker::Signal() {
  // Leaf lock: never held while calling into the fanout (the workers
  // drop wake_mu_ before touching Latest()), so signaling from inside
  // SnapshotFanout::Publish cannot deadlock.
  {
    std::lock_guard<std::mutex> lock(pool_->wake_mu_);
    ++pool_->wake_epoch_;
  }
  pool_->wake_cv_.notify_all();
}

SubscriberPool::SubscriberPool(SnapshotFanout* fanout, NetMetrics* metrics)
    : SubscriberPool(fanout, metrics, Options()) {}

SubscriberPool::SubscriberPool(SnapshotFanout* fanout, NetMetrics* metrics,
                               Options options)
    : fanout_(fanout),
      metrics_(metrics),
      tracer_(obs::GlobalTracer()),
      options_(options),
      waker_(this) {
  const int threads = std::max(1, options_.threads);
  shards_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SubscriberPool::~SubscriberPool() { Stop(); }

void SubscriberPool::Start() {
  if (!workers_.empty()) return;
  stop_.store(false, std::memory_order_release);
  fanout_->RegisterWaker(&waker_);
  workers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

void SubscriberPool::Stop() {
  if (workers_.empty()) return;
  // Unregister first: after this returns no publish will signal us.
  fanout_->UnregisterWaker(&waker_);
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::shared_ptr<Subscription> SubscriberPool::Subscribe() {
  auto subscription = std::make_shared<Subscription>(options_.subscription);
  // Seed the subscriber with the current snapshot (full frame) before
  // it joins a shard, so it has data even if no publish ever comes.
  if (auto latest = fanout_->Latest(); latest != nullptr) {
    subscription->Deliver(latest, metrics_);
  }
  const std::size_t shard_index =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  Shard* shard = shards_[shard_index].get();
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->subs.push_back(subscription);
  }
  metrics_->AddSubscriptions(1);
  return subscription;
}

void SubscriberPool::Unsubscribe(
    const std::shared_ptr<Subscription>& subscription) {
  if (subscription == nullptr) return;
  subscription->Cancel();
  // The shard sweep removes it (and decrements the gauge) lazily; do
  // it eagerly here so unsubscribes are visible without a publish.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto& subs = shard->subs;
    const auto it = std::find(subs.begin(), subs.end(), subscription);
    if (it != subs.end()) {
      subs.erase(it);
      metrics_->AddSubscriptions(-1);
      return;
    }
  }
}

void SubscriberPool::WorkerLoop(int worker_index) {
  Shard* shard = shards_[static_cast<std::size_t>(worker_index)].get();
  std::uint64_t seen_wake = 0;
  std::uint64_t swept_epoch = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    {
      // Drop wake_mu_ before calling into the fanout: Publish signals
      // us while holding the fanout mutex (see PoolWaker::Signal).
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               wake_epoch_ != seen_wake;
      });
      seen_wake = wake_epoch_;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // Sweep until we have fanned out the newest snapshot; publishes
    // that land mid-sweep coalesce into the next pass.
    for (;;) {
      std::uint64_t epoch = 0;
      service::SnapshotPtr snapshot = fanout_->Latest(&epoch);
      if (snapshot == nullptr || epoch == swept_epoch) break;
      metrics_->publish_wakeups->Increment();
      SweepShard(shard, snapshot);
      swept_epoch = epoch;
      sweeps_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SubscriberPool::SweepShard(Shard* shard,
                                const service::SnapshotPtr& snapshot) {
  obs::TraceSpan span(tracer_, "net", "fanout_sweep");
  // Copy the roster so delivery (delta encode per subscriber) runs
  // without the shard lock; subscribe/unsubscribe stay cheap.
  std::vector<std::shared_ptr<Subscription>> roster;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    roster = shard->subs;
  }
  span.arg("subs", static_cast<double>(roster.size()));

  fault::FaultInjector* fault = options_.fault;
  if (fault != nullptr && fault->enabled() && !roster.empty()) {
    if (fault->ShouldFire(fault::kNetSlowConsumer)) {
      // The chosen subscriber's consumer goes deaf: deliveries keep
      // landing but nothing drains, so the bounded queue must shed it.
      const auto victim = fault->PickIndex(fault::kNetSlowConsumer,
                                           roster.size());
      roster[victim]->StallPops(
          static_cast<int>(options_.subscription.max_queued_frames) + 8);
    }
    if (fault->ShouldFire(fault::kNetConnDrop)) {
      const auto victim =
          fault->PickIndex(fault::kNetConnDrop, roster.size());
      roster[victim]->Cancel();
      metrics_->conns_dropped->Increment();
    }
  }

  bool any_dead = false;
  for (const auto& subscription : roster) {
    if (subscription->cancelled() || subscription->shed()) {
      any_dead = true;
      continue;
    }
    if (subscription->delivered_sequence() >= snapshot->sequence) continue;
    if (!subscription->Deliver(snapshot, metrics_)) {
      any_dead = true;
    } else {
      metrics_->ObservePublishToWrite(*fanout_, snapshot->sequence);
    }
  }
  if (!any_dead) return;
  // Compact: drop shed/cancelled subscriptions from the shard.
  std::lock_guard<std::mutex> lock(shard->mu);
  auto& subs = shard->subs;
  const auto dead = [](const std::shared_ptr<Subscription>& s) {
    return s->cancelled() || (s->shed() && s->Drained());
  };
  std::int64_t removed = 0;
  auto it = std::remove_if(subs.begin(), subs.end(),
                           [&](const std::shared_ptr<Subscription>& s) {
                             if (dead(s)) {
                               ++removed;
                               return true;
                             }
                             return false;
                           });
  subs.erase(it, subs.end());
  if (removed > 0) metrics_->AddSubscriptions(-removed);
}

}  // namespace mqpi::net
