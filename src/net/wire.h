// Wire protocol: the compact length-prefixed binary framing the PI
// server speaks over TCP (and over the in-process loopback transport
// the fan-out bench uses).
//
// Every frame is a fixed 16-byte header followed by a type-specific
// payload, all little-endian with explicit byte packing (the format is
// identical on every host):
//
//   offset  size  field
//        0     4  payload length (bytes after the header)
//        4     1  protocol version (kWireVersion)
//        5     1  frame type (FrameType)
//        6     2  flags (reserved, must be 0)
//        8     8  request id — client-chosen correlation id, echoed
//                 verbatim in the matching reply / error frame; 0 on
//                 server-push frames (snapshots)
//
// Request/reply pairs: SUBMIT -> SUBMIT_REPLY, CANCEL -> CANCEL_REPLY,
// PROGRESS -> PROGRESS_REPLY, SUBSCRIBE -> SUBSCRIBE_REPLY,
// UNSUBSCRIBE -> UNSUBSCRIBE_REPLY, WHATIF -> WHATIF_REPLY, PING ->
// PONG, STATS -> STATS_REPLY. Any request can instead be answered by an ERROR frame carrying
// the Status code + message (Status-coded, never a torn connection for
// a semantic error). Subscribed connections additionally receive
// unsolicited SNAPSHOT_FULL / SNAPSHOT_DELTA pushes; the delta
// encoding itself lives in net/fanout.h, this header only defines the
// byte format.
//
// Robustness contract (enforced by the property tests): every encoded
// frame decodes back byte-identically; truncated input reports "need
// more bytes"; a bad version, nonzero flags, an oversized length, or a
// payload that does not parse reports a Status error — never a crash,
// never an over-read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/priority.h"
#include "common/status.h"
#include "common/units.h"
#include "service/snapshot.h"

namespace mqpi::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard ceiling on payload size a peer will accept; servers may
/// configure a lower bound. Protects against hostile/corrupt lengths.
inline constexpr std::size_t kMaxPayloadBytes = std::size_t{64} << 20;
/// Per-string ceiling inside payloads (labels, SQL text, messages).
inline constexpr std::size_t kMaxStringBytes = std::size_t{1} << 20;
/// Per-snapshot row-count ceiling (sanity bound on decode).
inline constexpr std::uint32_t kMaxSnapshotRows = 4u << 20;
/// Shard-row ceiling: the global id space gives shards 16 bits.
inline constexpr std::uint32_t kMaxShardRows = 1u << 16;

enum class FrameType : std::uint8_t {
  // client -> server
  kSubmit = 1,
  kCancel = 2,
  kProgress = 3,
  kSubscribe = 4,
  kUnsubscribe = 5,
  kWhatIf = 6,
  kPing = 7,
  kStats = 8,
  // server -> client
  kSubmitReply = 64,
  kCancelReply = 65,
  kProgressReply = 66,
  kSubscribeReply = 67,
  kUnsubscribeReply = 68,
  kWhatIfReply = 69,
  kPong = 70,
  kSnapshotFull = 71,
  kSnapshotDelta = 72,
  kError = 73,
  kStatsReply = 74,
};

/// Stable name for logs/tests ("SUBMIT", "SNAPSHOT_DELTA", ...).
std::string_view FrameTypeName(FrameType type);

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kPing;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
};

// ---- payloads ---------------------------------------------------------------

/// SUBMIT: either SQL text the server plans, or a cost-only synthetic
/// query (the load-generator path).
struct SubmitRequest {
  Priority priority = Priority::kNormal;
  /// True: `sql` is parsed server-side. False: a synthetic query of
  /// `synthetic_cost` work units labeled `label`.
  bool is_sql = true;
  std::string sql;
  double synthetic_cost = 0.0;
  std::string label;
};
struct SubmitReply {
  QueryId id = kInvalidQueryId;
};

struct CancelRequest {
  QueryId id = kInvalidQueryId;
};
struct CancelReply {};

struct ProgressRequest {
  QueryId id = kInvalidQueryId;
};
/// One row out of the snapshot the server currently holds.
struct ProgressReply {
  std::uint64_t sequence = 0;
  SimTime sim_time = 0.0;
  service::QueryProgress row;
};

struct SubscribeRequest {
  /// Stream scope on a sharded server: -1 subscribes to the merged
  /// global stream (the only stream a single-shard server has); 0..N-1
  /// subscribes to that shard's own publication — per-shard sequences,
  /// shard-local ids, no merge latency. Out-of-range shards are
  /// rejected with an ERROR frame. Legacy peers that send an empty
  /// payload decode as -1.
  std::int32_t shard = -1;
};
struct SubscribeReply {
  /// Snapshot sequence current at subscription time; the first push
  /// the subscriber sees is a SNAPSHOT_FULL at or after it.
  std::uint64_t sequence = 0;
};
struct UnsubscribeRequest {};
struct UnsubscribeReply {};

/// WHATIF: §3 workload-management question evaluated against the live
/// forecast — remaining time of `target` with `blocked`/`aborted`
/// removed from the modelled load and `reweighted` weights applied.
struct WhatIfRequest {
  QueryId target = kInvalidQueryId;
  std::vector<QueryId> blocked;
  std::vector<QueryId> aborted;
  std::vector<std::pair<QueryId, double>> reweighted;
};
struct WhatIfReply {
  SimTime eta = kUnknown;
};

struct PingRequest {
  std::uint64_t nonce = 0;
};
struct PongReply {
  std::uint64_t nonce = 0;
};

/// STATS: remote server-health probe (pi_top's footer). Server-wide
/// tallies come from the service's liveness signal and the fan-out's
/// NetMetrics; the conn_* fields describe the asking connection and
/// are overlaid by the TCP server (zero over in-process transports).
struct StatsRequest {};
/// Per-shard health row inside a STATS reply; present only when the
/// server fronts a sharded coordinator (pi_top's per-shard footer).
struct ShardStatsRow {
  std::int32_t shard = 0;
  std::uint64_t uptime_quanta = 0;
  double ticker_age_quanta = 0.0;
  std::uint64_t snapshots_published = 0;
  std::uint64_t watchdog_restarts = 0;
  bool degraded = false;
  std::int32_t num_running = 0;
  std::int32_t num_queued = 0;
};
struct StatsReply {
  // --- service plane ---
  std::uint64_t uptime_quanta = 0;
  /// Wall time since the last publication, in expected tick periods.
  double ticker_age_quanta = 0.0;
  std::uint64_t snapshots_published = 0;
  std::uint64_t watchdog_restarts = 0;
  /// Latest snapshot's degraded (staleness) flag.
  bool degraded = false;
  // --- network plane (server-wide) ---
  std::uint64_t connections = 0;
  std::uint64_t subscriptions = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t consumers_shed = 0;
  // --- the asking connection ---
  std::uint64_t conn_frames_sent = 0;
  std::uint64_t conn_bytes_sent = 0;
  std::uint64_t conn_full_frames = 0;
  std::uint64_t conn_delta_frames = 0;
  /// Write-queue high-water marks over the connection's lifetime.
  std::uint64_t conn_queue_hw_frames = 0;
  std::uint64_t conn_queue_hw_bytes = 0;
  // --- shard plane (empty on unsharded servers and legacy peers) ---
  std::vector<ShardStatsRow> shards;
};

/// Status-coded failure for the request whose id the header echoes.
struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  std::string message;

  Status ToStatus() const;
  static ErrorReply From(const Status& status);
};

/// SNAPSHOT_FULL / SNAPSHOT_DELTA: the push payload. A full frame
/// carries every row; a delta carries only rows that changed since
/// `base_sequence` (the last frame this subscriber was sent) — the
/// subscriber merges by query id. Removals never occur: snapshots are
/// append-only by query id, terminal rows simply stop changing.
struct SnapshotFrame {
  std::uint64_t sequence = 0;
  /// Delta only: the sequence this delta patches (0 in full frames).
  std::uint64_t base_sequence = 0;
  SimTime sim_time = 0.0;
  std::int32_t num_running = 0;
  std::int32_t num_queued = 0;
  std::int32_t num_blocked = 0;
  double measured_rate = 0.0;
  SimTime quiescent_eta = kUnknown;
  std::int32_t age_quanta = 0;
  bool degraded = false;
  /// Total rows in the snapshot this frame describes (a delta's
  /// `rows` is a subset; this is the full cardinality, for sanity
  /// checks on apply).
  std::uint32_t total_rows = 0;
  std::vector<service::QueryProgress> rows;
  /// Per-shard load gauges carried by merged (coordinator) snapshots;
  /// empty on single-shard streams. Always sent in full (N entries,
  /// tiny next to the row set), even in delta frames.
  std::vector<service::ShardLoad> shard_loads;
};

using FrameBody =
    std::variant<SubmitRequest, SubmitReply, CancelRequest, CancelReply,
                 ProgressRequest, ProgressReply, SubscribeRequest,
                 SubscribeReply, UnsubscribeRequest, UnsubscribeReply,
                 WhatIfRequest, WhatIfReply, PingRequest, PongReply,
                 StatsRequest, StatsReply, ErrorReply, SnapshotFrame>;

struct Frame {
  FrameHeader header;
  FrameBody body;
};

// ---- encode -----------------------------------------------------------------

/// Bounds-checked little-endian writer. Append-only; the buffer is the
/// encoded bytes.
class WireWriter {
 public:
  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v);
  /// IEEE-754 bit pattern, little-endian — NaN/inf payloads survive
  /// byte-identically.
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over one payload. Every getter returns false
/// (and poisons the reader) on under-run; decode functions translate
/// that into a Status.
class WireReader {
 public:
  WireReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool U8(std::uint8_t* v);
  bool U16(std::uint16_t* v);
  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  bool I32(std::int32_t* v);
  bool F64(double* v);
  bool Str(std::string* s);

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  /// True when the whole payload was consumed without under-run.
  bool Exhausted() const { return ok_ && pos_ == size_; }

 private:
  bool Take(void* out, std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Encodes a complete frame (header + payload) for `body`; the frame
/// type is derived from the payload alternative, `full` selects
/// SNAPSHOT_FULL vs SNAPSHOT_DELTA for SnapshotFrame bodies.
std::string EncodeFrame(std::uint64_t request_id, const FrameBody& body,
                        bool full_snapshot = true);
std::string EncodeFrame(const Frame& frame);

// ---- decode -----------------------------------------------------------------

enum class DecodeResult {
  /// `data` holds a prefix of a valid frame; read more bytes.
  kNeedMore,
  /// One frame decoded; `*consumed` bytes eaten from the front.
  kFrame,
  /// The stream is unrecoverable (bad version/flags/length/payload);
  /// close the connection with `*error`.
  kError,
};

/// Incremental stream decode: inspects the front of [data, data+size).
/// `max_payload` caps accepted payload lengths (<= kMaxPayloadBytes).
DecodeResult TryDecodeFrame(const char* data, std::size_t size,
                            std::size_t max_payload, Frame* out,
                            std::size_t* consumed, Status* error);

// Snapshot row helpers shared by the fan-out encoder (fanout.cc) and
// the full-frame encode path.
void EncodeSnapshotRow(WireWriter* w, const service::QueryProgress& row);
bool DecodeSnapshotRow(WireReader* r, service::QueryProgress* row);

/// Payload byte size of one encoded row (for write-budget accounting).
std::size_t EncodedRowBytes(const service::QueryProgress& row);

}  // namespace mqpi::net
