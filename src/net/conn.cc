#include "net/conn.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace mqpi::net {
namespace {

// One read chunk; frames larger than this simply take several reads.
constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

Connection::Connection(int fd, std::uint64_t id, Options options)
    : fd_(fd), id_(id), options_(options) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::ReadFrames(std::vector<Frame>* frames) {
  if (closing_) return true;  // draining goodbye; ignore further input
  for (;;) {
    const std::size_t old_size = read_buf_.size();
    read_buf_.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(fd_, read_buf_.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      read_buf_.resize(old_size + static_cast<std::size_t>(n));
      continue;
    }
    read_buf_.resize(old_size);
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // fatal read error
  }

  // Peel complete frames off the consumed-prefix view.
  for (;;) {
    Frame frame;
    std::size_t consumed = 0;
    Status error;
    const DecodeResult r = TryDecodeFrame(
        read_buf_.data() + read_pos_, read_buf_.size() - read_pos_,
        options_.max_frame_bytes, &frame, &consumed, &error);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kError) {
      // Stream-level corruption: the framing is gone, so answer once
      // and close. QueueFrame never sheds here (queue was just active).
      ErrorReply goodbye;
      goodbye.code = error.code();
      goodbye.message = std::string(error.message());
      QueueFrame(EncodeFrame(frame.header.request_id, FrameBody{goodbye}));
      closing_ = true;
      return true;
    }
    read_pos_ += consumed;
    frames->push_back(std::move(frame));
  }

  // Compact once the consumed prefix dominates the buffer.
  if (read_pos_ > 0 &&
      (read_pos_ == read_buf_.size() || read_pos_ >= kReadChunk)) {
    read_buf_.erase(0, read_pos_);
    read_pos_ = 0;
  }
  return true;
}

bool Connection::QueueFrame(std::string bytes) {
  if (closing_) return true;  // already saying goodbye; drop silently
  if (write_queue_.size() >= options_.write_queue_max_frames ||
      queued_bytes_ + bytes.size() > options_.write_queue_max_bytes) {
    // Slow consumer: drop everything pending, say why, close.
    queued_bytes_ = 0;
    write_queue_.clear();
    write_offset_ = 0;
    ErrorReply goodbye;
    goodbye.code = StatusCode::kResourceExhausted;
    goodbye.message = "write queue overflow: consumer too slow";
    std::string frame = EncodeFrame(0, FrameBody{goodbye});
    queued_bytes_ = frame.size();
    write_queue_.push_back(std::move(frame));
    closing_ = true;
    shed_ = true;
    return false;
  }
  queued_bytes_ += bytes.size();
  write_queue_.push_back(std::move(bytes));
  stats.queue_hw_frames =
      std::max<std::uint64_t>(stats.queue_hw_frames, write_queue_.size());
  stats.queue_hw_bytes =
      std::max<std::uint64_t>(stats.queue_hw_bytes, queued_bytes_);
  return true;
}

bool Connection::FlushWrites(std::size_t max_write_bytes) {
  std::size_t written_this_round = 0;
  while (!write_queue_.empty()) {
    const std::string& front = write_queue_.front();
    std::size_t want = front.size() - write_offset_;
    if (max_write_bytes > 0) {
      if (written_this_round >= max_write_bytes) return true;
      want = std::min(want, max_write_bytes - written_this_round);
    }
    const ssize_t n =
        ::send(fd_, front.data() + write_offset_, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // fatal (EPIPE, ECONNRESET, ...)
    }
    written_this_round += static_cast<std::size_t>(n);
    write_offset_ += static_cast<std::size_t>(n);
    queued_bytes_ -= static_cast<std::size_t>(n);
    stats.bytes_sent += static_cast<std::uint64_t>(n);
    if (write_offset_ == front.size()) {
      write_queue_.pop_front();
      write_offset_ = 0;
      ++stats.frames_sent;
    }
  }
  return true;
}

}  // namespace mqpi::net
